#!/usr/bin/env bash
# The full CI gate, runnable locally and offline (the workspace has no
# third-party dependencies). Mirrors .github/workflows/ci.yml.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> ioopt check smoke test"
./target/release/ioopt check builtin:matmul
./target/release/ioopt check builtin:Yolo9000-8 >/dev/null

echo "==> golden corpus gate"
cargo test -q --test golden_corpus

echo "==> ioopt batch determinism: --jobs 1 vs --jobs 4 must be byte-identical"
t1_start=$(date +%s.%N)
./target/release/ioopt batch builtin:all --jobs 1 --json >/tmp/ioopt_batch_j1.json
t1_end=$(date +%s.%N)
t4_start=$(date +%s.%N)
./target/release/ioopt batch builtin:all --jobs 4 --json >/tmp/ioopt_batch_j4.json
t4_end=$(date +%s.%N)
cmp /tmp/ioopt_batch_j1.json /tmp/ioopt_batch_j4.json
t1=$(echo "$t1_end $t1_start" | awk '{printf "%.2f", $1 - $2}')
t4=$(echo "$t4_end $t4_start" | awk '{printf "%.2f", $1 - $2}')
speedup=$(echo "$t1 $t4" | awk '{printf "%.2f", $1 / $2}')
echo "batch timing: jobs=1 ${t1}s, jobs=4 ${t4}s, speedup ${speedup}x ($(nproc) cores)"
# The >= 2x speedup assertion only makes sense with real parallel
# hardware; single/dual-core runners still verify byte-identity above.
if [ "$(nproc)" -ge 4 ]; then
  echo "$speedup" | awk '{ exit !($1 >= 2.0) }' || {
    echo "FAIL: expected >= 2x batch speedup with --jobs 4 on $(nproc) cores, got ${speedup}x"
    exit 1
  }
fi

echo "CI OK"
