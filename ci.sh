#!/usr/bin/env bash
# The full CI gate, runnable locally and offline (the workspace has no
# third-party dependencies). Mirrors .github/workflows/ci.yml.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> lint: no unwrap/expect in crates/lp, crates/polyhedra, crates/symbolic non-test code"
# Hot numeric paths carry structured errors (LpError / FmError), not
# panics. Test modules sit at the end of each file behind #[cfg(test)],
# so everything before that marker must be unwrap/expect-free. Comment
# lines are skipped: doc examples legitimately show `.unwrap()`.
lint_bad=$(for f in crates/lp/src/*.rs crates/polyhedra/src/*.rs crates/symbolic/src/*.rs; do
  awk '/#\[cfg\(test\)\]/{exit}
       /^[[:space:]]*\/\//{next}
       /\.unwrap\(\)|\.expect\(/{print FILENAME":"FNR": "$0}' "$f"
done)
if [ -n "$lint_bad" ]; then
  echo "FAIL: unwrap/expect in non-test lp/polyhedra code:"
  echo "$lint_bad"
  exit 1
fi

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> ioopt check smoke test"
./target/release/ioopt check builtin:matmul
./target/release/ioopt check builtin:Yolo9000-8 >/dev/null

echo "==> golden corpus gate"
cargo test -q --test golden_corpus

echo "==> ioopt batch determinism: --jobs 1 vs --jobs 4 must be byte-identical"
t1_start=$(date +%s.%N)
./target/release/ioopt batch builtin:all --jobs 1 --json >/tmp/ioopt_batch_j1.json
t1_end=$(date +%s.%N)
t4_start=$(date +%s.%N)
./target/release/ioopt batch builtin:all --jobs 4 --json >/tmp/ioopt_batch_j4.json
t4_end=$(date +%s.%N)
cmp /tmp/ioopt_batch_j1.json /tmp/ioopt_batch_j4.json
t1=$(echo "$t1_end $t1_start" | awk '{printf "%.2f", $1 - $2}')
t4=$(echo "$t4_end $t4_start" | awk '{printf "%.2f", $1 - $2}')
speedup=$(echo "$t1 $t4" | awk '{printf "%.2f", $1 / $2}')
echo "batch timing: jobs=1 ${t1}s, jobs=4 ${t4}s, speedup ${speedup}x ($(nproc) cores)"
# The >= 2x speedup assertion only makes sense with real parallel
# hardware; single/dual-core runners still verify byte-identity above.
if [ "$(nproc)" -ge 4 ]; then
  echo "$speedup" | awk '{ exit !($1 >= 2.0) }' || {
    echo "FAIL: expected >= 2x batch speedup with --jobs 4 on $(nproc) cores, got ${speedup}x"
    exit 1
  }
fi

echo "==> observability: --profile/--trace-json must not perturb the report"
./target/release/ioopt batch builtin:all --jobs 4 --json --profile \
  --trace-json /tmp/ioopt_trace.json >/tmp/ioopt_batch_prof.json 2>/tmp/ioopt_prof.err
# The per-row surface must be byte-identical to the unprofiled run; the
# profile block is additive, so strip it before comparing.
python3 - <<'EOF'
import json
plain = json.load(open("/tmp/ioopt_batch_j4.json"))
prof = json.load(open("/tmp/ioopt_batch_prof.json"))
assert "profile" in prof, "--profile did not embed a profile block in --json"
prof.pop("profile")
assert plain == prof, "--profile perturbed the per-row report"
trace = json.load(open("/tmp/ioopt_trace.json"))
events = trace["traceEvents"]
assert events, "empty Chrome trace"
kernels = {e["args"]["arg"] for e in events if e["name"] == "batch.kernel"}
assert len(kernels) == 19, f"expected 19 kernel spans, got {len(kernels)}"
stages = {e["name"] for e in events}
assert {"iolb.symbolic", "tileopt.optimize"} <= stages, f"missing stage spans: {stages}"
EOF
grep -q '^metrics: ' /tmp/ioopt_prof.err || {
  echo "FAIL: --profile printed no metrics line on stderr"
  exit 1
}

echo "==> certificate audit: certified corpus accepted; tampered dual rejected"
./target/release/ioopt batch builtin:all --jobs 4 --json --certify \
  >/tmp/ioopt_certified.json
./target/release/ioopt audit /tmp/ioopt_certified.json >/dev/null
# --certify must be strictly additive: stripping the certificate blocks
# recovers the plain --jobs 4 report, row for row.
python3 - <<'EOF'
import json, re
src = open("/tmp/ioopt_certified.json").read()
cert = json.loads(src)
for row in cert["kernels"]:
    assert "certificate" in row, f"row {row.get('kernel')} is uncertified"
cert["kernels"] = [{k: v for k, v in row.items() if k != "certificate"}
                   for row in cert["kernels"]]
plain = json.load(open("/tmp/ioopt_batch_j4.json"))
assert cert == plain, "--certify perturbed the per-row report"
# Flip one simplex dual coefficient: the LP optimality proof must break.
m = re.search(r'"rank_duals":\["([^"]*)"', src)
assert m, "no rank duals in the certified report"
with open("/tmp/ioopt_tampered.json", "w") as f:
    f.write(src[:m.start(1)] + "1000000" + src[m.end(1):])
EOF
rc=0
./target/release/ioopt audit /tmp/ioopt_tampered.json >/tmp/ioopt_audit_rej.out || rc=$?
if [ "$rc" -ne 2 ]; then
  echo "FAIL: expected exit code 2 from a tampered certificate, got $rc"
  exit 1
fi
grep -q 'error\[lp\.' /tmp/ioopt_audit_rej.out || {
  echo "FAIL: rejection did not name the violated lp.* check:"
  cat /tmp/ioopt_audit_rej.out
  exit 1
}
echo "certificate audit: 19 accepted, tampered dual rejected with $(grep -c 'error\[' /tmp/ioopt_audit_rej.out) finding(s)"

echo "==> ioopt serve smoke: healthz, golden-row conformance, metrics, graceful shutdown"
./target/release/ioopt serve --addr 127.0.0.1:7171 &
serve_pid=$!
trap 'kill "$serve_pid" 2>/dev/null || true' EXIT
python3 - <<'EOF'
import json, sys, time, urllib.request, urllib.error

BASE = "http://127.0.0.1:7171"

def req(method, path, body=None):
    data = body.encode() if body is not None else None
    r = urllib.request.Request(BASE + path, data=data, method=method)
    with urllib.request.urlopen(r, timeout=60) as resp:
        return resp.status, resp.read().decode()

# Wait for the listener (the binary starts in well under 30 s).
deadline = time.time() + 30
while True:
    try:
        status, body = req("GET", "/healthz")
        assert status == 200 and body == "ok\n", (status, body)
        break
    except (urllib.error.URLError, ConnectionError):
        assert time.time() < deadline, "serve never answered /healthz"
        time.sleep(0.25)

# Three served analyses must match the golden corpus rows (the Rust
# conformance suite pins byte-identity; this smoke pins the release
# binary end-to-end over real sockets).
for label in ["Yolo9000-8", "Yolo9000-0", "ab-ac-cb"]:
    body = json.dumps({"kernels": [f"builtin:{label}"],
                       "cache": 32768.0, "symbolic_only": True})
    status, served = req("POST", "/analyze", body)
    assert status == 200, (label, status, served)
    row = json.loads(served)["kernels"][0]
    golden = json.load(open(f"tests/golden/{label}.json"))
    assert row == golden, f"{label}: served row diverges from the golden snapshot"
print("serve smoke: 3 golden rows match")

# A warm server must report memo activity on /metrics.
status, metrics = req("GET", "/metrics")
assert status == 200
series = {line.split()[0]: float(line.split()[1])
          for line in metrics.splitlines() if line and not line.startswith("#")}
assert series.get("ioopt_memo_hits", 0) > 0, "no memo hits after three analyses"
assert series.get("ioopt_serve_requests", 0) >= 3, series.get("ioopt_serve_requests")
print(f"serve smoke: metrics ok (memo hits {series['ioopt_memo_hits']:.0f})")

status, body = req("POST", "/shutdown")
assert status == 202 and "draining" in body, (status, body)
EOF
shutdown_deadline=$(( $(date +%s) + 30 ))
while kill -0 "$serve_pid" 2>/dev/null; do
  if [ "$(date +%s)" -ge "$shutdown_deadline" ]; then
    echo "FAIL: ioopt serve did not exit within 30s of POST /shutdown"
    exit 1
  fi
  sleep 0.25
done
wait "$serve_pid" || {
  echo "FAIL: ioopt serve exited non-zero after graceful drain"
  exit 1
}
trap - EXIT
echo "serve smoke: graceful shutdown OK"

echo "==> loadgen: 400 requests x 8 connections, warm memo ratio must beat cold batch"
./target/release/loadgen --connections 8 --requests 400

echo "==> perf baseline: CI-mode run gated against committed BENCH_perf.json (>15% = fail)"
cargo build --release -p ioopt-bench --features count-alloc --bin perf_baseline
./target/release/perf_baseline --ci --out /tmp/ioopt_perf_ci.json --check BENCH_perf.json

echo "==> crash recovery: kill -9 mid-storm, restart on the same --cache-dir, warm replay"
store_dir=$(mktemp -d /tmp/ioopt_store.XXXXXX)
# Sustained-storm mode spawns its own child servers: warm-up pass, storm,
# SIGKILL with no flush, restart, then gate that the recovered store
# answers the whole mix (minus at most one torn frame) from disk.
./target/release/loadgen --duration-secs 8 --connections 4 \
  --cache-dir "$store_dir" --server-bin target/release/ioopt
# The surviving directory must verify clean (recovery already repaired
# any torn tail at the restart above, and repairs must stick).
./target/release/ioopt cache verify --cache-dir "$store_dir"
./target/release/ioopt cache stats --cache-dir "$store_dir"
# Fill the rest of the corpus through a *batch* process sharing the
# crashed store (it replays the storm's frames, writes the other rows):
# cross-process tier sharing over the same directory.
./target/release/ioopt batch builtin:all --json --symbolic-only --cache 32768 \
  --cache-dir "$store_dir" >/tmp/ioopt_store_batch.json 2>/dev/null
# Byte-identity across the crash: the full corpus served by a restarted
# server must equal `ioopt batch --json`, row for row, and every row
# must come from the disk tier.
./target/release/ioopt serve --addr 127.0.0.1:7172 --cache-dir "$store_dir" &
serve_pid=$!
trap 'kill "$serve_pid" 2>/dev/null || true' EXIT
python3 - <<'EOF'
import json, time, urllib.request, urllib.error

BASE = "http://127.0.0.1:7172"

def req(method, path, body=None):
    data = body.encode() if body is not None else None
    r = urllib.request.Request(BASE + path, data=data, method=method)
    with urllib.request.urlopen(r, timeout=60) as resp:
        return resp.status, resp.read().decode()

deadline = time.time() + 30
while True:
    try:
        status, body = req("GET", "/healthz")
        assert status == 200, (status, body)
        break
    except (urllib.error.URLError, ConnectionError):
        assert time.time() < deadline, "recovered serve never answered /healthz"
        time.sleep(0.25)

body = json.dumps({"kernels": ["builtin:all"],
                   "cache": 32768.0, "symbolic_only": True})
status, served = req("POST", "/analyze", body)
assert status == 200, (status, served[:200])
batch = open("/tmp/ioopt_store_batch.json").read()
assert served == batch, \
    "served corpus after crash recovery is not byte-identical to batch --json"
row = json.loads(served)["kernels"][0]
golden = json.load(open(f"tests/golden/{row['kernel']}.json"))
assert row == golden, "crash-recovered row diverges from the golden snapshot"

status, metrics = req("GET", "/metrics")
series = {line.split()[0]: float(line.split()[1])
          for line in metrics.splitlines() if line and not line.startswith("#")}
assert series.get("ioopt_store_hits", 0) >= 19, \
    "the replayed corpus did not come from the persistent store"
print(f"crash recovery: 19-row corpus replayed from disk byte-identically "
      f"(store hits {series['ioopt_store_hits']:.0f})")

status, body = req("POST", "/shutdown")
assert status == 202, (status, body)
EOF
shutdown_deadline=$(( $(date +%s) + 30 ))
while kill -0 "$serve_pid" 2>/dev/null; do
  if [ "$(date +%s)" -ge "$shutdown_deadline" ]; then
    echo "FAIL: recovered serve did not exit within 30s of POST /shutdown"
    exit 1
  fi
  sleep 0.25
done
wait "$serve_pid" || {
  echo "FAIL: recovered serve exited non-zero after graceful drain"
  exit 1
}
trap - EXIT
# Graceful drain flushes: the next open must find nothing to recover.
recovered=$(./target/release/ioopt cache stats --cache-dir "$store_dir" --json \
  | python3 -c 'import json,sys; print(int(json.load(sys.stdin)["recovered"]))')
if [ "$recovered" -ne 0 ]; then
  echo "FAIL: a gracefully drained store needed recovery ($recovered frame(s)) on reopen"
  exit 1
fi
rm -rf "$store_dir"
echo "crash recovery: clean verify, golden replay, zero recovery after graceful drain"

echo "==> bugfix regressions: gauge scrape, drain 503, torn tail header, head-scan resume"
# Named re-runs of the four latent-bug fixes so a regression fails with
# the bug's name in the log, not somewhere inside the workspace suite.
cargo test -q -p ioopt-engine --lib gauge_metrics_are_tagged_and_set_absolutely
cargo test -q -p ioopt-engine --lib scan_classifies_torn_versus_corrupt
cargo test -q --test store_recovery garbage_length_in_the_tail_header_truncates_instead_of_quarantining
cargo test -q -p ioopt-serve --lib metrics_scrape_declares_gauges_as_gauges
cargo test -q -p ioopt-serve --lib draining_server_sheds_with_503_not_429
cargo test -q -p ioopt-serve --lib head_scan_resumes_across_chunk_boundaries

echo "==> sharded fleet: golden conformance and kill -9 respawn through --shards 3"
cargo test -q --test serve_sharded

echo "==> multi-shard storm: routed balance, kill -9 one shard, per-shard warm restart"
shard_dir=$(mktemp -d /tmp/ioopt_shards.XXXXXX)
# Fleet mode warms the full corpus through the router, gates the routed
# counters against the route_hash partition map, SIGKILLs one shard
# mid-storm (the supervisor must respawn it), then restarts the fleet on
# the same directory and gates each shard's warm-restart store hits.
./target/release/loadgen --duration-secs 8 --connections 8 --shards 3 \
  --cache-dir "$shard_dir" --server-bin target/release/ioopt
# Every partition is a well-formed store of its own; `stats` opens
# read-only (the same inspection is safe while a shard owns the dir).
for d in "$shard_dir"/shard-*; do
  ./target/release/ioopt cache verify --cache-dir "$d"
  ./target/release/ioopt cache stats --cache-dir "$d"
done
# Hit-ratio-aware compaction: the first compact stamps the access clock
# (grace window — nothing evicted), and a second compact with no reads
# in between evicts every cold row.
first=$(./target/release/ioopt cache compact --cache-dir "$shard_dir/shard-00" --json \
  | python3 -c 'import json,sys; print(int(json.load(sys.stdin)["evicted"]))')
second=$(./target/release/ioopt cache compact --cache-dir "$shard_dir/shard-00" --json \
  | python3 -c 'import json,sys; print(int(json.load(sys.stdin)["evicted"]))')
live=$(./target/release/ioopt cache stats --cache-dir "$shard_dir/shard-00" --json \
  | python3 -c 'import json,sys; print(int(json.load(sys.stdin)["live_keys"]))')
if [ "$first" -ne 0 ] || [ "$second" -eq 0 ] || [ "$live" -ne 0 ]; then
  echo "FAIL: eviction clock (first compact evicted $first, second $second, $live live key(s) left)"
  exit 1
fi
rm -rf "$shard_dir"
echo "sharded serving: storm, read-only inspection, eviction clock OK"

# The fault-injection legs rebuild the ioopt binary with the
# `fault-inject` feature, so they run after every leg that uses the
# stock release binary.
echo "==> fault-injection test suite (feature fault-inject)"
cargo test -q --features fault-inject --test fault_injection

echo "==> serve fault legs: injected panic poisons one response; slow fault triggers 429"
cargo test -q --features fault-inject --test serve_stress injected_panic
cargo test -q --features fault-inject --test serve_backpressure slow_fault

echo "==> self-healing pool: a worker killed by an escaped panic is respawned"
cargo test -q --features fault-inject --test serve_selfheal

echo "==> fault containment: injected panic -> exit 2, 18 exact rows, one structured failed row"
cargo build --release -p ioopt --features fault-inject
rc=0
IOOPT_FAULT=panic:Yolo9000-8 ./target/release/ioopt batch builtin:all \
  --json --symbolic-only >/tmp/ioopt_fault.json 2>/tmp/ioopt_fault.err || rc=$?
if [ "$rc" -ne 2 ]; then
  echo "FAIL: expected exit code 2 from a faulted batch, got $rc"
  exit 1
fi
grep -q '"status":"failed"' /tmp/ioopt_fault.json || {
  echo "FAIL: no structured failed row in the report"
  exit 1
}
if grep -q 'panicked at' /tmp/ioopt_fault.json; then
  echo "FAIL: raw panic output leaked into the report"
  exit 1
fi
# The report is a single JSON line: count occurrences, not lines.
exact=$(grep -o '"status":"exact"' /tmp/ioopt_fault.json | wc -l)
if [ "$exact" -ne 18 ]; then
  echo "FAIL: expected 18 exact rows alongside the failed one, got $exact"
  exit 1
fi

echo "==> disk fault degradation: IOOPT_FAULT=io:write -> memory-only, exit 0, bytes unchanged"
fault_dir=$(mktemp -d /tmp/ioopt_iofault.XXXXXX)
./target/release/ioopt batch builtin:all --json --symbolic-only \
  >/tmp/ioopt_nostore.json 2>/dev/null
IOOPT_FAULT=io:write ./target/release/ioopt batch builtin:all --json --symbolic-only \
  --cache-dir "$fault_dir" >/tmp/ioopt_iofault.json 2>/tmp/ioopt_iofault.err || {
  echo "FAIL: a batch with a failing disk must still exit 0 (memory-only degradation)"
  exit 1
}
cmp /tmp/ioopt_nostore.json /tmp/ioopt_iofault.json || {
  echo "FAIL: disk faults perturbed the report bytes"
  exit 1
}
grep -q 'memory-only' /tmp/ioopt_iofault.err || {
  echo "FAIL: sticky memory-only degradation was not surfaced on stderr:"
  cat /tmp/ioopt_iofault.err
  exit 1
}
rm -rf "$fault_dir"
echo "disk fault degradation: report bytes unchanged, degradation surfaced"

echo "==> graceful degradation: --timeout-ms 1 -> exit 2, every row degraded, none exact"
rc=0
./target/release/ioopt batch builtin:all --json --timeout-ms 1 \
  >/tmp/ioopt_degraded.json 2>/dev/null || rc=$?
if [ "$rc" -ne 2 ]; then
  echo "FAIL: expected exit code 2 from a spent-budget batch, got $rc"
  exit 1
fi
grep -q '"status":"degraded"' /tmp/ioopt_degraded.json || {
  echo "FAIL: no degraded rows under --timeout-ms 1"
  exit 1
}
if grep -q '"status":"exact"' /tmp/ioopt_degraded.json; then
  echo "FAIL: exact rows survived a 1 ms budget"
  exit 1
fi

echo "CI OK"
