#!/usr/bin/env bash
# The full CI gate, runnable locally and offline (the workspace has no
# third-party dependencies). Mirrors .github/workflows/ci.yml.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> ioopt check smoke test"
./target/release/ioopt check builtin:matmul
./target/release/ioopt check builtin:Yolo9000-8 >/dev/null

echo "CI OK"
