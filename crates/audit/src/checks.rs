//! The audit checks: plain arithmetic over the decoded certificate.
//!
//! Every check either passes, fails with a pinpointed
//! [`AuditFinding`](crate::AuditFinding), or is *visibly* skipped with a
//! note — an inapplicable check never silently counts as passed.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};

use ioopt_cdag::{build_cdag, optimal_loads};
use ioopt_ir::{check_tilable, parse_kernel, Kernel, Legality};

use crate::expr::AExpr;
use crate::rat::{sum, Rat};
use crate::{AuditFinding, AuditRowResult, CertificateData, ScenarioCertData};

/// Relative tolerance when comparing re-evaluated `f64` bounds against
/// recorded ones (the recorded values went through one render/parse
/// round trip).
const REL_TOL: f64 = 1e-6;

/// `lb ≤ ub` slack mirroring the producer's E008 check.
fn ordered(lb: f64, ub: f64) -> bool {
    lb <= ub * (1.0 + 1e-9) + 1e-6
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= REL_TOL * a.abs().max(b.abs()).max(1.0)
}

struct Ctx {
    findings: Vec<AuditFinding>,
    notes: Vec<String>,
}

impl Ctx {
    fn fail(&mut self, check: &str, message: impl Into<String>) {
        self.findings.push(AuditFinding {
            check: check.to_string(),
            message: message.into(),
        });
    }

    fn note(&mut self, message: impl Into<String>) {
        self.notes.push(message.into());
    }
}

pub(crate) fn run(cert: &CertificateData) -> AuditRowResult {
    let mut ctx = Ctx {
        findings: Vec::new(),
        notes: Vec::new(),
    };

    if cert.version != 1 {
        ctx.fail(
            "schema",
            format!("unknown certificate version {}", cert.version),
        );
        return AuditRowResult {
            kernel: cert.kernel_name.clone(),
            findings: ctx.findings,
            notes: ctx.notes,
        };
    }

    let kernel = check_kernel(cert, &mut ctx);
    for (i, sc) in cert.lb.scenarios.iter().enumerate() {
        check_lp(i, sc, kernel.as_ref(), &mut ctx);
    }
    let lb_expr = parse_bound("LB", &cert.lb.combined, &mut ctx);
    let ub_expr = cert
        .ub
        .as_ref()
        .and_then(|ub| parse_bound("UB", &ub.bound, &mut ctx));
    // The trivial bound must also re-parse (it rides inside `combined`
    // on the producer side, but a tampered field should not slip by).
    parse_bound("trivial LB", &cert.lb.trivial, &mut ctx);
    check_samples(cert, lb_expr.as_ref(), ub_expr.as_ref(), &mut ctx);
    check_growth(lb_expr.as_ref(), ub_expr.as_ref(), &mut ctx);
    check_row(cert, kernel.as_ref(), lb_expr.as_ref(), &mut ctx);
    check_tiles(cert, kernel.as_ref(), &mut ctx);
    check_pebble(kernel.as_ref(), lb_expr.as_ref(), &mut ctx);

    AuditRowResult {
        kernel: cert.kernel_name.clone(),
        findings: ctx.findings,
        notes: ctx.notes,
    }
}

fn parse_bound(what: &str, src: &str, ctx: &mut Ctx) -> Option<AExpr> {
    match AExpr::parse(src) {
        Ok(e) => Some(e),
        Err(e) => {
            ctx.fail("bounds.expr", format!("{what} `{src}` does not parse: {e}"));
            None
        }
    }
}

/// `kernel`: the embedded DSL parses, is tilable, and the recorded
/// sizes cover every loop dimension.
fn check_kernel(cert: &CertificateData, ctx: &mut Ctx) -> Option<Kernel> {
    let Some(src) = &cert.kernel_dsl else {
        ctx.note("no kernel DSL embedded: kernel-dependent checks skipped");
        return None;
    };
    let kernel = match parse_kernel(src) {
        Ok(k) => k,
        Err(e) => {
            ctx.fail("kernel", format!("embedded DSL does not parse: {e:?}"));
            return None;
        }
    };
    if let Legality::Illegal(reason) = check_tilable(&kernel) {
        ctx.fail(
            "kernel",
            format!("kernel is not rectangularly tilable: {reason}"),
        );
    }
    if !cert.sizes.is_empty() {
        for d in kernel.dims() {
            match cert.sizes.iter().find(|(name, _)| *name == d.name) {
                Some((_, v)) if *v >= 1 => {}
                Some((name, v)) => {
                    ctx.fail("kernel", format!("size `{name}` is {v}, must be >= 1"));
                }
                None => {
                    ctx.fail(
                        "kernel",
                        format!("no size recorded for loop dimension `{}`", d.name),
                    );
                }
            }
        }
    }
    Some(kernel)
}

fn parse_rat(check: &str, what: &str, s: &str, ctx: &mut Ctx) -> Option<Rat> {
    match Rat::parse(s) {
        Some(r) => Some(r),
        None => {
            ctx.fail(check, format!("{what} `{s}` is not a rational"));
            None
        }
    }
}

/// `lp.primal` + `lp.dual`: re-verify one scenario's Brascamp-Lieb LP
/// optimum from the exported witness, in this crate's own exact
/// rationals. Primal feasibility + dual feasibility + strong duality
/// together prove `σ` is the optimum of `min Σ_main s_j` — no simplex
/// run needed.
fn check_lp(index: usize, sc: &ScenarioCertData, kernel: Option<&Kernel>, ctx: &mut Ctx) {
    let at = |msg: String| format!("scenario {index}: {msg}");
    let nh = sc.homs.len();
    if nh == 0 {
        ctx.fail("lp.primal", at("no homomorphisms".to_string()));
        return;
    }
    if let Some(k) = kernel {
        let ndims = k.dims().len() as i64;
        for &d in &sc.small_dims {
            if d < 0 || d >= ndims {
                ctx.fail(
                    "lp.primal",
                    at(format!(
                        "small dim index {d} out of range (kernel has {ndims} dims)"
                    )),
                );
            }
        }
    }
    if sc.rank_duals.len() != sc.constraints.len() || sc.cap_duals.len() != nh {
        ctx.fail(
            "lp.dual",
            at(format!(
                "dual shape mismatch: {} rank duals for {} constraints, {} cap duals for {} homs",
                sc.rank_duals.len(),
                sc.constraints.len(),
                sc.cap_duals.len(),
                nh
            )),
        );
        return;
    }
    for (i, c) in sc.constraints.iter().enumerate() {
        if c.image_ranks.len() != nh {
            ctx.fail(
                "lp.primal",
                at(format!(
                    "constraint {i} has {} image ranks for {nh} homs",
                    c.image_ranks.len()
                )),
            );
            return;
        }
    }

    let Some(sigma) = parse_rat("lp.primal", &at("sigma".into()), &sc.sigma, ctx) else {
        return;
    };
    let Some(s_sd) = parse_rat("lp.primal", &at("s_sd".into()), &sc.s_sd, ctx) else {
        return;
    };
    let mut s = Vec::with_capacity(nh);
    for h in &sc.homs {
        let Some(v) = parse_rat(
            "lp.primal",
            &at(format!("s for hom `{}`", h.name)),
            &h.s,
            ctx,
        ) else {
            return;
        };
        s.push(v);
    }
    let main: Vec<bool> = sc.homs.iter().map(|h| h.kind != "sd").collect();

    // Primal feasibility: caps, rank rows, σ = Σ_main s_j, s_sd binding.
    for (j, (&sj, h)) in s.iter().zip(&sc.homs).enumerate() {
        if sj.is_negative() || sj > Rat::ONE {
            ctx.fail(
                "lp.primal",
                at(format!(
                    "s_{j} = {sj} for hom `{}` is outside [0, 1]",
                    h.name
                )),
            );
        }
    }
    match sum(s.iter().zip(&main).filter(|(_, m)| **m).map(|(v, _)| *v)) {
        Some(total) if total == sigma => {}
        Some(total) => ctx.fail(
            "lp.primal",
            at(format!("sigma = {sigma} but the main s_j sum to {total}")),
        ),
        None => ctx.fail("lp.primal", at("rational overflow summing s".into())),
    }
    match sc.homs.iter().position(|h| h.kind == "sd") {
        Some(j) if s[j] != s_sd => ctx.fail(
            "lp.primal",
            at(format!("s_sd = {s_sd} but the sd hom carries s = {}", s[j])),
        ),
        None if s_sd != Rat::ZERO => ctx.fail(
            "lp.primal",
            at(format!("s_sd = {s_sd} but no sd hom is present")),
        ),
        _ => {}
    }
    for (i, c) in sc.constraints.iter().enumerate() {
        let row = sum(c
            .image_ranks
            .iter()
            .zip(&s)
            .map(|(&r, &sj)| Rat::from_int(r as i128).mul(sj).unwrap_or(Rat::ZERO)));
        match row {
            Some(v) if v >= Rat::from_int(c.lhs as i128) => {}
            Some(v) => ctx.fail(
                "lp.primal",
                at(format!(
                    "rank constraint {i} violated: Σ rank(φ_j(H))·s_j = {v} < rank(H) = {}",
                    c.lhs
                )),
            ),
            None => ctx.fail("lp.primal", at(format!("overflow in rank constraint {i}"))),
        }
    }

    // Dual certificate: u, v ≥ 0; Σ_i u_i·R_ij − v_j ≤ c_j per column
    // (c_j = 1 for main homs, 0 for the sd hom); strong duality
    // Σ_i u_i·rank(H_i) − Σ_j v_j = σ.
    let mut u = Vec::with_capacity(sc.rank_duals.len());
    for (i, d) in sc.rank_duals.iter().enumerate() {
        let Some(v) = parse_rat("lp.dual", &at(format!("rank dual {i}")), d, ctx) else {
            return;
        };
        if v.is_negative() {
            ctx.fail("lp.dual", at(format!("rank dual {i} = {v} is negative")));
        }
        u.push(v);
    }
    let mut v = Vec::with_capacity(nh);
    for (j, d) in sc.cap_duals.iter().enumerate() {
        let Some(val) = parse_rat("lp.dual", &at(format!("cap dual {j}")), d, ctx) else {
            return;
        };
        if val.is_negative() {
            ctx.fail("lp.dual", at(format!("cap dual {j} = {val} is negative")));
        }
        v.push(val);
    }
    for j in 0..nh {
        let col = sum(sc.constraints.iter().zip(&u).map(|(c, &ui)| {
            Rat::from_int(c.image_ranks[j] as i128)
                .mul(ui)
                .unwrap_or(Rat::ZERO)
        }))
        .and_then(|t| t.sub(v[j]));
        let cap = if main[j] { Rat::ONE } else { Rat::ZERO };
        match col {
            Some(t) if t <= cap => {}
            Some(t) => ctx.fail(
                "lp.dual",
                at(format!(
                    "dual constraint violated at hom `{}`: Σ u_i·R_ij − v_j = {t} > {cap}",
                    sc.homs[j].name
                )),
            ),
            None => ctx.fail("lp.dual", at(format!("overflow in dual column {j}"))),
        }
    }
    let dual_obj = sum(sc
        .constraints
        .iter()
        .zip(&u)
        .map(|(c, &ui)| Rat::from_int(c.lhs as i128).mul(ui).unwrap_or(Rat::ZERO)))
    .and_then(|t| sum(v.iter().copied()).and_then(|vs| t.sub(vs)));
    match dual_obj {
        Some(obj) if obj == sigma => {}
        Some(obj) => ctx.fail(
            "lp.dual",
            at(format!(
                "strong duality fails: dual objective {obj} != sigma {sigma}"
            )),
        ),
        None => ctx.fail("lp.dual", at("overflow in the dual objective".into())),
    }
}

fn env_of(assignment: &[(String, f64)]) -> HashMap<String, f64> {
    assignment.iter().cloned().collect()
}

/// `bounds.samples`: the recorded evidence grid matches an independent
/// re-evaluation of both bounds, and `LB ≤ UB` holds on it.
fn check_samples(cert: &CertificateData, lb: Option<&AExpr>, ub: Option<&AExpr>, ctx: &mut Ctx) {
    if cert.ub.is_some() && cert.samples.is_empty() {
        ctx.note("upper bound present but no sample evidence recorded");
    }
    for (i, sample) in cert.samples.iter().enumerate() {
        let env = env_of(&sample.assignment);
        let at: Vec<String> = sample
            .assignment
            .iter()
            .map(|(n, v)| format!("{n}={v}"))
            .collect();
        let at = at.join(", ");
        if !ordered(sample.lb, sample.ub) {
            ctx.fail(
                "bounds.samples",
                format!(
                    "sample {i}: LB = {:.4e} exceeds UB = {:.4e} at {at}",
                    sample.lb, sample.ub
                ),
            );
        }
        if let Some(lb) = lb {
            match lb.eval(&env) {
                Ok(v) if close(v, sample.lb) => {}
                Ok(v) => ctx.fail(
                    "bounds.samples",
                    format!(
                        "sample {i}: recorded lb {:.6e} but LB({at}) re-evaluates to {v:.6e}",
                        sample.lb
                    ),
                ),
                Err(e) => ctx.fail(
                    "bounds.samples",
                    format!("sample {i}: LB does not evaluate at {at}: {e}"),
                ),
            }
        }
        if let Some(ub) = ub {
            match ub.eval(&env) {
                Ok(v) if close(v, sample.ub) => {}
                Ok(v) => ctx.fail(
                    "bounds.samples",
                    format!(
                        "sample {i}: recorded ub {:.6e} but UB({at}) re-evaluates to {v:.6e}",
                        sample.ub
                    ),
                ),
                Err(e) => ctx.fail(
                    "bounds.samples",
                    format!("sample {i}: UB does not evaluate at {at}: {e}"),
                ),
            }
        }
    }
}

/// `bounds.poly_growth`: `LB ≤ UB` on an independent doubling sweep —
/// a finite recorded grid can be fooled by constants; growth cannot.
fn check_growth(lb: Option<&AExpr>, ub: Option<&AExpr>, ctx: &mut Ctx) {
    let (Some(lb), Some(ub)) = (lb, ub) else {
        return;
    };
    let mut syms = lb.free_symbols();
    syms.extend(ub.free_symbols());
    for n in [512.0, 1024.0, 2048.0, 4096.0, 8192.0] {
        let env: HashMap<String, f64> = syms
            .iter()
            .map(|s| (s.clone(), if s == "S" { 256.0 } else { n }))
            .collect();
        let (Ok(l), Ok(u)) = (lb.eval(&env), ub.eval(&env)) else {
            ctx.note(format!(
                "growth sweep skipped at n={n}: bound does not evaluate"
            ));
            return;
        };
        if !ordered(l, u) {
            ctx.fail(
                "bounds.poly_growth",
                format!("LB = {l:.4e} exceeds UB = {u:.4e} at every size = {n}, S = 256"),
            );
            return;
        }
    }
}

/// The evaluation environment at the row's concrete sizes: size symbols
/// bound per dimension, plus the cache symbol `S`.
fn row_env(cert: &CertificateData, kernel: &Kernel) -> Option<HashMap<String, f64>> {
    let cache = cert.cache_elems?;
    let mut env = HashMap::new();
    for d in kernel.dims() {
        let (_, v) = cert.sizes.iter().find(|(name, _)| *name == d.name)?;
        env.insert(d.size.name().to_string(), *v as f64);
    }
    env.insert("S".to_string(), cache);
    Some(env)
}

/// `bounds.row`: the row's numeric `lb` is exactly the certified bound
/// evaluated at the row's sizes, and `lb ≤ ub`.
fn check_row(
    cert: &CertificateData,
    kernel: Option<&Kernel>,
    lb_expr: Option<&AExpr>,
    ctx: &mut Ctx,
) {
    if let (Some(lb), Some(ub)) = (cert.row_lb, cert.row_ub) {
        if !ordered(lb, ub) {
            ctx.fail(
                "bounds.row",
                format!("row lb = {lb:.4e} exceeds row ub = {ub:.4e}"),
            );
        }
    }
    let (Some(row_lb), Some(lb_expr)) = (cert.row_lb, lb_expr) else {
        return;
    };
    let Some(env) = kernel.and_then(|k| row_env(cert, k)) else {
        ctx.note("row lb cross-check skipped: no kernel/sizes/cache to evaluate at");
        return;
    };
    match lb_expr.eval(&env) {
        Ok(v) if close(v, row_lb) => {}
        Ok(v) => ctx.fail(
            "bounds.row",
            format!("row lb = {row_lb:.6e} but LB at the row's sizes re-evaluates to {v:.6e}"),
        ),
        Err(e) => ctx.fail(
            "bounds.row",
            format!("LB does not evaluate at the row's sizes: {e}"),
        ),
    }
}

/// `tiles.*`: the witness is a real schedule (permutation, levels, tile
/// ranges), its footprint fits the cache for separable-unit accesses,
/// and its predicted I/O is the row's `ub`.
fn check_tiles(cert: &CertificateData, kernel: Option<&Kernel>, ctx: &mut Ctx) {
    let Some(w) = &cert.tiles else {
        return;
    };
    if let Some(ub) = cert.row_ub {
        if !close(w.io, ub) {
            ctx.fail(
                "tiles.io",
                format!(
                    "witness io = {:.6e} but the row reports ub = {ub:.6e}",
                    w.io
                ),
            );
        }
    }
    let Some(kernel) = kernel else {
        ctx.note("tile witness present but no kernel DSL: legality/capacity skipped");
        return;
    };
    let ndims = kernel.dims().len();

    // Legality: perm is a permutation of 0..ndims.
    let mut seen = vec![false; ndims];
    let mut perm_ok = w.perm.len() == ndims;
    for &p in &w.perm {
        match usize::try_from(p).ok().filter(|&p| p < ndims) {
            Some(p) if !seen[p] => seen[p] = true,
            _ => perm_ok = false,
        }
    }
    if !perm_ok {
        ctx.fail(
            "tiles.legality",
            format!("perm {:?} is not a permutation of 0..{ndims}", w.perm),
        );
        return;
    }
    // Levels: one per array, each within 1..=ndims.
    let arrays: Vec<&str> = kernel.arrays().map(|a| a.name.as_str()).collect();
    for name in &arrays {
        match w.levels.iter().find(|(n, _)| n == name) {
            Some((_, l)) if *l >= 1 && *l <= ndims as i64 => {}
            Some((_, l)) => ctx.fail(
                "tiles.legality",
                format!("array `{name}` has reuse level {l}, outside 1..={ndims}"),
            ),
            None => ctx.fail(
                "tiles.legality",
                format!("no reuse level recorded for array `{name}`"),
            ),
        }
    }
    // Tiles: every dimension tiled within its extent.
    let mut tile = HashMap::new();
    let mut extent = HashMap::new();
    for d in kernel.dims() {
        let n = cert
            .sizes
            .iter()
            .find(|(name, _)| *name == d.name)
            .map(|(_, v)| *v);
        let t = w
            .tiles
            .iter()
            .find(|(name, _)| *name == d.name)
            .map(|(_, v)| *v);
        match (t, n) {
            (Some(t), Some(n)) if t >= 1 && t <= n => {
                tile.insert(d.name.clone(), t);
                extent.insert(d.name.clone(), n);
            }
            (Some(t), n) => ctx.fail(
                "tiles.legality",
                format!(
                    "tile {t} for dimension `{}` is outside 1..={}",
                    d.name,
                    n.map_or("?".to_string(), |n| n.to_string())
                ),
            ),
            (None, _) => ctx.fail(
                "tiles.legality",
                format!("no tile recorded for dimension `{}`", d.name),
            ),
        }
    }
    if tile.len() != ndims {
        return; // legality already failed; capacity would cascade
    }
    let Some(cache) = cert.cache_elems else {
        ctx.note("tile witness present but no cache size: capacity check skipped");
        return;
    };

    // Capacity: Σ_A footprint(A, level_A) ≤ S. A dimension keeps its
    // tile extent at levels it is tiled for (level_of(d) = ndims − its
    // position in the outermost-first perm ≥ the array's reuse level)
    // and its full extent otherwise. The product-of-range-widths
    // footprint is exact for separable unit accesses; anything else is
    // skipped visibly.
    let level_of: HashMap<usize, usize> = w
        .perm
        .iter()
        .enumerate()
        .map(|(pos, &d)| (d as usize, ndims - pos))
        .collect();
    let mut total = 0.0f64;
    for array in kernel.arrays() {
        let level = w
            .levels
            .iter()
            .find(|(n, _)| *n == array.name)
            .map(|(_, l)| *l)
            .unwrap_or(1);
        if !array.access.is_separable_unit() {
            ctx.note(format!(
                "capacity check skipped for array `{}`: access is not separable-unit",
                array.name
            ));
            continue;
        }
        let mut footprint = 1.0f64;
        for form in array.access.dims() {
            let mut width = 1.0f64;
            for &(d, c) in form.terms() {
                let name = &kernel.dims()[d].name;
                let e = if level_of[&d] as i64 >= level {
                    tile[name]
                } else {
                    extent[name]
                };
                width += c.unsigned_abs() as f64 * (e - 1) as f64;
            }
            footprint *= width;
        }
        total += footprint;
    }
    if total > cache * (1.0 + 1e-9) {
        ctx.fail(
            "tiles.capacity",
            format!("witness footprint {total:.1} elements exceeds the cache ({cache:.1})"),
        );
    }
}

/// `pebble.tiny`: on a tiny concrete instance the certified LB must not
/// beat the exhaustive red-white pebble optimum from `ioopt-cdag` —
/// soundness against ground truth, independent of every closed form.
fn check_pebble(kernel: Option<&Kernel>, lb_expr: Option<&AExpr>, ctx: &mut Ctx) {
    let (Some(kernel), Some(lb_expr)) = (kernel, lb_expr) else {
        return;
    };
    let ndims = kernel.dims().len();
    let narrays = kernel.inputs().len() + 1;
    // Conservative node estimate: one compute per domain point plus one
    // cell per array access; skip when the enumeration would blow up.
    let domain = 2u64.pow(ndims.min(16) as u32);
    if domain * (narrays as u64 + 1) > 256 {
        ctx.note(format!(
            "pebble check skipped: tiny instance still too large ({ndims} dims, {narrays} arrays)"
        ));
        return;
    }
    let sizes: HashMap<String, i64> = kernel.dims().iter().map(|d| (d.name.clone(), 2)).collect();
    let mut env: HashMap<String, f64> = kernel
        .dims()
        .iter()
        .map(|d| (d.size.name().to_string(), 2.0))
        .collect();
    let verdict = catch_unwind(AssertUnwindSafe(|| {
        let cdag = build_cdag(kernel, &sizes, 4096);
        if cdag.len() > 64 {
            // The exhaustive oracle is a bitset enumeration over node
            // subsets; past 64 nodes it asserts rather than thrash.
            return Err(format!(
                "tiny CDAG has {} nodes (oracle limit is 64)",
                cdag.len()
            ));
        }
        for s in [4usize, 6, 8] {
            let Some(optimal) = optimal_loads(&cdag, s, 1_000_000) else {
                continue;
            };
            env.insert("S".to_string(), s as f64);
            let Ok(lb) = lb_expr.eval(&env) else {
                return Err("LB does not evaluate at the tiny instance".to_string());
            };
            if lb > optimal as f64 + 1e-9 {
                return Ok(Some((s, lb, optimal)));
            }
            return Ok(None);
        }
        Err("no cache size admits exhaustive pebbling".to_string())
    }));
    match verdict {
        Ok(Ok(None)) => {}
        Ok(Ok(Some((s, lb, optimal)))) => ctx.fail(
            "pebble.tiny",
            format!(
                "LB = {lb:.4} exceeds the exhaustive pebble optimum {optimal} \
                 (all dims = 2, S = {s})"
            ),
        ),
        Ok(Err(reason)) => ctx.note(format!("pebble check skipped: {reason}")),
        Err(_) => ctx.note("pebble check skipped: CDAG construction panicked".to_string()),
    }
}
