//! A small independent parser/evaluator for the expression rendering
//! `ioopt` bound certificates carry (`2*A*B*C/(S + 1)^(1/2)`,
//! `max(N*M, 3)` …).
//!
//! The grammar is the one `ioopt_symbolic`'s `Display` emits — additive
//! chains over multiplicative chains, `^` for powers (fractional
//! exponents parenthesized, as in `^(1/2)`), unary minus, and variadic
//! `max(…)`/`min(…)` — but the implementation shares no code with it:
//! the audit re-reads the rendered bound with its own eyes.

use std::collections::{BTreeSet, HashMap};

/// A parsed bound expression.
#[derive(Debug, Clone, PartialEq)]
pub enum AExpr {
    /// An integer literal.
    Num(f64),
    /// A free symbol (size parameter or the cache symbol `S`).
    Sym(String),
    /// `a + b`.
    Add(Box<AExpr>, Box<AExpr>),
    /// `a - b`.
    Sub(Box<AExpr>, Box<AExpr>),
    /// `a * b`.
    Mul(Box<AExpr>, Box<AExpr>),
    /// `a / b`.
    Div(Box<AExpr>, Box<AExpr>),
    /// `a ^ b`.
    Pow(Box<AExpr>, Box<AExpr>),
    /// `-a`.
    Neg(Box<AExpr>),
    /// `max(a, b, …)`.
    Max(Vec<AExpr>),
    /// `min(a, b, …)` (conv upper bounds pick the tightest template).
    Min(Vec<AExpr>),
}

impl AExpr {
    /// Parses the certificate rendering of a bound expression.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the offending byte offset.
    pub fn parse(src: &str) -> Result<AExpr, String> {
        let mut p = Parser {
            src: src.as_bytes(),
            pos: 0,
        };
        let e = p.expr()?;
        p.skip_ws();
        if p.pos != p.src.len() {
            return Err(format!("trailing input at byte {} of `{src}`", p.pos));
        }
        Ok(e)
    }

    /// Evaluates under `env` (symbol name → value).
    ///
    /// # Errors
    ///
    /// Unbound symbols and non-finite intermediate values (division by
    /// zero, fractional powers of negatives).
    pub fn eval(&self, env: &HashMap<String, f64>) -> Result<f64, String> {
        let v = match self {
            AExpr::Num(n) => *n,
            AExpr::Sym(name) => *env
                .get(name)
                .ok_or_else(|| format!("unbound symbol `{name}`"))?,
            AExpr::Add(a, b) => a.eval(env)? + b.eval(env)?,
            AExpr::Sub(a, b) => a.eval(env)? - b.eval(env)?,
            AExpr::Mul(a, b) => a.eval(env)? * b.eval(env)?,
            AExpr::Div(a, b) => a.eval(env)? / b.eval(env)?,
            AExpr::Pow(a, b) => a.eval(env)?.powf(b.eval(env)?),
            AExpr::Neg(a) => -a.eval(env)?,
            AExpr::Max(items) => {
                let mut best = f64::NEG_INFINITY;
                for item in items {
                    best = best.max(item.eval(env)?);
                }
                best
            }
            AExpr::Min(items) => {
                let mut best = f64::INFINITY;
                for item in items {
                    best = best.min(item.eval(env)?);
                }
                best
            }
        };
        if v.is_finite() {
            Ok(v)
        } else {
            Err(format!("non-finite value {v}"))
        }
    }

    /// Every free symbol, sorted.
    pub fn free_symbols(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.collect_symbols(&mut out);
        out
    }

    fn collect_symbols(&self, out: &mut BTreeSet<String>) {
        match self {
            AExpr::Num(_) => {}
            AExpr::Sym(name) => {
                out.insert(name.clone());
            }
            AExpr::Add(a, b)
            | AExpr::Sub(a, b)
            | AExpr::Mul(a, b)
            | AExpr::Div(a, b)
            | AExpr::Pow(a, b) => {
                a.collect_symbols(out);
                b.collect_symbols(out);
            }
            AExpr::Neg(a) => a.collect_symbols(out),
            AExpr::Max(items) | AExpr::Min(items) => {
                for item in items {
                    item.collect_symbols(out);
                }
            }
        }
    }
}

/// Recursive descent over the rendering grammar:
/// `expr := term (('+'|'-') term)*`, `term := factor (('*'|'/') factor)*`,
/// `factor := '-' factor | power`, `power := atom ('^' atom)?`,
/// `atom := number | ident | ('max'|'min') '(' expr (',' expr)* ')'
///        | '(' expr ')'`.
struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.src.get(self.pos).is_some_and(u8::is_ascii_whitespace) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.src.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        match self.bump() {
            Some(b) if b == want => Ok(()),
            got => Err(format!(
                "expected `{}` at byte {}, got {:?}",
                want as char,
                self.pos,
                got.map(|b| b as char)
            )),
        }
    }

    fn expr(&mut self) -> Result<AExpr, String> {
        let mut lhs = self.term()?;
        while let Some(op @ (b'+' | b'-')) = self.peek() {
            self.pos += 1;
            let rhs = self.term()?;
            lhs = if op == b'+' {
                AExpr::Add(Box::new(lhs), Box::new(rhs))
            } else {
                AExpr::Sub(Box::new(lhs), Box::new(rhs))
            };
        }
        Ok(lhs)
    }

    fn term(&mut self) -> Result<AExpr, String> {
        let mut lhs = self.factor()?;
        while let Some(op @ (b'*' | b'/')) = self.peek() {
            self.pos += 1;
            let rhs = self.factor()?;
            lhs = if op == b'*' {
                AExpr::Mul(Box::new(lhs), Box::new(rhs))
            } else {
                AExpr::Div(Box::new(lhs), Box::new(rhs))
            };
        }
        Ok(lhs)
    }

    fn factor(&mut self) -> Result<AExpr, String> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
            return Ok(AExpr::Neg(Box::new(self.factor()?)));
        }
        self.power()
    }

    fn power(&mut self) -> Result<AExpr, String> {
        let base = self.atom()?;
        if self.peek() == Some(b'^') {
            self.pos += 1;
            let exp = self.atom()?;
            return Ok(AExpr::Pow(Box::new(base), Box::new(exp)));
        }
        Ok(base)
    }

    fn atom(&mut self) -> Result<AExpr, String> {
        match self.peek() {
            Some(b'(') => {
                self.pos += 1;
                let e = self.expr()?;
                self.expect(b')')?;
                Ok(e)
            }
            Some(b) if b.is_ascii_digit() => self.number(),
            Some(b) if b.is_ascii_alphabetic() || b == b'_' => {
                let name = self.ident();
                if (name == "max" || name == "min") && self.peek() == Some(b'(') {
                    self.pos += 1;
                    let mut items = vec![self.expr()?];
                    while self.peek() == Some(b',') {
                        self.pos += 1;
                        items.push(self.expr()?);
                    }
                    self.expect(b')')?;
                    return Ok(if name == "max" {
                        AExpr::Max(items)
                    } else {
                        AExpr::Min(items)
                    });
                }
                Ok(AExpr::Sym(name))
            }
            got => Err(format!(
                "expected a number, symbol or `(` at byte {}, got {:?}",
                self.pos,
                got.map(|b| b as char)
            )),
        }
    }

    fn number(&mut self) -> Result<AExpr, String> {
        self.skip_ws();
        let start = self.pos;
        while self
            .src
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || *b == b'.')
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(AExpr::Num)
            .map_err(|e| format!("bad number `{text}` at byte {start}: {e}"))
    }

    fn ident(&mut self) -> String {
        self.skip_ws();
        let start = self.pos;
        while self
            .src
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_alphanumeric() || *b == b'_')
        {
            self.pos += 1;
        }
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval(src: &str, env: &[(&str, f64)]) -> f64 {
        let e = AExpr::parse(src).unwrap_or_else(|err| panic!("{src}: {err}"));
        let env: HashMap<String, f64> = env.iter().map(|(k, v)| (k.to_string(), *v)).collect();
        e.eval(&env).unwrap_or_else(|err| panic!("{src}: {err}"))
    }

    #[test]
    fn corpus_shapes_parse_and_evaluate() {
        // Shapes taken from real rendered bounds across the workspace.
        assert_eq!(eval("a - b + 1", &[("a", 5.0), ("b", 2.0)]), 4.0);
        assert_eq!(eval("-a - 2", &[("a", 3.0)]), -5.0);
        let v = eval("2*A*B/S^(1/2)", &[("A", 4.0), ("B", 3.0), ("S", 16.0)]);
        assert!((v - 6.0).abs() < 1e-12);
        assert_eq!(eval("a/(b*c)", &[("a", 12.0), ("b", 2.0), ("c", 3.0)]), 2.0);
        let v = eval("(S + 1)^(1/2)", &[("S", 24.0)]);
        assert!((v - 5.0).abs() < 1e-12);
        assert_eq!(eval("x^2", &[("x", 7.0)]), 49.0);
        let v = eval("2*N/((S + 1)^(1/2) - 1)", &[("N", 8.0), ("S", 24.0)]);
        assert!((v - 4.0).abs() < 1e-12);
        assert_eq!(eval("max(a, b + 1, 10)", &[("a", 3.0), ("b", 1.0)]), 10.0);
        assert_eq!(eval("min(a, b + 1, 10)", &[("a", 3.0), ("b", 1.0)]), 2.0);
        // A conv-style bound: a quotient of a product by a min of roots.
        let v = eval("B*C/min(S, S^(1/2))", &[("B", 6.0), ("C", 2.0), ("S", 4.0)]);
        assert!((v - 6.0).abs() < 1e-12);
        assert_eq!(eval("1/x", &[("x", 4.0)]), 0.25);
        assert_eq!(eval("a/3", &[("a", 9.0)]), 3.0);
    }

    #[test]
    fn precedence_matches_the_renderer() {
        // `2*N^2` is 2·(N²), not (2N)²; `a - b + c` associates left.
        assert_eq!(eval("2*N^2", &[("N", 3.0)]), 18.0);
        assert_eq!(
            eval("a - b + c", &[("a", 1.0), ("b", 2.0), ("c", 3.0)]),
            2.0
        );
        assert_eq!(eval("-x^2", &[("x", 3.0)]), -9.0);
    }

    #[test]
    fn errors_are_structured_not_panics() {
        assert!(AExpr::parse("2 +").is_err());
        assert!(AExpr::parse("max(a").is_err());
        assert!(AExpr::parse("a b").is_err());
        assert!(AExpr::parse("").is_err());
        let e = AExpr::parse("N*Q").unwrap();
        let env: HashMap<String, f64> = [("N".to_string(), 2.0)].into();
        assert!(e.eval(&env).unwrap_err().contains("unbound symbol `Q`"));
        let div = AExpr::parse("1/x").unwrap();
        let env: HashMap<String, f64> = [("x".to_string(), 0.0)].into();
        assert!(div.eval(&env).is_err(), "division by zero is an error");
    }

    #[test]
    fn free_symbols_are_collected() {
        let e = AExpr::parse("max(2*A*B/S^(1/2), A + C)").unwrap();
        let syms: Vec<String> = e.free_symbols().into_iter().collect();
        assert_eq!(syms, ["A", "B", "C", "S"]);
    }
}
