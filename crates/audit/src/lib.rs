//! # ioopt-audit
//!
//! An **independent** offline checker for the proof-carrying bound
//! certificates `ioopt batch --certify` exports (DESIGN.md §11).
//!
//! The pipeline crates (`ioopt-iolb`, `ioopt-ioub`, `ioopt-tileopt`,
//! `ioopt-lp`) *produce* bounds; this crate re-checks them from the
//! certificate alone, sharing no code with the producers: its own exact
//! rational arithmetic ([`rat`]-internal), its own expression parser for
//! the rendered bounds, and plain arithmetic over the exported witness
//! data. The only workspace dependencies are the kernel vocabulary
//! (`ioopt-ir`/`ioopt-polyhedra` — inputs to the pipeline, not
//! derivations) and the concrete pebble-game oracle (`ioopt-cdag`).
//!
//! What each check proves:
//!
//! | check | claim re-verified |
//! |---|---|
//! | `schema` | certificate version is understood |
//! | `kernel` | the embedded DSL parses, is tilable, sizes cover dims |
//! | `lp.primal` | the exported `s` is feasible and `σ = Σ s_j` |
//! | `lp.dual` | the dual vector proves `σ` is *optimal* (feasibility + strong duality) |
//! | `bounds.expr` | the rendered bounds re-parse |
//! | `bounds.samples` | recorded grid evidence matches re-evaluation; `LB ≤ UB` on it |
//! | `bounds.row` | the row's numeric `lb` is the bound at the row's sizes; `lb ≤ ub` |
//! | `bounds.poly_growth` | `LB ≤ UB` on an independent doubling sweep |
//! | `tiles.legality` | the tile witness is a real schedule (perm/levels/tile ranges) |
//! | `tiles.capacity` | the witness footprint fits the cache (separable-unit accesses) |
//! | `tiles.io` | the witness I/O equals the row's `ub` |
//! | `pebble.tiny` | on a tiny instance, `LB` never beats exhaustive pebbling |
//!
//! Trust boundary: the duals certify the LP *optimum* `σ` only; that the
//! closed-form bound was correctly assembled from `σ` is cross-checked
//! behaviorally (samples, growth, pebbling) rather than re-derived.

#![warn(missing_docs)]

mod checks;
mod expr;
mod rat;

pub use expr::AExpr;
pub use rat::Rat;

/// One rejected check: which check failed and a pinpointed reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditFinding {
    /// The check name (`lp.dual`, `tiles.capacity`, …).
    pub check: String,
    /// What exactly was violated.
    pub message: String,
}

impl std::fmt::Display for AuditFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.check, self.message)
    }
}

/// The audit verdict for one certified report row.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditRowResult {
    /// The row's kernel label.
    pub kernel: String,
    /// Violated checks; empty means the certificate is accepted.
    pub findings: Vec<AuditFinding>,
    /// Checks that were skipped (and why) — skipping is visible, never
    /// silent.
    pub notes: Vec<String>,
}

impl AuditRowResult {
    /// Whether every applicable check passed.
    pub fn accepted(&self) -> bool {
        self.findings.is_empty()
    }
}

/// One homomorphism row of an LP certificate.
#[derive(Debug, Clone, PartialEq)]
pub struct HomData {
    /// Display name (array name or `sd`).
    pub name: String,
    /// `"input"`, `"output"`, or `"sd"`.
    pub kind: String,
    /// The exported `s_j`, rendered `"p/q"`.
    pub s: String,
}

/// One rank constraint `Σ_j rank(φ_j(H))·s_j ≥ rank(H)`.
#[derive(Debug, Clone, PartialEq)]
pub struct ConstraintData {
    /// `rank(H)`.
    pub lhs: i64,
    /// `rank(φ_j(H))`, aligned with the homs.
    pub image_ranks: Vec<i64>,
}

/// The LP certificate of one scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioCertData {
    /// Indices of the dimensions the scenario treats as small.
    pub small_dims: Vec<i64>,
    /// The certified optimum `σ`, rendered `"p/q"`.
    pub sigma: String,
    /// The small-dimension coefficient, rendered `"p/q"`.
    pub s_sd: String,
    /// The homomorphisms with their exported `s_j`.
    pub homs: Vec<HomData>,
    /// The rank constraints.
    pub constraints: Vec<ConstraintData>,
    /// Dual multipliers of the rank rows, rendered `"p/q"`.
    pub rank_duals: Vec<String>,
    /// Dual multipliers of the cap rows `s_j ≤ 1`, rendered `"p/q"`.
    pub cap_duals: Vec<String>,
}

/// The lower-bound block of a certificate.
#[derive(Debug, Clone, PartialEq)]
pub struct LbCertData {
    /// The trivial bound (rendered expression).
    pub trivial: String,
    /// The combined bound `LB(S)` (rendered expression).
    pub combined: String,
    /// Per-scenario LP certificates.
    pub scenarios: Vec<ScenarioCertData>,
}

/// The closed-form upper-bound block.
#[derive(Debug, Clone, PartialEq)]
pub struct UbCertData {
    /// The rendered bound `UB(S)`.
    pub bound: String,
    /// `"tc"` (Fig. 6 tensor contraction) or `"conv"` (semi-symbolic).
    pub source: String,
}

/// The tile-feasibility witness of the numeric upper bound.
#[derive(Debug, Clone, PartialEq)]
pub struct TileWitness {
    /// Inter-tile permutation (dimension indices, outermost first).
    pub perm: Vec<i64>,
    /// Reuse level per array `(array name, level)`.
    pub levels: Vec<(String, i64)>,
    /// Integer tile size per dimension `(dim name, T)`.
    pub tiles: Vec<(String, i64)>,
    /// Predicted I/O at those tiles (the row's numeric `ub`).
    pub io: f64,
}

/// One recorded sample of the `LB ≤ UB` evidence grid.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleData {
    /// The assignment `(symbol name, value)`.
    pub assignment: Vec<(String, f64)>,
    /// Recorded lower-bound value.
    pub lb: f64,
    /// Recorded upper-bound value.
    pub ub: f64,
}

/// A fully decoded certificate for one report row — the audit's entire
/// input (plus the row's own `lb`/`ub` numbers for cross-checking).
#[derive(Debug, Clone, PartialEq)]
pub struct CertificateData {
    /// Certificate schema version (this crate understands `1`).
    pub version: i64,
    /// The row's kernel label.
    pub kernel_name: String,
    /// The kernel re-rendered as DSL source, when renderable.
    pub kernel_dsl: Option<String>,
    /// Concrete sizes `(dim name, trip count)` for numeric rows.
    pub sizes: Vec<(String, i64)>,
    /// The cache capacity `S` the analysis ran at.
    pub cache_elems: Option<f64>,
    /// The row's numeric lower bound, when the numeric pipeline ran.
    pub row_lb: Option<f64>,
    /// The row's numeric upper bound, when the numeric pipeline ran.
    pub row_ub: Option<f64>,
    /// The lower-bound block.
    pub lb: LbCertData,
    /// The closed-form upper bound, when one derived.
    pub ub: Option<UbCertData>,
    /// The tile witness, when the numeric pipeline ran.
    pub tiles: Option<TileWitness>,
    /// The recorded evidence grid (present when a closed-form UB is).
    pub samples: Vec<SampleData>,
}

/// Statically re-checks one certificate. Never panics: malformed or
/// adversarial input becomes findings with pinpointed reasons.
pub fn audit_certificate(cert: &CertificateData) -> AuditRowResult {
    checks::run(cert)
}
