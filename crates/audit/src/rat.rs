//! Exact rational arithmetic for the certificate checker.
//!
//! Deliberately *not* `ioopt_symbolic::Rational`: the whole point of the
//! audit is that its arithmetic is independent of the code that produced
//! the certificate. Operations are checked — adversarial certificates
//! must surface as findings, never as panics — so every combinator
//! returns `Option` and the checks treat `None` as an overflow finding.

/// A reduced rational `num/den` with `den > 0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rat {
    num: i128,
    den: i128,
}

fn gcd(mut a: i128, mut b: i128) -> i128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a.abs().max(1)
}

// The arithmetic names mirror `std::ops`, but the std traits cannot
// express checked arithmetic (`Option` results) without panicking on
// overflow — exactly what an adversarial certificate must never cause.
#[allow(clippy::should_implement_trait)]
impl Rat {
    /// `0/1`.
    pub const ZERO: Rat = Rat { num: 0, den: 1 };
    /// `1/1`.
    pub const ONE: Rat = Rat { num: 1, den: 1 };

    /// Creates `num/den` in lowest terms; `None` when `den == 0`.
    pub fn new(num: i128, den: i128) -> Option<Rat> {
        if den == 0 {
            return None;
        }
        let sign = if den < 0 { -1 } else { 1 };
        let g = gcd(num, den);
        Some(Rat {
            num: sign * (num / g),
            den: (den / g).abs(),
        })
    }

    /// The integer `n`.
    pub fn from_int(n: i128) -> Rat {
        Rat { num: n, den: 1 }
    }

    /// Parses `"p/q"` or `"n"` (optionally signed, surrounding
    /// whitespace ignored) — the rendering `ioopt` certificates use.
    pub fn parse(s: &str) -> Option<Rat> {
        let s = s.trim();
        match s.split_once('/') {
            Some((p, q)) => {
                let num: i128 = p.trim().parse().ok()?;
                let den: i128 = q.trim().parse().ok()?;
                Rat::new(num, den)
            }
            None => s.parse::<i128>().ok().map(Rat::from_int),
        }
    }

    /// Checked addition.
    pub fn add(self, o: Rat) -> Option<Rat> {
        let num = self
            .num
            .checked_mul(o.den)?
            .checked_add(o.num.checked_mul(self.den)?)?;
        Rat::new(num, self.den.checked_mul(o.den)?)
    }

    /// Checked subtraction.
    pub fn sub(self, o: Rat) -> Option<Rat> {
        self.add(o.neg())
    }

    /// Checked multiplication.
    pub fn mul(self, o: Rat) -> Option<Rat> {
        // Cross-reduce first so products of many small factors stay small.
        let g1 = gcd(self.num, o.den);
        let g2 = gcd(o.num, self.den);
        Rat::new(
            (self.num / g1).checked_mul(o.num / g2)?,
            (self.den / g2).checked_mul(o.den / g1)?,
        )
    }

    /// Negation (always exact: `den > 0` and `i128::MIN` never survives
    /// reduction from parse-sized inputs).
    pub fn neg(self) -> Rat {
        Rat {
            num: -self.num,
            den: self.den,
        }
    }

    /// `self < 0`.
    pub fn is_negative(self) -> bool {
        self.num < 0
    }

    /// Nearest `f64` (diagnostic rendering only; checks stay exact).
    pub fn to_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Exact comparison; falls back to `f64` if the cross product
    /// overflows (practically unreachable for certificate-sized values).
    fn cmp_impl(self, o: Rat) -> std::cmp::Ordering {
        match (self.num.checked_mul(o.den), o.num.checked_mul(self.den)) {
            (Some(a), Some(b)) => a.cmp(&b),
            _ => self
                .to_f64()
                .partial_cmp(&o.to_f64())
                .unwrap_or(std::cmp::Ordering::Equal),
        }
    }
}

impl PartialOrd for Rat {
    fn partial_cmp(&self, other: &Rat) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rat {
    fn cmp(&self, other: &Rat) -> std::cmp::Ordering {
        self.cmp_impl(*other)
    }
}

impl std::fmt::Display for Rat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

/// Checked sum of a sequence of rationals.
pub fn sum(terms: impl IntoIterator<Item = Rat>) -> Option<Rat> {
    terms.into_iter().try_fold(Rat::ZERO, Rat::add)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_round_trip() {
        for s in ["3/2", "-1/3", "7", "0", "-4"] {
            let r = Rat::parse(s).unwrap();
            assert_eq!(r.to_string(), s);
        }
        assert_eq!(Rat::parse("6/4").unwrap(), Rat::new(3, 2).unwrap());
        assert_eq!(Rat::parse(" 1/2 ").unwrap(), Rat::new(1, 2).unwrap());
        assert!(Rat::parse("1/0").is_none());
        assert!(Rat::parse("x").is_none());
    }

    #[test]
    fn arithmetic_is_exact() {
        let half = Rat::new(1, 2).unwrap();
        let third = Rat::new(1, 3).unwrap();
        assert_eq!(half.add(third).unwrap(), Rat::new(5, 6).unwrap());
        assert_eq!(half.mul(third).unwrap(), Rat::new(1, 6).unwrap());
        assert_eq!(half.sub(half).unwrap(), Rat::ZERO);
        assert!(half.neg().is_negative());
        assert!(third < half);
        assert_eq!(
            sum([half, third, Rat::ONE]).unwrap(),
            Rat::new(11, 6).unwrap()
        );
    }

    #[test]
    fn overflow_is_an_option_not_a_panic() {
        let big = Rat::from_int(i128::MAX);
        assert!(big.mul(big).is_none());
        assert!(big.add(big).is_none());
    }
}
