//! End-to-end audit checks over handcrafted certificates: a consistent
//! matmul-shaped certificate is accepted, and each class of tampering
//! (primal, dual, bound expression, sample evidence, tile witness) is
//! rejected with a finding naming the violated check.

use ioopt_audit::{
    audit_certificate, CertificateData, ConstraintData, HomData, LbCertData, SampleData,
    ScenarioCertData, TileWitness, UbCertData,
};

const MATMUL_DSL: &str =
    "kernel matmul {\n  loop i : Ni;\n  loop j : Nj;\n  loop k : Nk;\n  C[i][j] += A[i][k] * B[k][j];\n}\n";

/// A small, fully consistent certificate: the LP system is
/// `min s_C + s_A + s_B` s.t. `2(s_C + s_A + s_B) >= 3`, `s <= 1`
/// (σ = 3/2, witnessed by the dual `u = 1/2`), with simple polynomial
/// bounds `LB = Ni*Nj`, `UB = 2*Ni*Nj` and a trivially feasible tiling.
fn good_certificate() -> CertificateData {
    CertificateData {
        version: 1,
        kernel_name: "matmul".to_string(),
        kernel_dsl: Some(MATMUL_DSL.to_string()),
        sizes: vec![
            ("i".to_string(), 4),
            ("j".to_string(), 8),
            ("k".to_string(), 3),
        ],
        cache_elems: Some(100.0),
        row_lb: Some(32.0),
        row_ub: Some(64.0),
        lb: LbCertData {
            trivial: "3".to_string(),
            combined: "Ni*Nj".to_string(),
            scenarios: vec![ScenarioCertData {
                small_dims: vec![],
                sigma: "3/2".to_string(),
                s_sd: "0".to_string(),
                homs: vec![
                    HomData {
                        name: "C".to_string(),
                        kind: "output".to_string(),
                        s: "1/2".to_string(),
                    },
                    HomData {
                        name: "A".to_string(),
                        kind: "input".to_string(),
                        s: "1/2".to_string(),
                    },
                    HomData {
                        name: "B".to_string(),
                        kind: "input".to_string(),
                        s: "1/2".to_string(),
                    },
                ],
                constraints: vec![ConstraintData {
                    lhs: 3,
                    image_ranks: vec![2, 2, 2],
                }],
                rank_duals: vec!["1/2".to_string()],
                cap_duals: vec!["0".to_string(), "0".to_string(), "0".to_string()],
            }],
        },
        ub: Some(UbCertData {
            bound: "2*Ni*Nj".to_string(),
            source: "tc".to_string(),
        }),
        tiles: Some(TileWitness {
            perm: vec![0, 1, 2],
            levels: vec![
                ("C".to_string(), 1),
                ("A".to_string(), 1),
                ("B".to_string(), 1),
            ],
            tiles: vec![
                ("i".to_string(), 1),
                ("j".to_string(), 1),
                ("k".to_string(), 1),
            ],
            io: 64.0,
        }),
        samples: vec![
            SampleData {
                assignment: vec![("Ni".to_string(), 4.0), ("Nj".to_string(), 8.0)],
                lb: 32.0,
                ub: 64.0,
            },
            SampleData {
                assignment: vec![("Ni".to_string(), 16.0), ("Nj".to_string(), 2.0)],
                lb: 32.0,
                ub: 64.0,
            },
        ],
    }
}

fn rejected_checks(cert: &CertificateData) -> Vec<String> {
    audit_certificate(cert)
        .findings
        .into_iter()
        .map(|f| f.check)
        .collect()
}

#[test]
fn consistent_certificate_is_accepted() {
    let result = audit_certificate(&good_certificate());
    assert!(result.accepted(), "{:?}", result.findings);
    assert_eq!(result.kernel, "matmul");
}

#[test]
fn tampered_sigma_fails_the_primal_check() {
    let mut cert = good_certificate();
    cert.lb.scenarios[0].sigma = "2".to_string();
    let checks = rejected_checks(&cert);
    assert!(checks.contains(&"lp.primal".to_string()), "{checks:?}");
}

#[test]
fn tampered_primal_violates_a_rank_constraint() {
    let mut cert = good_certificate();
    // Lower every s_j: the cheaper "solution" no longer covers rank 3.
    for h in &mut cert.lb.scenarios[0].homs {
        h.s = "1/4".to_string();
    }
    cert.lb.scenarios[0].sigma = "3/4".to_string();
    let result = audit_certificate(&cert);
    assert!(result
        .findings
        .iter()
        .any(|f| f.check == "lp.primal" && f.message.contains("rank constraint")));
}

#[test]
fn tampered_dual_breaks_strong_duality() {
    let mut cert = good_certificate();
    cert.lb.scenarios[0].rank_duals[0] = "1/3".to_string();
    let result = audit_certificate(&cert);
    assert!(
        result
            .findings
            .iter()
            .any(|f| f.check == "lp.dual" && f.message.contains("strong duality")),
        "{:?}",
        result.findings
    );
}

#[test]
fn negative_dual_is_rejected() {
    let mut cert = good_certificate();
    cert.lb.scenarios[0].cap_duals[0] = "-1".to_string();
    let checks = rejected_checks(&cert);
    assert!(checks.contains(&"lp.dual".to_string()), "{checks:?}");
}

#[test]
fn inverted_bound_expression_is_rejected_by_growth() {
    let mut cert = good_certificate();
    // Swap in a cubic "lower" bound: the recorded samples no longer
    // match AND the doubling sweep inverts.
    cert.lb.combined = "Ni*Nj*Nk".to_string();
    let checks = rejected_checks(&cert);
    assert!(
        checks.contains(&"bounds.poly_growth".to_string()),
        "{checks:?}"
    );
    assert!(checks.contains(&"bounds.samples".to_string()), "{checks:?}");
}

#[test]
fn tampered_sample_evidence_is_rejected() {
    let mut cert = good_certificate();
    cert.samples[0].lb = 1.0;
    let checks = rejected_checks(&cert);
    assert!(checks.contains(&"bounds.samples".to_string()), "{checks:?}");
}

#[test]
fn unparseable_bound_is_rejected() {
    let mut cert = good_certificate();
    cert.lb.combined = "Ni *".to_string();
    let checks = rejected_checks(&cert);
    assert!(checks.contains(&"bounds.expr".to_string()), "{checks:?}");
}

#[test]
fn oversized_tile_witness_fails_capacity() {
    let mut cert = good_certificate();
    let tiles = cert.tiles.as_mut().unwrap();
    // Full-extent tiles: footprints 32 + 12 + 24 = 68 <= 100 still fit;
    // shrink the cache so the same witness overflows it.
    tiles.tiles = vec![
        ("i".to_string(), 4),
        ("j".to_string(), 8),
        ("k".to_string(), 3),
    ];
    cert.cache_elems = Some(16.0);
    // Keep the row lb cross-check silent about the cache change.
    cert.row_lb = None;
    let checks = rejected_checks(&cert);
    assert!(checks.contains(&"tiles.capacity".to_string()), "{checks:?}");
}

#[test]
fn malformed_tile_witness_fails_legality() {
    let mut cert = good_certificate();
    cert.tiles.as_mut().unwrap().perm = vec![0, 0, 2];
    let checks = rejected_checks(&cert);
    assert!(checks.contains(&"tiles.legality".to_string()), "{checks:?}");

    let mut cert = good_certificate();
    cert.tiles.as_mut().unwrap().tiles[0].1 = 99; // tile > extent
    let checks = rejected_checks(&cert);
    assert!(checks.contains(&"tiles.legality".to_string()), "{checks:?}");
}

#[test]
fn witness_io_must_match_the_row_ub() {
    let mut cert = good_certificate();
    cert.tiles.as_mut().unwrap().io = 1.0;
    let checks = rejected_checks(&cert);
    assert!(checks.contains(&"tiles.io".to_string()), "{checks:?}");
}

#[test]
fn row_lb_must_match_the_bound_at_the_row_sizes() {
    let mut cert = good_certificate();
    cert.row_lb = Some(1.0); // LB(Ni=4, Nj=8) is 32, not 1
    let checks = rejected_checks(&cert);
    assert!(checks.contains(&"bounds.row".to_string()), "{checks:?}");
}

#[test]
fn absurd_lower_bound_loses_to_the_pebble_game() {
    let mut cert = good_certificate();
    // A bound claiming ~4M loads on a 2x2x2 instance cannot survive the
    // exhaustive pebbling oracle. Strip everything else that would also
    // trip (samples, row numbers, ub) to isolate the pebble check.
    cert.lb.combined = "Ni*Nj*Nk*S^6".to_string();
    cert.ub = None;
    cert.samples.clear();
    cert.row_lb = None;
    cert.row_ub = None;
    cert.tiles = None;
    let checks = rejected_checks(&cert);
    assert!(checks.contains(&"pebble.tiny".to_string()), "{checks:?}");
}

#[test]
fn unknown_version_is_rejected_up_front() {
    let mut cert = good_certificate();
    cert.version = 2;
    let result = audit_certificate(&cert);
    assert_eq!(result.findings.len(), 1);
    assert_eq!(result.findings[0].check, "schema");
}

#[test]
fn broken_kernel_dsl_is_rejected() {
    let mut cert = good_certificate();
    cert.kernel_dsl = Some("kernel nope {".to_string());
    let checks = rejected_checks(&cert);
    assert!(checks.contains(&"kernel".to_string()), "{checks:?}");
}
