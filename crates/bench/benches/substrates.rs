//! Criterion benches of the substrate crates: cache-simulator
//! throughput, exact LP, pebble game, and symbolic-engine operations.

use std::collections::HashMap;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ioopt::cachesim::{Hierarchy, TiledLoopNest};
use ioopt::cdag::{build_cdag, greedy_loads};
use ioopt::ir::kernels;
use ioopt::lp::{Cmp, Lp};
use ioopt::symbolic::{Expr, Rational};
use std::hint::black_box;

fn bench_cachesim(c: &mut Criterion) {
    let k = kernels::matmul();
    let sizes = HashMap::from([
        ("i".to_string(), 32i64),
        ("j".to_string(), 32),
        ("k".to_string(), 32),
    ]);
    let tiles = HashMap::from([("i".to_string(), 8i64), ("j".to_string(), 8)]);
    let nest = TiledLoopNest::new(&k, &sizes, &[0, 1, 2], &tiles).unwrap();
    let mut g = c.benchmark_group("cachesim");
    g.throughput(Throughput::Elements(nest.num_iterations()));
    g.bench_function("matmul-32x32x32-lru", |b| {
        b.iter(|| {
            let mut h = Hierarchy::new(&[256, 4096], 1);
            black_box(nest.simulate(&mut h))
        })
    });
    g.finish();
}

fn bench_pebble(c: &mut Criterion) {
    let k = kernels::matmul();
    let sizes = HashMap::from([
        ("i".to_string(), 4i64),
        ("j".to_string(), 4),
        ("k".to_string(), 4),
    ]);
    let g_cdag = build_cdag(&k, &sizes, 10_000);
    let order = g_cdag.computes();
    c.bench_function("pebble/greedy-4x4x4", |b| {
        b.iter(|| greedy_loads(black_box(&g_cdag), 8, &order))
    });
}

fn bench_lp(c: &mut Criterion) {
    c.bench_function("lp/brascamp-matmul", |b| {
        b.iter(|| {
            let ri = |n: i128| Rational::from(n);
            let mut lp = Lp::new(3);
            lp.set_objective(vec![ri(1), ri(1), ri(1)]);
            lp.add_constraint(vec![ri(1), ri(0), ri(1)], Cmp::Ge, ri(1));
            lp.add_constraint(vec![ri(1), ri(1), ri(0)], Cmp::Ge, ri(1));
            lp.add_constraint(vec![ri(0), ri(1), ri(1)], Cmp::Ge, ri(1));
            black_box(lp.solve().unwrap())
        })
    });
}

fn bench_symbolic(c: &mut Criterion) {
    let mut g = c.benchmark_group("symbolic");
    g.bench_function("expand-poly", |b| {
        let x = Expr::sym("bx");
        let y = Expr::sym("by");
        let e = Expr::pow(&x + &y + Expr::int(1), Rational::from(6i128));
        b.iter(|| black_box(&e).expand())
    });
    g.bench_function("compile-eval", |b| {
        let e = (Expr::sym("ba") + Expr::int(1)) * Expr::sym("bb").sqrt()
            / (Expr::sym("ba") * Expr::sym("bb") + Expr::int(2));
        let compiled = e
            .compile(
                &[ioopt::symbolic::Symbol::new("ba"), ioopt::symbolic::Symbol::new("bb")],
                &Default::default(),
            )
            .unwrap();
        b.iter(|| black_box(compiled.eval(&[3.0, 4.0])))
    });
    g.finish();
}

criterion_group!(benches, bench_cachesim, bench_pebble, bench_lp, bench_symbolic);
criterion_main!(benches);
