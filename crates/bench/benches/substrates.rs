//! Benches of the substrate crates: cache-simulator throughput, exact
//! LP, pebble game, and symbolic-engine operations.
//!
//! Plain harness-less binaries timed with `std::time::Instant` (no
//! third-party bench framework; offline-safe). Run with
//! `cargo bench -p ioopt-bench`.

use std::collections::HashMap;
use std::hint::black_box;
use std::time::Instant;

use ioopt::cachesim::{Hierarchy, TiledLoopNest};
use ioopt::cdag::{build_cdag, greedy_loads};
use ioopt::ir::kernels;
use ioopt::lp::{Cmp, Lp};
use ioopt::symbolic::{Expr, Rational};

/// Time `f` over `iters` iterations and report mean per-iteration time.
fn bench<T>(group: &str, name: &str, iters: u32, mut f: impl FnMut() -> T) {
    black_box(f());
    let start = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    let per_iter = start.elapsed() / iters;
    println!("{group}/{name}: {per_iter:?} per iter ({iters} iters)");
}

fn bench_cachesim() {
    let k = kernels::matmul();
    let sizes = HashMap::from([
        ("i".to_string(), 32i64),
        ("j".to_string(), 32),
        ("k".to_string(), 32),
    ]);
    let tiles = HashMap::from([("i".to_string(), 8i64), ("j".to_string(), 8)]);
    let nest = TiledLoopNest::new(&k, &sizes, &[0, 1, 2], &tiles).unwrap();
    let elems = nest.num_iterations();
    bench("cachesim", "matmul-32x32x32-lru", 20, || {
        let mut h = Hierarchy::new(&[256, 4096], 1);
        black_box(nest.simulate(&mut h))
    });
    println!("cachesim/matmul-32x32x32-lru: {elems} accesses per iter");
}

fn bench_pebble() {
    let k = kernels::matmul();
    let sizes = HashMap::from([
        ("i".to_string(), 4i64),
        ("j".to_string(), 4),
        ("k".to_string(), 4),
    ]);
    let g_cdag = build_cdag(&k, &sizes, 10_000);
    let order = g_cdag.computes();
    bench("pebble", "greedy-4x4x4", 50, || {
        greedy_loads(black_box(&g_cdag), 8, &order)
    });
}

fn bench_lp() {
    bench("lp", "brascamp-matmul", 200, || {
        let ri = |n: i128| Rational::from(n);
        let mut lp = Lp::new(3);
        lp.set_objective(vec![ri(1), ri(1), ri(1)]);
        lp.add_constraint(vec![ri(1), ri(0), ri(1)], Cmp::Ge, ri(1));
        lp.add_constraint(vec![ri(1), ri(1), ri(0)], Cmp::Ge, ri(1));
        lp.add_constraint(vec![ri(0), ri(1), ri(1)], Cmp::Ge, ri(1));
        black_box(lp.solve().unwrap())
    });
}

fn bench_symbolic() {
    {
        let x = Expr::sym("bx");
        let y = Expr::sym("by");
        let e = Expr::pow(x + y + Expr::int(1), Rational::from(6i128));
        bench("symbolic", "expand-poly", 100, || black_box(&e).expand());
    }
    {
        let e = (Expr::sym("ba") + Expr::int(1)) * Expr::sym("bb").sqrt()
            / (Expr::sym("ba") * Expr::sym("bb") + Expr::int(2));
        let compiled = e
            .compile(
                &[
                    ioopt::symbolic::Symbol::new("ba"),
                    ioopt::symbolic::Symbol::new("bb"),
                ],
                &Default::default(),
            )
            .unwrap();
        bench("symbolic", "compile-eval", 10_000, || {
            black_box(compiled.eval(&[3.0, 4.0]))
        });
    }
}

fn main() {
    bench_cachesim();
    bench_pebble();
    bench_lp();
    bench_symbolic();
}
