//! Benches of the tool itself — the paper's practicality claim
//! (§3.2 footnote: counting and analysis take "usually less than a few
//! seconds" per kernel).
//!
//! Plain harness-less binaries timed with `std::time::Instant`: the
//! workspace carries no third-party bench framework so it builds and
//! runs fully offline. Run with `cargo bench -p ioopt-bench`.

use std::collections::HashMap;
use std::hint::black_box;
use std::time::Instant;

use ioopt::iolb::{default_scenarios, lower_bound, LbOptions};
use ioopt::ioub::{select_permutations, SmallDimOracle};
use ioopt::ir::kernels;
use ioopt::tileopt::{optimize, TileOptConfig};
use ioopt::{analyze, symbolic_tc_ub, AnalysisOptions};

/// Time `f` over `iters` iterations and report mean per-iteration time.
fn bench<T>(group: &str, name: &str, iters: u32, mut f: impl FnMut() -> T) {
    // One warm-up run, then the timed loop.
    black_box(f());
    let start = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    let per_iter = start.elapsed() / iters;
    println!("{group}/{name}: {per_iter:?} per iter ({iters} iters)");
}

fn bench_lower_bounds() {
    for (name, kernel) in [
        ("matmul", kernels::matmul()),
        ("conv2d", kernels::conv2d()),
        (
            "tc-abcd-aebf-fdec",
            kernels::tensor_contraction("tc", "abcd-aebf-fdec"),
        ),
    ] {
        let options = LbOptions {
            detect_reductions: true,
            scenarios: default_scenarios(&kernel),
        };
        bench("iolb", name, 10, || {
            lower_bound(black_box(&kernel), black_box(&options)).unwrap()
        });
    }
}

fn bench_permutation_selection() {
    for (name, kernel) in [("conv1d", kernels::conv1d()), ("conv2d", kernels::conv2d())] {
        bench("permsel", name, 20, || {
            select_permutations(black_box(&kernel), &SmallDimOracle)
        });
    }
}

fn bench_tileopt() {
    let k = kernels::matmul();
    let sizes = HashMap::from([
        ("i".to_string(), 2000i64),
        ("j".to_string(), 1500),
        ("k".to_string(), 1500),
    ]);
    let config = TileOptConfig {
        cache_elems: 1024.0,
        max_level_combos: 512,
        threads: 1,
    };
    bench("tileopt", "matmul-s1024", 10, || {
        optimize(black_box(&k), &sizes, &SmallDimOracle, &config).unwrap()
    });
}

fn bench_full_pipeline() {
    let k = kernels::conv2d();
    let sizes = kernels::YOLO9000[6].size_map(); // Yolo9000-12
    bench("pipeline", "yolo9000-12", 10, || {
        analyze(black_box(&k), &sizes, &AnalysisOptions::with_cache(32768.0)).unwrap()
    });
}

fn bench_symbolic_ub() {
    for entry in [kernels::TCCG[0], kernels::TCCG[6]] {
        let k = entry.kernel();
        bench("symbolic-ub", entry.spec, 10, || {
            symbolic_tc_ub(black_box(&k)).unwrap()
        });
    }
}

fn main() {
    bench_lower_bounds();
    bench_permutation_selection();
    bench_tileopt();
    bench_full_pipeline();
    bench_symbolic_ub();
}
