//! Criterion benches of the tool itself — the paper's practicality claim
//! (§3.2 footnote: counting and analysis take "usually less than a few
//! seconds" per kernel).

use std::collections::HashMap;

use criterion::{criterion_group, criterion_main, Criterion};
use ioopt::iolb::{default_scenarios, lower_bound, LbOptions};
use ioopt::ioub::{select_permutations, SmallDimOracle};
use ioopt::ir::kernels;
use ioopt::tileopt::{optimize, TileOptConfig};
use ioopt::{analyze, symbolic_tc_ub, AnalysisOptions};
use std::hint::black_box;

fn bench_lower_bounds(c: &mut Criterion) {
    let mut g = c.benchmark_group("iolb");
    g.sample_size(10);
    for (name, kernel) in [
        ("matmul", kernels::matmul()),
        ("conv2d", kernels::conv2d()),
        ("tc-abcd-aebf-fdec", kernels::tensor_contraction("tc", "abcd-aebf-fdec")),
    ] {
        let options =
            LbOptions { detect_reductions: true, scenarios: default_scenarios(&kernel) };
        g.bench_function(name, |b| {
            b.iter(|| lower_bound(black_box(&kernel), black_box(&options)).unwrap())
        });
    }
    g.finish();
}

fn bench_permutation_selection(c: &mut Criterion) {
    let mut g = c.benchmark_group("permsel");
    for (name, kernel) in [("conv1d", kernels::conv1d()), ("conv2d", kernels::conv2d())] {
        g.bench_function(name, |b| {
            b.iter(|| select_permutations(black_box(&kernel), &SmallDimOracle))
        });
    }
    g.finish();
}

fn bench_tileopt(c: &mut Criterion) {
    let mut g = c.benchmark_group("tileopt");
    g.sample_size(10);
    let k = kernels::matmul();
    let sizes = HashMap::from([
        ("i".to_string(), 2000i64),
        ("j".to_string(), 1500),
        ("k".to_string(), 1500),
    ]);
    let config = TileOptConfig { cache_elems: 1024.0, max_level_combos: 512 };
    g.bench_function("matmul-s1024", |b| {
        b.iter(|| optimize(black_box(&k), &sizes, &SmallDimOracle, &config).unwrap())
    });
    g.finish();
}

fn bench_full_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline");
    g.sample_size(10);
    let k = kernels::conv2d();
    let sizes = kernels::YOLO9000[6].size_map(); // Yolo9000-12
    g.bench_function("yolo9000-12", |b| {
        b.iter(|| {
            analyze(black_box(&k), &sizes, &AnalysisOptions::with_cache(32768.0)).unwrap()
        })
    });
    g.finish();
}

fn bench_symbolic_ub(c: &mut Criterion) {
    let mut g = c.benchmark_group("symbolic-ub");
    for entry in [kernels::TCCG[0], kernels::TCCG[6]] {
        let k = entry.kernel();
        g.bench_function(entry.spec, |b| {
            b.iter(|| symbolic_tc_ub(black_box(&k)).unwrap())
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_lower_bounds,
    bench_permutation_selection,
    bench_tileopt,
    bench_full_pipeline,
    bench_symbolic_ub
);
criterion_main!(benches);
