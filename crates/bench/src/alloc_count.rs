//! Allocation counting for the perf baseline.
//!
//! With the bench-only `count-alloc` feature enabled, a counting wrapper
//! around the system allocator is installed as the global allocator for
//! every binary in this crate, and [`snapshot`] reports how many heap
//! allocations (and bytes) have been requested since process start.
//! Counting uses relaxed atomics — the overhead is two `fetch_add`s per
//! allocation, small enough that latency numbers from a counting build
//! remain comparable, but the committed baseline records whether it was
//! produced with counting on so the CI gate only compares like with like.
//!
//! Without the feature this module still compiles (so the harness can be
//! built cheaply for latency-only runs); [`enabled`] reports `false` and
//! [`snapshot`] stays at zero.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

/// A [`GlobalAlloc`] that counts every allocation before delegating to
/// the system allocator. Deallocations are not counted: the baseline
/// tracks allocator pressure (calls made), not live-set size.
pub struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[cfg(feature = "count-alloc")]
#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Whether the counting allocator is installed in this build.
pub const fn enabled() -> bool {
    cfg!(feature = "count-alloc")
}

/// `(allocations, bytes requested)` since process start. Zero in builds
/// without the `count-alloc` feature.
pub fn snapshot() -> (u64, u64) {
    (
        ALLOCS.load(Ordering::Relaxed),
        BYTES.load(Ordering::Relaxed),
    )
}

/// The allocation delta between two [`snapshot`]s taken in order.
pub fn delta(before: (u64, u64), after: (u64, u64)) -> (u64, u64) {
    (
        after.0.saturating_sub(before.0),
        after.1.saturating_sub(before.1),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_is_monotone() {
        let before = snapshot();
        let v: Vec<u64> = (0..1024).collect();
        let after = snapshot();
        assert!(v.len() == 1024);
        assert!(after.0 >= before.0 && after.1 >= before.1);
        if enabled() {
            let (allocs, bytes) = delta(before, after);
            assert!(allocs >= 1, "vec growth must be counted");
            assert!(bytes >= 1024 * 8, "vec bytes must be counted");
        }
    }
}
