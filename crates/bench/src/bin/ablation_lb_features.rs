//! Ablation of the paper's two lower-bound improvements (§5.2–5.4) on the
//! 2D convolution: the published-IOLB baseline (no reduction management —
//! returns the sum of array sizes), reduction detection alone
//! (`O(N⁷/S)`), and reduction detection + small dimensions
//! (`O(√(HW)·N⁵/√S)`, asymptotically tight).

use ioopt::iolb::{conv2d_scenarios, lower_bound, LbOptions};
use ioopt::ir::kernels;
use ioopt::symbolic::Symbol;
use ioopt_bench::print_table;

fn main() {
    let k = kernels::conv2d();
    let h = k.dim_index("h").expect("h");
    let w = k.dim_index("w").expect("w");

    let baseline = lower_bound(
        &k,
        &LbOptions {
            detect_reductions: false,
            scenarios: vec![],
        },
    )
    .expect("baseline");
    let reductions = lower_bound(
        &k,
        &LbOptions {
            detect_reductions: true,
            scenarios: vec![],
        },
    )
    .expect("reductions");
    let full = lower_bound(
        &k,
        &LbOptions {
            detect_reductions: true,
            scenarios: conv2d_scenarios(&k).expect("conv dims"),
        },
    )
    .expect("full");
    let _ = (h, w);

    println!("LB expressions:");
    println!("  baseline (published IOLB): {}", baseline.combined);
    println!("  + reductions:              {}", reductions.combined);
    println!(
        "  + small dimensions:        {} scenarios combined",
        full.scenarios.len()
    );

    println!("\nNumeric comparison on Yolo9000 layers (S = 32768 elements):\n");
    let mut rows = Vec::new();
    for layer in kernels::YOLO9000 {
        let mut env = k.bind_sizes(&layer.size_map());
        env.insert(Symbol::new("S"), 32768.0);
        let b = baseline.combined.eval_f64(&env).expect("eval");
        let r = reductions.combined.eval_f64(&env).expect("eval");
        let f = full.combined.eval_f64(&env).expect("eval");
        rows.push(vec![
            layer.name.to_string(),
            format!("{b:.3e}"),
            format!("{r:.3e}"),
            format!("{f:.3e}"),
            format!("{:.2}x", f / b),
        ]);
    }
    print_table(
        &["Layer", "baseline", "+reductions", "+small dims", "gain"],
        &rows,
    );

    println!("\nAsymptotic check (all parameters = N, H = W = 3 small, S = 4096):");
    let mut rows = Vec::new();
    for n in [64.0, 128.0, 256.0, 512.0] {
        let env: Vec<(&str, f64)> = vec![
            ("B", 1.0),
            ("C", n),
            ("F", n),
            ("X", n),
            ("Y", n),
            ("H", 3.0),
            ("W", 3.0),
            ("S", 4096.0),
        ];
        let b = baseline.combined.eval_with(&env).expect("eval");
        let f = full.combined.eval_with(&env).expect("eval");
        rows.push(vec![
            format!("N = {n}"),
            format!("{b:.3e}"),
            format!("{f:.3e}"),
            format!("{:.1}x", f / b),
        ]);
    }
    print_table(&["size", "baseline", "full", "gain"], &rows);
    println!("\nThe gain grows with N: the baseline is O(N^4) (array sizes)");
    println!("while the full bound scales as sqrt(HW)*N^5/sqrt(S) (paper §5.4).");
}
