//! Associativity experiment: how far does a hardware-shaped
//! set-associative LRU cache fall from the fully associative model the
//! paper (and this reproduction) analyzes?
//!
//! The recommended matmul tiling is simulated against fully associative
//! LRU and 2/4/8/16-way set-associative caches of the same capacity. Two
//! problem sizes demonstrate the classic stride pathology: with N = 96
//! the column stride (96 elements = 12 lines) shares factors with every
//! power-of-two set count, so column accesses pile into a few sets and
//! conflict misses dwarf the model; padding to N = 97 (odd line mix)
//! spreads the sets and recovers most of the fully associative behavior.
//! This is why practical tile selection targets a fraction of the nominal
//! cache and why array padding matters — effects outside the paper's
//! (and our) capacity-only I/O model, quantified here.

use std::collections::HashMap;

use ioopt::cachesim::{Hierarchy, TiledLoopNest};
use ioopt::ir::kernels;
use ioopt::{analyze, AnalysisOptions};
use ioopt_bench::print_table;

fn run_case(n: i64, cache: usize, line: usize) -> Vec<Vec<String>> {
    let kernel = kernels::matmul();
    let sizes = HashMap::from([
        ("i".to_string(), n),
        ("j".to_string(), n),
        ("k".to_string(), n),
    ]);
    let a = analyze(
        &kernel,
        &sizes,
        &AnalysisOptions::with_cache(cache as f64 * 0.7),
    )
    .expect("pipeline");
    let nest = TiledLoopNest::new(
        &kernel,
        &sizes,
        &a.recommendation.perm,
        &a.recommendation.tiles,
    )
    .expect("valid nest");
    let full = {
        let mut h = Hierarchy::new(&[cache], line);
        nest.simulate(&mut h).stats[0].misses
    };
    let mut rows = vec![vec![
        format!("N={n}"),
        "fully associative".to_string(),
        format!("{full}"),
        "1.00".to_string(),
    ]];
    for ways in [16usize, 8, 4, 2] {
        let mut h = Hierarchy::new_set_assoc(&[(cache, ways)], line);
        let misses = nest.simulate(&mut h).stats[0].misses;
        rows.push(vec![
            String::new(),
            format!("{ways}-way set assoc"),
            format!("{misses}"),
            format!("{:.2}", misses as f64 / full as f64),
        ]);
    }
    rows
}

fn main() {
    let cache = 2048usize;
    let line = 8usize;
    println!("matmul, recommended tiles for 0.7x{cache} elements, line = {line} elems\n");
    let mut rows = run_case(96, cache, line); // stride 96 = 12 lines: pathological
    rows.extend(run_case(97, cache, line)); // odd stride: well distributed
    print_table(&["size", "geometry", "misses", "vs fully assoc"], &rows);
    println!(
        "\nN = 96: the 12-line column stride aliases into a few sets (conflict\n\
         blow-up, worse with fewer sets). N = 97 breaks the alignment and the\n\
         high-associativity caches come within ~2.5x of the fully\n\
         associative model — the padding trick production libraries (and\n\
         OneDNN's packing) rely on."
    );
}
