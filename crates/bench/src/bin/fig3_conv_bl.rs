//! Fig. 3 reproduction: the Brascamp-Lieb derivation on the 2D
//! convolution — homomorphisms (3b), subgroup rank constraints (3c), and
//! the solved coefficients without and with small dimensions (3d).

use ioopt::iolb::{extract_homs, rank_constraints, small_dim_hom, solve_bl, HomOptions};
use ioopt::ir::kernels;

fn main() {
    let k = kernels::conv2d();
    let dim = k.dims().len();
    let homs = extract_homs(&k, &HomOptions::default());

    println!("== Fig. 3b: homomorphisms ==");
    for h in &homs {
        println!(
            "phi_{:<8} : Z^{dim} -> Z^{}  (kernel dim {})",
            h.name,
            h.matrix.rows(),
            h.kernel_basis().len()
        );
    }

    println!("\n== Fig. 3c: subgroup rank constraints (without phi_sd) ==");
    let constraints = rank_constraints(&homs, dim);
    for c in &constraints {
        let rhs: Vec<String> = c
            .image_ranks
            .iter()
            .zip(&homs)
            .filter(|(&r, _)| r > 0)
            .map(|(&r, h)| {
                if r == 1 {
                    format!("s_{}", h.name)
                } else {
                    format!("{r}*s_{}", h.name)
                }
            })
            .collect();
        println!("  {} <= {}", c.lhs, rhs.join(" + "));
    }
    println!("  ({} constraints after dedup)", constraints.len());

    println!("\n== Fig. 3d: solutions ==");
    let no_sd = solve_bl(&homs, dim).expect("solvable");
    println!(
        "no small dims : s = {:?}, sigma = {}  (paper: s_j = 2/3, sigma = 2)",
        no_sd.s, no_sd.sigma
    );

    let mut with_sd = homs.clone();
    let dims = [k.dim_index("h").expect("h"), k.dim_index("w").expect("w")];
    with_sd.push(small_dim_hom(&k, &dims));
    let sd = solve_bl(&with_sd, dim).expect("solvable");
    println!(
        "H, W small    : s = {:?}, s_sd = {}, sigma = {}  (paper: s_j = 1/2, s_sd = 1/2, sigma = 3/2)",
        sd.s, sd.s_sd, sd.sigma
    );

    println!("\n== Bounded-set size bounds |E| <= rho(K) ==");
    use ioopt::iolb::{conv2d_scenarios, lower_bound, LbOptions};
    let report = lower_bound(
        &k,
        &LbOptions {
            detect_reductions: true,
            scenarios: conv2d_scenarios(&k).expect("conv2d dims"),
        },
    )
    .expect("lb derives");
    for sc in &report.scenarios {
        let dims: Vec<&str> = sc
            .small_dims
            .iter()
            .map(|&d| k.dims()[d].name.as_str())
            .collect();
        println!("  small = {dims:?}: |E| <= {}", sc.rho);
    }
}
