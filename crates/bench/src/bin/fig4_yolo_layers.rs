//! Fig. 4: parameter values for the convolutional layers of Yolo9000.

use ioopt::ir::kernels::YOLO9000;
use ioopt_bench::print_table;

fn main() {
    println!("Fig. 4 — Yolo9000 convolution layer parameters (B = 1)\n");
    let rows: Vec<Vec<String>> = YOLO9000
        .iter()
        .map(|l| {
            vec![
                l.name.to_string(),
                l.f.to_string(),
                l.c.to_string(),
                l.x.to_string(),
                l.y.to_string(),
                l.w.to_string(),
                l.h.to_string(),
            ]
        })
        .collect();
    print_table(&["Layer", "F", "C", "X", "Y", "W", "H"], &rows);
}
