//! Fig. 5: the TCCG tensor-contraction classes. The "dim." and "s. d."
//! columns are *derived* by `ioopt_ir::classify_tc`, not hard-coded.

use ioopt::ir::{classify_tc, kernels::TCCG};
use ioopt_bench::print_table;

fn main() {
    println!("Fig. 5 — Classes of tensor contraction kernels from TCCG\n");
    let mut rows = Vec::new();
    for entry in TCCG {
        let kernel = entry.kernel();
        let class = classify_tc(&kernel).expect("TCCG entries are contractions");
        let sizes = entry
            .sizes
            .iter()
            .map(i64::to_string)
            .collect::<Vec<_>>()
            .join("/");
        let (d, s) = {
            let sig = class.signature();
            let mut parts = sig.split(" / ");
            (
                parts.next().expect("dims").to_string(),
                parts.next().expect("shared").to_string(),
            )
        };
        rows.push(vec![entry.spec.to_string(), d, s, sizes]);
    }
    print_table(&["Kernel", "dim.", "s. d.", "Problem sizes"], &rows);
}
