//! Fig. 6: combined parametric I/O bounds of the tensor-contraction
//! kernels and the 2D convolution.
//!
//! For every TCCG class we print the derived lower-bound expression
//! (trivial + small-dimension scenarios combined with `max`) and the
//! closed-form upper bound `2·∏N/(√(S+1)−1) + |In2|`. For the 2D
//! convolution, whose footprint polynomial exceeds degree 2 (paper §6
//! "Limitations"), we print the parametric cost model of the best
//! schedule instead of a closed form; Fig. 7 evaluates it numerically.

use ioopt::iolb::{conv2d_scenarios, lower_bound, LbOptions};
use ioopt::ir::kernels;
use ioopt::{symbolic_conv_ub, symbolic_lb, symbolic_tc_ub_for};

fn main() {
    let latex = std::env::args().any(|a| a == "--latex");
    println!("Fig. 6 — Combined parametric I/O bounds (S = cache size)\n");
    for entry in kernels::TCCG {
        let kernel = entry.kernel();
        println!("== TC {} ==", entry.spec);
        match symbolic_tc_ub_for(&kernel, &entry.size_map()) {
            Some(ub) if latex => println!("  UB = ${}$", ub.bound.to_latex()),
            Some(ub) => println!("  UB = {}", ub.bound),
            None => println!("  UB: (not a tensor contraction?)"),
        }
        match symbolic_lb(&kernel) {
            Ok(report) => {
                println!("  LB = max(");
                if latex {
                    println!("    ${}$  [array sizes]", report.trivial.to_latex());
                } else {
                    println!("    {}  [array sizes]", report.trivial);
                }
                for sc in &report.scenarios {
                    let dims: Vec<&str> = sc
                        .small_dims
                        .iter()
                        .map(|&d| kernel.dims()[d].name.as_str())
                        .collect();
                    if latex {
                        println!(
                            "    ${}$  [sigma = {}, s_sd = {}, small = {:?}]",
                            sc.bound.to_latex(),
                            sc.sigma,
                            sc.s_sd,
                            dims
                        );
                    } else {
                        println!(
                            "    {}  [sigma = {}, s_sd = {}, small = {:?}]",
                            sc.bound, sc.sigma, sc.s_sd, dims
                        );
                    }
                }
                println!("  )");
            }
            Err(e) => println!("  LB failed: {e}"),
        }
        println!();
    }

    println!("== 2D Convolution ==");
    let k = kernels::conv2d();
    let scenarios = conv2d_scenarios(&k).expect("conv2d names");
    let report = lower_bound(
        &k,
        &LbOptions {
            detect_reductions: true,
            scenarios,
        },
    )
    .expect("lower bound derives");
    println!("  LB = max(");
    println!("    {}  [array sizes]", report.trivial);
    for sc in &report.scenarios {
        let dims: Vec<&str> = sc
            .small_dims
            .iter()
            .map(|&d| k.dims()[d].name.as_str())
            .collect();
        println!(
            "    {}  [sigma = {}, s_sd = {}, small = {:?}]",
            sc.bound, sc.sigma, sc.s_sd, dims
        );
    }
    println!("  )");
    // Semi-symbolic conv UB: quadratic-compatible Δ-templates (general
    // templates hit the degree-4 wall the paper describes in §6
    // "Limitations"); selected at Yolo9000-8 sizes, S = 32768.
    let layer = kernels::YOLO9000[4];
    match symbolic_conv_ub(&k, &layer.size_map(), 32768.0) {
        Some(ub) => {
            println!("  UB (quadratic Δ-template, selected at Yolo9000-8):");
            println!("    Delta = {}", ub.delta);
            println!("    UB(S) = {}", ub.bound);
        }
        None => println!("  UB: no quadratic template solved"),
    }
    println!(
        "  (the fully general footprint is degree > 2 in Δ — paper §6\n   \
         'Limitations' — so Fig. 7 minimizes the parametric cost numerically)"
    );
}
