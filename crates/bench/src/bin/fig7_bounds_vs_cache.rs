//! Fig. 7: numeric lower and upper I/O bounds of the TCCG contractions
//! and Yolo9000 convolutions over a sweep of cache sizes.
//!
//! Prints a CSV (`kernel,S_elems,lb,ub,tightness`) followed by the
//! paper's sanity properties: `UB ≥ LB` everywhere, both series
//! non-increasing in `S`, and the bounds meeting (ratio → ~1) for large
//! caches where the cost degenerates to loading the inputs once.
//!
//! Pass `--quick` to restrict to three cache sizes and four kernels.

use std::collections::HashMap;

use ioopt::{analyze, AnalysisOptions};
use ioopt_bench::{tccg_cases, yolo_cases, CACHE_SWEEP_ELEMS};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let sweep: Vec<f64> = if quick {
        vec![4096.0, 32768.0, 262144.0]
    } else {
        CACHE_SWEEP_ELEMS.to_vec()
    };

    let mut cases: Vec<(String, ioopt::ir::Kernel, HashMap<String, i64>)> = Vec::new();
    for (k, sizes) in tccg_cases() {
        cases.push((format!("TC-{}", k.name()), k, sizes));
    }
    for (layer, k, sizes) in yolo_cases() {
        cases.push((layer.name.to_string(), k, sizes));
    }
    if quick {
        cases.truncate(2);
        let mut yolo: Vec<_> = yolo_cases()
            .into_iter()
            .take(2)
            .map(|(l, k, s)| (l.name.to_string(), k, s))
            .collect();
        cases.append(&mut yolo);
    }

    println!("kernel,S_elems,lb,ub,tightness");
    let mut violations: Vec<String> = Vec::new();
    let mut summaries: Vec<(String, f64, f64)> = Vec::new();
    for (name, kernel, sizes) in &cases {
        let mut prev_lb = f64::INFINITY;
        let mut prev_ub = f64::INFINITY;
        let mut worst_ratio: f64 = 0.0;
        let mut last_ratio = f64::NAN;
        for &s in &sweep {
            let a = match analyze(kernel, sizes, &AnalysisOptions::with_cache(s)) {
                Ok(a) => a,
                Err(e) => {
                    violations.push(format!("{name} @ S={s}: analysis failed: {e}"));
                    continue;
                }
            };
            println!("{name},{s},{:.6e},{:.6e},{:.4}", a.lb, a.ub, a.tightness);
            if a.ub < a.lb * (1.0 - 1e-9) {
                violations.push(format!("{name} @ S={s}: UB {} < LB {}", a.ub, a.lb));
            }
            if a.lb > prev_lb * (1.0 + 1e-9) {
                violations.push(format!("{name} @ S={s}: LB increased with S"));
            }
            if a.ub > prev_ub * (1.0 + 1e-2) {
                violations.push(format!("{name} @ S={s}: UB increased with S"));
            }
            prev_lb = a.lb;
            prev_ub = a.ub;
            worst_ratio = worst_ratio.max(a.tightness);
            last_ratio = a.tightness;
        }
        summaries.push((name.clone(), worst_ratio, last_ratio));
    }

    // One atomic stderr block: the CSV on stdout stays uncorrupted even
    // when the harness runs several bench bins concurrently.
    let mut summary = String::from("\n== Fig. 7 sanity summary ==\n");
    for (name, worst, last) in &summaries {
        summary.push_str(&format!(
            "{name:24} worst UB/LB = {worst:.3}   at largest S = {last:.3}\n"
        ));
    }
    if violations.is_empty() {
        summary.push_str("PASS: UB >= LB everywhere; both non-increasing in S.");
        ioopt::obs::log_block(&summary);
    } else {
        for v in &violations {
            summary.push_str(&format!("VIOLATION: {v}\n"));
        }
        ioopt::obs::log_block(&summary);
        std::process::exit(1);
    }
}
