//! Renders the Fig. 7 curves as ASCII charts from the CSV produced by
//! `fig7_bounds_vs_cache` (read from stdin or a file argument):
//!
//! ```text
//! cargo run --release -p ioopt-bench --bin fig7_bounds_vs_cache > fig7.csv
//! cargo run --release -p ioopt-bench --bin fig7_plot fig7.csv
//! ```

use std::io::Read;

use ioopt_bench::plot::ascii_chart;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut data = String::new();
    match std::env::args().nth(1) {
        Some(path) => data = std::fs::read_to_string(path)?,
        None => {
            std::io::stdin().read_to_string(&mut data)?;
        }
    }
    // kernel -> (S, lb, ub) series, preserving kernel order.
    let mut order: Vec<String> = Vec::new();
    let mut series: std::collections::HashMap<String, Vec<(f64, f64, f64)>> =
        std::collections::HashMap::new();
    for line in data.lines().skip(1) {
        let cells: Vec<&str> = line.split(',').collect();
        if cells.len() < 4 {
            continue;
        }
        let name = cells[0].to_string();
        let s: f64 = cells[1].parse()?;
        let lb: f64 = cells[2].parse()?;
        let ub: f64 = cells[3].parse()?;
        if !series.contains_key(&name) {
            order.push(name.clone());
        }
        series.entry(name).or_default().push((s, lb, ub));
    }
    for name in order {
        let points = &series[&name];
        let xs: Vec<f64> = points.iter().map(|p| p.0).collect();
        let lb: Vec<f64> = points.iter().map(|p| p.1).collect();
        let ub: Vec<f64> = points.iter().map(|p| p.2).collect();
        println!("{}", ascii_chart(&name, &xs, &lb, &ub));
    }
    Ok(())
}
