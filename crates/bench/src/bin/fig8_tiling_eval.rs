//! Fig. 8: efficiency of the tiling recommendation on the Yolo9000
//! layers, as a percentage of machine peak.
//!
//! Substitution (DESIGN.md §2): instead of the paper's i9-7940X testbed
//! we combine (a) the analytic multi-level I/O of each code version with
//! (b) a roofline model of the same machine. OneDNN is modelled as a
//! near-I/O-optimal library. Compute-efficiency caps encode code quality:
//! the paper's untiled C code is scalar-ish, its recommended tiled code
//! lacks register tiling ("our naive implementation", §6), and OneDNN is
//! heavily hand-optimized. The preserved *shape* is the paper's claim:
//! library > recommendation > untiled, with per-layer variation driven by
//! memory-boundedness.
//!
//! Pass `--simulate` to additionally cross-check the analytic traffic of
//! two downscaled layers against the cache simulator.

use std::collections::HashMap;

use ioopt::cachesim::{Hierarchy, MachineModel, TiledLoopNest};
use ioopt::iolb::{conv2d_scenarios, lower_bound, LbOptions};
use ioopt::ioub::{cost_with_levels, SmallDimOracle, TilingSchedule};
use ioopt::ir::kernels;
use ioopt::symbolic::Symbol;
use ioopt::tileopt::optimize_multilevel;
use ioopt_bench::print_table;

/// Compute-quality caps (fractions of peak attainable by the code
/// generation style, independent of memory traffic).
const CAP_UNTILED: f64 = 0.18; // plain scalar-ish C loop nest
const CAP_RECO: f64 = 0.48; // tiled, vectorized innermost, no register tiling
const CAP_LIBRARY: f64 = 0.90; // OneDNN-grade register tiling + packing

fn main() {
    let simulate = std::env::args().any(|a| a == "--simulate");
    let machine = MachineModel::i9_7940x();
    let caches: Vec<ioopt::ioub::CacheLevelSpec> = ["L1", "L2", "L3"]
        .iter()
        .zip(machine.capacities_elems())
        .zip(&machine.bandwidths)
        .map(|((name, cap), &bw)| {
            ioopt::ioub::CacheLevelSpec::new(name, cap, machine.element_bytes / bw)
        })
        .collect();

    println!("Fig. 8 — % of machine peak (analytic roofline substitute)\n");
    let mut rows = Vec::new();
    for layer in kernels::YOLO9000 {
        let k = kernels::conv2d();
        let sizes = layer.size_map();
        let flops = 2.0 * sizes.values().map(|&v| v as f64).product::<f64>();

        // --- No tiling: the source loop order, unit tiles.
        let untiled_traffic = untiled_traffic(&k, &sizes, &caches);
        let untiled = machine.efficiency(flops, &untiled_traffic, CAP_UNTILED);

        // --- Our tiling recommendation (multi-level TileOpt).
        let reco = optimize_multilevel(&k, &sizes, &caches, &SmallDimOracle)
            .expect("feasible multi-level tiling");
        let reco_eff = machine.efficiency(flops, &reco.traffic, CAP_RECO);

        // --- OneDNN proxy: I/O-optimal (the lower bound) at every level.
        let lib_traffic: Vec<f64> = caches
            .iter()
            .map(|c| lb_at(&k, &sizes, c.capacity))
            .collect();
        let lib = machine.efficiency(flops, &lib_traffic, CAP_LIBRARY);

        rows.push(vec![
            layer.name.to_string(),
            format!("{untiled:.0}%"),
            format!("{lib:.0}%"),
            format!("{reco_eff:.0}%"),
        ]);
    }
    print_table(&["Kernel", "No Tiling", "OneDNN*", "Tiling reco"], &rows);
    println!(
        "\n(*) OneDNN modelled as an I/O-optimal implementation at {:.0}% compute\n    \
         efficiency; untiled at {:.0}%, recommendation at {:.0}% (no register tiling).",
        CAP_LIBRARY * 100.0,
        CAP_UNTILED * 100.0,
        CAP_RECO * 100.0
    );

    if simulate {
        println!("\n== Simulator cross-check (downscaled layers) ==");
        for layer in [kernels::YOLO9000[0], kernels::YOLO9000[4]] {
            let small = layer.downscaled(16, 16);
            let k = kernels::conv2d();
            let sizes = small.size_map();
            let reco =
                optimize_multilevel(&k, &sizes, &caches[..1], &SmallDimOracle).expect("feasible");
            let nest =
                TiledLoopNest::new(&k, &sizes, &reco.perm, &reco.tiles[0]).expect("valid nest");
            let mut h = Hierarchy::new(&[machine.capacities_elems()[0] as usize], 1);
            let sim = nest.simulate(&mut h);
            println!(
                "{}: model L1 traffic = {:.3e}, simulated misses = {:.3e}  (ratio {:.2})",
                small.name,
                reco.traffic[0],
                sim.traffic_elems[0],
                reco.traffic[0] / sim.traffic_elems[0].max(1.0)
            );
        }
    }
}

/// Analytic traffic of the untiled source loop nest at each cache level.
fn untiled_traffic(
    k: &ioopt::ir::Kernel,
    sizes: &HashMap<String, i64>,
    caches: &[ioopt::ioub::CacheLevelSpec],
) -> Vec<f64> {
    let n = k.dims().len();
    let perm: Vec<usize> = (0..n).collect();
    let mut sched = TilingSchedule::parametric_by_index(k, perm).expect("identity perm");
    for d in 0..n {
        let name = k.dims()[d].name.clone();
        sched = sched.pin_one(k, &name);
    }
    let mut env = k.bind_sizes(sizes);
    env.insert(Symbol::new("S"), 0.0);
    caches
        .iter()
        .map(|c| {
            // Best reuse levels for unit tiles under this capacity.
            let arrays = k.arrays().count();
            let mut best = f64::INFINITY;
            // Greedy: start at level 1 for all, try raising each array.
            let mut levels = vec![1usize; arrays];
            loop {
                let cost = cost_with_levels(k, &sched, &levels);
                let fp = cost.footprint.eval_f64(&env).unwrap_or(f64::INFINITY);
                let io = cost.io.eval_f64(&env).unwrap_or(f64::INFINITY);
                if fp <= c.capacity && io < best {
                    best = io;
                }
                // Raise the first array that still can be raised.
                let mut raised = false;
                for l in levels.iter_mut() {
                    if *l < n {
                        *l += 1;
                        raised = true;
                        break;
                    }
                    *l = 1;
                }
                if !raised {
                    break;
                }
            }
            best
        })
        .collect()
}

/// The lower bound evaluated at one cache capacity.
fn lb_at(k: &ioopt::ir::Kernel, sizes: &HashMap<String, i64>, capacity: f64) -> f64 {
    let scenarios = conv2d_scenarios(k).expect("conv2d");
    let report = lower_bound(
        k,
        &LbOptions {
            detect_reductions: true,
            scenarios,
        },
    )
    .expect("lb derives");
    let mut env = k.bind_sizes(sizes);
    env.insert(Symbol::new("S"), capacity);
    report.combined.eval_f64(&env).expect("evaluates")
}
