//! Load generator for `ioopt serve`: drives N concurrent connections
//! through a mixed stream of analysis requests and reports throughput
//! and client-side latency percentiles.
//!
//! By default the server runs **in-process** on an ephemeral port, which
//! also lets the bench read the shared memo cache directly and verify
//! the serving claim that matters: the warm-cache hit ratio under load
//! is *strictly above* a single-shot cold batch over the same kernels —
//! the process-lifetime cache genuinely pays for itself across requests.
//! Point `--addr HOST:PORT` at an external server to load it instead
//! (throughput/latency only; the memo assertion needs in-process stats).
//!
//! Exit status is non-zero when any request fails or the warm/cold
//! memo assertion does not hold, so CI can gate on it.
//!
//!     cargo run --release -p ioopt-bench --bin loadgen -- \
//!         [--addr HOST:PORT] [--connections 8] [--requests 400]

use std::net::SocketAddr;

use ioopt::{
    analysis_handler, corpus_item, memo_stats, reset_memo, run_batch, BatchOptions, ServiceDefaults,
};
use ioopt_bench::loadclient::{self, MIX, SNAPSHOT_CACHE};
use ioopt_serve::{ServeOptions, Server};

struct Args {
    addr: Option<SocketAddr>,
    connections: usize,
    requests: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: None,
        connections: 8,
        requests: 400,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| die(&format!("{name} needs a value")))
        };
        match flag.as_str() {
            "--addr" => {
                args.addr = Some(
                    value("--addr")
                        .parse()
                        .unwrap_or_else(|e| die(&format!("--addr: {e}"))),
                );
            }
            "--connections" => {
                args.connections = value("--connections")
                    .parse()
                    .unwrap_or_else(|e| die(&format!("--connections: {e}")));
            }
            "--requests" => {
                args.requests = value("--requests")
                    .parse()
                    .unwrap_or_else(|e| die(&format!("--requests: {e}")));
            }
            "--help" | "-h" => {
                eprintln!("usage: loadgen [--addr HOST:PORT] [--connections N] [--requests N]");
                std::process::exit(0);
            }
            other => die(&format!("unknown flag `{other}`")),
        }
    }
    if args.connections == 0 || args.requests == 0 {
        die("--connections and --requests must be positive");
    }
    args
}

fn die(message: &str) -> ! {
    eprintln!("loadgen: {message}");
    std::process::exit(2);
}

fn main() {
    let args = parse_args();

    // Cold baseline: the same kernels once, single-shot, from an empty
    // cache — the hit ratio a one-off `ioopt batch` run would see.
    let cold_ratio = if args.addr.is_none() {
        reset_memo();
        let zero = memo_stats();
        let items: Vec<_> = MIX
            .iter()
            .map(|k| corpus_item(k).unwrap_or_else(|| die(&format!("unknown builtin `{k}`"))))
            .collect();
        let report = run_batch(
            &items,
            &BatchOptions {
                cache_elems: SNAPSHOT_CACHE,
                numeric: false,
                ..BatchOptions::default()
            },
        );
        if report.rows.iter().any(|r| r.error.is_some()) {
            die("cold baseline batch reported an error row");
        }
        let cold = memo_stats().delta(&zero);
        println!(
            "cold batch: {} kernels, memo hits {} misses {} (ratio {:.3})",
            MIX.len(),
            cold.hits,
            cold.misses,
            cold.hit_ratio()
        );
        Some(cold.hit_ratio())
    } else {
        None
    };

    // The server under load: in-process unless --addr points elsewhere.
    let local = if args.addr.is_none() {
        Some(
            Server::bind(
                "127.0.0.1:0",
                ServeOptions::default(),
                analysis_handler(ServiceDefaults::default()),
            )
            .unwrap_or_else(|e| die(&format!("bind: {e}"))),
        )
    } else {
        None
    };
    let addr = args
        .addr
        .or_else(|| local.as_ref().map(Server::addr))
        .expect("an address either way");

    let warm_base = memo_stats();
    let report = loadclient::drive(addr, MIX, args.connections, args.requests);
    if let Some(server) = local {
        server.shutdown();
    }

    let completed = report.sorted_us.len();
    println!(
        "load: {completed} requests, {} connections, {:.2} s wall, {:.1} req/s",
        args.connections,
        report.wall.as_secs_f64(),
        completed as f64 / report.wall.as_secs_f64()
    );
    println!(
        "latency: p50 {:.1} ms, p99 {:.1} ms, max {:.1} ms",
        report.percentile(0.50) as f64 / 1e3,
        report.percentile(0.99) as f64 / 1e3,
        report.percentile(1.0) as f64 / 1e3
    );

    let failures = report.failures;
    if failures > 0 {
        eprintln!("loadgen: FAIL — {failures} request(s) did not answer 200");
        std::process::exit(1);
    }
    if let Some(cold_ratio) = cold_ratio {
        let warm = memo_stats().delta(&warm_base);
        println!(
            "warm storm: memo hits {} misses {} (ratio {:.3})",
            warm.hits,
            warm.misses,
            warm.hit_ratio()
        );
        if warm.hit_ratio() <= cold_ratio {
            eprintln!(
                "loadgen: FAIL — warm hit ratio {:.3} is not above the cold batch's {:.3}; \
                 the shared memo cache is not persisting across served requests",
                warm.hit_ratio(),
                cold_ratio
            );
            std::process::exit(1);
        }
        println!(
            "memo: warm ratio {:.3} > cold ratio {:.3} — cache persists across requests",
            warm.hit_ratio(),
            cold_ratio
        );
    }
}
