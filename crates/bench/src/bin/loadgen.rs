//! Load generator for `ioopt serve`: drives N concurrent connections
//! through a mixed stream of analysis requests and reports throughput
//! and client-side latency percentiles.
//!
//! By default the server runs **in-process** on an ephemeral port, which
//! also lets the bench read the shared memo cache directly and verify
//! the serving claim that matters: the warm-cache hit ratio under load
//! is *strictly above* a single-shot cold batch over the same kernels —
//! the process-lifetime cache genuinely pays for itself across requests.
//! Point `--addr HOST:PORT` at an external server to load it instead
//! (throughput/latency only; the memo assertion needs in-process stats).
//!
//! Exit status is non-zero when any request fails or the warm/cold
//! memo assertion does not hold, so CI can gate on it.
//!
//!     cargo run --release -p ioopt-bench --bin loadgen -- \
//!         [--addr HOST:PORT] [--connections 8] [--requests 400]
//!
//! **Sustained-storm mode** (`--duration-secs N`) exercises the
//! crash-safety story instead: it spawns a *child* `ioopt serve
//! --cache-dir`, storms it for the duration, `kill -9`s the server
//! mid-storm once the persistent store holds the whole mix, restarts it
//! on the same cache directory, and gates on the warm-restart store hit
//! ratio of the first pass (the recovered store must answer the mix
//! from disk, minus at most one torn trailing frame).
//!
//!     cargo run --release -p ioopt-bench --bin loadgen -- \
//!         --duration-secs 20 [--cache-dir DIR] [--server-bin target/release/ioopt]
//!
//! **Multi-shard storm** (`--duration-secs N --shards K`, K ≥ 2) drives
//! the same story through a sharded fleet: warm the full 19-kernel
//! corpus through the router, gate that every shard's routed-request
//! counter matches the partition `route_hash % K` predicts, `kill -9`
//! ONE shard mid-storm (the fleet supervisor must respawn it while the
//! other partitions keep serving), then drain, restart the whole fleet
//! on the same cache directory, and gate each shard's warm-restart
//! store hits — read through the router's `/shards/I/metrics`
//! passthrough — against the kernels that shard owns.

use std::io::BufRead;
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use ioopt::{
    analysis_handler, builtin_corpus, corpus_item, memo_stats, reset_memo, route_hash, run_batch,
    BatchOptions, ServiceDefaults,
};
use ioopt_bench::loadclient::{self, MIX, SNAPSHOT_CACHE};
use ioopt_serve::{ServeOptions, Server};
use ioopt_suite::testutil::http_get;

struct Args {
    addr: Option<SocketAddr>,
    connections: usize,
    requests: usize,
    duration_secs: Option<u64>,
    cache_dir: Option<String>,
    server_bin: String,
    shards: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: None,
        connections: 8,
        requests: 400,
        duration_secs: None,
        cache_dir: None,
        server_bin: "target/release/ioopt".to_string(),
        shards: 1,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| die(&format!("{name} needs a value")))
        };
        match flag.as_str() {
            "--addr" => {
                args.addr = Some(
                    value("--addr")
                        .parse()
                        .unwrap_or_else(|e| die(&format!("--addr: {e}"))),
                );
            }
            "--connections" => {
                args.connections = value("--connections")
                    .parse()
                    .unwrap_or_else(|e| die(&format!("--connections: {e}")));
            }
            "--requests" => {
                args.requests = value("--requests")
                    .parse()
                    .unwrap_or_else(|e| die(&format!("--requests: {e}")));
            }
            "--duration-secs" => {
                args.duration_secs = Some(
                    value("--duration-secs")
                        .parse()
                        .unwrap_or_else(|e| die(&format!("--duration-secs: {e}"))),
                );
            }
            "--cache-dir" => args.cache_dir = Some(value("--cache-dir")),
            "--server-bin" => args.server_bin = value("--server-bin"),
            "--shards" => {
                args.shards = value("--shards")
                    .parse()
                    .unwrap_or_else(|e| die(&format!("--shards: {e}")));
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: loadgen [--addr HOST:PORT] [--connections N] [--requests N]\n\
                     \u{20}      loadgen --duration-secs N [--cache-dir DIR] [--server-bin PATH]\n\
                     \u{20}              [--connections N] [--shards K]"
                );
                std::process::exit(0);
            }
            other => die(&format!("unknown flag `{other}`")),
        }
    }
    if args.connections == 0 || args.requests == 0 {
        die("--connections and --requests must be positive");
    }
    if args.shards > 1 && args.duration_secs.is_none() {
        die("--shards needs --duration-secs (the fleet storm is a sustained mode)");
    }
    args
}

fn die(message: &str) -> ! {
    eprintln!("loadgen: {message}");
    std::process::exit(2);
}

/// A spawned `ioopt serve` child: the process, its announced address,
/// and — in `--shards` mode — each shard's pid in index order.
struct SpawnedServer {
    child: Child,
    addr: SocketAddr,
    shard_pids: Vec<u32>,
}

/// Spawns a child `ioopt serve --cache-dir` on an ephemeral port and
/// parses the bound address off its `serve: listening on …` stderr
/// line (plus, with `shards ≥ 2`, every `serve: shard I listening on
/// ADDR (pid P)` line that precedes it); the rest of the child's stderr
/// is forwarded on a drainer thread so its pipe never fills.
fn spawn_server(bin: &str, cache_dir: &str, shards: usize) -> SpawnedServer {
    let mut cmd = Command::new(bin);
    cmd.args(["serve", "--addr", "127.0.0.1:0", "--cache-dir", cache_dir]);
    if shards > 1 {
        cmd.args(["--shards", &shards.to_string()]);
    }
    let mut child = cmd
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap_or_else(|e| die(&format!("spawn `{bin} serve`: {e}")));
    let stderr = child.stderr.take().expect("stderr piped");
    let mut reader = std::io::BufReader::new(stderr);
    let mut shard_pids = vec![0u32; shards.max(1)];
    let addr = loop {
        let mut line = String::new();
        if reader
            .read_line(&mut line)
            .unwrap_or_else(|e| die(&format!("read server stderr: {e}")))
            == 0
        {
            die("server exited before announcing its address");
        }
        eprint!("server: {line}");
        let text = line.trim();
        if let Some(rest) = text.strip_prefix("serve: shard ") {
            // "I listening on ADDR (pid P)" — parent-logged, so the
            // `shard N: `-prefixed forwarded child lines never match.
            let index: usize = rest
                .split_whitespace()
                .next()
                .and_then(|i| i.parse().ok())
                .unwrap_or_else(|| die(&format!("cannot parse shard index from `{text}`")));
            let pid: u32 = rest
                .split("(pid ")
                .nth(1)
                .and_then(|p| p.strip_suffix(')'))
                .and_then(|p| p.parse().ok())
                .unwrap_or_else(|| die(&format!("cannot parse shard pid from `{text}`")));
            if index < shard_pids.len() {
                shard_pids[index] = pid;
            }
        } else if let Some(rest) = text.strip_prefix("serve: listening on ") {
            let addr = rest
                .split_whitespace()
                .next()
                .and_then(|a| a.parse().ok())
                .unwrap_or_else(|| die(&format!("cannot parse server address from `{line}`")));
            break addr;
        }
    };
    std::thread::spawn(move || {
        for line in reader.lines().map_while(Result::ok) {
            eprintln!("server: {line}");
        }
    });
    if shards > 1 && shard_pids.contains(&0) {
        die("fleet started without announcing every shard");
    }
    SpawnedServer {
        child,
        addr,
        shard_pids,
    }
}

/// The value of one counter in a Prometheus `/metrics` body.
fn metric(body: &str, name: &str) -> u64 {
    body.lines()
        .find_map(|line| line.strip_prefix(&format!("{name} ")))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0)
}

/// Sustained-storm mode: storm a child server, `kill -9` it mid-storm,
/// restart on the same cache directory, and gate on the warm-restart
/// store hit ratio.
fn run_sustained(args: &Args, duration_secs: u64) -> ! {
    let duration = Duration::from_secs(duration_secs.max(4));
    let fallback_dir = std::env::temp_dir()
        .join(format!("ioopt-loadgen-{}", std::process::id()))
        .to_string_lossy()
        .into_owned();
    let cache_dir = args.cache_dir.clone().unwrap_or(fallback_dir);

    let SpawnedServer {
        mut child, addr, ..
    } = spawn_server(&args.server_bin, &cache_dir, 1);

    // Sequential warm-up: one pass over the mix so every distinct key is
    // on disk (the frame is appended before the response is sent) before
    // the kill. Concurrent storm writes alone would not guarantee
    // coverage — slow kernels may still be mid-first-analysis when the
    // SIGKILL lands, and duplicate frames inflate the write counter
    // without adding keys.
    for kernel in MIX {
        match loadclient::try_post(addr, "/analyze", &loadclient::request_body(kernel)) {
            Some(200) => {}
            other => die(&format!("warm-up `{kernel}` answered {other:?}")),
        }
    }
    let writes_before_kill = metric(&http_get(addr, "/metrics").body, "ioopt_store_writes");
    println!("warm-up: mix persisted, {writes_before_kill} frame(s) on disk");

    println!(
        "storm: {} connections for {duration_secs}s against {addr}",
        args.connections
    );
    let storm = std::thread::spawn({
        let connections = args.connections;
        move || loadclient::drive_for(addr, MIX, connections, duration)
    });
    std::thread::sleep(duration / 2);
    println!("storm: kill -9 mid-storm (no flush, no drain)");
    child
        .kill()
        .unwrap_or_else(|e| die(&format!("kill server: {e}")));
    let _ = child.wait();

    let report = storm.join().expect("storm thread panicked");
    let completed = report.sorted_us.len();
    if completed > 0 {
        println!(
            "storm: {completed} requests ok, {} failed-or-shed during the kill window, \
             p50 {:.1} ms, p99 {:.1} ms",
            report.failures,
            report.percentile(0.50) as f64 / 1e3,
            report.percentile(0.99) as f64 / 1e3
        );
    }

    // Restart on the same directory: recovery (if any) runs at open,
    // then the first pass over the mix must be answered from disk.
    let SpawnedServer {
        mut child, addr, ..
    } = spawn_server(&args.server_bin, &cache_dir, 1);
    let mut first_pass_failures = 0usize;
    for kernel in MIX {
        match loadclient::try_post(addr, "/analyze", &loadclient::request_body(kernel)) {
            Some(200) => {}
            other => {
                first_pass_failures += 1;
                eprintln!("loadgen: first-pass `{kernel}` answered {other:?}");
            }
        }
    }
    let metrics = http_get(addr, "/metrics").body;
    let hits = metric(&metrics, "ioopt_store_hits");
    let misses = metric(&metrics, "ioopt_store_misses");
    let recovered = metric(&metrics, "ioopt_store_recovered");
    let quarantined = metric(&metrics, "ioopt_store_quarantined");
    let lookups = hits + misses;
    let ratio = if lookups == 0 {
        0.0
    } else {
        hits as f64 / lookups as f64
    };
    println!(
        "warm restart: store hits {hits} misses {misses} (ratio {ratio:.3}), \
         {recovered} recovered, {quarantined} quarantined"
    );
    let _ = loadclient::try_post(addr, "/shutdown", "");
    let _ = child.wait();

    if first_pass_failures > 0 {
        eprintln!(
            "loadgen: FAIL — {first_pass_failures} first-pass request(s) failed after restart"
        );
        std::process::exit(1);
    }
    // The warm-up put every distinct key of the mix on disk, and kill
    // -9 forfeits at most the one frame torn mid-`write_all` (the page
    // cache keeps every completed write). The gate allows that single
    // loss but fails on wholesale amnesia (fsync or recovery bugs).
    let expected = (MIX.len() as u64).saturating_sub(1);
    if hits < expected {
        eprintln!(
            "loadgen: FAIL — warm restart hit only {hits} of {lookups} store lookups \
             (expected at least {expected}; {writes_before_kill} frame(s) were on disk \
             before the kill)"
        );
        std::process::exit(1);
    }
    println!("loadgen: warm restart served the mix from the recovered store");
    std::process::exit(0);
}

/// Multi-shard storm mode (`--duration-secs N --shards K`): spawns a
/// sharded fleet, gates routed-request balance against the partition
/// map, `kill -9`s one shard mid-storm (the supervisor must respawn it),
/// then restarts the fleet on the same cache directory and gates every
/// shard's warm-restart store hits against the kernels it owns.
fn run_sharded(args: &Args, duration_secs: u64, shards: usize) -> ! {
    let duration = Duration::from_secs(duration_secs.max(4));
    let fallback_dir = std::env::temp_dir()
        .join(format!("ioopt-loadgen-{}", std::process::id()))
        .to_string_lossy()
        .into_owned();
    let cache_dir = args.cache_dir.clone().unwrap_or(fallback_dir);

    // The partition map over the full corpus, computed exactly as the
    // router computes it. Every shard must own at least one kernel or
    // the balance and warm-restart gates would be vacuous for it.
    let corpus: Vec<String> = builtin_corpus().iter().map(|i| i.label.clone()).collect();
    let owner =
        |label: &str| (route_hash(&loadclient::request_body(label)) % shards as u64) as usize;
    let mut owned = vec![0u64; shards];
    for label in &corpus {
        owned[owner(label)] += 1;
    }
    println!(
        "shards: partition ownership over the {}-kernel corpus: {owned:?}",
        corpus.len()
    );
    if owned.contains(&0) {
        die("degenerate partition map: a shard owns no corpus kernel");
    }

    let mut server = spawn_server(&args.server_bin, &cache_dir, shards);

    // Warm the whole corpus through the router: every shard's partition
    // gets persisted into its own store subdirectory.
    for label in &corpus {
        match loadclient::try_post(server.addr, "/analyze", &loadclient::request_body(label)) {
            Some(200) => {}
            other => die(&format!("warm-up `{label}` answered {other:?}")),
        }
    }
    // Balance gate: each shard's routed-request counter covers exactly
    // the kernels the partition map assigns it (the warm-up is the only
    // traffic so far).
    let scrape = http_get(server.addr, "/metrics").body;
    for (i, &expected) in owned.iter().enumerate() {
        let routed = metric(&scrape, &format!("ioopt_shard_requests{{shard=\"{i}\"}}"));
        if routed != expected {
            die(&format!(
                "shard balance: shard {i} was routed {routed} request(s), \
                 the partition map predicts {expected}"
            ));
        }
    }
    println!("shards: routed-request balance matches the partition map");

    // Storm the mix; mid-storm, kill -9 the shard owning the mix's first
    // kernel. Only that partition may shed; the supervisor must respawn
    // it before the gate below.
    let victim = owner(MIX[0]);
    println!(
        "storm: {} connections for {duration_secs}s against {} ({shards} shards)",
        args.connections, server.addr
    );
    let storm = std::thread::spawn({
        let connections = args.connections;
        let addr = server.addr;
        move || loadclient::drive_for(addr, MIX, connections, duration)
    });
    std::thread::sleep(duration / 2);
    let pid = server.shard_pids[victim];
    println!("storm: kill -9 shard {victim} (pid {pid}) mid-storm");
    let status = Command::new("kill")
        .args(["-9", &pid.to_string()])
        .status()
        .unwrap_or_else(|e| die(&format!("run kill: {e}")));
    if !status.success() {
        die(&format!("kill -9 {pid} failed"));
    }
    let report = storm.join().expect("storm thread panicked");
    println!(
        "storm: {} requests ok, {} failed-or-shed during the kill window",
        report.sorted_us.len(),
        report.failures
    );

    // The supervisor must have the victim back up (respawned, counted).
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let scrape = http_get(server.addr, "/metrics").body;
        let respawned = metric(&scrape, "ioopt_serve_shards_respawned");
        let up = metric(&scrape, &format!("ioopt_shard_up{{shard=\"{victim}\"}}"));
        if respawned >= 1 && up == 1 {
            break;
        }
        if Instant::now() >= deadline {
            die(&format!(
                "shard {victim} was never respawned (respawned={respawned}, up={up})"
            ));
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    println!("storm: shard {victim} respawned; fleet healthy");

    // Graceful fleet drain, then a cold fleet restart on the same
    // directory: each shard must warm-start from its own partition.
    let _ = loadclient::try_post(server.addr, "/shutdown", "");
    let _ = server.child.wait();
    let mut server = spawn_server(&args.server_bin, &cache_dir, shards);
    for label in &corpus {
        match loadclient::try_post(server.addr, "/analyze", &loadclient::request_body(label)) {
            Some(200) => {}
            other => die(&format!("restart pass `{label}` answered {other:?}")),
        }
    }
    let mut failed = false;
    for (i, &owns) in owned.iter().enumerate() {
        let body = http_get(server.addr, &format!("/shards/{i}/metrics")).body;
        let hits = metric(&body, "ioopt_store_hits");
        // The kill -9 forfeits at most one torn trailing frame in the
        // victim's partition; every other shard drained cleanly.
        let expected = owns.saturating_sub(u64::from(i == victim));
        println!("warm restart: shard {i} store hits {hits} (owns {owns} corpus kernel(s))");
        if hits < expected {
            eprintln!(
                "loadgen: FAIL — shard {i} warm-restarted with {hits} store hit(s), \
                 expected at least {expected} for its partition"
            );
            failed = true;
        }
    }
    let _ = loadclient::try_post(server.addr, "/shutdown", "");
    let _ = server.child.wait();
    if failed {
        std::process::exit(1);
    }
    println!("loadgen: every shard warm-restarted from its own partition");
    std::process::exit(0);
}

fn main() {
    let args = parse_args();
    if let Some(duration_secs) = args.duration_secs {
        if args.shards > 1 {
            run_sharded(&args, duration_secs, args.shards);
        }
        run_sustained(&args, duration_secs);
    }

    // Cold baseline: the same kernels once, single-shot, from an empty
    // cache — the hit ratio a one-off `ioopt batch` run would see.
    let cold_ratio = if args.addr.is_none() {
        reset_memo();
        let zero = memo_stats();
        let items: Vec<_> = MIX
            .iter()
            .map(|k| corpus_item(k).unwrap_or_else(|| die(&format!("unknown builtin `{k}`"))))
            .collect();
        let report = run_batch(
            &items,
            &BatchOptions {
                cache_elems: SNAPSHOT_CACHE,
                numeric: false,
                ..BatchOptions::default()
            },
        );
        if report.rows.iter().any(|r| r.error.is_some()) {
            die("cold baseline batch reported an error row");
        }
        let cold = memo_stats().delta(&zero);
        println!(
            "cold batch: {} kernels, memo hits {} misses {} (ratio {:.3})",
            MIX.len(),
            cold.hits,
            cold.misses,
            cold.hit_ratio()
        );
        Some(cold.hit_ratio())
    } else {
        None
    };

    // The server under load: in-process unless --addr points elsewhere.
    let local = if args.addr.is_none() {
        Some(
            Server::bind(
                "127.0.0.1:0",
                ServeOptions::default(),
                analysis_handler(ServiceDefaults::default()),
            )
            .unwrap_or_else(|e| die(&format!("bind: {e}"))),
        )
    } else {
        None
    };
    let addr = args
        .addr
        .or_else(|| local.as_ref().map(Server::addr))
        .expect("an address either way");

    let warm_base = memo_stats();
    let report = loadclient::drive(addr, MIX, args.connections, args.requests);
    if let Some(server) = local {
        server.shutdown();
    }

    let completed = report.sorted_us.len();
    println!(
        "load: {completed} requests, {} connections, {:.2} s wall, {:.1} req/s",
        args.connections,
        report.wall.as_secs_f64(),
        completed as f64 / report.wall.as_secs_f64()
    );
    println!(
        "latency: p50 {:.1} ms, p99 {:.1} ms, max {:.1} ms",
        report.percentile(0.50) as f64 / 1e3,
        report.percentile(0.99) as f64 / 1e3,
        report.percentile(1.0) as f64 / 1e3
    );

    let failures = report.failures;
    if failures > 0 {
        eprintln!("loadgen: FAIL — {failures} request(s) did not answer 200");
        std::process::exit(1);
    }
    if let Some(cold_ratio) = cold_ratio {
        let warm = memo_stats().delta(&warm_base);
        println!(
            "warm storm: memo hits {} misses {} (ratio {:.3})",
            warm.hits,
            warm.misses,
            warm.hit_ratio()
        );
        if warm.hit_ratio() <= cold_ratio {
            eprintln!(
                "loadgen: FAIL — warm hit ratio {:.3} is not above the cold batch's {:.3}; \
                 the shared memo cache is not persisting across served requests",
                warm.hit_ratio(),
                cold_ratio
            );
            std::process::exit(1);
        }
        println!(
            "memo: warm ratio {:.3} > cold ratio {:.3} — cache persists across requests",
            warm.hit_ratio(),
            cold_ratio
        );
    }
}
