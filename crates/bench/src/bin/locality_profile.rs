//! Locality-profile validation: one Mattson stack-distance pass over a
//! concrete schedule's trace yields its LRU miss curve for *all* cache
//! sizes, which is then compared against the analytic LB(S)/UB(S)
//! curves. A fixed schedule is optimal only near the cache size it was
//! tiled for — the analytic curves (which re-tile per S) lower-envelope
//! the whole family of fixed schedules.

use std::collections::HashMap;

use ioopt::cachesim::{stack_distances, TiledLoopNest};
use ioopt::ir::kernels;
use ioopt::symbolic::Symbol;
use ioopt::{analyze, symbolic_lb, AnalysisOptions};
use ioopt_bench::print_table;

fn main() {
    let kernel = kernels::matmul();
    let n = 64i64;
    let sizes = HashMap::from([
        ("i".to_string(), n),
        ("j".to_string(), n),
        ("k".to_string(), n),
    ]);
    let tiled_for = 512.0;

    let a = analyze(&kernel, &sizes, &AnalysisOptions::with_cache(tiled_for)).expect("pipeline");
    let nest = TiledLoopNest::new(
        &kernel,
        &sizes,
        &a.recommendation.perm,
        &a.recommendation.tiles,
    )
    .expect("valid nest");
    let trace = nest.trace();
    let sd = stack_distances(&trace);
    println!(
        "matmul {n}^3, schedule tiled for S = {tiled_for}; trace = {} refs, {} cold\n",
        sd.total, sd.cold
    );

    let lb = symbolic_lb(&kernel).expect("lb");
    let mut rows = Vec::new();
    for cap in [128usize, 256, 512, 640, 1024, 2048, 8192] {
        let mut env = kernel.bind_sizes(&sizes);
        env.insert(Symbol::new("S"), cap as f64);
        let lb_v = lb.combined.eval_f64(&env).expect("evaluates");
        let sim = sd.misses_at(cap) as f64;
        rows.push(vec![
            cap.to_string(),
            format!("{lb_v:.3e}"),
            format!("{sim:.3e}"),
            format!("{:.2}", sim / lb_v),
        ]);
        assert!(
            sim >= lb_v * 0.999,
            "schedule beat the lower bound at S = {cap} — unsound!"
        );
    }
    print_table(&["S", "LB(S)", "LRU misses (one pass)", "ratio"], &rows);
    println!(
        "\nThe fixed schedule tracks the bound near its design point (S = {tiled_for})\n\
         and drifts above it elsewhere — re-tiling per S is what the UB curve models."
    );
}
