//! Machine-balance analysis (paper §1): compares each kernel's best
//! achievable *operational intensity* (flops per element moved, at the
//! optimal tiling for the paper's L2) with the i9-7940X machine balance,
//! predicting which benchmarks are compute- vs memory-bound.

use ioopt::cachesim::MachineModel;
use ioopt::{analyze, AnalysisOptions};
use ioopt_bench::{print_table, tccg_cases, yolo_cases};

fn main() {
    let machine = MachineModel::i9_7940x();
    // Machine balance vs DRAM: flops per element of DRAM traffic.
    let balance = machine.peak_flops / (machine.bandwidths[2] / machine.element_bytes);
    println!(
        "i9-7940X machine balance (vs DRAM): {balance:.1} flop/element\n\
         Kernels above the balance can run compute-bound; below it, the\n\
         memory bus limits them no matter how good the tiling.\n"
    );
    let s = machine.capacities_elems()[2]; // last-level cache
    let mut rows = Vec::new();
    let mut cases: Vec<(
        String,
        ioopt::ir::Kernel,
        std::collections::HashMap<String, i64>,
    )> = Vec::new();
    for (k, sizes) in tccg_cases().into_iter().take(4) {
        cases.push((format!("TC-{}", k.name()), k, sizes));
    }
    for (layer, k, sizes) in yolo_cases().into_iter().step_by(3) {
        cases.push((layer.name.to_string(), k, sizes));
    }
    for (name, kernel, sizes) in &cases {
        let a = match analyze(kernel, sizes, &AnalysisOptions::with_cache(s)) {
            Ok(a) => a,
            Err(e) => {
                ioopt::obs::log_block(&format!("{name}: {e}"));
                continue;
            }
        };
        let verdict = if a.operational_intensity >= balance {
            "compute-bound"
        } else {
            "memory-bound"
        };
        rows.push(vec![
            name.clone(),
            format!("{:.1}", a.operational_intensity),
            verdict.to_string(),
        ]);
    }
    print_table(&["kernel", "intensity (flop/elem)", "at LLC tiling"], &rows);
}
