//! The paper's §2 worked example on matrix multiplication: cost model,
//! footprint constraint, TileOpt solution at Ni = 2000, Nj = Nk = 1500,
//! S = 1024, symbolic UB, and symbolic LB.

use std::collections::HashMap;

use ioopt::ioub::{cost_with_levels, explain_cost, TilingSchedule};
use ioopt::ir::kernels;
use ioopt::tileopt::{optimize_schedule, TileOptConfig};
use ioopt::{analyze, render_text, symbolic_tc_ub, AnalysisOptions};

fn main() {
    let k = kernels::matmul();
    println!("== Listing 1 schedule ((i, j, k), Tk = 1) ==");
    let sched = TilingSchedule::parametric(&k, &["i", "j", "k"])
        .expect("valid permutation")
        .pin_one(&k, "k");
    let cost = cost_with_levels(&k, &sched, &[1, 1, 1]);
    println!("IO        = {}", cost.io);
    println!("footprint = {}  <=  S", cost.footprint);
    println!(
        "\n-- cost breakdown --\n{}",
        explain_cost(&k, &sched, &cost)
    );

    let sizes = HashMap::from([
        ("i".to_string(), 2000i64),
        ("j".to_string(), 1500),
        ("k".to_string(), 1500),
    ]);
    println!("\n== TileOpt at Ni = 2000, Nj = Nk = 1500, S = 1024 ==");
    let config = TileOptConfig {
        cache_elems: 1024.0,
        max_level_combos: 512,
        threads: 1,
    };
    let env = k.bind_sizes(&sizes);
    let full = TilingSchedule::parametric(&k, &["i", "j", "k"]).expect("valid");
    let rec = optimize_schedule(&k, &full, &env, &sizes, &config)
        .expect("no evaluation error")
        .expect("feasible");
    println!(
        "paper schedule: Ti = {}, Tj = {}, Tk = {}, UB = {:.0} (paper: Ti = Tj = 31)",
        rec.tiles["i"], rec.tiles["j"], rec.tiles["k"], rec.io
    );

    println!("\n== Symbolic bounds ==");
    let mm = kernels::tensor_contraction("matmul(ab-ac-cb)", "ab-ac-cb");
    let ub = symbolic_tc_ub(&mm).expect("matmul is a TC");
    println!("Delta = {}", ub.delta);
    println!("UB(S) = {}", ub.bound);

    println!("\n== Full pipeline report ==");
    let a = analyze(&k, &sizes, &AnalysisOptions::with_cache(1024.0)).expect("analysis");
    print!("{}", render_text(&a));
}
