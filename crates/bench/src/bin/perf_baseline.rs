//! The repo's perf trajectory: measures per-kernel analysis latency over
//! the 19-kernel builtin corpus, serve p50/p99 through the same
//! in-process path `loadgen` drives, and allocation counts (exact when
//! built with the bench-only `count-alloc` feature), then emits
//! `BENCH_perf.json` and optionally gates the run against a committed
//! baseline.
//!
//!     cargo run --release -p ioopt-bench --features count-alloc \
//!         --bin perf_baseline -- [--ci] [--out PATH] [--check BASELINE]
//!
//! * `--ci` — reduced sizes so the run finishes in well under a minute
//!   even on one core: the kernel phase covers the 8 TCCG contractions
//!   plus one representative Yolo9000 conv layer, and the serve storm
//!   shrinks to a TCCG-only mix. The committed `BENCH_perf.json` is
//!   recorded in this mode so the CI gate compares like with like; full
//!   mode (the default) measures the whole 19-kernel corpus and the same
//!   serve mix `loadgen` uses.
//! * `--out PATH` — where to write the report (default `BENCH_perf.json`).
//! * `--check BASELINE` — compare against a previously committed report;
//!   exit 1 if latency or allocations regressed more than the thresholds
//!   (15% relative, plus a small absolute slack on wall-clock metrics so
//!   sub-millisecond kernels don't flap on scheduler noise).
//!
//! Exit status: 0 ok, 1 regression or failed requests, 2 usage/IO error.

use std::time::Instant;

use ioopt::{
    analysis_handler, builtin_corpus, install_row_store, memo_stats, reset_memo, row_store_stats,
    run_batch, uninstall_row_store, BatchItem, BatchOptions, Json, ServiceDefaults,
};
use ioopt_bench::{alloc_count, loadclient, print_table};
use ioopt_serve::{ServeOptions, Server};

/// Relative regression budget on every gated metric.
const REL_BUDGET: f64 = 0.15;

struct Args {
    ci: bool,
    out: String,
    check: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        ci: false,
        out: "BENCH_perf.json".to_string(),
        check: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| die(&format!("{name} needs a value")))
        };
        match flag.as_str() {
            "--ci" => args.ci = true,
            "--out" => args.out = value("--out"),
            "--check" => args.check = Some(value("--check")),
            "--help" | "-h" => {
                eprintln!("usage: perf_baseline [--ci] [--out PATH] [--check BASELINE]");
                std::process::exit(0);
            }
            other => die(&format!("unknown flag `{other}`")),
        }
    }
    args
}

fn die(message: &str) -> ! {
    eprintln!("perf_baseline: {message}");
    std::process::exit(2);
}

struct KernelSample {
    kernel: String,
    cold_us: u64,
    warm_us: u64,
    allocs: u64,
    alloc_bytes: u64,
}

/// One timed single-kernel batch run (jobs=1 so allocation counts are
/// deterministic), returning the wall micros and the allocation delta.
fn run_one(item: &BatchItem, options: &BatchOptions) -> (u64, u64, u64) {
    let before = alloc_count::snapshot();
    let started = Instant::now();
    let report = run_batch(std::slice::from_ref(item), options);
    let micros = started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
    let after = alloc_count::snapshot();
    for row in &report.rows {
        if let Some(error) = &row.error {
            die(&format!("kernel {}: {error}", row.kernel));
        }
    }
    let (allocs, bytes) = alloc_count::delta(before, after);
    (micros, allocs, bytes)
}

/// The kernel set a mode measures: everything in CI mode would blow the
/// one-minute budget on a single core (a Yolo layer costs seconds of
/// symbolic derivation), so `--ci` keeps the 8 TCCG contractions plus
/// one representative conv layer.
fn corpus(ci: bool) -> Vec<BatchItem> {
    builtin_corpus()
        .into_iter()
        .filter(|item| !ci || !item.label.starts_with("Yolo9000") || item.label == "Yolo9000-0")
        .collect()
}

/// Per-kernel cold+warm latency and cold allocation counts, in corpus
/// order (fixed, so process-global warm-up — symbol registry, term
/// arena — lands on the same kernels every run). Symbolic-only: the
/// parametric derivation is the inner loop the arena optimizes, and the
/// numeric tile search would multiply the runtime ~2x without exercising
/// different expression paths.
fn measure_kernels(ci: bool) -> Vec<KernelSample> {
    let options = BatchOptions {
        cache_elems: loadclient::SNAPSHOT_CACHE,
        jobs: 1,
        numeric: false,
        ..BatchOptions::default()
    };
    corpus(ci)
        .iter()
        .map(|item| {
            // Two cold/warm cycles, keeping the faster of each: scheduler
            // noise only ever inflates a measurement on a shared runner,
            // so the minimum is the stable statistic to gate on. "Cold"
            // means a cleared analysis memo; the process-global term arena
            // stays warm, identically for baseline and candidate runs. The
            // allocation counts are deterministic (jobs=1) — first cycle's.
            let mut sample = KernelSample {
                kernel: item.label.clone(),
                cold_us: u64::MAX,
                warm_us: u64::MAX,
                allocs: 0,
                alloc_bytes: 0,
            };
            for cycle in 0..2 {
                reset_memo();
                let (cold_us, allocs, alloc_bytes) = run_one(item, &options);
                let (warm_us, _, _) = run_one(item, &options);
                sample.cold_us = sample.cold_us.min(cold_us);
                sample.warm_us = sample.warm_us.min(warm_us);
                if cycle == 0 {
                    sample.allocs = allocs;
                    sample.alloc_bytes = alloc_bytes;
                }
            }
            sample
        })
        .collect()
}

struct ServeSample {
    connections: usize,
    requests: usize,
    p50_us: u64,
    p99_us: u64,
    max_us: u64,
}

/// Serve latency through the same in-process server + request path that
/// `loadgen` drives. CI mode shrinks to a TCCG-only mix and fewer
/// requests so the storm stays inside the one-minute budget on one core.
fn measure_serve(ci: bool) -> ServeSample {
    let (connections, requests) = if ci { (2, 36) } else { (4, 120) };
    let mix: &[&str] = if ci {
        &loadclient::MIX[..3]
    } else {
        loadclient::MIX
    };
    // Two independent storms, element-wise minimum — the same statistic
    // the kernel loop uses. Scheduler noise on a one-core box only ever
    // inflates a percentile, so the min across storms is the stable
    // number to gate on (the second storm also runs against the warm
    // term arena, exactly like a candidate run would).
    let mut sample = ServeSample {
        connections,
        requests,
        p50_us: u64::MAX,
        p99_us: u64::MAX,
        max_us: u64::MAX,
    };
    for storm in 0..2 {
        reset_memo();
        let server = Server::bind(
            "127.0.0.1:0",
            ServeOptions::default(),
            analysis_handler(ServiceDefaults::default()),
        )
        .unwrap_or_else(|e| die(&format!("bind: {e}")));
        let report = loadclient::drive(server.addr(), mix, connections, requests);
        server.shutdown();
        if report.failures > 0 {
            eprintln!(
                "perf_baseline: FAIL — {} request(s) did not answer 200 (storm {storm})",
                report.failures
            );
            std::process::exit(1);
        }
        println!(
            "serve storm {storm}: {requests} requests, {connections} connections, \
             {:.2} s wall, {:.1} req/s",
            report.wall.as_secs_f64(),
            report.sorted_us.len() as f64 / report.wall.as_secs_f64()
        );
        sample.p50_us = sample.p50_us.min(report.percentile(0.50));
        sample.p99_us = sample.p99_us.min(report.percentile(0.99));
        sample.max_us = sample.max_us.min(report.percentile(1.0));
    }
    sample
}

struct StoreSample {
    kernels: usize,
    warm_restart_hit_ratio: f64,
    replay_us: u64,
}

/// Persistent-store warm restart through the real row tier: a cold batch
/// writes through to a scratch `--cache-dir`, reinstalling the store
/// simulates a process restart (flush, clear the in-memory memo,
/// reopen), and the timed second pass must replay byte-identically from
/// disk. The hit ratio of that first post-restart pass is the number the
/// sustained-storm `loadgen` mode gates on; recording it here gives the
/// trajectory a committed reference point.
fn measure_store(ci: bool) -> StoreSample {
    let dir = std::env::temp_dir().join(format!("ioopt-perfstore-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let items = corpus(ci);
    let options = BatchOptions {
        cache_elems: loadclient::SNAPSHOT_CACHE,
        jobs: 1,
        numeric: false,
        ..BatchOptions::default()
    };
    reset_memo();
    install_row_store(&dir);
    let cold = run_batch(&items, &options);
    uninstall_row_store();
    reset_memo();
    install_row_store(&dir);
    let before = row_store_stats().unwrap_or_else(|| die("row store not installed"));
    let started = Instant::now();
    let warm = run_batch(&items, &options);
    let replay_us = started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
    if warm.to_json() != cold.to_json() {
        die("store replay diverged from the cold run");
    }
    let delta = row_store_stats()
        .unwrap_or_else(|| die("row store not installed"))
        .delta(&before);
    uninstall_row_store();
    let _ = std::fs::remove_dir_all(&dir);
    let lookups = delta.hits + delta.misses;
    StoreSample {
        kernels: items.len(),
        warm_restart_hit_ratio: if lookups == 0 {
            0.0
        } else {
            delta.hits as f64 / lookups as f64
        },
        replay_us,
    }
}

/// Terms interned process-wide by the symbolic arena at measurement end.
fn interned_terms() -> u64 {
    ioopt::symbolic::intern_stats().terms
}

/// The shard count the CI fleet storm runs with (`loadgen --shards 3`).
const SHARD_COUNT: usize = 3;

/// The partition map `ioopt serve --shards 3` would route the full
/// corpus by (`route_hash % 3` per kernel — structural, so e.g. every
/// same-shaped Yolo9000 layer lands on one shard). Purely derived and
/// never gated; committing it makes routing changes show up in the
/// baseline diff instead of silently remapping every shard's store.
fn corpus_partition() -> Vec<i64> {
    let mut owned = vec![0i64; SHARD_COUNT];
    for item in builtin_corpus() {
        let body = loadclient::request_body(&item.label);
        owned[(ioopt::route_hash(&body) % SHARD_COUNT as u64) as usize] += 1;
    }
    owned
}

fn render_report(
    ci: bool,
    kernels: &[KernelSample],
    serve: &ServeSample,
    store: &StoreSample,
) -> Json {
    let totals = kernels.iter().fold((0u64, 0u64, 0u64, 0u64), |t, k| {
        (
            t.0 + k.cold_us,
            t.1 + k.warm_us,
            t.2 + k.allocs,
            t.3 + k.alloc_bytes,
        )
    });
    Json::obj([
        ("schema", Json::str("ioopt-perf/v1")),
        ("mode", Json::str(if ci { "ci" } else { "full" })),
        ("alloc_counting", Json::Bool(alloc_count::enabled())),
        (
            "kernels",
            Json::Array(
                kernels
                    .iter()
                    .map(|k| {
                        Json::obj([
                            ("kernel", Json::str(k.kernel.clone())),
                            ("cold_us", Json::Int(k.cold_us as i64)),
                            ("warm_us", Json::Int(k.warm_us as i64)),
                            ("allocs", Json::Int(k.allocs as i64)),
                            ("alloc_bytes", Json::Int(k.alloc_bytes as i64)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "serve",
            Json::obj([
                ("connections", Json::Int(serve.connections as i64)),
                ("requests", Json::Int(serve.requests as i64)),
                ("p50_us", Json::Int(serve.p50_us as i64)),
                ("p99_us", Json::Int(serve.p99_us as i64)),
                ("max_us", Json::Int(serve.max_us as i64)),
            ]),
        ),
        // Additive — `check_against` gates only the named fields above,
        // so the store block informs the trajectory without flapping CI.
        (
            "store",
            Json::obj([
                ("kernels", Json::Int(store.kernels as i64)),
                (
                    "warm_restart_hit_ratio",
                    Json::Num(store.warm_restart_hit_ratio),
                ),
                ("replay_us", Json::Int(store.replay_us as i64)),
            ]),
        ),
        // Additive and ungated, like `store`: the fleet's partition map.
        (
            "shards",
            Json::obj([
                ("count", Json::Int(SHARD_COUNT as i64)),
                (
                    "corpus_partition",
                    Json::Array(corpus_partition().into_iter().map(Json::Int).collect()),
                ),
            ]),
        ),
        (
            "totals",
            Json::obj([
                ("cold_us", Json::Int(totals.0 as i64)),
                ("warm_us", Json::Int(totals.1 as i64)),
                ("allocs", Json::Int(totals.2 as i64)),
                ("alloc_bytes", Json::Int(totals.3 as i64)),
                ("interned_terms", Json::Int(interned_terms() as i64)),
            ]),
        ),
    ])
}

fn field_i64(value: &Json, path: &[&str]) -> i64 {
    let mut cursor = value;
    for key in path {
        cursor = cursor
            .get(key)
            .unwrap_or_else(|| die(&format!("baseline is missing `{}`", path.join("."))));
    }
    cursor
        .as_i64()
        .unwrap_or_else(|| die(&format!("baseline `{}` is not an integer", path.join("."))))
}

/// One gated comparison: fails when `current > baseline * (1 + 15%) +
/// slack`. Allocation counts are deterministic (jobs=1) and carry the
/// tight gate with near-zero slack — they are the real regression
/// detector. Wall-clock on a shared one-core runner swings up to ~30%
/// between back-to-back runs even on the min-of-two statistic, so its
/// absolute slack is sized to that observed spread: the wall-clock legs
/// are a backstop that only trips on gross (roughly half-again-or-worse)
/// slowdowns, not a precision instrument.
fn gate(failures: &mut usize, metric: &str, baseline: i64, current: i64, slack: i64) {
    let limit = baseline + (baseline as f64 * REL_BUDGET).ceil() as i64 + slack;
    if current > limit {
        *failures += 1;
        eprintln!(
            "perf_baseline: REGRESSION {metric}: {current} > limit {limit} (baseline {baseline} + {:.0}% + {slack})",
            REL_BUDGET * 100.0
        );
    } else {
        println!("perf_baseline: ok {metric}: {current} <= limit {limit} (baseline {baseline})");
    }
}

fn check_against(baseline_path: &str, current: &Json) {
    let text = std::fs::read_to_string(baseline_path)
        .unwrap_or_else(|e| die(&format!("read {baseline_path}: {e}")));
    let baseline = Json::parse(&text).unwrap_or_else(|e| die(&format!("{baseline_path}: {e}")));
    if baseline.get("schema").and_then(Json::as_str) != Some("ioopt-perf/v1") {
        die(&format!("{baseline_path}: not an ioopt-perf/v1 report"));
    }
    if baseline.get("mode") != current.get("mode") {
        die(&format!(
            "{baseline_path}: baseline mode {:?} does not match this run's {:?}; \
             re-run with matching --ci",
            baseline.get("mode").and_then(Json::as_str),
            current.get("mode").and_then(Json::as_str)
        ));
    }
    let mut failures = 0usize;
    gate(
        &mut failures,
        "totals.cold_us",
        field_i64(&baseline, &["totals", "cold_us"]),
        field_i64(current, &["totals", "cold_us"]),
        2_000_000,
    );
    gate(
        &mut failures,
        "totals.warm_us",
        field_i64(&baseline, &["totals", "warm_us"]),
        field_i64(current, &["totals", "warm_us"]),
        2_000_000,
    );
    gate(
        &mut failures,
        "serve.p50_us",
        field_i64(&baseline, &["serve", "p50_us"]),
        field_i64(current, &["serve", "p50_us"]),
        50_000,
    );
    gate(
        &mut failures,
        "serve.p99_us",
        field_i64(&baseline, &["serve", "p99_us"]),
        field_i64(current, &["serve", "p99_us"]),
        120_000,
    );
    let both_counting = baseline.get("alloc_counting") == Some(&Json::Bool(true))
        && current.get("alloc_counting") == Some(&Json::Bool(true));
    if both_counting {
        gate(
            &mut failures,
            "totals.allocs",
            field_i64(&baseline, &["totals", "allocs"]),
            field_i64(current, &["totals", "allocs"]),
            1_000,
        );
    } else {
        println!("perf_baseline: skip totals.allocs (a side was built without count-alloc)");
    }
    let empty = Vec::new();
    let base_kernels = baseline
        .get("kernels")
        .and_then(Json::as_array)
        .unwrap_or(&empty);
    for row in current
        .get("kernels")
        .and_then(Json::as_array)
        .unwrap_or(&empty)
    {
        let name = row
            .get("kernel")
            .and_then(Json::as_str)
            .unwrap_or_else(|| die("current report row without kernel name"));
        let Some(base_row) = base_kernels
            .iter()
            .find(|b| b.get("kernel").and_then(Json::as_str) == Some(name))
        else {
            println!("perf_baseline: skip {name} (not in baseline)");
            continue;
        };
        gate(
            &mut failures,
            &format!("{name}.cold_us"),
            field_i64(base_row, &["cold_us"]),
            field_i64(row, &["cold_us"]),
            1_500_000,
        );
        if both_counting {
            gate(
                &mut failures,
                &format!("{name}.allocs"),
                field_i64(base_row, &["allocs"]),
                field_i64(row, &["allocs"]),
                1_000,
            );
        }
    }
    if failures > 0 {
        eprintln!("perf_baseline: FAIL — {failures} metric(s) regressed past the gate");
        std::process::exit(1);
    }
    println!("perf_baseline: all gated metrics within budget vs {baseline_path}");
}

fn main() {
    let args = parse_args();
    if !alloc_count::enabled() {
        eprintln!(
            "perf_baseline: note — built without `count-alloc`; allocation counts will read 0"
        );
    }

    let kernels = measure_kernels(args.ci);
    let serve = measure_serve(args.ci);
    let warm = memo_stats();
    let store = measure_store(args.ci);
    let report = render_report(args.ci, &kernels, &serve, &store);

    print_table(
        &["kernel", "cold_us", "warm_us", "allocs", "alloc_kb"],
        &kernels
            .iter()
            .map(|k| {
                vec![
                    k.kernel.clone(),
                    k.cold_us.to_string(),
                    k.warm_us.to_string(),
                    k.allocs.to_string(),
                    (k.alloc_bytes / 1024).to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!(
        "serve: p50 {:.1} ms, p99 {:.1} ms, max {:.1} ms",
        serve.p50_us as f64 / 1e3,
        serve.p99_us as f64 / 1e3,
        serve.max_us as f64 / 1e3
    );
    println!(
        "memo after storm: hits {} misses {} (ratio {:.3})",
        warm.hits,
        warm.misses,
        warm.hit_ratio()
    );
    println!(
        "store: warm-restart hit ratio {:.3} over {} kernels, replay {:.1} ms",
        store.warm_restart_hit_ratio,
        store.kernels,
        store.replay_us as f64 / 1e3
    );

    let rendered = format!("{report}\n");
    std::fs::write(&args.out, &rendered)
        .unwrap_or_else(|e| die(&format!("write {}: {e}", args.out)));
    println!("perf_baseline: wrote {}", args.out);

    if let Some(baseline) = &args.check {
        check_against(baseline, &report);
    }
}
