//! Validation experiment (DESIGN.md §4, "additional"): how close do real
//! replacement policies get to IOOpt's pebble-game cost model?
//!
//! For the recommended tiling of a matmul instance, we compare the model's
//! predicted I/O against the simulated misses under Belady's OPT and
//! under LRU, across a range of cache sizes. The model assumes explicit
//! placement (the red-white pebble game), so:
//!
//! `LB ≤ OPT(misses) ≈ model UB ≤ LRU(misses)` — with LRU needing ~15-25%
//! slack capacity to match (the classic "LRU is (1+ε)-competitive with
//! resource augmentation" effect).

use std::collections::HashMap;

use ioopt::cachesim::{lru_misses, opt_misses, TiledLoopNest};
use ioopt::ir::kernels;
use ioopt::{analyze, AnalysisOptions};
use ioopt_bench::print_table;

fn main() {
    let kernel = kernels::matmul();
    let n = 64i64;
    let sizes = HashMap::from([
        ("i".to_string(), n),
        ("j".to_string(), n),
        ("k".to_string(), n),
    ]);
    println!("Replacement-policy validation on matmul {n}^3\n");
    let mut rows = Vec::new();
    for cache in [128usize, 256, 512, 1024] {
        let a =
            analyze(&kernel, &sizes, &AnalysisOptions::with_cache(cache as f64)).expect("pipeline");
        let nest = TiledLoopNest::new(
            &kernel,
            &sizes,
            &a.recommendation.perm,
            &a.recommendation.tiles,
        )
        .expect("valid nest");
        let trace = nest.trace();
        let opt = opt_misses(&trace, cache) as f64;
        let lru = lru_misses(&trace, cache) as f64;
        let lru_slack = lru_misses(&trace, cache + cache / 4) as f64;
        rows.push(vec![
            cache.to_string(),
            format!("{:.3e}", a.lb),
            format!("{:.3e}", a.ub),
            format!("{opt:.3e}"),
            format!("{lru:.3e}"),
            format!("{lru_slack:.3e}"),
        ]);
        assert!(opt >= a.lb * 0.999, "OPT beat the lower bound — unsound!");
    }
    print_table(&["S", "LB", "model UB", "OPT", "LRU", "LRU @1.25S"], &rows);
    println!("\nOPT tracks the model closely; plain LRU needs ~25% extra capacity");
    println!("(the pebble game controls placement explicitly; LRU does not).");
}
