//! # ioopt-bench
//!
//! The experiment harness: one binary per table and figure of the paper
//! (see `DESIGN.md` §4 for the index), plus Criterion benches for the
//! tool's own runtime.
//!
//! Binaries (run with `cargo run --release -p ioopt-bench --bin <name>`):
//!
//! * `overview_matmul` — the §2 worked example;
//! * `fig3_conv_bl` — Brascamp-Lieb derivation on the 2D convolution;
//! * `fig4_yolo_layers` — the Yolo9000 layer table;
//! * `fig5_tccg_classes` — the derived TCCG class table;
//! * `fig6_parametric_bounds` — parametric LB/UB expressions;
//! * `fig7_bounds_vs_cache` — LB/UB curves over cache sizes (CSV);
//! * `fig8_tiling_eval` — tiling-recommendation evaluation;
//! * `ablation_lb_features` — reduction/small-dimension ablation.

#![warn(missing_docs)]

pub mod alloc_count;
pub mod loadclient;
pub mod plot;

use std::collections::HashMap;

use ioopt::ir::{kernels, Kernel};

/// The cache sweep of Fig. 7: `S ∈ {2^11, …, 2^19}` **elements**
/// (16 kB … 4 MB at 8 bytes per element, the paper's 2^14..2^22 bytes).
pub const CACHE_SWEEP_ELEMS: [f64; 9] = [
    2048.0, 4096.0, 8192.0, 16384.0, 32768.0, 65536.0, 131072.0, 262144.0, 524288.0,
];

/// All TCCG benchmark kernels with their Fig. 5 problem sizes.
pub fn tccg_cases() -> Vec<(Kernel, HashMap<String, i64>)> {
    kernels::TCCG
        .iter()
        .map(|e| (e.kernel(), e.size_map()))
        .collect()
}

/// All Yolo9000 layers with the shared conv2d kernel and their sizes.
pub fn yolo_cases() -> Vec<(kernels::YoloLayer, Kernel, HashMap<String, i64>)> {
    kernels::YOLO9000
        .iter()
        .map(|&l| (l, kernels::conv2d(), l.size_map()))
        .collect()
}

/// Formats a f64 like the paper's axes (engineering-ish).
pub fn fmt_sci(v: f64) -> String {
    format!("{v:.3e}")
}

/// Prints a simple aligned table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:<width$}  ", c, width = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_complete() {
        assert_eq!(tccg_cases().len(), 8);
        assert_eq!(yolo_cases().len(), 11);
        assert_eq!(CACHE_SWEEP_ELEMS.len(), 9);
    }
}
