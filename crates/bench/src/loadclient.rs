//! The shared serve-driving client: N connection threads posting a
//! mixed stream of analysis requests at a server, collecting per-request
//! client-side latency. Used by both `loadgen` (throughput/memo gate)
//! and `perf_baseline` (the committed p50/p99 trajectory), so the two
//! always measure the same request path the same way.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use ioopt_suite::testutil::http_post;

/// The kernels the load mix cycles: TCCG contractions and Yolo layers,
/// all symbolic at the snapshot cache size ([`SNAPSHOT_CACHE`] elements).
pub const MIX: &[&str] = &[
    "ab-ac-cb",
    "abc-bda-dc",
    "abcd-dbea-ec",
    "Yolo9000-0",
    "Yolo9000-12",
    "Yolo9000-23",
];

/// The cache size (elements) every mixed request analyzes at.
pub const SNAPSHOT_CACHE: f64 = 32768.0;

/// The `/analyze` request body for one builtin kernel of the mix.
pub fn request_body(kernel: &str) -> String {
    format!(r#"{{"kernels":["builtin:{kernel}"],"cache":{SNAPSHOT_CACHE},"symbolic_only":true}}"#)
}

/// What a load run observed, from the client side.
pub struct LoadReport {
    /// Per-request latency in microseconds, sorted ascending.
    pub sorted_us: Vec<u64>,
    /// Requests that did not answer HTTP 200.
    pub failures: usize,
    /// Wall-clock time of the whole storm.
    pub wall: Duration,
}

impl LoadReport {
    /// The latency percentile `p` in `0.0..=1.0` (nearest-rank).
    ///
    /// # Panics
    ///
    /// Panics if the report has no completed requests.
    pub fn percentile(&self, p: f64) -> u64 {
        percentile(&self.sorted_us, p)
    }
}

/// The latency percentile `p` in `0.0..=1.0` over a sorted sample
/// (nearest-rank; the largest sample for `p = 1.0`).
///
/// # Panics
///
/// Panics if `sorted_us` is empty.
pub fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    assert!(!sorted_us.is_empty(), "percentile of an empty sample");
    let rank = ((p * sorted_us.len() as f64).ceil() as usize).max(1);
    sorted_us[rank.min(sorted_us.len()) - 1]
}

/// Drives `requests` total requests over `connections` concurrent
/// threads, cycling each connection through `mix` (de-phased per
/// connection so concurrent requests hit different kernels). Failed
/// requests are reported per-request on stderr and tallied.
pub fn drive(addr: SocketAddr, mix: &[&str], connections: usize, requests: usize) -> LoadReport {
    assert!(connections > 0 && requests > 0, "empty load run");
    let failed = AtomicUsize::new(0);
    let started = Instant::now();
    let mut latencies_us: Vec<u64> = Vec::with_capacity(requests);
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..connections)
            .map(|c| {
                let failed = &failed;
                let share = requests / connections + usize::from(c < requests % connections);
                scope.spawn(move || {
                    let mut latencies_us = Vec::with_capacity(share);
                    for i in 0..share {
                        let body = request_body(mix[(c * 31 + i) % mix.len()]);
                        let sent = Instant::now();
                        let response = http_post(addr, "/analyze", &body);
                        latencies_us
                            .push(sent.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
                        if response.status != 200 {
                            failed.fetch_add(1, Ordering::Relaxed);
                            eprintln!(
                                "loadclient: connection {c} request {i}: HTTP {} — {}",
                                response.status, response.body
                            );
                        }
                    }
                    latencies_us
                })
            })
            .collect();
        for worker in workers {
            latencies_us.extend(worker.join().expect("load connection panicked"));
        }
    });
    let wall = started.elapsed();
    latencies_us.sort_unstable();
    LoadReport {
        sorted_us: latencies_us,
        failures: failed.load(Ordering::Relaxed),
        wall,
    }
}

/// One `/analyze` POST that *tolerates* transport failure, returning the
/// status code on success and `None` on a refused/reset connection. The
/// sustained storm kills the server mid-flight on purpose, so a broken
/// transport is the scenario under test there — unlike [`drive`], which
/// treats it as a harness bug and panics via `testutil`.
pub fn try_post(addr: SocketAddr, path: &str, body: &str) -> Option<u16> {
    let mut stream = TcpStream::connect(addr).ok()?;
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .ok()?;
    let head = format!(
        "POST {path} HTTP/1.1\r\nHost: load\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).ok()?;
    stream.write_all(body.as_bytes()).ok()?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).ok()?;
    let text = String::from_utf8_lossy(&raw);
    text.split_whitespace().nth(1).and_then(|s| s.parse().ok())
}

/// Drives the mix for a wall-clock `duration` over `connections`
/// threads, tolerating transport failures (the server may be killed and
/// restarted underneath the storm). Latencies are recorded for
/// successful (HTTP 200) requests; everything else — non-200 answers
/// and dead-transport attempts alike — counts as a failure. A dead
/// server costs each thread a short backoff per attempt, so the storm
/// keeps breathing until the deadline rather than spinning.
pub fn drive_for(
    addr: SocketAddr,
    mix: &[&str],
    connections: usize,
    duration: Duration,
) -> LoadReport {
    assert!(connections > 0, "empty load run");
    let failed = AtomicUsize::new(0);
    let started = Instant::now();
    let deadline = started + duration;
    let mut latencies_us: Vec<u64> = Vec::new();
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..connections)
            .map(|c| {
                let failed = &failed;
                scope.spawn(move || {
                    let mut latencies_us = Vec::new();
                    let mut i = 0usize;
                    while Instant::now() < deadline {
                        let body = request_body(mix[(c * 31 + i) % mix.len()]);
                        i += 1;
                        let sent = Instant::now();
                        match try_post(addr, "/analyze", &body) {
                            Some(200) => latencies_us
                                .push(sent.elapsed().as_micros().min(u128::from(u64::MAX)) as u64),
                            Some(_) | None => {
                                failed.fetch_add(1, Ordering::Relaxed);
                                std::thread::sleep(Duration::from_millis(50));
                            }
                        }
                    }
                    latencies_us
                })
            })
            .collect();
        for worker in workers {
            latencies_us.extend(worker.join().expect("load connection panicked"));
        }
    });
    let wall = started.elapsed();
    latencies_us.sort_unstable();
    LoadReport {
        sorted_us: latencies_us,
        failures: failed.load(Ordering::Relaxed),
        wall,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        let s = [10, 20, 30, 40];
        assert_eq!(percentile(&s, 0.0), 10);
        assert_eq!(percentile(&s, 0.25), 10);
        assert_eq!(percentile(&s, 0.5), 20);
        assert_eq!(percentile(&s, 0.99), 40);
        assert_eq!(percentile(&s, 1.0), 40);
    }
}
