//! Minimal ASCII chart rendering for the Fig. 7 curves.

/// Renders two series (`lb`, `ub`) against x-labels as a fixed-height
/// ASCII chart, log-scaled on y. Returns the chart as a string.
///
/// `L` marks lower-bound points, `U` upper-bound points, `*` overlapping
/// points — the paper's blue/orange curves.
pub fn ascii_chart(title: &str, xs: &[f64], lb: &[f64], ub: &[f64]) -> String {
    assert_eq!(xs.len(), lb.len());
    assert_eq!(xs.len(), ub.len());
    const HEIGHT: usize = 12;
    let cols = xs.len();
    let all: Vec<f64> = lb
        .iter()
        .chain(ub.iter())
        .copied()
        .filter(|v| *v > 0.0)
        .collect();
    let (ymin, ymax) = all
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(v), hi.max(v))
        });
    let (lmin, lmax) = (ymin.ln(), ymax.ln().max(ymin.ln() + 1e-9));
    let row_of = |v: f64| -> usize {
        let t = (v.ln() - lmin) / (lmax - lmin);
        ((1.0 - t) * (HEIGHT - 1) as f64).round() as usize
    };
    let mut grid = vec![vec![' '; cols * 3]; HEIGHT];
    for (i, (&l, &u)) in lb.iter().zip(ub).enumerate() {
        let col = i * 3 + 1;
        let rl = row_of(l);
        let ru = row_of(u);
        if rl == ru {
            grid[rl][col] = '*';
        } else {
            grid[rl][col] = 'L';
            grid[ru][col] = 'U';
        }
    }
    let mut out = String::new();
    out.push_str(&format!(
        "{title}  (y: {ymin:.2e}..{ymax:.2e}, log scale)\n"
    ));
    for (r, row) in grid.iter().enumerate() {
        let margin = if r == 0 {
            format!("{ymax:>9.1e} |")
        } else if r == HEIGHT - 1 {
            format!("{ymin:>9.1e} |")
        } else {
            format!("{:>9} |", "")
        };
        out.push_str(&margin);
        out.push_str(&row.iter().collect::<String>());
        out.push('\n');
    }
    out.push_str(&format!("{:>9} +{}\n", "", "-".repeat(cols * 3)));
    out.push_str(&format!(
        "{:>9}  {}\n",
        "log2(S)",
        xs.iter()
            .map(|&x| format!("{:>2}", (x.log2()).round() as i64))
            .collect::<Vec<_>>()
            .join(" ")
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chart_renders_marks() {
        let xs = [2048.0, 8192.0, 32768.0];
        let lb = [1e6, 5e5, 2e5];
        let ub = [2e6, 6e5, 2e5];
        let chart = ascii_chart("test", &xs, &lb, &ub);
        assert!(chart.contains('L'));
        assert!(chart.contains('U'));
        assert!(chart.contains('*')); // the overlapping last column
        assert!(chart.contains("log2(S)"));
    }

    #[test]
    fn flat_series_do_not_panic() {
        let xs = [1024.0, 2048.0];
        let lb = [5e5, 5e5];
        let ub = [5e5, 5e5];
        let chart = ascii_chart("flat", &xs, &lb, &ub);
        assert!(chart.matches('*').count() == 2);
    }
}
