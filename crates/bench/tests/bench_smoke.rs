//! Smoke test for the CI perf baseline: the reduced-size run must finish
//! well inside the CI budget and emit a schema-valid report.

use std::process::Command;
use std::time::Instant;

use ioopt_engine::Json;

#[test]
fn ci_mode_is_fast_and_schema_valid() {
    let out = std::env::temp_dir().join(format!("bench_smoke_{}.json", std::process::id()));
    let start = Instant::now();
    let status = Command::new(env!("CARGO_BIN_EXE_perf_baseline"))
        .args(["--ci", "--out"])
        .arg(&out)
        .status()
        .expect("spawn perf_baseline");
    let elapsed = start.elapsed();
    assert!(status.success(), "perf_baseline --ci failed: {status}");
    assert!(
        elapsed.as_secs() < 60,
        "CI perf baseline took {elapsed:?}, budget is one minute"
    );

    let text = std::fs::read_to_string(&out).expect("read report");
    let report = Json::parse(&text).expect("report is valid JSON");
    assert_eq!(
        report.get("schema").and_then(Json::as_str),
        Some("ioopt-perf/v1")
    );
    assert_eq!(report.get("mode").and_then(Json::as_str), Some("ci"));

    let kernels = report
        .get("kernels")
        .and_then(Json::as_array)
        .expect("kernels array");
    assert!(
        kernels.len() >= 9,
        "CI corpus should cover the TCCG kernels plus one Yolo layer"
    );
    for row in kernels {
        {
            let field = "kernel";
            assert!(row.get(field).is_some(), "kernel row missing {field}");
        }
        for field in ["cold_us", "warm_us", "allocs", "alloc_bytes"] {
            let v = row.get(field).and_then(Json::as_i64);
            assert!(v.is_some(), "kernel row missing numeric {field}");
            assert!(v.unwrap() >= 0, "{field} must be non-negative");
        }
        assert!(
            row.get("cold_us").and_then(Json::as_i64).unwrap() > 0,
            "cold analysis took zero time"
        );
    }

    let serve = report.get("serve").expect("serve block");
    for field in ["p50_us", "p99_us", "max_us", "requests", "connections"] {
        assert!(
            serve.get(field).and_then(Json::as_i64).is_some(),
            "serve block missing {field}"
        );
    }
    let totals = report.get("totals").expect("totals block");
    for field in [
        "cold_us",
        "warm_us",
        "allocs",
        "alloc_bytes",
        "interned_terms",
    ] {
        assert!(
            totals.get(field).and_then(Json::as_i64).is_some(),
            "totals block missing {field}"
        );
    }
    assert!(
        totals.get("interned_terms").and_then(Json::as_i64).unwrap() > 0,
        "the arena interned no terms over a 9-kernel corpus"
    );
    let _ = std::fs::remove_file(&out);
}
