//! LRU cache models: fully associative, set associative, and a
//! multi-level hierarchy.

use std::collections::HashMap;

/// Statistics of one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Number of lookups that reached this level.
    pub accesses: u64,
    /// Number of lookups that missed.
    pub misses: u64,
}

impl CacheStats {
    /// Hit ratio in `[0, 1]` (1.0 for an unused cache).
    pub fn hit_ratio(&self) -> f64 {
        if self.accesses == 0 {
            1.0
        } else {
            1.0 - self.misses as f64 / self.accesses as f64
        }
    }
}

/// A single cache level.
pub trait Cache {
    /// Touches `addr` (element granularity pre-divided into lines by the
    /// caller of the hierarchy); returns `true` on hit.
    fn access(&mut self, line: u64) -> bool;
    /// Statistics so far.
    fn stats(&self) -> CacheStats;
    /// Capacity in lines.
    fn capacity_lines(&self) -> usize;
}

/// Fully associative LRU cache — the paper's abstract fast memory of size
/// `S` (§3.3) at line granularity.
///
/// # Examples
///
/// ```
/// use ioopt_cachesim::{Cache, FullyAssocLru};
/// let mut c = FullyAssocLru::new(2);
/// assert!(!c.access(1)); // cold miss
/// assert!(!c.access(2));
/// assert!(c.access(1));  // hit
/// assert!(!c.access(3)); // evicts 2 (LRU)
/// assert!(!c.access(2));
/// ```
#[derive(Debug)]
pub struct FullyAssocLru {
    capacity: usize,
    clock: u64,
    // line -> last-use time; eviction scans a monotone queue.
    table: HashMap<u64, u64>,
    queue: std::collections::VecDeque<(u64, u64)>, // (time, line)
    stats: CacheStats,
}

impl FullyAssocLru {
    /// Creates a fully associative LRU with `capacity` lines.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> FullyAssocLru {
        assert!(capacity > 0, "cache capacity must be positive");
        FullyAssocLru {
            capacity,
            clock: 0,
            table: HashMap::new(),
            queue: std::collections::VecDeque::new(),
            stats: CacheStats::default(),
        }
    }
}

impl Cache for FullyAssocLru {
    fn access(&mut self, line: u64) -> bool {
        self.clock += 1;
        self.stats.accesses += 1;
        let hit = self.table.contains_key(&line);
        self.table.insert(line, self.clock);
        self.queue.push_back((self.clock, line));
        if !hit {
            self.stats.misses += 1;
            // Evict the true LRU line (skip stale queue entries).
            while self.table.len() > self.capacity {
                let (t, cand) = self.queue.pop_front().expect("queue tracks table");
                if self.table.get(&cand) == Some(&t) {
                    self.table.remove(&cand);
                }
            }
        }
        hit
    }

    fn stats(&self) -> CacheStats {
        self.stats
    }

    fn capacity_lines(&self) -> usize {
        self.capacity
    }
}

/// Set-associative LRU cache (hardware-shaped model for Fig. 8).
#[derive(Debug)]
pub struct SetAssocLru {
    sets: Vec<Vec<(u64, u64)>>, // per set: (tag, last-use)
    ways: usize,
    clock: u64,
    stats: CacheStats,
}

impl SetAssocLru {
    /// Creates a set-associative cache with `num_sets` sets of `ways`
    /// lines each.
    ///
    /// # Panics
    ///
    /// Panics if `num_sets` or `ways` is zero.
    pub fn new(num_sets: usize, ways: usize) -> SetAssocLru {
        assert!(num_sets > 0 && ways > 0, "cache geometry must be positive");
        SetAssocLru {
            sets: vec![Vec::new(); num_sets],
            ways,
            clock: 0,
            stats: CacheStats::default(),
        }
    }
}

impl Cache for SetAssocLru {
    fn access(&mut self, line: u64) -> bool {
        self.clock += 1;
        self.stats.accesses += 1;
        let idx = (line % self.sets.len() as u64) as usize;
        let tag = line / self.sets.len() as u64;
        let set = &mut self.sets[idx];
        if let Some(entry) = set.iter_mut().find(|(t, _)| *t == tag) {
            entry.1 = self.clock;
            return true;
        }
        self.stats.misses += 1;
        if set.len() == self.ways {
            let lru = set
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, t))| *t)
                .map(|(i, _)| i)
                .expect("nonempty set");
            set.swap_remove(lru);
        }
        set.push((tag, self.clock));
        false
    }

    fn stats(&self) -> CacheStats {
        self.stats
    }

    fn capacity_lines(&self) -> usize {
        self.sets.len() * self.ways
    }
}

/// An inclusive multi-level hierarchy: a miss at level `l` is looked up at
/// level `l+1`; the final level's misses are main-memory transfers.
///
/// # Examples
///
/// ```
/// use ioopt_cachesim::Hierarchy;
/// let mut h = Hierarchy::new(&[2, 8], 1);
/// for a in [0u64, 1, 2, 0, 1, 2] {
///     h.access(a);
/// }
/// let stats = h.stats();
/// assert_eq!(stats[0].accesses, 6);
/// assert_eq!(stats[1].misses, 3); // L2 sees only cold misses
/// ```
#[derive(Default)]
pub struct Hierarchy {
    levels: Vec<Box<dyn Cache>>,
    line_elems: u64,
}

impl std::fmt::Debug for Hierarchy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Hierarchy")
            .field("levels", &self.levels.len())
            .field("line_elems", &self.line_elems)
            .finish()
    }
}

impl Hierarchy {
    /// Builds a hierarchy of fully associative LRU levels with the given
    /// capacities **in data elements**, sharing a line size of
    /// `line_elems` elements.
    ///
    /// # Panics
    ///
    /// Panics if capacities are not strictly increasing or `line_elems`
    /// is zero.
    pub fn new(capacities_elems: &[usize], line_elems: usize) -> Hierarchy {
        assert!(line_elems > 0, "line size must be positive");
        let mut prev = 0;
        let mut levels: Vec<Box<dyn Cache>> = Vec::new();
        for &c in capacities_elems {
            assert!(c > prev, "capacities must be strictly increasing");
            prev = c;
            levels.push(Box::new(FullyAssocLru::new((c / line_elems).max(1))));
        }
        Hierarchy {
            levels,
            line_elems: line_elems as u64,
        }
    }

    /// Builds a hierarchy of set-associative LRU levels:
    /// `(capacity_elems, ways)` per level, hardware-shaped (conflict
    /// misses included).
    ///
    /// # Panics
    ///
    /// Panics on zero geometry or a capacity smaller than one set.
    pub fn new_set_assoc(levels_spec: &[(usize, usize)], line_elems: usize) -> Hierarchy {
        assert!(line_elems > 0, "line size must be positive");
        let levels: Vec<Box<dyn Cache>> = levels_spec
            .iter()
            .map(|&(cap, ways)| {
                let lines = (cap / line_elems).max(1);
                let sets = (lines / ways).max(1);
                Box::new(SetAssocLru::new(sets, ways)) as Box<dyn Cache>
            })
            .collect();
        Hierarchy {
            levels,
            line_elems: line_elems as u64,
        }
    }

    /// Touches an element address (elements, not bytes).
    pub fn access(&mut self, elem_addr: u64) {
        let line = elem_addr / self.line_elems;
        for level in &mut self.levels {
            if level.access(line) {
                return;
            }
        }
    }

    /// Per-level statistics, innermost first.
    pub fn stats(&self) -> Vec<CacheStats> {
        self.levels.iter().map(|l| l.stats()).collect()
    }

    /// Per-level traffic **out of** the level, in elements: level `l`'s
    /// misses times the line size (what flows between `l` and `l+1`).
    pub fn traffic_elems(&self) -> Vec<f64> {
        self.levels
            .iter()
            .map(|l| l.stats().misses as f64 * self.line_elems as f64)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_eviction_order() {
        let mut c = FullyAssocLru::new(2);
        assert!(!c.access(1));
        assert!(!c.access(2));
        assert!(c.access(1)); // 1 is MRU now
        assert!(!c.access(3)); // evicts 2
        assert!(c.access(1));
        assert!(!c.access(2)); // 2 was evicted
        assert_eq!(c.stats().misses, 4);
        assert_eq!(c.stats().accesses, 6);
    }

    #[test]
    fn capacity_one() {
        let mut c = FullyAssocLru::new(1);
        for _ in 0..3 {
            assert!(!c.access(7) || c.stats().accesses > 1);
        }
        assert!(c.access(7));
        assert!(!c.access(8));
        assert!(!c.access(7));
    }

    #[test]
    fn set_assoc_conflict_misses() {
        // 2 sets x 1 way: lines 0 and 2 conflict; 0,2,0,2 all miss.
        let mut c = SetAssocLru::new(2, 1);
        for line in [0u64, 2, 0, 2] {
            assert!(!c.access(line));
        }
        // Line 1 maps to the other set.
        assert!(!c.access(1));
        assert!(c.access(1));
    }

    #[test]
    fn set_assoc_matches_fully_assoc_when_one_set() {
        let mut sa = SetAssocLru::new(1, 4);
        let mut fa = FullyAssocLru::new(4);
        let trace = [1u64, 2, 3, 4, 1, 5, 2, 6, 1, 1, 7, 3];
        for &a in &trace {
            assert_eq!(sa.access(a), fa.access(a), "at address {a}");
        }
        assert_eq!(sa.stats(), fa.stats());
    }

    #[test]
    fn hierarchy_filters_misses() {
        let mut h = Hierarchy::new(&[2, 8], 1);
        // 4 distinct addresses cycled twice: L1 (2 elems) thrashes on the
        // second round, but L2 (8 elems) holds everything.
        for _ in 0..2 {
            for a in 0..4u64 {
                h.access(a);
            }
        }
        let stats = h.stats();
        assert_eq!(stats[0].accesses, 8);
        assert_eq!(stats[0].misses, 8); // LRU thrashes a 4-element loop in 2 slots
        assert_eq!(stats[1].accesses, 8);
        assert_eq!(stats[1].misses, 4); // cold misses only
    }

    #[test]
    fn line_granularity_groups_neighbors() {
        let mut h = Hierarchy::new(&[8], 4);
        for a in 0..8u64 {
            h.access(a);
        }
        // 8 consecutive elements over 4-element lines = 2 cold misses.
        assert_eq!(h.stats()[0].misses, 2);
        assert_eq!(h.traffic_elems()[0], 8.0);
    }
}
