//! A tiled loop-nest interpreter: executes a kernel's iteration space in
//! tiled order and drives the cache hierarchy with the resulting address
//! trace. This is the "run the schedule" half of the testbed substitute —
//! it measures the *actual* data movement of a tiling recommendation.

use std::collections::HashMap;

use ioopt_ir::Kernel;

use crate::cache::Hierarchy;

/// Errors from [`TiledLoopNest::new`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    /// A dimension size is missing.
    MissingSize(String),
    /// The permutation is not a permutation of the kernel dims.
    BadPermutation,
}

impl std::fmt::Display for InterpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InterpError::MissingSize(d) => write!(f, "missing size for dimension `{d}`"),
            InterpError::BadPermutation => write!(f, "invalid loop permutation"),
        }
    }
}

impl std::error::Error for InterpError {}

/// A concrete tiled execution of a kernel.
#[derive(Debug, Clone)]
pub struct TiledLoopNest {
    extents: Vec<i64>,
    /// Dim order, outermost first.
    perm: Vec<usize>,
    /// Tile size per dimension (1 = untiled position).
    tiles: Vec<i64>,
    /// Per-array (base address, strides per array dim).
    layout: Vec<(u64, Vec<u64>)>,
    /// Access matrices: for each array, its subscript forms.
    kernel: Kernel,
}

/// The result of a simulation run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Iteration points executed (one fused multiply-add each).
    pub iterations: u64,
    /// Total element accesses issued.
    pub accesses: u64,
    /// Per-level cache statistics, innermost first.
    pub stats: Vec<crate::cache::CacheStats>,
    /// Per-level traffic out of the level, in elements.
    pub traffic_elems: Vec<f64>,
}

impl TiledLoopNest {
    /// Prepares a tiled execution.
    ///
    /// `perm` lists dimension indices outermost-first; `tiles` maps
    /// dimension names to tile sizes (missing names default to 1,
    /// i.e. the dimension only iterates between tiles).
    ///
    /// # Errors
    ///
    /// [`InterpError`] on a bad permutation or missing size.
    pub fn new(
        kernel: &Kernel,
        sizes: &HashMap<String, i64>,
        perm: &[usize],
        tiles: &HashMap<String, i64>,
    ) -> Result<TiledLoopNest, InterpError> {
        let n = kernel.dims().len();
        let mut seen = vec![false; n];
        if perm.len() != n {
            return Err(InterpError::BadPermutation);
        }
        for &d in perm {
            if d >= n || seen[d] {
                return Err(InterpError::BadPermutation);
            }
            seen[d] = true;
        }
        let extents: Vec<i64> = kernel
            .dims()
            .iter()
            .map(|d| {
                sizes
                    .get(&d.name)
                    .copied()
                    .ok_or_else(|| InterpError::MissingSize(d.name.clone()))
            })
            .collect::<Result<_, _>>()?;
        let tiles: Vec<i64> = kernel
            .dims()
            .iter()
            .zip(&extents)
            .map(|(d, &ext)| tiles.get(&d.name).copied().unwrap_or(1).clamp(1, ext))
            .collect();
        // Row-major array layouts, bases packed one after another.
        let mut layout = Vec::new();
        let mut base = 0u64;
        for a in kernel.arrays() {
            let dims_hi: Vec<u64> = a
                .access
                .dims()
                .iter()
                .map(|f| {
                    let corner: Vec<i64> = extents.iter().map(|&e| e - 1).collect();
                    (f.eval(&corner) + 1).max(1) as u64
                })
                .collect();
            let mut strides = vec![1u64; dims_hi.len()];
            for i in (0..dims_hi.len().saturating_sub(1)).rev() {
                strides[i] = strides[i + 1] * dims_hi[i + 1];
            }
            let size: u64 = dims_hi.first().map(|&d0| d0 * strides[0]).unwrap_or(1);
            layout.push((base, strides));
            base += size;
        }
        Ok(TiledLoopNest {
            extents,
            perm: perm.to_vec(),
            tiles,
            layout,
            kernel: kernel.clone(),
        })
    }

    /// Total number of iteration points.
    pub fn num_iterations(&self) -> u64 {
        self.extents.iter().map(|&e| e as u64).product()
    }

    /// Records the element-address trace of the tiled execution (one
    /// address per array reference per iteration, in program order).
    ///
    /// Useful with [`crate::opt_misses`] to evaluate the schedule under
    /// Belady's optimal replacement.
    pub fn trace(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity((self.num_iterations() as usize).saturating_mul(3));
        self.for_each_access(|addr| out.push(addr));
        out
    }

    /// Drives `f` with every element address in program order.
    pub fn for_each_access<F: FnMut(u64)>(&self, mut f: F) {
        let n = self.extents.len();
        let arrays: Vec<(u64, Vec<u64>, Vec<ioopt_polyhedra::LinearForm>)> = self
            .kernel
            .arrays()
            .zip(&self.layout)
            .map(|(a, (base, strides))| (*base, strides.clone(), a.access.dims().to_vec()))
            .collect();
        let mut point = vec![0i64; n];
        let mut origins = vec![0i64; n];
        'outer: loop {
            let limits: Vec<i64> = (0..n)
                .map(|d| (self.extents[d] - origins[d]).min(self.tiles[d]))
                .collect();
            let mut offs = vec![0i64; n];
            loop {
                for d in 0..n {
                    point[d] = origins[d] + offs[d];
                }
                for (base, strides, forms) in &arrays {
                    let mut addr = *base;
                    for (form, s) in forms.iter().zip(strides) {
                        addr += form.eval(&point) as u64 * s;
                    }
                    f(addr);
                }
                let mut lvl = n;
                loop {
                    if lvl == 0 {
                        break;
                    }
                    lvl -= 1;
                    let d = self.perm[lvl];
                    offs[d] += 1;
                    if offs[d] < limits[d] {
                        break;
                    }
                    offs[d] = 0;
                    if lvl == 0 {
                        let mut olvl = n;
                        loop {
                            if olvl == 0 {
                                break 'outer;
                            }
                            olvl -= 1;
                            let d = self.perm[olvl];
                            origins[d] += self.tiles[d];
                            if origins[d] < self.extents[d] {
                                break;
                            }
                            origins[d] = 0;
                        }
                        continue 'outer;
                    }
                }
            }
        }
    }

    /// Runs the tiled schedule through `hierarchy`, issuing one access
    /// per array reference per iteration (inputs read, output updated).
    pub fn simulate(&self, hierarchy: &mut Hierarchy) -> SimResult {
        let mut accesses = 0u64;
        self.for_each_access(|addr| {
            hierarchy.access(addr);
            accesses += 1;
        });
        SimResult {
            iterations: self.num_iterations(),
            accesses,
            stats: hierarchy.stats(),
            traffic_elems: hierarchy.traffic_elems(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ioopt_ir::kernels;

    fn sizes(pairs: &[(&str, i64)]) -> HashMap<String, i64> {
        pairs.iter().map(|&(n, v)| (n.to_string(), v)).collect()
    }

    fn tiles(pairs: &[(&str, i64)]) -> HashMap<String, i64> {
        sizes(pairs)
    }

    #[test]
    fn iteration_count_is_exact() {
        let k = kernels::matmul();
        let nest = TiledLoopNest::new(
            &k,
            &sizes(&[("i", 6), ("j", 5), ("k", 4)]),
            &[0, 1, 2],
            &tiles(&[("i", 2), ("j", 3)]),
        )
        .unwrap();
        let mut h = Hierarchy::new(&[64], 1);
        let r = nest.simulate(&mut h);
        assert_eq!(r.iterations, 120);
        assert_eq!(r.accesses, 360);
    }

    #[test]
    fn huge_cache_sees_compulsory_misses_only() {
        let k = kernels::matmul();
        let nest = TiledLoopNest::new(
            &k,
            &sizes(&[("i", 8), ("j", 8), ("k", 8)]),
            &[0, 1, 2],
            &tiles(&[]),
        )
        .unwrap();
        let mut h = Hierarchy::new(&[100_000], 1);
        let r = nest.simulate(&mut h);
        // Distinct data: A, B, C of 64 elements each.
        assert_eq!(r.stats[0].misses, 192);
    }

    #[test]
    fn tiling_reduces_misses() {
        let k = kernels::matmul();
        let s = sizes(&[("i", 32), ("j", 32), ("k", 32)]);
        let cap = 128usize;
        let untiled = {
            let nest = TiledLoopNest::new(&k, &s, &[0, 1, 2], &tiles(&[])).unwrap();
            let mut h = Hierarchy::new(&[cap], 1);
            nest.simulate(&mut h).stats[0].misses
        };
        let tiled = {
            let nest =
                TiledLoopNest::new(&k, &s, &[0, 1, 2], &tiles(&[("i", 7), ("j", 7)])).unwrap();
            let mut h = Hierarchy::new(&[cap], 1);
            nest.simulate(&mut h).stats[0].misses
        };
        assert!(
            (tiled as f64) < 0.8 * untiled as f64,
            "tiled {tiled} vs untiled {untiled}"
        );
    }

    #[test]
    fn non_divisible_tiles_cover_domain() {
        let k = kernels::conv1d();
        let nest = TiledLoopNest::new(
            &k,
            &sizes(&[("c", 3), ("f", 5), ("x", 7), ("w", 2)]),
            &[3, 0, 1, 2],
            &tiles(&[("f", 2), ("x", 4)]),
        )
        .unwrap();
        let mut h = Hierarchy::new(&[1024], 1);
        let r = nest.simulate(&mut h);
        assert_eq!(r.iterations, 3 * 5 * 7 * 2);
    }

    #[test]
    fn bad_inputs_rejected() {
        let k = kernels::matmul();
        assert_eq!(
            TiledLoopNest::new(&k, &sizes(&[("i", 2)]), &[0, 1, 2], &tiles(&[])).unwrap_err(),
            InterpError::MissingSize("j".into())
        );
        assert_eq!(
            TiledLoopNest::new(
                &k,
                &sizes(&[("i", 2), ("j", 2), ("k", 2)]),
                &[0, 1],
                &tiles(&[]),
            )
            .unwrap_err(),
            InterpError::BadPermutation
        );
    }
}
