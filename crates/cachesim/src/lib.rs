//! # ioopt-cachesim
//!
//! The testbed substitute (DESIGN.md §2): LRU cache models
//! ([`FullyAssocLru`], [`SetAssocLru`], multi-level [`Hierarchy`]), a
//! tiled loop-nest interpreter ([`TiledLoopNest`]) that measures the real
//! data movement of a schedule, and a roofline [`MachineModel`] of the
//! paper's Intel i9-7940X used to regenerate Fig. 8's
//! percentage-of-peak numbers.

#![warn(missing_docs)]

mod cache;
mod interp;
mod machine;
mod opt;
mod stackdist;

pub use cache::{Cache, CacheStats, FullyAssocLru, Hierarchy, SetAssocLru};
pub use interp::{InterpError, SimResult, TiledLoopNest};
pub use machine::MachineModel;
pub use opt::{lru_misses, opt_misses};
pub use stackdist::{stack_distances, StackDistances};
