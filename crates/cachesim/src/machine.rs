//! A roofline machine model (the Fig. 8 testbed substitute).
//!
//! The paper measured % of machine peak on an Intel i9-7940X. We model
//! the same quantity analytically: execution time is the maximum of the
//! compute time (at a code-generation-dependent compute efficiency cap)
//! and the per-level memory transfer times, given the traffic measured or
//! predicted between cache levels. DESIGN.md documents why this preserves
//! the figure's shape (who wins, per-layer variation).

/// A machine description for the roofline model.
#[derive(Debug, Clone)]
pub struct MachineModel {
    /// Peak floating-point rate, flop/s.
    pub peak_flops: f64,
    /// Sustainable bandwidth *into* each cache level, bytes/s, innermost
    /// first (L2→L1, L3→L2, DRAM→L3).
    pub bandwidths: Vec<f64>,
    /// Cache capacities in bytes, innermost first.
    pub capacities: Vec<f64>,
    /// Bytes per data element.
    pub element_bytes: f64,
}

impl MachineModel {
    /// The paper's testbed: Intel i9-7940X Skylake-X (AVX-512), 32 kB L1,
    /// 1 MB L2, 20 MB shared L3, single-precision elements.
    ///
    /// Peak: 14 cores × 3.1 GHz × 2 FMA ports × 16 f32 lanes × 2 flops —
    /// the paper's per-layer percentages are single-core-shaped, so we
    /// model one core: 3.1e9 × 64 ≈ 198 Gflop/s; bandwidths are
    /// representative Skylake-X sustained figures.
    pub fn i9_7940x() -> MachineModel {
        MachineModel {
            peak_flops: 198.4e9,
            bandwidths: vec![400e9, 150e9, 20e9],
            capacities: vec![32e3, 1e6, 20e6],
            element_bytes: 4.0,
        }
    }

    /// Cache capacities in **elements**, innermost first.
    pub fn capacities_elems(&self) -> Vec<f64> {
        self.capacities
            .iter()
            .map(|c| c / self.element_bytes)
            .collect()
    }

    /// Execution-time estimate for `flops` total work and
    /// `traffic_elems[l]` elements moved into cache level `l`.
    ///
    /// `compute_cap ∈ (0, 1]` models the quality of the generated compute
    /// code (register tiling, vectorization, …) — the paper's "naive"
    /// tiled code lacks these (§6, Fig. 8 discussion).
    pub fn time(&self, flops: f64, traffic_elems: &[f64], compute_cap: f64) -> f64 {
        assert!(
            compute_cap > 0.0 && compute_cap <= 1.0,
            "cap must be in (0,1]"
        );
        let mut t = flops / (self.peak_flops * compute_cap);
        for (l, &elems) in traffic_elems.iter().enumerate() {
            let bw = self
                .bandwidths
                .get(l)
                .copied()
                .unwrap_or_else(|| *self.bandwidths.last().expect("bandwidths nonempty"));
            t = t.max(elems * self.element_bytes / bw);
        }
        t
    }

    /// Percentage of machine peak achieved (the Fig. 8 metric).
    pub fn efficiency(&self, flops: f64, traffic_elems: &[f64], compute_cap: f64) -> f64 {
        let t = self.time(flops, traffic_elems, compute_cap);
        100.0 * flops / (self.peak_flops * t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_bound_hits_cap() {
        let m = MachineModel::i9_7940x();
        // Negligible traffic: efficiency equals the compute cap.
        let eff = m.efficiency(1e9, &[1.0, 1.0, 1.0], 0.4);
        assert!((eff - 40.0).abs() < 1e-9);
    }

    #[test]
    fn memory_bound_scales_with_traffic() {
        let m = MachineModel::i9_7940x();
        let flops = 1e9;
        let light = m.efficiency(flops, &[0.0, 0.0, 1e7], 1.0);
        let heavy = m.efficiency(flops, &[0.0, 0.0, 1e9], 1.0);
        assert!(heavy < light);
        // 1e9 f32 elements over 20 GB/s = 0.2 s vs 1e9/198.4e9 flops.
        let expect = 100.0 * (1e9 / 198.4e9) / 0.2;
        assert!((heavy - expect).abs() < 0.05 * expect);
    }

    #[test]
    fn capacities_in_elements() {
        let m = MachineModel::i9_7940x();
        assert_eq!(m.capacities_elems(), vec![8e3, 250e3, 5e6]);
    }
}
