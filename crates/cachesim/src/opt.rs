//! Belady's OPT replacement policy on a recorded trace.
//!
//! IOOpt's cost model counts the loads of an *optimally managed* fast
//! memory (the red-white pebble game gives the schedule full control over
//! placement). LRU needs some slack capacity to realize the same traffic;
//! OPT — evict the line whose next use is farthest — is the offline
//! optimum for a *fixed* access order and sits between the two. Comparing
//! the model against OPT isolates the schedule's quality from the
//! replacement policy's.

use std::collections::HashMap;

/// Simulates OPT (Belady) replacement over `trace` with `capacity` lines;
/// returns the number of misses.
///
/// # Examples
///
/// ```
/// use ioopt_cachesim::{lru_misses, opt_misses};
/// // The classic LRU-pathological loop: OPT keeps most of it.
/// let trace: Vec<u64> = (0..4u64).cycle().take(40).collect();
/// assert_eq!(lru_misses(&trace, 3), 40);
/// assert!(opt_misses(&trace, 3) < 20);
/// ```
///
/// Two passes: the first collects, for every position, the next position
/// at which the same line is used; the second simulates, evicting the
/// resident line with the farthest next use.
///
/// # Panics
///
/// Panics if `capacity == 0`.
pub fn opt_misses(trace: &[u64], capacity: usize) -> u64 {
    assert!(capacity > 0, "cache capacity must be positive");
    let n = trace.len();
    // next_use[i] = next index using trace[i], or usize::MAX.
    let mut next_use = vec![usize::MAX; n];
    let mut last_pos: HashMap<u64, usize> = HashMap::new();
    for (i, &line) in trace.iter().enumerate().rev() {
        if let Some(&p) = last_pos.get(&line) {
            next_use[i] = p;
        }
        last_pos.insert(line, i);
    }

    // Resident lines with their next use, in a max-structure. A simple
    // BTreeMap keyed by (next_use, line) keeps eviction O(log n).
    use std::collections::BTreeMap;
    let mut by_next: BTreeMap<(usize, u64), ()> = BTreeMap::new();
    let mut resident: HashMap<u64, usize> = HashMap::new();
    let mut misses = 0u64;
    for (i, &line) in trace.iter().enumerate() {
        match resident.get(&line).copied() {
            Some(stored_next) => {
                // Hit: update the next-use key.
                by_next.remove(&(stored_next, line));
                resident.insert(line, next_use[i]);
                by_next.insert((next_use[i], line), ());
            }
            None => {
                misses += 1;
                if resident.len() == capacity {
                    // Evict the farthest next use (last key).
                    let (&(far, victim), _) = by_next.iter().next_back().expect("cache nonempty");
                    by_next.remove(&(far, victim));
                    resident.remove(&victim);
                }
                resident.insert(line, next_use[i]);
                by_next.insert((next_use[i], line), ());
            }
        }
    }
    misses
}

/// Simulates LRU over the same trace shape (reference implementation used
/// in tests to compare policies on identical traces).
pub fn lru_misses(trace: &[u64], capacity: usize) -> u64 {
    let mut c = crate::cache::FullyAssocLru::new(capacity);
    let mut misses = 0;
    for &line in trace {
        if !crate::cache::Cache::access(&mut c, line) {
            misses += 1;
        }
    }
    misses
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opt_beats_lru_on_cyclic_trace() {
        // The classic LRU-pathological loop: N+1 lines cycled through an
        // N-line cache. LRU misses everything; OPT keeps most of it.
        let trace: Vec<u64> = (0..5u64).cycle().take(50).collect();
        let lru = lru_misses(&trace, 4);
        let opt = opt_misses(&trace, 4);
        assert_eq!(lru, 50);
        assert!(opt < lru / 2, "opt {opt} vs lru {lru}");
    }

    #[test]
    fn opt_is_never_worse_than_lru() {
        // Pseudo-random trace; OPT ≤ LRU must hold pointwise.
        let mut x = 12345u64;
        let trace: Vec<u64> = (0..2000)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                (x >> 33) % 40
            })
            .collect();
        for cap in [2usize, 4, 8, 16] {
            assert!(opt_misses(&trace, cap) <= lru_misses(&trace, cap));
        }
    }

    #[test]
    fn compulsory_misses_are_counted() {
        let trace = vec![1u64, 2, 3, 1, 2, 3];
        assert_eq!(opt_misses(&trace, 8), 3);
    }

    #[test]
    fn capacity_one() {
        let trace = vec![1u64, 1, 2, 2, 1];
        assert_eq!(opt_misses(&trace, 1), 3);
    }

    #[test]
    fn policies_agree_when_everything_fits() {
        let trace: Vec<u64> = (0..10u64).chain(0..10u64).collect();
        assert_eq!(opt_misses(&trace, 16), 10);
        assert_eq!(lru_misses(&trace, 16), 10);
    }
}
