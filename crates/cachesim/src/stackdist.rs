//! Reuse-distance (stack-distance) analysis — Mattson's algorithm.
//!
//! One pass over an address trace yields the LRU miss count for *every*
//! cache capacity simultaneously: a reference with stack distance `d`
//! hits in any fully associative LRU cache with at least `d` lines. This
//! gives the whole Fig.-7-style "misses vs. cache size" curve of a
//! concrete schedule in a single simulation, and is the classical
//! locality profile the paper's related work (PolyFeat, cache-miss
//! equations) approximates analytically.

use std::collections::HashMap;

/// The reuse-distance histogram of a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StackDistances {
    /// `histogram[d]` = number of references with stack distance `d`
    /// (number of *distinct* lines touched since the previous access to
    /// the same line).
    pub histogram: Vec<u64>,
    /// Cold (first-touch) references.
    pub cold: u64,
    /// Total references.
    pub total: u64,
}

impl StackDistances {
    /// LRU misses for a fully associative cache with `capacity` lines:
    /// cold misses plus every reference with distance > capacity.
    pub fn misses_at(&self, capacity: usize) -> u64 {
        let far: u64 = self
            .histogram
            .iter()
            .enumerate()
            .filter(|&(d, _)| d > capacity)
            .map(|(_, &c)| c)
            .sum();
        self.cold + far
    }

    /// The full miss curve at the given capacities.
    pub fn miss_curve(&self, capacities: &[usize]) -> Vec<u64> {
        capacities.iter().map(|&c| self.misses_at(c)).collect()
    }
}

/// Computes exact stack distances with a balanced order-statistics
/// structure (a Fenwick tree over trace positions): `O(n log n)`.
///
/// # Examples
///
/// ```
/// use ioopt_cachesim::stack_distances;
/// let sd = stack_distances(&[1, 2, 1, 3, 2]);
/// // One pass yields the LRU miss count at *every* capacity:
/// assert_eq!(sd.misses_at(1), 5);
/// assert_eq!(sd.misses_at(2), 4);
/// assert_eq!(sd.misses_at(3), 3); // compulsory only
/// ```
pub fn stack_distances(trace: &[u64]) -> StackDistances {
    let n = trace.len();
    // Fenwick tree marking the positions of the *most recent* access to
    // each distinct line; the stack distance of a reference is the count
    // of marked positions after the line's previous access.
    let mut fenwick = Fenwick::new(n + 1);
    let mut last: HashMap<u64, usize> = HashMap::new();
    let mut histogram: Vec<u64> = Vec::new();
    let mut cold = 0u64;
    for (i, &line) in trace.iter().enumerate() {
        match last.get(&line).copied() {
            None => cold += 1,
            Some(prev) => {
                // Distinct lines touched strictly after prev, before i —
                // including `line` itself at distance >= 1.
                let d = fenwick.range_sum(prev + 1, i) as usize;
                if histogram.len() <= d {
                    histogram.resize(d + 1, 0);
                }
                histogram[d] += 1;
                fenwick.add(prev + 1, -1);
            }
        }
        fenwick.add(i + 1, 1);
        last.insert(line, i);
    }
    StackDistances {
        histogram,
        cold,
        total: n as u64,
    }
}

/// A Fenwick (binary indexed) tree over `1..=n` with point updates and
/// prefix sums.
#[derive(Debug)]
struct Fenwick {
    tree: Vec<i64>,
}

impl Fenwick {
    fn new(n: usize) -> Fenwick {
        Fenwick {
            tree: vec![0; n + 1],
        }
    }

    fn add(&mut self, mut i: usize, delta: i64) {
        while i < self.tree.len() {
            self.tree[i] += delta;
            i += i & i.wrapping_neg();
        }
    }

    fn prefix(&self, mut i: usize) -> i64 {
        let mut s = 0;
        while i > 0 {
            s += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        s
    }

    /// Sum over positions `lo..=hi` (1-based).
    fn range_sum(&self, lo: usize, hi: usize) -> i64 {
        if hi < lo {
            return 0;
        }
        self.prefix(hi) - self.prefix(lo.saturating_sub(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opt::lru_misses;

    #[test]
    fn simple_distances() {
        // a b a: the second `a` has distance 2 (b and a itself).
        let sd = stack_distances(&[1, 2, 1]);
        assert_eq!(sd.cold, 2);
        assert_eq!(sd.histogram.get(2), Some(&1));
        assert_eq!(sd.misses_at(2), 2);
        assert_eq!(sd.misses_at(1), 3);
    }

    #[test]
    fn immediate_reuse_has_distance_one() {
        let sd = stack_distances(&[7, 7, 7]);
        assert_eq!(sd.cold, 1);
        assert_eq!(sd.histogram.get(1), Some(&2));
        assert_eq!(sd.misses_at(1), 1);
    }

    #[test]
    fn matches_lru_simulation_on_random_traces() {
        let mut x = 99u64;
        let trace: Vec<u64> = (0..3000)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 30) % 60
            })
            .collect();
        let sd = stack_distances(&trace);
        for cap in [1usize, 2, 5, 10, 30, 59, 61, 200] {
            assert_eq!(sd.misses_at(cap), lru_misses(&trace, cap), "capacity {cap}");
        }
    }

    #[test]
    fn miss_curve_is_non_increasing() {
        let trace: Vec<u64> = (0..8u64).cycle().take(100).collect();
        let sd = stack_distances(&trace);
        let caps: Vec<usize> = (1..20).collect();
        let curve = sd.miss_curve(&caps);
        assert!(curve.windows(2).all(|w| w[1] <= w[0]));
        assert_eq!(*curve.last().unwrap(), 8); // cold only
    }

    #[test]
    fn totals_are_consistent() {
        let trace = vec![3u64, 1, 4, 1, 5, 9, 2, 6, 5, 3];
        let sd = stack_distances(&trace);
        let classified: u64 = sd.histogram.iter().sum::<u64>() + sd.cold;
        assert_eq!(classified, sd.total);
    }
}
