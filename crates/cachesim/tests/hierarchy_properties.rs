//! Hierarchy invariants under random traces.

use ioopt_cachesim::{lru_misses, opt_misses, stack_distances, Hierarchy};
use proptest::prelude::*;

fn trace_strategy() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..64, 1..600)
}

proptest! {
    /// Outer levels see only inner-level misses, and each level's misses
    /// are non-increasing along the hierarchy.
    #[test]
    fn filtering_is_monotone(trace in trace_strategy()) {
        let mut h = Hierarchy::new(&[8, 32, 128], 1);
        for &a in &trace {
            h.access(a);
        }
        let stats = h.stats();
        prop_assert_eq!(stats[0].accesses, trace.len() as u64);
        for w in stats.windows(2) {
            prop_assert_eq!(w[0].misses, w[1].accesses);
            prop_assert!(w[1].misses <= w[0].misses);
        }
    }

    /// The first level of a hierarchy behaves exactly like a standalone
    /// LRU of the same capacity.
    #[test]
    fn first_level_matches_reference(trace in trace_strategy()) {
        let mut h = Hierarchy::new(&[16, 64], 1);
        for &a in &trace {
            h.access(a);
        }
        prop_assert_eq!(h.stats()[0].misses, lru_misses(&trace, 16));
    }

    /// Stack-distance miss counts equal direct LRU simulation at every
    /// capacity, and OPT never exceeds LRU.
    #[test]
    fn policies_are_ordered(trace in trace_strategy(), cap in 1usize..40) {
        let sd = stack_distances(&trace);
        let lru = lru_misses(&trace, cap);
        prop_assert_eq!(sd.misses_at(cap), lru);
        prop_assert!(opt_misses(&trace, cap) <= lru);
        // Distinct lines lower-bound every policy (compulsory misses).
        let distinct = {
            let mut v: Vec<u64> = trace.clone();
            v.sort_unstable();
            v.dedup();
            v.len() as u64
        };
        prop_assert!(opt_misses(&trace, cap) >= distinct);
    }

    /// Larger lines can only reduce misses on unit-stride traces.
    #[test]
    fn line_size_helps_sequential(len in 1usize..500) {
        let trace: Vec<u64> = (0..len as u64).collect();
        let mut small = Hierarchy::new(&[64], 1);
        let mut big = Hierarchy::new(&[64], 8);
        for &a in &trace {
            small.access(a);
            big.access(a);
        }
        prop_assert!(big.stats()[0].misses <= small.stats()[0].misses);
    }
}
