//! Hierarchy invariants under random traces (deterministic
//! SplitMix64-driven cases).

use ioopt_cachesim::{lru_misses, opt_misses, stack_distances, Hierarchy};
use ioopt_symbolic::SplitMix64;

fn random_trace(rng: &mut SplitMix64) -> Vec<u64> {
    let len = 1 + rng.range_usize(599);
    (0..len).map(|_| rng.range_i64(0, 63) as u64).collect()
}

/// Outer levels see only inner-level misses, and each level's misses
/// are non-increasing along the hierarchy.
#[test]
fn filtering_is_monotone() {
    let mut rng = SplitMix64::new(0xcac4e01);
    for _ in 0..64 {
        let trace = random_trace(&mut rng);
        let mut h = Hierarchy::new(&[8, 32, 128], 1);
        for &a in &trace {
            h.access(a);
        }
        let stats = h.stats();
        assert_eq!(stats[0].accesses, trace.len() as u64);
        for w in stats.windows(2) {
            assert_eq!(w[0].misses, w[1].accesses);
            assert!(w[1].misses <= w[0].misses);
        }
    }
}

/// The first level of a hierarchy behaves exactly like a standalone
/// LRU of the same capacity.
#[test]
fn first_level_matches_reference() {
    let mut rng = SplitMix64::new(0xcac4e02);
    for _ in 0..64 {
        let trace = random_trace(&mut rng);
        let mut h = Hierarchy::new(&[16, 64], 1);
        for &a in &trace {
            h.access(a);
        }
        assert_eq!(h.stats()[0].misses, lru_misses(&trace, 16));
    }
}

/// Stack-distance miss counts equal direct LRU simulation at every
/// capacity, and OPT never exceeds LRU.
#[test]
fn policies_are_ordered() {
    let mut rng = SplitMix64::new(0xcac4e03);
    for _ in 0..64 {
        let trace = random_trace(&mut rng);
        let cap = 1 + rng.range_usize(39);
        let sd = stack_distances(&trace);
        let lru = lru_misses(&trace, cap);
        assert_eq!(sd.misses_at(cap), lru);
        assert!(opt_misses(&trace, cap) <= lru);
        // Distinct lines lower-bound every policy (compulsory misses).
        let distinct = {
            let mut v: Vec<u64> = trace.clone();
            v.sort_unstable();
            v.dedup();
            v.len() as u64
        };
        assert!(opt_misses(&trace, cap) >= distinct);
    }
}

/// Larger lines can only reduce misses on unit-stride traces.
#[test]
fn line_size_helps_sequential() {
    let mut rng = SplitMix64::new(0xcac4e04);
    for _ in 0..32 {
        let len = 1 + rng.range_usize(499);
        let trace: Vec<u64> = (0..len as u64).collect();
        let mut small = Hierarchy::new(&[64], 1);
        let mut big = Hierarchy::new(&[64], 8);
        for &a in &trace {
            small.access(a);
            big.access(a);
        }
        assert!(big.stats()[0].misses <= small.stats()[0].misses);
    }
}
