//! Concrete CDAG construction (paper Definition 3.1).
//!
//! For tiny problem sizes we materialize the computational DAG of a
//! kernel: one *input* node per distinct input-array cell and one
//! *compute* node per iteration point (a fused multiply-add producing the
//! next partial sum of its output cell). The reduction chain appears as a
//! dependence from each compute node to the previous one writing the same
//! cell — exactly the structure §5.3 rewrites when it detects reductions.

use std::collections::HashMap;

use ioopt_ir::{AccessKind, Kernel};

/// The role of a CDAG node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CdagNode {
    /// An input-array cell `(array name, indices)`.
    Input(String, Vec<i64>),
    /// A computation at an iteration point.
    Compute(Vec<i64>),
}

/// A concrete computational DAG.
#[derive(Debug, Clone)]
pub struct Cdag {
    nodes: Vec<CdagNode>,
    preds: Vec<Vec<u32>>,
    outputs: Vec<u32>,
}

impl Cdag {
    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node payloads.
    pub fn node(&self, i: u32) -> &CdagNode {
        &self.nodes[i as usize]
    }

    /// Predecessors of node `i`.
    pub fn preds(&self, i: u32) -> &[u32] {
        &self.preds[i as usize]
    }

    /// The designated output nodes.
    pub fn outputs(&self) -> &[u32] {
        &self.outputs
    }

    /// Indices of all input nodes.
    pub fn inputs(&self) -> Vec<u32> {
        (0..self.len() as u32)
            .filter(|&i| matches!(self.node(i), CdagNode::Input(..)))
            .collect()
    }

    /// Indices of all compute nodes, in construction (lexicographic
    /// schedule) order.
    pub fn computes(&self) -> Vec<u32> {
        (0..self.len() as u32)
            .filter(|&i| matches!(self.node(i), CdagNode::Compute(..)))
            .collect()
    }

    /// A topological order check: every edge goes from a lower to a
    /// higher index (true by construction).
    pub fn is_topologically_indexed(&self) -> bool {
        self.preds
            .iter()
            .enumerate()
            .all(|(i, ps)| ps.iter().all(|&p| (p as usize) < i))
    }
}

/// Builds the CDAG of `kernel` at concrete `sizes`.
///
/// Iteration points are enumerated in lexicographic order of the kernel's
/// source dimension order, which sequentializes the reduction chain the
/// same way the paper's loop nest does.
///
/// # Panics
///
/// Panics if a dimension size is missing or the graph would exceed
/// `max_nodes` (a guard against accidental huge instances).
pub fn build_cdag(kernel: &Kernel, sizes: &HashMap<String, i64>, max_nodes: usize) -> Cdag {
    let ndims = kernel.dims().len();
    let extents: Vec<i64> = kernel
        .dims()
        .iter()
        .map(|d| {
            *sizes
                .get(&d.name)
                .unwrap_or_else(|| panic!("missing size for dimension `{}`", d.name))
        })
        .collect();
    let total: i64 = extents.iter().product();
    assert!(
        (total as usize) < max_nodes,
        "CDAG would have {total} compute nodes (limit {max_nodes})"
    );

    let mut nodes: Vec<CdagNode> = Vec::new();
    let mut preds: Vec<Vec<u32>> = Vec::new();
    let mut input_ids: HashMap<(usize, Vec<i64>), u32> = HashMap::new();
    // Last compute node per output cell (the running partial sum).
    let mut chain: HashMap<Vec<i64>, u32> = HashMap::new();

    let mut point = vec![0i64; ndims];
    loop {
        // Gather predecessors: input cells + previous partial sum.
        let mut ps: Vec<u32> = Vec::new();
        for (ai, a) in kernel.inputs().iter().enumerate() {
            let cell = a.access.eval(&point);
            let id = *input_ids.entry((ai, cell.clone())).or_insert_with(|| {
                nodes.push(CdagNode::Input(a.name.clone(), cell));
                preds.push(Vec::new());
                (nodes.len() - 1) as u32
            });
            ps.push(id);
        }
        if kernel.output().kind == AccessKind::Accumulate {
            let out_cell = kernel.output().access.eval(&point);
            match chain.get(&out_cell) {
                Some(&prev) => ps.push(prev),
                None => {
                    // `+=` reads the cell's initial value: model it as an
                    // input node (the paper's reduction *initialization*,
                    // §5.3), so pebbling and the trivial bound agree that
                    // the output array is loaded once.
                    nodes.push(CdagNode::Input(
                        kernel.output().name.clone(),
                        out_cell.clone(),
                    ));
                    preds.push(Vec::new());
                    ps.push((nodes.len() - 1) as u32);
                }
            }
            nodes.push(CdagNode::Compute(point.clone()));
            preds.push(ps);
            chain.insert(out_cell, (nodes.len() - 1) as u32);
        } else {
            nodes.push(CdagNode::Compute(point.clone()));
            preds.push(ps);
            chain.insert(
                kernel.output().access.eval(&point),
                (nodes.len() - 1) as u32,
            );
        }
        // Lexicographic increment (last dimension fastest).
        let mut d = ndims;
        loop {
            if d == 0 {
                let outputs: Vec<u32> = chain.values().copied().collect();
                let mut cdag = Cdag {
                    nodes,
                    preds,
                    outputs,
                };
                cdag.outputs.sort_unstable();
                return cdag;
            }
            d -= 1;
            point[d] += 1;
            if point[d] < extents[d] {
                break;
            }
            point[d] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ioopt_ir::kernels;

    fn sizes(pairs: &[(&str, i64)]) -> HashMap<String, i64> {
        pairs.iter().map(|&(n, v)| (n.to_string(), v)).collect()
    }

    #[test]
    fn matmul_cdag_shape() {
        let k = kernels::matmul();
        let g = build_cdag(&k, &sizes(&[("i", 2), ("j", 2), ("k", 2)]), 10_000);
        // 8 compute nodes + 4 cells of A + 4 of B + 4 initial C values.
        assert_eq!(g.computes().len(), 8);
        assert_eq!(g.inputs().len(), 12);
        // 4 output cells, each ending a 2-long chain.
        assert_eq!(g.outputs().len(), 4);
        assert!(g.is_topologically_indexed());
    }

    #[test]
    fn reduction_chain_is_present() {
        let k = kernels::matmul();
        let g = build_cdag(&k, &sizes(&[("i", 1), ("j", 1), ("k", 3)]), 10_000);
        let computes = g.computes();
        assert_eq!(computes.len(), 3);
        // The first compute reads the cell's initial value (an input).
        assert!(g
            .preds(computes[0])
            .iter()
            .any(|&p| matches!(g.node(p), CdagNode::Input(n, _) if n == "C")));
        // The second compute depends on the first (same output cell).
        assert!(g.preds(computes[1]).contains(&computes[0]));
        assert!(g.preds(computes[2]).contains(&computes[1]));
        // Only the last one is an output.
        assert_eq!(g.outputs(), &[computes[2]]);
    }

    #[test]
    fn conv_shares_input_cells() {
        // conv1d with Nx=2, Nw=2 over one channel/filter: Image cells
        // x+w ∈ {0,1,2} -> 3 distinct image cells, 2 filter cells.
        let k = kernels::conv1d();
        let g = build_cdag(
            &k,
            &sizes(&[("c", 1), ("f", 1), ("x", 2), ("w", 2)]),
            10_000,
        );
        let image_cells = g
            .inputs()
            .iter()
            .filter(|&&i| matches!(g.node(i), CdagNode::Input(n, _) if n == "Image"))
            .count();
        assert_eq!(image_cells, 3);
        assert_eq!(g.computes().len(), 4);
    }

    #[test]
    #[should_panic(expected = "limit")]
    fn node_guard_triggers() {
        let k = kernels::matmul();
        build_cdag(&k, &sizes(&[("i", 100), ("j", 100), ("k", 100)]), 1000);
    }
}

impl Cdag {
    /// Renders the CDAG in Graphviz DOT format (inputs as boxes, computes
    /// as ellipses, outputs double-circled) — handy for inspecting tiny
    /// instances like the paper's Fig. 3 example.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("digraph cdag {\n  rankdir=BT;\n");
        for i in 0..self.len() as u32 {
            let (label, shape) = match self.node(i) {
                CdagNode::Input(name, cell) => (format!("{name}{cell:?}"), "box"),
                CdagNode::Compute(point) => (format!("C{point:?}"), "ellipse"),
            };
            let peripheries = if self.outputs().contains(&i) { 2 } else { 1 };
            let _ = writeln!(
                out,
                "  n{i} [label=\"{label}\", shape={shape}, peripheries={peripheries}];"
            );
        }
        for i in 0..self.len() as u32 {
            for &p in self.preds(i) {
                let _ = writeln!(out, "  n{p} -> n{i};");
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod dot_tests {
    use super::*;
    use ioopt_ir::kernels;

    #[test]
    fn dot_contains_every_node_and_edge() {
        let k = kernels::matmul();
        let sizes: HashMap<String, i64> = [("i", 1i64), ("j", 1), ("k", 2)]
            .iter()
            .map(|&(n, v)| (n.to_string(), v))
            .collect();
        let g = build_cdag(&k, &sizes, 100);
        let dot = g.to_dot();
        assert!(dot.starts_with("digraph"));
        for i in 0..g.len() {
            assert!(dot.contains(&format!("n{i} [")));
        }
        let edges: usize = (0..g.len() as u32).map(|i| g.preds(i).len()).sum();
        assert_eq!(dot.matches(" -> ").count(), edges);
        // Outputs are double-circled.
        assert!(dot.contains("peripheries=2"));
    }
}
