//! # ioopt-cdag
//!
//! Concrete CDAGs (paper Definition 3.1) and the red-white pebble game
//! (§3.3). These are *validation substrates*: on tiny instances the exact
//! optimal pebbling cost must lie between the symbolic lower bound (IOLB)
//! and any constructive schedule's cost (IOUB / the cache simulator) —
//! the workspace integration tests enforce exactly that sandwich.

#![warn(missing_docs)]

mod graph;
mod pebble;
mod redblue;

pub use graph::{build_cdag, Cdag, CdagNode};
pub use pebble::{greedy_loads, optimal_loads};
pub use redblue::optimal_loads_with_recompute;
