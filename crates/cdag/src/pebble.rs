//! The red-white pebble game (paper §3.3).
//!
//! * [`optimal_loads`] — exact minimum number of fetches over *all* valid
//!   game sequences, by 0-1 BFS over game states. Exponential; intended
//!   for tiny CDAGs, where it sandwiches IOLB ≤ optimal ≤ IOUB.
//! * [`greedy_loads`] — the loads of one concrete valid sequence (a given
//!   compute order with LRU spilling), i.e. a constructive upper bound.

use std::collections::{HashMap, VecDeque};

use crate::graph::Cdag;

/// Exact minimum number of fetch moves to pebble the whole CDAG with `s`
/// red pebbles, or `None` if the state-space exploration exceeds
/// `max_states` or `s` is too small to compute some node.
///
/// Game rules (§3.3): fetch puts a red on any white node (cost 1); spill
/// removes a red (free); compute puts red+white on a node whose
/// predecessors are all red (free); at most `s` reds at any time; whites
/// start on the inputs and must end everywhere.
///
/// # Examples
///
/// ```
/// use ioopt_cdag::{build_cdag, optimal_loads};
/// use ioopt_ir::kernels;
/// use std::collections::HashMap;
/// let sizes = HashMap::from([
///     ("i".to_string(), 1i64),
///     ("j".to_string(), 1),
///     ("k".to_string(), 2),
/// ]);
/// let cdag = build_cdag(&kernels::matmul(), &sizes, 100);
/// // A, B (2 cells each) and the initial C value: 5 loads suffice.
/// assert_eq!(optimal_loads(&cdag, 4, 1_000_000), Some(5));
/// ```
pub fn optimal_loads(cdag: &Cdag, s: usize, max_states: usize) -> Option<u64> {
    let n = cdag.len();
    assert!(n <= 64, "optimal pebbling supports at most 64 nodes");
    if cdag.computes().iter().any(|&v| cdag.preds(v).len() + 1 > s) {
        return None; // some node can never be computed: preds + itself > s
    }
    let full_white: u64 = {
        let mut m = 0u64;
        for i in 0..n {
            m |= 1 << i;
        }
        m
    };
    let start_white: u64 = cdag.inputs().iter().fold(0u64, |m, &i| m | (1 << i));

    // 0-1 BFS (deque Dijkstra) over (whites, reds).
    let mut dist: HashMap<(u64, u64), u64> = HashMap::new();
    let mut queue: VecDeque<((u64, u64), u64)> = VecDeque::new();
    let start = (start_white, 0u64);
    dist.insert(start, 0);
    queue.push_back((start, 0));
    while let Some(((whites, reds), d)) = queue.pop_front() {
        if dist.get(&(whites, reds)) != Some(&d) {
            continue;
        }
        if whites == full_white {
            return Some(d);
        }
        if dist.len() > max_states {
            return None;
        }
        let red_count = reds.count_ones() as usize;
        let push = |state: (u64, u64),
                    nd: u64,
                    front: bool,
                    dist: &mut HashMap<(u64, u64), u64>,
                    queue: &mut VecDeque<((u64, u64), u64)>| {
            let better = dist.get(&state).map(|&old| nd < old).unwrap_or(true);
            if better {
                dist.insert(state, nd);
                if front {
                    queue.push_front((state, nd));
                } else {
                    queue.push_back((state, nd));
                }
            }
        };
        for v in 0..n as u32 {
            let bit = 1u64 << v;
            // Compute.
            if whites & bit == 0 {
                let preds_mask: u64 = cdag.preds(v).iter().fold(0u64, |m, &p| m | (1 << p));
                if preds_mask & reds == preds_mask {
                    let new_reds = reds | bit;
                    if (new_reds.count_ones() as usize) <= s {
                        push((whites | bit, new_reds), d, true, &mut dist, &mut queue);
                    }
                }
            }
            // Fetch.
            if whites & bit != 0 && reds & bit == 0 && red_count < s {
                push((whites, reds | bit), d + 1, false, &mut dist, &mut queue);
            }
            // Spill.
            if reds & bit != 0 {
                push((whites, reds & !bit), d, true, &mut dist, &mut queue);
            }
        }
    }
    None
}

/// Loads of the valid game that computes nodes in `order` (must be a
/// topological order of the compute nodes), fetching missing predecessors
/// on demand and spilling least-recently-used reds.
///
/// The result is always an upper bound on [`optimal_loads`].
///
/// # Panics
///
/// Panics if `s` is smaller than some node's in-degree + 1, or `order`
/// violates dependencies.
pub fn greedy_loads(cdag: &Cdag, s: usize, order: &[u32]) -> u64 {
    let mut white: Vec<bool> = vec![false; cdag.len()];
    for i in cdag.inputs() {
        white[i as usize] = true;
    }
    let mut red: Vec<bool> = vec![false; cdag.len()];
    let mut lru: VecDeque<u32> = VecDeque::new(); // front = oldest
    let mut loads = 0u64;
    let touch = |v: u32, lru: &mut VecDeque<u32>| {
        if let Some(pos) = lru.iter().position(|&x| x == v) {
            lru.remove(pos);
        }
        lru.push_back(v);
    };
    for &v in order {
        assert!(!white[v as usize], "node {v} already computed");
        let preds: Vec<u32> = cdag.preds(v).to_vec();
        assert!(preds.len() < s, "cache too small for node {v}");
        // Fetch missing predecessors.
        for &p in &preds {
            if !red[p as usize] {
                assert!(white[p as usize], "order violates dependencies at {v}");
                evict_if_full(&mut red, &mut lru, s, &preds);
                red[p as usize] = true;
                loads += 1;
            }
            touch(p, &mut lru);
        }
        // Compute: place red+white on v.
        evict_if_full(&mut red, &mut lru, s, &preds);
        red[v as usize] = true;
        white[v as usize] = true;
        touch(v, &mut lru);
    }
    loads
}

fn evict_if_full(red: &mut [bool], lru: &mut VecDeque<u32>, s: usize, pinned: &[u32]) {
    let count = red.iter().filter(|&&r| r).count();
    if count < s {
        return;
    }
    // Evict the oldest red that is not pinned by the current operation.
    let pos = lru
        .iter()
        .position(|v| !pinned.contains(v))
        .expect("spillable pebble exists");
    let victim = lru.remove(pos).expect("position valid");
    red[victim as usize] = false;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::build_cdag;
    use ioopt_ir::kernels;
    use std::collections::HashMap;

    fn sizes(pairs: &[(&str, i64)]) -> HashMap<String, i64> {
        pairs.iter().map(|&(n, v)| (n.to_string(), v)).collect()
    }

    #[test]
    fn chain_needs_each_input_once() {
        // 1x1 output, k-chain of length 3 with 2 fresh inputs per step
        // plus the initial C value; chain nodes have 3 predecessors
        // (A, B, prev), so s = 4 suffices to load every input exactly
        // once: 3 + 3 + 1 = 7 loads.
        let k = kernels::matmul();
        let g = build_cdag(&k, &sizes(&[("i", 1), ("j", 1), ("k", 3)]), 1000);
        assert_eq!(optimal_loads(&g, 4, 1_000_000), Some(7));
    }

    #[test]
    fn small_cache_costs_more() {
        let k = kernels::matmul();
        let g = build_cdag(&k, &sizes(&[("i", 1), ("j", 2), ("k", 2)]), 1000);
        let big = optimal_loads(&g, 8, 4_000_000).unwrap();
        let small = optimal_loads(&g, 4, 4_000_000).unwrap();
        assert!(small >= big, "small {small} < big {big}");
        // With a huge cache each input cell (A: 2, B: 4, C inits: 2) is
        // loaded exactly once.
        assert_eq!(big, 8);
    }

    #[test]
    fn greedy_is_valid_upper_bound() {
        let k = kernels::matmul();
        let g = build_cdag(&k, &sizes(&[("i", 1), ("j", 2), ("k", 2)]), 1000);
        let order = g.computes();
        for s in [4usize, 6] {
            let greedy = greedy_loads(&g, s, &order);
            let opt = optimal_loads(&g, s, 4_000_000).unwrap();
            assert!(opt <= greedy, "s={s}: optimal {opt} > greedy {greedy}");
        }
    }

    #[test]
    fn too_small_cache_is_none() {
        let k = kernels::matmul();
        let g = build_cdag(&k, &sizes(&[("i", 1), ("j", 1), ("k", 2)]), 1000);
        // Second chain node has 3 predecessors (A, B, prev) -> needs s >= 4.
        assert_eq!(optimal_loads(&g, 3, 1_000_000), None);
    }

    #[test]
    fn state_budget_respected() {
        let k = kernels::matmul();
        let g = build_cdag(&k, &sizes(&[("i", 2), ("j", 2), ("k", 2)]), 1000);
        assert_eq!(optimal_loads(&g, 4, 10), None);
    }
}
