//! The classical Hong-Kung red-blue pebble game, *with* recomputation.
//!
//! The paper's red-white game (§3.3) forbids recomputation — every node
//! is computed exactly once. The original red-blue game allows a value to
//! be recomputed instead of spilled and reloaded, so its optimal load
//! count is ≤ the red-white optimum. Comparing the two on tiny CDAGs
//! quantifies what the no-recomputation assumption costs — for the
//! paper's kernel class the answer is "nothing at practical cache sizes",
//! which the workspace tests verify.

use std::collections::{HashMap, VecDeque};

use crate::graph::Cdag;

/// Exact minimum number of loads to get every output computed, with `s`
/// red pebbles and **recomputation allowed** (stores are free since only
/// loads are counted, so a computed value is always available in slow
/// memory afterwards).
///
/// Returns `None` if the exploration exceeds `max_states` or some node
/// can never be computed.
pub fn optimal_loads_with_recompute(cdag: &Cdag, s: usize, max_states: usize) -> Option<u64> {
    let n = cdag.len();
    assert!(n <= 64, "optimal pebbling supports at most 64 nodes");
    if cdag.computes().iter().any(|&v| cdag.preds(v).len() + 1 > s) {
        return None;
    }
    let inputs_mask: u64 = cdag.inputs().iter().fold(0u64, |m, &i| m | (1 << i));
    let goal: u64 = cdag.outputs().iter().fold(0u64, |m, &o| m | (1 << o));

    // State: (ever_red, reds). `ever_red` is monotone: once computed (or
    // loaded), a value can always be re-fetched (free stores) or
    // recomputed.
    let start = (inputs_mask, 0u64);
    let mut dist: HashMap<(u64, u64), u64> = HashMap::new();
    let mut queue: VecDeque<((u64, u64), u64)> = VecDeque::new();
    dist.insert(start, 0);
    queue.push_back((start, 0));
    while let Some(((ever, reds), d)) = queue.pop_front() {
        if dist.get(&(ever, reds)) != Some(&d) {
            continue;
        }
        if ever & goal == goal {
            return Some(d);
        }
        if dist.len() > max_states {
            return None;
        }
        let red_count = reds.count_ones() as usize;
        let push = |state: (u64, u64),
                    nd: u64,
                    front: bool,
                    dist: &mut HashMap<(u64, u64), u64>,
                    queue: &mut VecDeque<((u64, u64), u64)>| {
            let better = dist.get(&state).map(|&old| nd < old).unwrap_or(true);
            if better {
                dist.insert(state, nd);
                if front {
                    queue.push_front((state, nd));
                } else {
                    queue.push_back((state, nd));
                }
            }
        };
        for v in 0..n as u32 {
            let bit = 1u64 << v;
            // Compute (also re-compute): preds red, capacity respected.
            if inputs_mask & bit == 0 && reds & bit == 0 {
                let preds_mask: u64 = cdag.preds(v).iter().fold(0u64, |m, &p| m | (1 << p));
                if preds_mask & reds == preds_mask && ((reds | bit).count_ones() as usize) <= s {
                    push((ever | bit, reds | bit), d, true, &mut dist, &mut queue);
                }
            }
            // Load: anything ever materialized can be re-fetched.
            if ever & bit != 0 && reds & bit == 0 && red_count < s {
                push((ever, reds | bit), d + 1, false, &mut dist, &mut queue);
            }
            // Drop a red pebble (free).
            if reds & bit != 0 {
                push((ever, reds & !bit), d, true, &mut dist, &mut queue);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::build_cdag;
    use crate::pebble::optimal_loads;
    use ioopt_ir::kernels;
    use std::collections::HashMap;

    fn sizes(pairs: &[(&str, i64)]) -> HashMap<String, i64> {
        pairs.iter().map(|&(n, v)| (n.to_string(), v)).collect()
    }

    #[test]
    fn recomputation_never_hurts() {
        let k = kernels::matmul();
        for (sz, s) in [
            (sizes(&[("i", 1), ("j", 2), ("k", 2)]), 4usize),
            (sizes(&[("i", 1), ("j", 2), ("k", 2)]), 5),
            (sizes(&[("i", 1), ("j", 1), ("k", 3)]), 4),
        ] {
            let g = build_cdag(&k, &sz, 1000);
            let rw = optimal_loads(&g, s, 4_000_000).expect("red-white fits");
            let rb = optimal_loads_with_recompute(&g, s, 4_000_000).expect("red-blue fits");
            assert!(rb <= rw, "red-blue {rb} > red-white {rw}");
        }
    }

    #[test]
    fn no_gap_for_matmul_at_reasonable_cache() {
        // For the paper's kernel class, recomputation does not pay at
        // practical cache sizes: the optima coincide.
        let k = kernels::matmul();
        let g = build_cdag(&k, &sizes(&[("i", 1), ("j", 2), ("k", 2)]), 1000);
        let rw = optimal_loads(&g, 5, 4_000_000).unwrap();
        let rb = optimal_loads_with_recompute(&g, 5, 4_000_000).unwrap();
        assert_eq!(rw, rb);
    }

    #[test]
    fn outputs_only_goal() {
        // Red-blue only needs the *outputs* computed; with generous s the
        // cost is exactly the distinct inputs feeding them.
        let k = kernels::matmul();
        let g = build_cdag(&k, &sizes(&[("i", 1), ("j", 1), ("k", 2)]), 1000);
        // Inputs: A(2) + B(2) + C init(1) = 5 loads.
        assert_eq!(optimal_loads_with_recompute(&g, 6, 1_000_000), Some(5));
    }

    #[test]
    fn budget_and_feasibility_guards() {
        let k = kernels::matmul();
        let g = build_cdag(&k, &sizes(&[("i", 1), ("j", 1), ("k", 2)]), 1000);
        assert_eq!(optimal_loads_with_recompute(&g, 3, 1_000_000), None); // preds+1 > s
        assert_eq!(optimal_loads_with_recompute(&g, 6, 3), None); // state budget
    }
}
