//! Property tests for the pebble games on small random CDAG instances.
//!
//! A [`SplitMix64`] stream drives instance selection (kernel shape and
//! trip counts), so the "random" cases are identical on every platform
//! and every run. The pinned laws:
//!
//! * [`optimal_loads`] is non-increasing in the red-pebble count `s`;
//! * the red-blue optimum (recomputation allowed) never exceeds the
//!   red-white optimum;
//! * a concrete greedy schedule never beats the optimum;
//! * chain, fan, and diamond shaped CDAGs match hand-computed optima.

use std::collections::HashMap;

use ioopt_cdag::{build_cdag, greedy_loads, optimal_loads, optimal_loads_with_recompute, Cdag};
use ioopt_ir::{kernels, parse_kernel, Kernel};
use ioopt_symbolic::SplitMix64;

const MAX_STATES: usize = 4_000_000;

fn sizes(pairs: &[(&str, i64)]) -> HashMap<String, i64> {
    pairs.iter().map(|&(n, v)| (n.to_string(), v)).collect()
}

/// `Out[j] = A[i] * B[j]` with a single `i`: one source cell `A[0]`
/// fans out to every compute, each of which also reads its own `B[j]`.
fn fan_kernel() -> Kernel {
    parse_kernel("kernel fan {\n    loop i : Ni;\n    loop j : Nj;\n    Out[j] = A[i] * B[j];\n}")
        .expect("fan kernel parses")
}

/// `S[i] += A[i] * B[k]` with a single `i`: the shared `A[0]` feeds
/// every link of the accumulation chain, so consecutive computes form
/// diamonds (`A[0] -> c_t -> c_{t+1}` and `A[0] -> c_{t+1}`).
fn diamond_kernel() -> Kernel {
    parse_kernel(
        "kernel diamond {\n    loop i : Ni;\n    loop k : Nk;\n    S[i] += A[i] * B[k];\n}",
    )
    .expect("diamond kernel parses")
}

/// 1-D stencil reduction `Out[x] += In[x+w]`: adjacent outputs share
/// input cells, the classic overlapping-diamond dependence pattern.
fn stencil_kernel() -> Kernel {
    parse_kernel("kernel stencil {\n    loop x : Nx;\n    loop w : Nw;\n    Out[x] += In[x+w];\n}")
        .expect("stencil kernel parses")
}

/// Draws a small instance from a fixed pool of shapes with randomized
/// trip counts. Node counts stay well under the 64-node oracle limit,
/// and mostly under ~16 so the state-space search completes.
fn random_instance(rng: &mut SplitMix64) -> (String, Cdag) {
    match rng.range_usize(4) {
        0 => {
            let j = rng.range_i64(1, 2);
            let k = rng.range_i64(2, 3);
            let g = build_cdag(
                &kernels::matmul(),
                &sizes(&[("i", 1), ("j", j), ("k", k)]),
                1000,
            );
            (format!("matmul i=1 j={j} k={k}"), g)
        }
        1 => {
            let n = rng.range_i64(2, 6);
            let g = build_cdag(&fan_kernel(), &sizes(&[("i", 1), ("j", n)]), 1000);
            (format!("fan j={n}"), g)
        }
        2 => {
            let k = rng.range_i64(2, 4);
            let g = build_cdag(&diamond_kernel(), &sizes(&[("i", 1), ("k", k)]), 1000);
            (format!("diamond k={k}"), g)
        }
        _ => {
            let x = rng.range_i64(2, 3);
            let g = build_cdag(&stencil_kernel(), &sizes(&[("x", x), ("w", 2)]), 1000);
            (format!("stencil x={x} w=2"), g)
        }
    }
}

/// Smallest cache that can compute every node: max in-degree + 1.
fn min_cache(cdag: &Cdag) -> usize {
    cdag.computes()
        .iter()
        .map(|&v| cdag.preds(v).len() + 1)
        .max()
        .expect("at least one compute")
}

#[test]
fn optimal_loads_is_monotone_in_cache_size() {
    let mut rng = SplitMix64::new(0x1007);
    for _ in 0..12 {
        let (label, g) = random_instance(&mut rng);
        let s0 = min_cache(&g);
        let mut prev: Option<u64> = None;
        for s in s0..s0 + 3 {
            let cur = optimal_loads(&g, s, MAX_STATES);
            if let (Some(p), Some(c)) = (prev, cur) {
                assert!(
                    c <= p,
                    "{label}: optimum increased from {p} to {c} when s grew to {s}"
                );
            }
            if cur.is_some() {
                prev = cur;
            }
        }
        assert!(prev.is_some(), "{label}: no cache size completed");
    }
}

#[test]
fn recomputation_never_increases_loads() {
    let mut rng = SplitMix64::new(0x5eed);
    for _ in 0..10 {
        let (label, g) = random_instance(&mut rng);
        let s = min_cache(&g) + rng.range_usize(2);
        let (Some(rw), Some(rb)) = (
            optimal_loads(&g, s, MAX_STATES),
            optimal_loads_with_recompute(&g, s, MAX_STATES),
        ) else {
            continue; // state budget exhausted: nothing to compare
        };
        assert!(rb <= rw, "{label} s={s}: red-blue {rb} > red-white {rw}");
    }
}

#[test]
fn greedy_never_beats_optimal() {
    let mut rng = SplitMix64::new(0x9eed);
    for _ in 0..10 {
        let (label, g) = random_instance(&mut rng);
        let s = min_cache(&g) + rng.range_usize(3);
        let greedy = greedy_loads(&g, s, &g.computes());
        if let Some(opt) = optimal_loads(&g, s, MAX_STATES) {
            assert!(
                opt <= greedy,
                "{label} s={s}: optimal {opt} > greedy {greedy}"
            );
        }
    }
}

#[test]
fn chain_optimum_matches_closed_form() {
    // matmul with i = j = 1 degenerates to a reduction chain: link t
    // reads fresh cells A[0][t], B[t][0] plus the carried accumulator.
    // With s = 4 every input is loaded exactly once: 2k + 1 loads.
    for k in 2..=5i64 {
        let g = build_cdag(
            &kernels::matmul(),
            &sizes(&[("i", 1), ("j", 1), ("k", k)]),
            1000,
        );
        let expect = (2 * k + 1) as u64;
        assert_eq!(
            optimal_loads(&g, 4, MAX_STATES),
            Some(expect),
            "chain k={k}"
        );
        // Recomputation buys nothing on a chain of fresh inputs.
        assert_eq!(
            optimal_loads_with_recompute(&g, 4, MAX_STATES),
            Some(expect),
            "red-blue chain k={k}"
        );
    }
}

#[test]
fn fan_optimum_counts_each_input_once() {
    // One source A[0] fans out to n independent computes, each with a
    // private B[j]. Keeping A resident: 1 + n loads with s = 3; s = 2
    // cannot hold both predecessors plus the result.
    for n in 2..=5i64 {
        let g = build_cdag(&fan_kernel(), &sizes(&[("i", 1), ("j", n)]), 1000);
        assert_eq!(
            optimal_loads(&g, 3, MAX_STATES),
            Some(1 + n as u64),
            "fan n={n}"
        );
        assert_eq!(optimal_loads(&g, 2, MAX_STATES), None, "fan n={n} s=2");
    }
}

#[test]
fn diamond_reuses_the_shared_source() {
    // Chain link t >= 1 has preds {c_{t-1}, A[0], B[t]} — a diamond on
    // A[0]. With s = 4 the source stays resident: init + A + k B-cells.
    for k in 2..=4i64 {
        let g = build_cdag(&diamond_kernel(), &sizes(&[("i", 1), ("k", k)]), 1000);
        assert_eq!(
            optimal_loads(&g, 4, MAX_STATES),
            Some(k as u64 + 2),
            "diamond k={k}"
        );
    }
    // s = 3 cannot hold three predecessors plus the new result.
    let g = build_cdag(&diamond_kernel(), &sizes(&[("i", 1), ("k", 2)]), 1000);
    assert_eq!(optimal_loads(&g, 3, MAX_STATES), None);
}
