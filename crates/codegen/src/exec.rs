//! Numeric execution of (tiled) kernels — the transformation-correctness
//! oracle.
//!
//! A tiling recommendation is only useful if the tiled loop nest computes
//! the same values as the original program. This module interprets a
//! kernel over `f64` arrays in any tiled order and compares against the
//! untiled reference, exercising the same legality argument as §3.1 (the
//! reduction is reassociation-safe up to floating-point rounding, so the
//! comparison uses a tolerance).

use std::collections::HashMap;

use ioopt_ir::{AccessKind, Kernel};

/// Dense storage for every array of a kernel.
#[derive(Debug, Clone)]
pub struct KernelData {
    /// Per array (output first, then inputs): flattened row-major values.
    arrays: Vec<Vec<f64>>,
    /// Per array: strides per array dimension.
    strides: Vec<Vec<usize>>,
    extents: Vec<i64>,
}

impl KernelData {
    /// Allocates arrays sized to cover the kernel's accesses, with inputs
    /// filled deterministically (a small LCG) and the output zeroed.
    ///
    /// # Panics
    ///
    /// Panics if a size is missing.
    pub fn new(kernel: &Kernel, sizes: &HashMap<String, i64>) -> KernelData {
        let extents: Vec<i64> = kernel
            .dims()
            .iter()
            .map(|d| {
                *sizes
                    .get(&d.name)
                    .unwrap_or_else(|| panic!("missing size for `{}`", d.name))
            })
            .collect();
        let corner: Vec<i64> = extents.iter().map(|&e| e - 1).collect();
        let mut arrays = Vec::new();
        let mut strides_all = Vec::new();
        let mut seed = 0x5eed_1234_u64;
        for (idx, a) in kernel.arrays().enumerate() {
            let dims_hi: Vec<usize> = a
                .access
                .dims()
                .iter()
                .map(|f| (f.eval(&corner) + 1).max(1) as usize)
                .collect();
            let mut strides = vec![1usize; dims_hi.len()];
            for i in (0..dims_hi.len().saturating_sub(1)).rev() {
                strides[i] = strides[i + 1] * dims_hi[i + 1];
            }
            let len = dims_hi.first().map(|&d| d * strides[0]).unwrap_or(1);
            let data: Vec<f64> = if idx == 0 {
                vec![0.0; len]
            } else {
                (0..len)
                    .map(|_| {
                        seed = seed
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        ((seed >> 40) as f64) / (1u64 << 24) as f64 - 0.5
                    })
                    .collect()
            };
            arrays.push(data);
            strides_all.push(strides);
        }
        KernelData {
            arrays,
            strides: strides_all,
            extents,
        }
    }

    /// The output array values.
    pub fn output(&self) -> &[f64] {
        &self.arrays[0]
    }

    fn addr(&self, array: usize, kernel: &Kernel, point: &[i64]) -> usize {
        let a: &ioopt_ir::ArrayRef = if array == 0 {
            kernel.output()
        } else {
            &kernel.inputs()[array - 1]
        };
        a.access
            .dims()
            .iter()
            .zip(&self.strides[array])
            .map(|(f, &s)| f.eval(point) as usize * s)
            .sum()
    }
}

/// Executes the kernel over `data` visiting iteration points in the tiled
/// order given by `perm` (dim indices, outermost first) and `tiles`
/// (by dimension name; missing = 1). Accumulating outputs use `+=`,
/// write outputs `=`; the element update is the product of the inputs.
pub fn execute(
    kernel: &Kernel,
    data: &mut KernelData,
    perm: &[usize],
    tiles: &HashMap<String, i64>,
) {
    let n = kernel.dims().len();
    let extents = data.extents.clone();
    let tiles: Vec<i64> = kernel
        .dims()
        .iter()
        .zip(&extents)
        .map(|(d, &e)| tiles.get(&d.name).copied().unwrap_or(1).clamp(1, e))
        .collect();
    let accumulate = kernel.output().kind == AccessKind::Accumulate;
    let num_inputs = kernel.inputs().len();

    let mut point = vec![0i64; n];
    let mut origins = vec![0i64; n];
    'outer: loop {
        let limits: Vec<i64> = (0..n)
            .map(|d| (extents[d] - origins[d]).min(tiles[d]))
            .collect();
        let mut offs = vec![0i64; n];
        loop {
            for d in 0..n {
                point[d] = origins[d] + offs[d];
            }
            let mut value = 1.0;
            for a in 1..=num_inputs {
                value *= data.arrays[a][data.addr(a, kernel, &point)];
            }
            let out_addr = data.addr(0, kernel, &point);
            if accumulate {
                data.arrays[0][out_addr] += value;
            } else {
                data.arrays[0][out_addr] = value;
            }
            // Odometer over the tiled order.
            let mut lvl = n;
            loop {
                if lvl == 0 {
                    break;
                }
                lvl -= 1;
                let d = perm[lvl];
                offs[d] += 1;
                if offs[d] < limits[d] {
                    break;
                }
                offs[d] = 0;
                if lvl == 0 {
                    let mut olvl = n;
                    loop {
                        if olvl == 0 {
                            break 'outer;
                        }
                        olvl -= 1;
                        let d = perm[olvl];
                        origins[d] += tiles[d];
                        if origins[d] < extents[d] {
                            break;
                        }
                        origins[d] = 0;
                    }
                    continue 'outer;
                }
            }
        }
    }
}

/// Runs the tiled schedule and the untiled source order on identical
/// inputs; returns the largest absolute output difference.
pub fn validate_tiling(
    kernel: &Kernel,
    sizes: &HashMap<String, i64>,
    perm: &[usize],
    tiles: &HashMap<String, i64>,
) -> f64 {
    let n = kernel.dims().len();
    let reference_perm: Vec<usize> = (0..n).collect();
    let mut reference = KernelData::new(kernel, sizes);
    execute(kernel, &mut reference, &reference_perm, &HashMap::new());
    let mut tiled = KernelData::new(kernel, sizes);
    execute(kernel, &mut tiled, perm, tiles);
    reference
        .output()
        .iter()
        .zip(tiled.output())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ioopt_ir::{kernels, parse_kernel};

    fn sizes(pairs: &[(&str, i64)]) -> HashMap<String, i64> {
        pairs.iter().map(|&(n, v)| (n.to_string(), v)).collect()
    }

    #[test]
    fn matmul_tilings_preserve_results() {
        let k = kernels::matmul();
        let s = sizes(&[("i", 13), ("j", 11), ("k", 17)]);
        for perm in [[0usize, 1, 2], [2, 1, 0], [1, 2, 0]] {
            for tiles in [
                HashMap::new(),
                sizes(&[("i", 4), ("j", 5)]),
                sizes(&[("i", 3), ("j", 3), ("k", 7)]),
            ] {
                let err = validate_tiling(&k, &s, &perm, &tiles);
                assert!(err < 1e-9, "perm {perm:?} tiles {tiles:?}: err {err}");
            }
        }
    }

    #[test]
    fn conv_tilings_preserve_results() {
        let k = kernels::conv1d();
        let s = sizes(&[("c", 3), ("f", 4), ("x", 9), ("w", 2)]);
        let err = validate_tiling(&k, &s, &[3, 0, 1, 2], &sizes(&[("f", 2), ("x", 4)]));
        assert!(err < 1e-9, "err {err}");
    }

    #[test]
    fn plain_write_kernels_respect_last_writer() {
        // A pure copy has no reduction: every order writes each cell from
        // the same unique iteration, so any tiling matches.
        let k = parse_kernel("kernel copy { loop i : N; B[i] = A[i]; }").unwrap();
        let s = sizes(&[("i", 10)]);
        let err = validate_tiling(&k, &s, &[0], &sizes(&[("i", 3)]));
        assert_eq!(err, 0.0);
    }

    #[test]
    fn deterministic_inputs() {
        let k = kernels::matmul();
        let s = sizes(&[("i", 3), ("j", 3), ("k", 3)]);
        let a = KernelData::new(&k, &s);
        let b = KernelData::new(&k, &s);
        assert_eq!(a.arrays[1], b.arrays[1]);
        assert!(a.arrays[1].iter().any(|&v| v != 0.0));
    }
}
