//! # ioopt-codegen
//!
//! Emits the paper's "suggested tiled code" (Fig. 1, §4.4): a C-like
//! rendering of the tiled loop nest implied by a tiling schedule, like
//! the tiled matmul of Listing 1 or the tiled convolution of Listing 3.
//!
//! Loops with tile size equal to the full extent are omitted from the
//! inter-tile band, and loops with tile size 1 are omitted from the
//! intra-tile band, matching the paper's presentation.

#![warn(missing_docs)]

mod exec;

pub use exec::{execute, validate_tiling, KernelData};

use std::collections::HashMap;
use std::fmt::Write as _;

use ioopt_ir::{AccessKind, Kernel};

/// How a dimension is tiled in emitted code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TileSpec {
    /// Tile size 1: the dimension iterates between tiles only.
    One,
    /// Full extent: the dimension iterates inside the tile only.
    Full,
    /// A named or numeric tile size (`Ti`, `31`, …).
    Sized(String),
}

/// A tiled loop-nest description ready for rendering.
#[derive(Debug, Clone)]
pub struct TiledCode {
    kernel: Kernel,
    perm: Vec<usize>,
    tiles: Vec<TileSpec>,
    /// Dimension forced innermost in the intra-tile band (the paper's §6
    /// vectorization pin, e.g. `f` for the Yolo layers). The cost model
    /// is insensitive to the intra-tile order, so this is free.
    vectorize: Option<usize>,
}

impl TiledCode {
    /// Builds a renderer from a permutation (dim indices, outermost
    /// first) and per-dimension tile specs, indexed by dimension.
    ///
    /// # Panics
    ///
    /// Panics if `perm` or `tiles` have the wrong length.
    pub fn new(kernel: &Kernel, perm: &[usize], tiles: &[TileSpec]) -> TiledCode {
        let n = kernel.dims().len();
        assert_eq!(perm.len(), n, "permutation length mismatch");
        assert_eq!(tiles.len(), n, "tile spec length mismatch");
        TiledCode {
            kernel: kernel.clone(),
            perm: perm.to_vec(),
            tiles: tiles.to_vec(),
            vectorize: None,
        }
    }

    /// Forces the named dimension innermost in the intra-tile band (the
    /// paper pins `f` to "force vectorization on dimension f", §6).
    ///
    /// # Panics
    ///
    /// Panics if `name` is not a dimension of the kernel.
    pub fn with_vectorized(mut self, name: &str) -> TiledCode {
        let d = self
            .kernel
            .dim_index(name)
            .unwrap_or_else(|| panic!("unknown dimension `{name}`"));
        self.vectorize = Some(d);
        self
    }

    /// Builds tile specs from integer tile sizes (`1` ⇒ [`TileSpec::One`],
    /// `≥ extent` ⇒ [`TileSpec::Full`]).
    pub fn from_integer_tiles(
        kernel: &Kernel,
        perm: &[usize],
        tiles: &HashMap<String, i64>,
        sizes: &HashMap<String, i64>,
    ) -> TiledCode {
        let specs: Vec<TileSpec> = kernel
            .dims()
            .iter()
            .map(|d| {
                let t = tiles.get(&d.name).copied().unwrap_or(1);
                let n = sizes.get(&d.name).copied().unwrap_or(i64::MAX);
                if t <= 1 {
                    TileSpec::One
                } else if t >= n {
                    TileSpec::Full
                } else {
                    TileSpec::Sized(t.to_string())
                }
            })
            .collect();
        TiledCode::new(kernel, perm, &specs)
    }

    /// Renders C-like source.
    pub fn to_c(&self) -> String {
        let k = &self.kernel;
        let mut out = String::new();
        let mut indent = 0usize;
        let pad = |out: &mut String, indent: usize| {
            for _ in 0..indent {
                out.push_str("    ");
            }
        };
        // Inter-tile loops: skip Full (single tile).
        for &d in &self.perm {
            let dim = &k.dims()[d];
            match &self.tiles[d] {
                TileSpec::Full => {}
                TileSpec::One => {
                    pad(&mut out, indent);
                    let _ = writeln!(
                        out,
                        "for ({v} = 0; {v} < {n}; {v}++)",
                        v = dim.name,
                        n = dim.size
                    );
                    indent += 1;
                }
                TileSpec::Sized(t) => {
                    pad(&mut out, indent);
                    let _ = writeln!(
                        out,
                        "for ({v}1 = 0; {v}1 < {n}; {v}1 += {t})",
                        v = dim.name,
                        n = dim.size
                    );
                    indent += 1;
                }
            }
        }
        // Intra-tile loops: skip One; an optional vectorized dimension
        // goes innermost.
        let mut intra: Vec<usize> = self.perm.clone();
        if let Some(v) = self.vectorize {
            intra.retain(|&d| d != v);
            intra.push(v);
        }
        for &d in &intra {
            let dim = &k.dims()[d];
            match &self.tiles[d] {
                TileSpec::One => {}
                TileSpec::Full => {
                    pad(&mut out, indent);
                    let _ = writeln!(
                        out,
                        "for ({v} = 0; {v} < {n}; {v}++)",
                        v = dim.name,
                        n = dim.size
                    );
                    indent += 1;
                }
                TileSpec::Sized(t) => {
                    pad(&mut out, indent);
                    let _ = writeln!(
                        out,
                        "for ({v} = {v}1; {v} < min({v}1 + {t}, {n}); {v}++)",
                        v = dim.name,
                        n = dim.size
                    );
                    indent += 1;
                }
            }
        }
        pad(&mut out, indent);
        let op = match k.output().kind {
            AccessKind::Accumulate => "+=",
            _ => "=",
        };
        let _ = write!(out, "{} {} ", render_access(k, 0), op);
        for (i, _) in k.inputs().iter().enumerate() {
            if i > 0 {
                out.push_str(" * ");
            }
            out.push_str(&render_access(k, i + 1));
        }
        out.push_str(";\n");
        out
    }
}

/// Renders `Name[sub][sub]` for array `idx` (0 = output).
fn render_access(kernel: &Kernel, idx: usize) -> String {
    let a: &ioopt_ir::ArrayRef = if idx == 0 {
        kernel.output()
    } else {
        &kernel.inputs()[idx - 1]
    };
    let mut s = a.name.clone();
    for form in a.access.dims() {
        s.push('[');
        let mut first = true;
        for &(d, c) in form.terms() {
            if !first {
                s.push('+');
            }
            first = false;
            if c != 1 {
                let _ = write!(s, "{c}*");
            }
            s.push_str(&kernel.dims()[d].name);
        }
        if form.constant() != 0 || first {
            if !first {
                s.push('+');
            }
            let _ = write!(s, "{}", form.constant());
        }
        s.push(']');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use ioopt_ir::kernels;

    #[test]
    fn matmul_listing1_shape() {
        // Listing 1's tiled loop structure: (i1, j1, k, i, j).
        let k = kernels::matmul();
        let code = TiledCode::new(
            &k,
            &[0, 1, 2],
            &[
                TileSpec::Sized("Ti".into()),
                TileSpec::Sized("Tj".into()),
                TileSpec::One,
            ],
        )
        .to_c();
        let lines: Vec<&str> = code.lines().map(str::trim).collect();
        assert!(lines[0].starts_with("for (i1 = 0; i1 < Ni; i1 += Ti)"));
        assert!(lines[1].starts_with("for (j1 = 0; j1 < Nj; j1 += Tj)"));
        assert!(lines[2].starts_with("for (k = 0; k < Nk; k++)"));
        assert!(lines[3].starts_with("for (i = i1;"));
        assert!(lines[4].starts_with("for (j = j1;"));
        assert_eq!(lines[5], "C[i][j] += A[i][k] * B[k][j];");
    }

    #[test]
    fn conv1d_listing3_shape() {
        // Listing 3: ((w, c, f, x), {Tc, Tf, Tx = 1, Tw = Nw}): w omitted
        // from the inter-tile band, x omitted from the intra-tile band.
        let k = kernels::conv1d();
        let w = k.dim_index("w").unwrap();
        let c = k.dim_index("c").unwrap();
        let f = k.dim_index("f").unwrap();
        let x = k.dim_index("x").unwrap();
        let mut tiles = vec![TileSpec::One; 4];
        tiles[c] = TileSpec::Sized("Tc".into());
        tiles[f] = TileSpec::Sized("Tf".into());
        tiles[w] = TileSpec::Full;
        tiles[x] = TileSpec::One;
        let code = TiledCode::new(&k, &[w, c, f, x], &tiles).to_c();
        let lines: Vec<&str> = code.lines().map(str::trim).collect();
        // Inter-tile: c1, f1, x (w has a single tile).
        assert!(lines[0].starts_with("for (c1 = 0;"));
        assert!(lines[1].starts_with("for (f1 = 0;"));
        assert!(lines[2].starts_with("for (x = 0;"));
        // Intra-tile: w (full), c, f — x omitted.
        assert!(lines[3].starts_with("for (w = 0;"));
        assert!(code.contains("Out[f][x] += Image[x+w][c] * Filter[f][w][c];"));
    }

    #[test]
    fn integer_tiles_classify() {
        let k = kernels::matmul();
        let sizes = HashMap::from([
            ("i".to_string(), 100i64),
            ("j".to_string(), 100),
            ("k".to_string(), 100),
        ]);
        let tiles = HashMap::from([
            ("i".to_string(), 31i64),
            ("j".to_string(), 100),
            ("k".to_string(), 1),
        ]);
        let code = TiledCode::from_integer_tiles(&k, &[0, 1, 2], &tiles, &sizes).to_c();
        assert!(code.contains("i1 += 31"));
        assert!(code.contains("for (j = 0; j < Nj; j++)")); // full
        assert!(code.contains("for (k = 0; k < Nk; k++)")); // one
    }

    #[test]
    fn vectorization_pin_moves_dim_innermost() {
        // Paper §6: "We fix the innermost dimension of the permutation in
        // order to force vectorization on dimension f".
        let k = kernels::conv1d();
        let tiles: Vec<TileSpec> = vec![
            TileSpec::Sized("Tc".into()),
            TileSpec::Sized("Tf".into()),
            TileSpec::Sized("Tx".into()),
            TileSpec::Full,
        ];
        let code = TiledCode::new(&k, &[3, 0, 1, 2], &tiles)
            .with_vectorized("f")
            .to_c();
        let lines: Vec<&str> = code.lines().map(str::trim).collect();
        // The last loop line (immediately before the statement) is on f.
        let stmt_idx = lines.iter().position(|l| l.starts_with("Out[")).unwrap();
        assert!(
            lines[stmt_idx - 1].starts_with("for (f = "),
            "innermost was: {}",
            lines[stmt_idx - 1]
        );
    }

    #[test]
    fn strided_subscripts_render() {
        let k =
            ioopt_ir::parse_kernel("kernel s { loop x : Nx; loop w : Nw; Out[x] += In[2*x+w]; }")
                .unwrap();
        let code = TiledCode::new(&k, &[0, 1], &[TileSpec::One, TileSpec::One]).to_c();
        assert!(code.contains("In[2*x+w]"));
    }
}
