//! The IOOpt pipeline (paper Fig. 1): input program → IOLB + IOUB +
//! TileOpt → parametric bounds and a tiling recommendation.

use std::collections::HashMap;

use ioopt_codegen::TiledCode;
use ioopt_iolb::{default_scenarios, lower_bound, LbOptions, LowerBoundReport};
use ioopt_ioub::SmallDimOracle;
use ioopt_ir::{classify_tc, Kernel};
use ioopt_symbolic::{Expr, Symbol};
use ioopt_tileopt::{optimize, Recommendation, TileOptConfig, TileOptError};

/// Options for [`analyze`].
#[derive(Debug, Clone)]
pub struct AnalysisOptions {
    /// Fast-memory capacity in data elements (the paper's `S`).
    pub cache_elems: f64,
    /// Small-dimension scenarios for the lower bound; `None` selects the
    /// paper's defaults per kernel kind (TC groups / conv list / marked).
    pub scenarios: Option<Vec<Vec<usize>>>,
    /// TileOpt search options.
    pub tileopt: TileOptConfig,
}

impl AnalysisOptions {
    /// Default options for a cache of `cache_elems` elements.
    pub fn with_cache(cache_elems: f64) -> AnalysisOptions {
        AnalysisOptions {
            cache_elems,
            scenarios: None,
            tileopt: TileOptConfig { cache_elems, max_level_combos: 512 },
        }
    }
}

/// The result of a full IOOpt analysis at concrete sizes.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Kernel name.
    pub kernel: String,
    /// The analyzed kernel (for rendering and further queries).
    pub ir: Kernel,
    /// Arithmetic complexity `∏ N_d` (symbolic).
    pub arith_complexity: Expr,
    /// The symbolic lower-bound report.
    pub lower: LowerBoundReport,
    /// The numeric lower bound at the given sizes and cache.
    pub lb: f64,
    /// The tiling recommendation realizing the upper bound.
    pub recommendation: Recommendation,
    /// The numeric upper bound (I/O of the recommended tiling).
    pub ub: f64,
    /// `ub / lb` — 1.0 means provably optimal data movement.
    pub tightness: f64,
    /// Operational intensity at the upper bound: flops per element moved
    /// (2 flops per fused multiply-add). Compare against the machine
    /// balance to predict compute- vs. memory-boundedness (paper §1).
    pub operational_intensity: f64,
    /// The suggested tiled code (paper Fig. 1 output).
    pub tiled_code: String,
}

/// Errors from [`analyze`].
#[derive(Debug, Clone, PartialEq)]
pub enum AnalyzeError {
    /// The kernel is not legally tilable with rectangular tiles (§3.1).
    NotTilable(String),
    /// Lower-bound derivation failed.
    LowerBound(String),
    /// Upper-bound optimization failed.
    UpperBound(String),
    /// Bound evaluation failed (missing sizes).
    Eval(String),
}

impl std::fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnalyzeError::NotTilable(m) => write!(f, "kernel is not tilable: {m}"),
            AnalyzeError::LowerBound(m) => write!(f, "lower bound failed: {m}"),
            AnalyzeError::UpperBound(m) => write!(f, "upper bound failed: {m}"),
            AnalyzeError::Eval(m) => write!(f, "evaluation failed: {m}"),
        }
    }
}

impl std::error::Error for AnalyzeError {}

impl From<TileOptError> for AnalyzeError {
    fn from(e: TileOptError) -> AnalyzeError {
        AnalyzeError::UpperBound(e.to_string())
    }
}

/// Runs the full pipeline on a kernel at concrete sizes.
///
/// # Errors
///
/// See [`AnalyzeError`].
///
/// # Examples
///
/// ```
/// use ioopt::{analyze, AnalysisOptions};
/// use ioopt_ir::kernels;
/// use std::collections::HashMap;
/// let sizes = HashMap::from([
///     ("i".to_string(), 512i64),
///     ("j".to_string(), 512),
///     ("k".to_string(), 512),
/// ]);
/// let a = analyze(&kernels::matmul(), &sizes, &AnalysisOptions::with_cache(4096.0))?;
/// assert!(a.lb <= a.ub);
/// assert!(a.tightness < 1.6);
/// # Ok::<(), ioopt::AnalyzeError>(())
/// ```
pub fn analyze(
    kernel: &Kernel,
    sizes: &HashMap<String, i64>,
    options: &AnalysisOptions,
) -> Result<Analysis, AnalyzeError> {
    if let ioopt_ir::Legality::Illegal(msg) = ioopt_ir::check_tilable(kernel) {
        return Err(AnalyzeError::NotTilable(msg));
    }
    let scenarios = options
        .scenarios
        .clone()
        .unwrap_or_else(|| default_scenarios(kernel));
    let lower = lower_bound(
        kernel,
        &LbOptions { detect_reductions: true, scenarios },
    )
    .map_err(|e| AnalyzeError::LowerBound(e.to_string()))?;
    let mut env = kernel.bind_sizes(sizes);
    env.insert(Symbol::new("S"), options.cache_elems);
    let lb = lower
        .combined
        .eval_f64(&env)
        .map_err(|e| AnalyzeError::Eval(e.to_string()))?;

    let recommendation = optimize(kernel, sizes, &SmallDimOracle, &options.tileopt)?;
    let ub = recommendation.io;
    let tiled_code = TiledCode::from_integer_tiles(
        kernel,
        &recommendation.perm,
        &recommendation.tiles,
        sizes,
    )
    .to_c();
    let flops = 2.0
        * kernel
            .arith_complexity()
            .eval_f64(&env)
            .map_err(|e| AnalyzeError::Eval(e.to_string()))?;
    Ok(Analysis {
        kernel: kernel.name().to_string(),
        ir: kernel.clone(),
        arith_complexity: kernel.arith_complexity(),
        lower,
        lb,
        ub,
        tightness: if lb > 0.0 { ub / lb } else { f64::INFINITY },
        operational_intensity: if ub > 0.0 { flops / ub } else { f64::INFINITY },
        recommendation,
        tiled_code,
    })
}

/// Derives the Fig. 6-style closed-form upper bound of a tensor
/// contraction: one array stays resident while the group of dimensions it
/// does not touch streams innermost with unit tiles; the two remaining
/// groups are tiled with products equal to `Δ`, the cache fills
/// (`Δ² + 2Δ = S`), yielding `2·∏N/(√(S+1)−1) + |resident array|`.
///
/// The resident array defaults to `In2`; use [`symbolic_tc_ub_for`] to
/// pick the variant with the smallest additive term at concrete sizes,
/// which is the choice the paper's Fig. 6 makes.
///
/// Returns `None` if the kernel is not a tensor contraction.
pub fn symbolic_tc_ub(kernel: &Kernel) -> Option<ioopt_tileopt::SymbolicUb> {
    tc_ub_variant(kernel, 2)
}

/// As [`symbolic_tc_ub`], but evaluates all three resident-array variants
/// at `sizes` (with a large cache) and returns the smallest.
pub fn symbolic_tc_ub_for(
    kernel: &Kernel,
    sizes: &HashMap<String, i64>,
) -> Option<ioopt_tileopt::SymbolicUb> {
    let mut env = kernel.bind_sizes(sizes);
    env.insert(Symbol::new("S"), 1e9);
    let mut best: Option<(f64, ioopt_tileopt::SymbolicUb)> = None;
    for resident in 0..3 {
        if let Some(ub) = tc_ub_variant(kernel, resident) {
            if let Ok(v) = ub.bound.eval_f64(&env) {
                if best.as_ref().map(|(bv, _)| v < *bv).unwrap_or(true) {
                    best = Some((v, ub));
                }
            }
        }
    }
    best.map(|(_, ub)| ub)
}

/// One resident-array variant: `resident` is 0 = Out, 1 = In1, 2 = In2.
fn tc_ub_variant(kernel: &Kernel, resident: usize) -> Option<ioopt_tileopt::SymbolicUb> {
    use ioopt_ioub::{cost_with_levels, TilingSchedule};
    let class = classify_tc(kernel)?;
    let [g01, g02, g12] = &class.groups;
    // The streamed group is the one the resident array does not touch:
    // Out misses g12, In1 misses g02, In2 misses g01.
    let (tiled_a, tiled_b, streamed) = match resident {
        0 => (g01, g02, g12),
        1 => (g01, g12, g02),
        _ => (g02, g12, g01),
    };
    let mut perm: Vec<usize> = Vec::new();
    perm.extend(tiled_a);
    perm.extend(tiled_b);
    perm.extend(streamed);
    let mut sched = TilingSchedule::parametric_by_index(kernel, perm)?;
    for &d in streamed {
        let name = kernel.dims()[d].name.clone();
        sched = sched.pin_one(kernel, &name);
    }
    // The resident array ignores every streamed dimension, so it stays in
    // cache across the whole streamed block (reuse level = its length);
    // the other two arrays reuse across the innermost dimension only.
    let mut levels = [1usize, 1, 1];
    levels[resident] = streamed.len().max(1);
    let cost = cost_with_levels(kernel, &sched, &levels);
    let tile_sym = |d: usize| Symbol::new(&format!("T{}", kernel.dims()[d].name));
    let groups: Vec<Vec<Symbol>> = vec![
        tiled_a.iter().map(|&d| tile_sym(d)).collect(),
        tiled_b.iter().map(|&d| tile_sym(d)).collect(),
    ];
    ioopt_tileopt::eliminate_tiles(&cost.io, &cost.footprint, &groups, Symbol::new("S")).ok()
}

/// Derives a semi-symbolic closed-form upper bound for a 2D convolution
/// (paper Fig. 6, last row): the filter window is kept whole
/// (`Th = H, Tw = W`), the batch stays untiled, and a family of
/// quadratic-compatible tile templates in a single parameter `Δ` is tried
/// over the Algorithm-1 permutations; templates whose footprint exceeds
/// degree 2 in `Δ` are rejected (the paper hits the same quartic wall,
/// §6 "Limitations"). The winner is selected by evaluating each candidate
/// at `sizes` and `s_ref`.
///
/// Returns `None` when the kernel lacks the conv2d dimension names or no
/// template solves.
pub fn symbolic_conv_ub(
    kernel: &Kernel,
    sizes: &HashMap<String, i64>,
    s_ref: f64,
) -> Option<ioopt_tileopt::SymbolicUb> {
    use ioopt_ioub::{cost_with_levels, select_permutations, TilingSchedule};
    let delta = Symbol::new("Delta_conv");
    let d_expr = Expr::symbol(delta);
    let names = ["b", "c", "f", "x", "y", "h", "w"];
    for n in names {
        kernel.dim_index(n)?;
    }
    let full = |n: &str| Expr::symbol(kernel.dims()[kernel.dim_index(n).unwrap()].size);
    // Tile templates: map dim name -> expression in Δ (missing = pinned 1).
    let templates: Vec<Vec<(&str, Expr)>> = vec![
        // Square spatial tiles, everything else streamed.
        vec![("x", d_expr.clone()), ("y", d_expr.clone())],
        // Spatial strip x full-height y, tiled filters.
        vec![("x", d_expr.clone()), ("y", full("y")), ("f", d_expr.clone())],
        // Spatial strip with tiled channels.
        vec![("x", d_expr.clone()), ("y", full("y")), ("c", d_expr.clone())],
        // Square spatial tiles with filter-count tiling.
        vec![("x", d_expr.clone()), ("y", d_expr.clone()), ("f", d_expr.clone())],
    ];
    let mut env = kernel.bind_sizes(sizes);
    env.insert(Symbol::new("S"), s_ref);
    let arrays = kernel.arrays().count();
    let mut best: Option<(f64, ioopt_tileopt::SymbolicUb)> = None;
    // Degree-agnostic fallback (the paper's §6 relaxation, implemented in
    // `eliminate_tiles_relaxed`): tile x, y, c, f all equal to Δ and pick
    // Δ so no footprint term exceeds its share of S.
    for perm in select_permutations(kernel, &ioopt_ioub::SmallDimOracle) {
        let mut sched = TilingSchedule::parametric_by_index(kernel, perm.clone())
            .expect("valid permutation");
        for dname in ["h", "w", "b"] {
            let value = full(dname);
            sched = sched.pin(kernel, dname, value);
        }
        let free: Vec<Symbol> = ["x", "y", "c", "f"]
            .iter()
            .map(|n| Symbol::new(&format!("T{n}")))
            .collect();
        let groups: Vec<Vec<Symbol>> = free.iter().map(|&s| vec![s]).collect();
        for levels in ioopt_ioub::level_combinations(kernel, &sched, 32) {
            let cost = ioopt_ioub::cost_with_levels(kernel, &sched, &levels);
            let Ok(ub) = ioopt_tileopt::eliminate_tiles_relaxed(
                &cost.io,
                &cost.footprint,
                &groups,
                Symbol::new("S"),
            ) else {
                continue;
            };
            let Ok(dv) = ub.delta.eval_f64(&env) else { continue };
            if dv < 1.0 {
                continue;
            }
            let Ok(v) = ub.bound.eval_f64(&env) else { continue };
            if v.is_finite()
                && v > 0.0
                && best.as_ref().map(|(bv, _)| v < *bv).unwrap_or(true)
            {
                best = Some((v, ub));
            }
        }
    }
    for perm in select_permutations(kernel, &ioopt_ioub::SmallDimOracle) {
        for template in &templates {
            let mut sched =
                TilingSchedule::parametric_by_index(kernel, perm.clone())?;
            // Pin the window whole, the batch full, everything else by
            // the template (default 1).
            for dname in names {
                let value = match dname {
                    "h" => full("h"),
                    "w" => full("w"),
                    "b" => full("b"),
                    _ => template
                        .iter()
                        .find(|(n, _)| *n == dname)
                        .map(|(_, e)| e.clone())
                        .unwrap_or_else(Expr::one),
                };
                sched = sched.pin(kernel, dname, value);
            }
            for levels in ioopt_ioub::level_combinations(kernel, &sched, 64)
                .into_iter()
                .chain(std::iter::once(vec![1; arrays]))
            {
                let cost = cost_with_levels(kernel, &sched, &levels);
                let Ok(ub) = ioopt_tileopt::eliminate_with_subst(
                    &cost.io,
                    &cost.footprint,
                    &HashMap::new(),
                    delta,
                    Symbol::new("S"),
                ) else {
                    continue;
                };
                // Validity: Δ must be positive and within the spatial
                // extents at the reference point.
                let Ok(dv) = ub.delta.eval_f64(&env) else { continue };
                let max_spatial = sizes["x"].min(sizes["y"]) as f64;
                if !(1.0..=max_spatial).contains(&dv) {
                    continue;
                }
                let Ok(v) = ub.bound.eval_f64(&env) else { continue };
                if v.is_finite()
                    && v > 0.0
                    && best.as_ref().map(|(bv, _)| v < *bv).unwrap_or(true)
                {
                    best = Some((v, ub));
                }
            }
        }
    }
    best.map(|(_, ub)| ub)
}

/// The symbolic lower bound with the paper's default scenarios.
///
/// # Errors
///
/// See [`AnalyzeError`].
pub fn symbolic_lb(kernel: &Kernel) -> Result<LowerBoundReport, AnalyzeError> {
    lower_bound(
        kernel,
        &LbOptions { detect_reductions: true, scenarios: default_scenarios(kernel) },
    )
    .map_err(|e| AnalyzeError::LowerBound(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ioopt_ir::kernels;

    #[test]
    fn matmul_pipeline_is_tight() {
        let sizes = HashMap::from([
            ("i".to_string(), 512i64),
            ("j".to_string(), 512),
            ("k".to_string(), 512),
        ]);
        let a = analyze(
            &kernels::matmul(),
            &sizes,
            &AnalysisOptions::with_cache(4096.0),
        )
        .unwrap();
        assert!(a.lb > 0.0);
        assert!(a.lb <= a.ub, "lb {} > ub {}", a.lb, a.ub);
        // Matmul bounds are asymptotically matching; at these sizes the
        // ratio must be modest.
        assert!(a.tightness < 1.6, "tightness {}", a.tightness);
        assert!(a.tiled_code.contains("C[i][j] += A[i][k] * B[k][j];"));
        assert_eq!(a.arith_complexity.to_string(), "Ni*Nj*Nk");
    }

    #[test]
    fn tc_symbolic_ub_matches_fig6_shape() {
        // ab-ac-cb (matmul): UB = 2·A·B·C/(√(S+1)−1) + C·B.
        let k = kernels::tensor_contraction("mm", "ab-ac-cb");
        let ub = symbolic_tc_ub(&k).unwrap();
        assert_eq!(ub.delta.to_string(), "(S + 1)^(1/2) - 1");
        let v = ub
            .bound
            .eval_with(&[("A", 100.0), ("B", 80.0), ("C", 60.0), ("S", 1024.0)])
            .unwrap();
        let d = 1025.0f64.sqrt() - 1.0;
        let expect = 2.0 * 100.0 * 80.0 * 60.0 / d + 60.0 * 80.0;
        assert!((v - expect).abs() < 1e-6 * expect, "{v} vs {expect}");
    }

    #[test]
    fn all_tccg_symbolic_ubs_derive() {
        for entry in kernels::TCCG {
            let k = entry.kernel();
            let ub = symbolic_tc_ub(&k).unwrap_or_else(|| panic!("{} fails", entry.spec));
            // The bound must reference S and every dimension parameter.
            let syms = ub.bound.free_symbols();
            assert!(syms.contains(&Symbol::new("S")), "{}", entry.spec);
        }
    }

    #[test]
    fn illegal_kernels_are_rejected() {
        let k = ioopt_ir::parse_kernel(
            "kernel seidel { loop t : T; loop i : N; A[i] += A[i+1] * A[i]; }",
        )
        .expect("parses");
        let sizes = HashMap::from([("t".to_string(), 4i64), ("i".to_string(), 16)]);
        let err = analyze(&k, &sizes, &AnalysisOptions::with_cache(64.0)).unwrap_err();
        assert!(matches!(err, AnalyzeError::NotTilable(_)));
    }

    #[test]
    fn conv_is_not_a_tc_for_symbolic_ub() {
        assert!(symbolic_tc_ub(&kernels::conv2d()).is_none());
    }

    #[test]
    fn conv_semi_symbolic_ub_derives_and_brackets() {
        let k = kernels::conv2d();
        let layer = kernels::YOLO9000[4]; // Yolo9000-8
        let sizes = layer.size_map();
        let s_ref = 32768.0;
        let ub = symbolic_conv_ub(&k, &sizes, s_ref).expect("a template solves");
        // The closed form must stay above the lower bound and within a
        // small factor of the numeric TileOpt bound at the reference S.
        let mut env = k.bind_sizes(&sizes);
        env.insert(Symbol::new("S"), s_ref);
        let v = ub.bound.eval_f64(&env).expect("evaluates");
        let a = analyze(&k, &sizes, &AnalysisOptions::with_cache(s_ref)).expect("pipeline");
        assert!(v >= a.lb * (1.0 - 1e-9), "closed form {v} below LB {}", a.lb);
        assert!(v <= a.ub * 3.0, "closed form {v} far above TileOpt {}", a.ub);
        // And it must contain S as a free symbol (it is parametric).
        assert!(ub.bound.free_symbols().contains(&Symbol::new("S")));
    }
}
