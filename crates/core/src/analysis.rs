//! The IOOpt pipeline (paper Fig. 1): input program → IOLB + IOUB +
//! TileOpt → parametric bounds and a tiling recommendation.

use std::collections::HashMap;

use ioopt_codegen::TiledCode;
use ioopt_engine::{obs, Budget, Status};
use ioopt_iolb::{
    default_scenarios, lower_bound, lower_bound_governed, LbOptions, LowerBoundReport,
};
use ioopt_ioub::SmallDimOracle;
use ioopt_ir::Kernel;
use ioopt_symbolic::{Expr, Symbol};
use ioopt_tileopt::{optimize_governed, Recommendation, TileOptConfig, TileOptError};
use ioopt_verify::{Code, VerifyOptions, VerifyReport};

/// Options for [`analyze`].
#[derive(Debug, Clone)]
pub struct AnalysisOptions {
    /// Fast-memory capacity in data elements (the paper's `S`).
    pub cache_elems: f64,
    /// Small-dimension scenarios for the lower bound; `None` selects the
    /// paper's defaults per kernel kind (TC groups / conv list / marked).
    pub scenarios: Option<Vec<Vec<usize>>>,
    /// TileOpt search options.
    pub tileopt: TileOptConfig,
    /// Worker threads for the search fan-out inside one analysis. `1` runs
    /// the sequential reference algorithm; every value produces
    /// byte-identical results (see `DESIGN.md`, determinism).
    pub threads: usize,
    /// Whether the process-wide memo caches (polyhedral counts,
    /// projections, per-array costs, permutation selection) are consulted.
    /// The flag is applied process-wide at the start of [`analyze`].
    pub cache: bool,
    /// Resource budget governing the whole analysis (wall-clock deadline
    /// and/or step count). The default is unlimited; an exhausted budget
    /// degrades the result instead of failing it (see `DESIGN.md`,
    /// degradation semantics).
    pub budget: Budget,
}

impl AnalysisOptions {
    /// Default options for a cache of `cache_elems` elements.
    pub fn with_cache(cache_elems: f64) -> AnalysisOptions {
        AnalysisOptions {
            cache_elems,
            scenarios: None,
            tileopt: TileOptConfig {
                cache_elems,
                max_level_combos: 512,
                threads: 1,
            },
            threads: 1,
            cache: true,
            budget: Budget::unlimited(),
        }
    }

    /// The same options governed by `budget`.
    #[must_use]
    pub fn with_budget(mut self, budget: Budget) -> AnalysisOptions {
        self.budget = budget;
        self
    }

    /// The same options with the search fan-out spread over `threads`
    /// workers (both the pipeline-level and TileOpt-level knobs).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> AnalysisOptions {
        self.threads = threads.max(1);
        self.tileopt.threads = self.threads;
        self
    }

    /// The same options with memoization switched on or off.
    #[must_use]
    pub fn with_memo(mut self, cache: bool) -> AnalysisOptions {
        self.cache = cache;
        self
    }
}

/// Aggregated hit/miss/entry counters over every memo cache in the
/// pipeline (polyhedral counting + projection + emptiness, per-array
/// costs, permutation selection).
pub fn memo_stats() -> ioopt_engine::CacheStats {
    ioopt_polyhedra::cache_stats()
        .merged(&ioopt_ioub::cost_cache_stats())
        .merged(&ioopt_ioub::perm_cache_stats())
}

/// Clears every memo cache in the pipeline and zeroes the counters.
pub fn reset_memo() {
    ioopt_polyhedra::reset_cache();
    ioopt_ioub::reset_cost_cache();
    ioopt_ioub::reset_perm_cache();
}

/// Enables or disables every memo cache in the pipeline (process-wide).
pub fn set_memo_enabled(enabled: bool) {
    ioopt_polyhedra::set_cache_enabled(enabled);
    ioopt_ioub::set_cost_cache_enabled(enabled);
    ioopt_ioub::set_perm_cache_enabled(enabled);
}

/// The result of a full IOOpt analysis at concrete sizes.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Kernel name.
    pub kernel: String,
    /// The analyzed kernel (for rendering and further queries).
    pub ir: Kernel,
    /// Arithmetic complexity `∏ N_d` (symbolic).
    pub arith_complexity: Expr,
    /// The symbolic lower-bound report.
    pub lower: LowerBoundReport,
    /// The numeric lower bound at the given sizes and cache.
    pub lb: f64,
    /// The tiling recommendation realizing the upper bound.
    pub recommendation: Recommendation,
    /// The numeric upper bound (I/O of the recommended tiling).
    pub ub: f64,
    /// `ub / lb` — 1.0 means provably optimal data movement.
    pub tightness: f64,
    /// Operational intensity at the upper bound: flops per element moved
    /// (2 flops per fused multiply-add). Compare against the machine
    /// balance to predict compute- vs. memory-boundedness (paper §1).
    pub operational_intensity: f64,
    /// The suggested tiled code (paper Fig. 1 output).
    pub tiled_code: String,
    /// The pre-flight diagnostics report (`ioopt-verify` run before the
    /// pipeline; hard errors abort the analysis, warnings ride along so
    /// callers can surface them next to the bounds).
    pub diagnostics: VerifyReport,
    /// [`Status::Exact`] when every stage ran to completion;
    /// [`Status::Degraded`] when a resource budget (or arithmetic
    /// overflow) weakened some stage. Degraded bounds stay sound:
    /// the LB can only drop, the UB can only rise.
    pub status: Status,
    /// Human-readable notes on which stages degraded and why (empty for
    /// exact results).
    pub degradations: Vec<String>,
}

/// Errors from [`analyze`].
#[derive(Debug, Clone, PartialEq)]
pub enum AnalyzeError {
    /// The kernel is not legally tilable with rectangular tiles (§3.1).
    NotTilable(String),
    /// Lower-bound derivation failed.
    LowerBound(String),
    /// Upper-bound optimization failed.
    UpperBound(String),
    /// Bound evaluation failed (missing sizes).
    Eval(String),
}

impl std::fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnalyzeError::NotTilable(m) => write!(f, "kernel is not tilable: {m}"),
            AnalyzeError::LowerBound(m) => write!(f, "lower bound failed: {m}"),
            AnalyzeError::UpperBound(m) => write!(f, "upper bound failed: {m}"),
            AnalyzeError::Eval(m) => write!(f, "evaluation failed: {m}"),
        }
    }
}

impl std::error::Error for AnalyzeError {}

impl From<TileOptError> for AnalyzeError {
    fn from(e: TileOptError) -> AnalyzeError {
        AnalyzeError::UpperBound(e.to_string())
    }
}

/// Runs the full pipeline on a kernel at concrete sizes.
///
/// # Errors
///
/// See [`AnalyzeError`].
///
/// # Examples
///
/// ```
/// use ioopt::{analyze, AnalysisOptions};
/// use ioopt_ir::kernels;
/// use std::collections::HashMap;
/// let sizes = HashMap::from([
///     ("i".to_string(), 512i64),
///     ("j".to_string(), 512),
///     ("k".to_string(), 512),
/// ]);
/// let a = analyze(&kernels::matmul(), &sizes, &AnalysisOptions::with_cache(4096.0))?;
/// assert!(a.lb <= a.ub);
/// assert!(a.tightness < 1.6);
/// # Ok::<(), ioopt::AnalyzeError>(())
/// ```
pub fn analyze(
    kernel: &Kernel,
    sizes: &HashMap<String, i64>,
    options: &AnalysisOptions,
) -> Result<Analysis, AnalyzeError> {
    set_memo_enabled(options.cache);
    // Make the budget ambient for the whole pipeline so governed hot
    // loops reached through ungoverned entry points (emptiness checks,
    // cost-model projections, …) observe it too.
    let _scope = options.budget.enter();
    // Pre-flight: run the static analyzer first. E001 (illegal tiling)
    // aborts — no sound tiled upper bound exists; everything else is
    // attached to the result for the caller to surface. The certificate
    // pass is skipped because `analyze` itself checks lb ≤ ub at the
    // concrete sizes.
    let diagnostics = {
        let _span = obs::span("verify.preflight");
        ioopt_verify::verify(
            kernel,
            &VerifyOptions {
                sizes: Some(sizes.clone()),
                certificate: false,
                ..VerifyOptions::default()
            },
        )
    };
    if let Some(d) = diagnostics
        .diagnostics
        .iter()
        .find(|d| d.code == Code::E001)
    {
        return Err(AnalyzeError::NotTilable(d.message.clone()));
    }
    let scenarios = options
        .scenarios
        .clone()
        .unwrap_or_else(|| default_scenarios(kernel));
    let lower = {
        let _span = obs::span("iolb.lower_bound");
        lower_bound_governed(
            kernel,
            &LbOptions {
                detect_reductions: true,
                scenarios,
            },
            &options.budget,
        )
        .map_err(|e| AnalyzeError::LowerBound(e.to_string()))?
    };
    let mut env = kernel.bind_sizes(sizes);
    env.insert(Symbol::new("S"), options.cache_elems);
    let lb = lower
        .combined
        .eval_f64(&env)
        .map_err(|e| AnalyzeError::Eval(e.to_string()))?;

    let mut tileopt_config = options.tileopt;
    tileopt_config.threads = options.threads.max(1);
    let recommendation = {
        let _span = obs::span("tileopt.optimize");
        optimize_governed(
            kernel,
            sizes,
            &SmallDimOracle,
            &tileopt_config,
            &options.budget,
        )?
    };
    let ub = recommendation.io;
    let tiled_code = {
        let _span = obs::span("codegen.tile");
        TiledCode::from_integer_tiles(kernel, &recommendation.perm, &recommendation.tiles, sizes)
            .to_c()
    };
    let flops = 2.0
        * kernel
            .arith_complexity()
            .eval_f64(&env)
            .map_err(|e| AnalyzeError::Eval(e.to_string()))?;
    let mut degradations = Vec::new();
    if lower.degraded {
        degradations.push(match options.budget.exhausted() {
            Some(e) => format!("lower bound degraded ({e}): scenario sweep cut short"),
            None => "lower bound degraded: rational overflow skipped a scenario".to_string(),
        });
    }
    if recommendation.degraded {
        degradations.push(match options.budget.exhausted() {
            Some(e) => format!("tile search degraded ({e}): best tiling over visited prefix"),
            None => "tile search degraded: search space cut short".to_string(),
        });
    }
    let status = if degradations.is_empty() {
        Status::Exact
    } else {
        Status::Degraded
    };
    Ok(Analysis {
        kernel: kernel.name().to_string(),
        ir: kernel.clone(),
        arith_complexity: kernel.arith_complexity(),
        lower,
        lb,
        ub,
        tightness: if lb > 0.0 { ub / lb } else { f64::INFINITY },
        operational_intensity: if ub > 0.0 { flops / ub } else { f64::INFINITY },
        recommendation,
        tiled_code,
        diagnostics,
        status,
        degradations,
    })
}

// The closed-form (Fig. 6) symbolic upper bounds live in
// `ioopt_tileopt::closed_form` so that front-end analyses (ioopt-verify)
// can use them without the full pipeline; re-exported here for
// compatibility.
pub use ioopt_tileopt::{symbolic_conv_ub, symbolic_tc_ub, symbolic_tc_ub_for};

/// The symbolic lower bound with the paper's default scenarios.
///
/// # Errors
///
/// See [`AnalyzeError`].
pub fn symbolic_lb(kernel: &Kernel) -> Result<LowerBoundReport, AnalyzeError> {
    lower_bound(
        kernel,
        &LbOptions {
            detect_reductions: true,
            scenarios: default_scenarios(kernel),
        },
    )
    .map_err(|e| AnalyzeError::LowerBound(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ioopt_ir::kernels;

    #[test]
    fn matmul_pipeline_is_tight() {
        let sizes = HashMap::from([
            ("i".to_string(), 512i64),
            ("j".to_string(), 512),
            ("k".to_string(), 512),
        ]);
        let a = analyze(
            &kernels::matmul(),
            &sizes,
            &AnalysisOptions::with_cache(4096.0),
        )
        .unwrap();
        assert!(a.lb > 0.0);
        assert!(a.lb <= a.ub, "lb {} > ub {}", a.lb, a.ub);
        // Matmul bounds are asymptotically matching; at these sizes the
        // ratio must be modest.
        assert!(a.tightness < 1.6, "tightness {}", a.tightness);
        assert!(a.tiled_code.contains("C[i][j] += A[i][k] * B[k][j];"));
        assert_eq!(a.arith_complexity.to_string(), "Ni*Nj*Nk");
    }

    #[test]
    fn tc_symbolic_ub_matches_fig6_shape() {
        // ab-ac-cb (matmul): UB = 2·A·B·C/(√(S+1)−1) + C·B.
        let k = kernels::tensor_contraction("mm", "ab-ac-cb");
        let ub = symbolic_tc_ub(&k).unwrap();
        assert_eq!(ub.delta.to_string(), "(S + 1)^(1/2) - 1");
        let v = ub
            .bound
            .eval_with(&[("A", 100.0), ("B", 80.0), ("C", 60.0), ("S", 1024.0)])
            .unwrap();
        let d = 1025.0f64.sqrt() - 1.0;
        let expect = 2.0 * 100.0 * 80.0 * 60.0 / d + 60.0 * 80.0;
        assert!((v - expect).abs() < 1e-6 * expect, "{v} vs {expect}");
    }

    #[test]
    fn all_tccg_symbolic_ubs_derive() {
        for entry in kernels::TCCG {
            let k = entry.kernel();
            let ub = symbolic_tc_ub(&k).unwrap_or_else(|| panic!("{} fails", entry.spec));
            // The bound must reference S and every dimension parameter.
            let syms = ub.bound.free_symbols();
            assert!(syms.contains(&Symbol::new("S")), "{}", entry.spec);
        }
    }

    #[test]
    fn illegal_kernels_are_rejected() {
        let k = ioopt_ir::parse_kernel(
            "kernel seidel { loop t : T; loop i : N; A[i] += A[i+1] * A[i]; }",
        )
        .expect("parses");
        let sizes = HashMap::from([("t".to_string(), 4i64), ("i".to_string(), 16)]);
        let err = analyze(&k, &sizes, &AnalysisOptions::with_cache(64.0)).unwrap_err();
        assert!(matches!(err, AnalyzeError::NotTilable(_)));
    }

    #[test]
    fn conv_is_not_a_tc_for_symbolic_ub() {
        assert!(symbolic_tc_ub(&kernels::conv2d()).is_none());
    }

    #[test]
    fn conv_semi_symbolic_ub_derives_and_brackets() {
        let k = kernels::conv2d();
        let layer = kernels::YOLO9000[4]; // Yolo9000-8
        let sizes = layer.size_map();
        let s_ref = 32768.0;
        let ub = symbolic_conv_ub(&k, &sizes, s_ref).expect("a template solves");
        // The closed form must stay above the lower bound and within a
        // small factor of the numeric TileOpt bound at the reference S.
        let mut env = k.bind_sizes(&sizes);
        env.insert(Symbol::new("S"), s_ref);
        let v = ub.bound.eval_f64(&env).expect("evaluates");
        let a = analyze(&k, &sizes, &AnalysisOptions::with_cache(s_ref)).expect("pipeline");
        assert!(
            v >= a.lb * (1.0 - 1e-9),
            "closed form {v} below LB {}",
            a.lb
        );
        assert!(
            v <= a.ub * 3.0,
            "closed form {v} far above TileOpt {}",
            a.ub
        );
        // And it must contain S as a free symbol (it is parametric).
        assert!(ub.bound.free_symbols().contains(&Symbol::new("S")));
    }
}
