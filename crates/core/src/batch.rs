//! Batch analysis: run the IOOpt pipeline over a corpus of kernels
//! concurrently and emit one combined report (the paper's Fig. 6 table).
//!
//! The fan-out is deterministic: items are analyzed by a fixed-size
//! worker pool but results are collected in input order, and every
//! per-kernel analysis runs its own search sequentially, so the report
//! bytes are identical for any `jobs` value. Wall-clock timing and cache
//! statistics therefore live *outside* the report (the CLI prints them
//! to stderr).

use std::collections::HashMap;

use ioopt_engine::{par_map, Json};
use ioopt_ir::{kernels, Kernel};
use ioopt_symbolic::Symbol;
use ioopt_tileopt::{symbolic_conv_ub, symbolic_tc_ub};

use crate::analysis::{analyze, set_memo_enabled, symbolic_lb, AnalysisOptions};

/// One kernel instance to analyze: a display label (builtin kernels with
/// shared structure, e.g. the Yolo9000 layers, get distinct labels), the
/// kernel, and its concrete sizes.
#[derive(Debug, Clone)]
pub struct BatchItem {
    /// Row label in the report.
    pub label: String,
    /// The kernel.
    pub kernel: Kernel,
    /// Concrete trip counts per dimension name.
    pub sizes: HashMap<String, i64>,
}

/// Options for [`run_batch`].
#[derive(Debug, Clone)]
pub struct BatchOptions {
    /// Fast-memory capacity in data elements (the paper's `S`).
    pub cache_elems: f64,
    /// Concurrent kernel analyses (`--jobs`); `1` is fully sequential.
    pub jobs: usize,
    /// Whether the process-wide memo caches are consulted.
    pub memo: bool,
    /// Whether to run the numeric TileOpt pipeline per kernel (LB/UB at
    /// the concrete sizes). When `false` only the symbolic bounds are
    /// derived, which is much faster.
    pub numeric: bool,
}

impl Default for BatchOptions {
    fn default() -> BatchOptions {
        BatchOptions {
            cache_elems: 32768.0,
            jobs: 1,
            memo: true,
            numeric: true,
        }
    }
}

/// One row of the batch report (one kernel instance).
#[derive(Debug, Clone, PartialEq)]
pub struct BatchRow {
    /// The item label.
    pub kernel: String,
    /// Arithmetic complexity `∏ N_d` (symbolic, rendered).
    pub arith: String,
    /// The symbolic lower bound `LB(S)` (rendered).
    pub lb_symbolic: Option<String>,
    /// The closed-form symbolic upper bound `UB(S)` when one derives
    /// (tensor contractions always; convolutions semi-symbolically).
    pub ub_symbolic: Option<String>,
    /// Numeric lower bound at the concrete sizes and cache.
    pub lb: Option<f64>,
    /// Numeric upper bound (I/O of the recommended tiling).
    pub ub: Option<f64>,
    /// `ub / lb`.
    pub tightness: Option<f64>,
    /// The recommended tile sizes, rendered `d=T` in dimension order.
    pub tiles: Option<String>,
    /// The first error the pipeline hit for this kernel, if any.
    pub error: Option<String>,
}

/// The combined batch report.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchReport {
    /// The cache size `S` the analyses ran at.
    pub cache_elems: f64,
    /// One row per input item, in input order.
    pub rows: Vec<BatchRow>,
}

fn opt_str(v: &Option<String>) -> Json {
    v.as_ref().map_or(Json::Null, Json::str)
}

fn opt_num(v: Option<f64>) -> Json {
    v.map_or(Json::Null, Json::Num)
}

impl BatchRow {
    /// The row in the shared report schema.
    pub fn to_json_value(&self) -> Json {
        Json::obj([
            ("kernel", Json::str(self.kernel.clone())),
            ("arith", Json::str(self.arith.clone())),
            ("lb_symbolic", opt_str(&self.lb_symbolic)),
            ("ub_symbolic", opt_str(&self.ub_symbolic)),
            ("lb", opt_num(self.lb)),
            ("ub", opt_num(self.ub)),
            ("tightness", opt_num(self.tightness)),
            ("tiles", opt_str(&self.tiles)),
            ("error", opt_str(&self.error)),
        ])
    }

    fn from_json_value(v: &Json) -> Result<BatchRow, String> {
        let req_str = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("row is missing string field `{key}`"))
        };
        let opt_str =
            |key: &str| -> Option<String> { v.get(key).and_then(Json::as_str).map(str::to_string) };
        let opt_num = |key: &str| -> Option<f64> { v.get(key).and_then(Json::as_f64) };
        Ok(BatchRow {
            kernel: req_str("kernel")?,
            arith: req_str("arith")?,
            lb_symbolic: opt_str("lb_symbolic"),
            ub_symbolic: opt_str("ub_symbolic"),
            lb: opt_num("lb"),
            ub: opt_num("ub"),
            tightness: opt_num("tightness"),
            tiles: opt_str("tiles"),
            error: opt_str("error"),
        })
    }
}

impl BatchReport {
    /// The report in the shared report schema.
    pub fn to_json_value(&self) -> Json {
        Json::obj([
            ("cache_elems", Json::Num(self.cache_elems)),
            (
                "kernels",
                Json::Array(self.rows.iter().map(BatchRow::to_json_value).collect()),
            ),
        ])
    }

    /// Rendered single-line JSON.
    pub fn to_json(&self) -> String {
        self.to_json_value().render()
    }

    /// Parses a report rendered by [`BatchReport::to_json`] (the schema
    /// round-trip the test harness checks).
    ///
    /// # Errors
    ///
    /// A human-readable message on malformed input or a missing field.
    pub fn from_json(src: &str) -> Result<BatchReport, String> {
        let v = Json::parse(src)?;
        let cache_elems = v
            .get("cache_elems")
            .and_then(Json::as_f64)
            .ok_or("missing `cache_elems`")?;
        let rows = v
            .get("kernels")
            .and_then(Json::as_array)
            .ok_or("missing `kernels` array")?
            .iter()
            .map(BatchRow::from_json_value)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(BatchReport { cache_elems, rows })
    }

    /// A Markdown table mirroring the paper's Fig. 6: kernel, symbolic
    /// bounds, and the numeric bounds with their ratio.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("S = {} elements\n\n", self.cache_elems));
        out.push_str("| kernel | LB(S) | UB(S) | lb | ub | ub/lb | tiles |\n");
        out.push_str("|---|---|---|---|---|---|---|\n");
        for r in &self.rows {
            let num = |v: Option<f64>| v.map_or("—".to_string(), |x| format!("{x:.4e}"));
            let ratio = r.tightness.map_or("—".to_string(), |x| format!("{x:.3}"));
            let cell = |v: &Option<String>| v.clone().unwrap_or_else(|| "—".to_string());
            if let Some(e) = &r.error {
                out.push_str(&format!("| {} | error: {e} | | | | | |\n", r.kernel));
            } else {
                out.push_str(&format!(
                    "| {} | {} | {} | {} | {} | {} | {} |\n",
                    r.kernel,
                    cell(&r.lb_symbolic),
                    cell(&r.ub_symbolic),
                    num(r.lb),
                    num(r.ub),
                    ratio,
                    cell(&r.tiles),
                ));
            }
        }
        out
    }
}

/// The 19 builtin kernel instances the paper evaluates (Fig. 6): the 8
/// TCCG tensor-contraction classes at their published sizes and the 11
/// Yolo9000 convolution layers.
pub fn builtin_corpus() -> Vec<BatchItem> {
    let mut items = Vec::new();
    for e in kernels::TCCG {
        items.push(BatchItem {
            label: e.spec.to_string(),
            kernel: e.kernel(),
            sizes: e.size_map(),
        });
    }
    for l in kernels::YOLO9000 {
        items.push(BatchItem {
            label: l.name.to_string(),
            kernel: kernels::conv2d(),
            sizes: l.size_map(),
        });
    }
    items
}

/// Analyzes every item, `jobs` at a time, and returns the combined
/// report with rows in input order.
pub fn run_batch(items: &[BatchItem], options: &BatchOptions) -> BatchReport {
    set_memo_enabled(options.memo);
    let rows = par_map(options.jobs, items, |_, item| analyze_row(item, options));
    BatchReport {
        cache_elems: options.cache_elems,
        rows,
    }
}

fn analyze_row(item: &BatchItem, options: &BatchOptions) -> BatchRow {
    let kernel = &item.kernel;
    let mut row = BatchRow {
        kernel: item.label.clone(),
        arith: kernel.arith_complexity().to_string(),
        lb_symbolic: None,
        ub_symbolic: None,
        lb: None,
        ub: None,
        tightness: None,
        tiles: None,
        error: None,
    };
    match symbolic_lb(kernel) {
        Ok(lb) => row.lb_symbolic = Some(lb.combined.to_string()),
        Err(e) => {
            row.error = Some(e.to_string());
            return row;
        }
    }
    row.ub_symbolic = symbolic_tc_ub(kernel)
        .or_else(|| symbolic_conv_ub(kernel, &item.sizes, options.cache_elems))
        .map(|ub| ub.bound.to_string());
    if !options.numeric {
        return row;
    }
    let analysis_options = AnalysisOptions::with_cache(options.cache_elems).with_memo(options.memo);
    match analyze(kernel, &item.sizes, &analysis_options) {
        Ok(a) => {
            row.lb = Some(a.lb);
            row.ub = Some(a.ub);
            row.tightness = Some(a.tightness);
            let mut dims: Vec<&str> = kernel.dims().iter().map(|d| d.name.as_str()).collect();
            dims.sort_unstable();
            row.tiles = Some(
                dims.iter()
                    .map(|d| format!("{d}={}", a.recommendation.tiles[*d]))
                    .collect::<Vec<_>>()
                    .join(" "),
            );
        }
        Err(e) => row.error = Some(e.to_string()),
    }
    row
}

/// Numeric lower bound of the symbolic LB at the item's sizes — used by
/// the soundness tests without running the full numeric pipeline.
pub fn eval_lb(kernel: &Kernel, sizes: &HashMap<String, i64>, cache_elems: f64) -> Option<f64> {
    let lb = symbolic_lb(kernel).ok()?;
    let mut env = kernel.bind_sizes(sizes);
    env.insert(Symbol::new("S"), cache_elems);
    lb.combined.eval_f64(&env).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_all_19_builtins() {
        let items = builtin_corpus();
        assert_eq!(items.len(), 19);
        assert_eq!(items.iter().filter(|i| i.label.contains('-')).count(), 19);
        assert_eq!(
            items.iter().filter(|i| i.label.starts_with("Yolo")).count(),
            11
        );
        for item in &items {
            for d in item.kernel.dims() {
                assert!(item.sizes.contains_key(&d.name), "{}", item.label);
            }
        }
    }

    #[test]
    fn symbolic_batch_report_round_trips() {
        let items: Vec<BatchItem> = builtin_corpus()
            .into_iter()
            .filter(|i| !i.label.starts_with("Yolo"))
            .collect();
        let options = BatchOptions {
            numeric: false,
            ..BatchOptions::default()
        };
        let report = run_batch(&items, &options);
        assert_eq!(report.rows.len(), 8);
        for row in &report.rows {
            assert!(row.error.is_none(), "{}: {:?}", row.kernel, row.error);
            assert!(row.lb_symbolic.is_some(), "{}", row.kernel);
            assert!(row.ub_symbolic.is_some(), "{}", row.kernel);
        }
        let parsed = BatchReport::from_json(&report.to_json()).unwrap();
        assert_eq!(parsed, report);
        // And the markdown table has one line per kernel plus headers.
        let md = report.to_markdown();
        assert_eq!(md.lines().count(), 4 + items.len());
    }

    #[test]
    fn batch_jobs_do_not_change_the_report() {
        let items: Vec<BatchItem> = builtin_corpus().into_iter().take(4).collect();
        let options = BatchOptions {
            numeric: false,
            ..BatchOptions::default()
        };
        let seq = run_batch(&items, &options);
        for jobs in [2, 8] {
            let par = run_batch(
                &items,
                &BatchOptions {
                    jobs,
                    ..options.clone()
                },
            );
            assert_eq!(seq.to_json(), par.to_json(), "jobs={jobs}");
        }
    }
}
