//! Batch analysis: run the IOOpt pipeline over a corpus of kernels
//! concurrently and emit one combined report (the paper's Fig. 6 table).
//!
//! The fan-out is deterministic: items are analyzed by a fixed-size
//! worker pool but results are collected in input order, and every
//! per-kernel analysis runs its own search sequentially, so the report
//! bytes are identical for any `jobs` value. Wall-clock timing and cache
//! statistics therefore live *outside* the report (the CLI prints them
//! to stderr).

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use ioopt_engine::{obs, par_map, Budget, Json, Status};
use ioopt_ir::{kernels, Kernel};
use ioopt_symbolic::Symbol;
use ioopt_tileopt::{symbolic_conv_ub, symbolic_tc_ub};

use crate::analysis::{analyze, set_memo_enabled, symbolic_lb, AnalysisOptions};

/// One kernel instance to analyze: a display label (builtin kernels with
/// shared structure, e.g. the Yolo9000 layers, get distinct labels), the
/// kernel, and its concrete sizes.
#[derive(Debug, Clone)]
pub struct BatchItem {
    /// Row label in the report.
    pub label: String,
    /// The kernel.
    pub kernel: Kernel,
    /// Concrete trip counts per dimension name.
    pub sizes: HashMap<String, i64>,
}

/// Options for [`run_batch`].
#[derive(Debug, Clone)]
pub struct BatchOptions {
    /// Fast-memory capacity in data elements (the paper's `S`).
    pub cache_elems: f64,
    /// Concurrent kernel analyses (`--jobs`); `1` is fully sequential.
    pub jobs: usize,
    /// Whether the process-wide memo caches are consulted.
    pub memo: bool,
    /// Whether to run the numeric TileOpt pipeline per kernel (LB/UB at
    /// the concrete sizes). When `false` only the symbolic bounds are
    /// derived, which is much faster.
    pub numeric: bool,
    /// Per-kernel wall-clock budget in milliseconds (`--timeout-ms`).
    /// An exhausted deadline degrades the row instead of hanging.
    pub timeout_ms: Option<u64>,
    /// Per-kernel analysis step budget (`--max-steps`). Steps count loop
    /// iterations of the governed hot loops, so the cutoff is
    /// deterministic across runs and `--jobs` values.
    pub max_steps: Option<u64>,
    /// Stop scheduling new kernels after the first failed row
    /// (`--fail-fast`). The report commits to the *lowest-input-index*
    /// genuine failure: every row after it is reported as failed with a
    /// `skipped:` error, even if it was already in flight and completed,
    /// so fail-fast reports are `--jobs`-deterministic like everything
    /// else.
    pub fail_fast: bool,
    /// Attach a proof-carrying `certificate` block to every successful
    /// row (`--certify`): the BL simplex duals, the tile-feasibility
    /// witness, and sampled `LB ≤ UB` evidence, re-checkable offline by
    /// `ioopt audit` (DESIGN.md §11). Off by default — the report bytes
    /// are unchanged when disabled.
    pub certify: bool,
}

impl Default for BatchOptions {
    fn default() -> BatchOptions {
        BatchOptions {
            cache_elems: 32768.0,
            jobs: 1,
            memo: true,
            numeric: true,
            timeout_ms: None,
            max_steps: None,
            fail_fast: false,
            certify: false,
        }
    }
}

/// One row of the batch report (one kernel instance).
#[derive(Debug, Clone, PartialEq)]
pub struct BatchRow {
    /// The item label.
    pub kernel: String,
    /// Arithmetic complexity `∏ N_d` (symbolic, rendered).
    pub arith: String,
    /// The symbolic lower bound `LB(S)` (rendered).
    pub lb_symbolic: Option<String>,
    /// The closed-form symbolic upper bound `UB(S)` when one derives
    /// (tensor contractions always; convolutions semi-symbolically).
    pub ub_symbolic: Option<String>,
    /// Numeric lower bound at the concrete sizes and cache.
    pub lb: Option<f64>,
    /// Numeric upper bound (I/O of the recommended tiling).
    pub ub: Option<f64>,
    /// `ub / lb`.
    pub tightness: Option<f64>,
    /// The recommended tile sizes, rendered `d=T` in dimension order.
    pub tiles: Option<String>,
    /// The first error the pipeline hit for this kernel, if any.
    pub error: Option<String>,
    /// `exact` when every stage completed, `degraded` when a budget or
    /// overflow weakened a bound (the row's bounds are still sound), and
    /// `failed` when the analysis errored or panicked.
    pub status: Status,
    /// Degradation detail for `degraded` rows (which stage, why).
    pub note: Option<String>,
    /// The proof-carrying certificate block, present only when the batch
    /// ran with [`BatchOptions::certify`] and the row succeeded.
    pub certificate: Option<Json>,
}

/// The combined batch report.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchReport {
    /// The cache size `S` the analyses ran at.
    pub cache_elems: f64,
    /// One row per input item, in input order.
    pub rows: Vec<BatchRow>,
}

fn opt_str(v: &Option<String>) -> Json {
    v.as_ref().map_or(Json::Null, Json::str)
}

fn opt_num(v: Option<f64>) -> Json {
    v.map_or(Json::Null, Json::Num)
}

impl BatchRow {
    /// The row in the shared report schema. The `certificate` key is
    /// additive: it is emitted only when present, so reports produced
    /// without `--certify` render byte-identically to older ones.
    pub fn to_json_value(&self) -> Json {
        let mut pairs: Vec<(String, Json)> = [
            ("kernel", Json::str(self.kernel.clone())),
            ("arith", Json::str(self.arith.clone())),
            ("lb_symbolic", opt_str(&self.lb_symbolic)),
            ("ub_symbolic", opt_str(&self.ub_symbolic)),
            ("lb", opt_num(self.lb)),
            ("ub", opt_num(self.ub)),
            ("tightness", opt_num(self.tightness)),
            ("tiles", opt_str(&self.tiles)),
            ("error", opt_str(&self.error)),
            ("status", Json::str(self.status.as_str())),
            ("note", opt_str(&self.note)),
        ]
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect();
        if let Some(cert) = &self.certificate {
            pairs.push(("certificate".to_string(), cert.clone()));
        }
        Json::Object(pairs)
    }

    pub(crate) fn from_json_value(v: &Json) -> Result<BatchRow, String> {
        let req_str = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("row is missing string field `{key}`"))
        };
        let opt_str =
            |key: &str| -> Option<String> { v.get(key).and_then(Json::as_str).map(str::to_string) };
        let opt_num = |key: &str| -> Option<f64> { v.get(key).and_then(Json::as_f64) };
        Ok(BatchRow {
            kernel: req_str("kernel")?,
            arith: req_str("arith")?,
            lb_symbolic: opt_str("lb_symbolic"),
            ub_symbolic: opt_str("ub_symbolic"),
            lb: opt_num("lb"),
            ub: opt_num("ub"),
            tightness: opt_num("tightness"),
            tiles: opt_str("tiles"),
            error: opt_str("error"),
            status: v
                .get("status")
                .and_then(Json::as_str)
                .map(|s| Status::parse(s).ok_or_else(|| format!("unknown row status `{s}`")))
                .transpose()?
                .unwrap_or(Status::Exact),
            note: opt_str("note"),
            certificate: match v.get("certificate") {
                None | Some(Json::Null) => None,
                Some(c) => Some(c.clone()),
            },
        })
    }
}

impl BatchReport {
    /// The report in the shared report schema.
    pub fn to_json_value(&self) -> Json {
        Json::obj([
            ("cache_elems", Json::Num(self.cache_elems)),
            (
                "kernels",
                Json::Array(self.rows.iter().map(BatchRow::to_json_value).collect()),
            ),
        ])
    }

    /// Rendered single-line JSON.
    pub fn to_json(&self) -> String {
        self.to_json_value().render()
    }

    /// Parses a report rendered by [`BatchReport::to_json`] (the schema
    /// round-trip the test harness checks).
    ///
    /// # Errors
    ///
    /// A human-readable message on malformed input or a missing field.
    pub fn from_json(src: &str) -> Result<BatchReport, String> {
        let v = Json::parse(src)?;
        let cache_elems = v
            .get("cache_elems")
            .and_then(Json::as_f64)
            .ok_or("missing `cache_elems`")?;
        let rows = v
            .get("kernels")
            .and_then(Json::as_array)
            .ok_or("missing `kernels` array")?
            .iter()
            .map(BatchRow::from_json_value)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(BatchReport { cache_elems, rows })
    }

    /// A Markdown table mirroring the paper's Fig. 6: kernel, symbolic
    /// bounds, and the numeric bounds with their ratio.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("S = {} elements\n\n", self.cache_elems));
        out.push_str("| kernel | status | LB(S) | UB(S) | lb | ub | ub/lb | tiles |\n");
        out.push_str("|---|---|---|---|---|---|---|---|\n");
        for r in &self.rows {
            let num = |v: Option<f64>| v.map_or("—".to_string(), |x| format!("{x:.4e}"));
            let ratio = r.tightness.map_or("—".to_string(), |x| format!("{x:.3}"));
            let cell = |v: &Option<String>| v.clone().unwrap_or_else(|| "—".to_string());
            if let Some(e) = &r.error {
                out.push_str(&format!(
                    "| {} | {} | error: {e} | | | | | |\n",
                    r.kernel,
                    r.status.as_str()
                ));
            } else {
                out.push_str(&format!(
                    "| {} | {} | {} | {} | {} | {} | {} | {} |\n",
                    r.kernel,
                    r.status.as_str(),
                    cell(&r.lb_symbolic),
                    cell(&r.ub_symbolic),
                    num(r.lb),
                    num(r.ub),
                    ratio,
                    cell(&r.tiles),
                ));
            }
        }
        out
    }

    /// The worst row status (`failed > degraded > exact`); drives the
    /// CLI exit code.
    pub fn worst_status(&self) -> Status {
        self.rows
            .iter()
            .fold(Status::Exact, |acc, r| acc.worst(r.status))
    }
}

/// Looks up a builtin kernel by name: the six classic kernels, a TCCG
/// tensor-contraction spec, or a Yolo9000 layer (the conv2d kernel at
/// that layer's sizes). This is the one name table the CLI, the serving
/// layer, and the test harnesses all resolve against.
pub fn builtin_kernel(name: &str) -> Option<Kernel> {
    match name {
        "matmul" => Some(kernels::matmul()),
        "conv1d" => Some(kernels::conv1d()),
        "conv2d" => Some(kernels::conv2d()),
        "mttkrp" => Some(kernels::mttkrp()),
        "stencil2d" => Some(kernels::stencil2d()),
        "doitgen" => Some(kernels::doitgen()),
        _ => {
            if let Some(e) = kernels::TCCG.iter().find(|e| e.spec == name) {
                return Some(e.kernel());
            }
            kernels::YOLO9000
                .iter()
                .find(|l| l.name == name)
                .map(|l| kernels::conv2d().with_default_sizes(l.size_map().into_iter().collect()))
        }
    }
}

/// The corpus entry for a builtin name, carrying its published Fig. 6
/// sizes when the name is a corpus kernel (TCCG spec or Yolo layer) and
/// the kernel's annotated defaults otherwise.
pub fn corpus_item(name: &str) -> Option<BatchItem> {
    if let Some(item) = builtin_corpus().into_iter().find(|i| i.label == name) {
        return Some(item);
    }
    let kernel = builtin_kernel(name)?;
    let sizes = kernel.default_sizes().unwrap_or_default();
    Some(BatchItem {
        label: name.to_string(),
        kernel,
        sizes,
    })
}

/// The 19 builtin kernel instances the paper evaluates (Fig. 6): the 8
/// TCCG tensor-contraction classes at their published sizes and the 11
/// Yolo9000 convolution layers.
pub fn builtin_corpus() -> Vec<BatchItem> {
    let mut items = Vec::new();
    for e in kernels::TCCG {
        items.push(BatchItem {
            label: e.spec.to_string(),
            kernel: e.kernel(),
            sizes: e.size_map(),
        });
    }
    for l in kernels::YOLO9000 {
        items.push(BatchItem {
            label: l.name.to_string(),
            kernel: kernels::conv2d(),
            sizes: l.size_map(),
        });
    }
    items
}

/// Analyzes every item, `jobs` at a time, and returns the combined
/// report with rows in input order.
///
/// Each row runs under its own [`Budget`] (from
/// [`BatchOptions::timeout_ms`] / [`BatchOptions::max_steps`]) and
/// inside [`catch_unwind`], so one hanging or panicking kernel cannot
/// take down the batch: the panic becomes a structured `failed` row and
/// every other kernel still reports.
pub fn run_batch(items: &[BatchItem], options: &BatchOptions) -> BatchReport {
    set_memo_enabled(options.memo);
    let abort = AtomicBool::new(false);
    let mut rows = par_map(options.jobs, items, |_, item| {
        if options.fail_fast && abort.load(Ordering::SeqCst) {
            return skipped_row(item);
        }
        let row = contained_row(item, options);
        if row.status == Status::Failed {
            abort.store(true, Ordering::SeqCst);
        }
        row
    });
    if options.fail_fast {
        // Commit to the lowest-input-index genuine failure. Workers claim
        // indices in strictly increasing order, so a row can only have
        // been skipped by the abort flag if a *lower*-index row genuinely
        // failed first — hence every row before the minimum-index genuine
        // failure was computed normally on every run, and the minimum
        // itself is timing-invariant. Uniformly skipping everything after
        // it (even rows that happened to finish) makes the report
        // identical for every `jobs` value.
        let first_failure = rows.iter().position(|r| {
            r.status == Status::Failed && !r.error.as_deref().unwrap_or("").starts_with("skipped:")
        });
        if let Some(first) = first_failure {
            for (item, row) in items.iter().zip(rows.iter_mut()).skip(first + 1) {
                *row = skipped_row(item);
            }
        }
    }
    BatchReport {
        cache_elems: options.cache_elems,
        rows,
    }
}

fn blank_row(item: &BatchItem) -> BatchRow {
    BatchRow {
        kernel: item.label.clone(),
        arith: item.kernel.arith_complexity().to_string(),
        lb_symbolic: None,
        ub_symbolic: None,
        lb: None,
        ub: None,
        tightness: None,
        tiles: None,
        error: None,
        status: Status::Exact,
        note: None,
        certificate: None,
    }
}

fn skipped_row(item: &BatchItem) -> BatchRow {
    let mut row = blank_row(item);
    row.error = Some("skipped: earlier kernel failed (--fail-fast)".to_string());
    row.status = Status::Failed;
    row
}

/// The panic payload as text (`panic!` carries `&str` or `String`).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs one row inside `catch_unwind`: a panic anywhere in the pipeline
/// (including a rational overflow) is converted into a structured
/// `failed` row instead of unwinding through the worker pool.
fn contained_row(item: &BatchItem, options: &BatchOptions) -> BatchRow {
    match catch_unwind(AssertUnwindSafe(|| analyze_row(item, options))) {
        Ok(row) => row,
        Err(payload) => {
            let mut row = blank_row(item);
            row.error = Some(format!("panic: {}", panic_message(payload.as_ref())));
            row.status = Status::Failed;
            row
        }
    }
}

fn row_budget(options: &BatchOptions) -> Budget {
    // A row never outlives the scope that launched it: when an ambient
    // budget carries a deadline (the serving layer enters one per
    // request), the row's own allowance is capped by the time that
    // request has left, so all rows of a request share its window. The
    // CLI runs with an unlimited ambient and is unaffected.
    let ambient_remaining = Budget::ambient().remaining_time();
    let requested = options.timeout_ms.map(Duration::from_millis);
    let deadline = match (requested, ambient_remaining) {
        (Some(r), Some(a)) => Some(r.min(a)),
        (one, other) => one.or(other),
    };
    if deadline.is_none() && options.max_steps.is_none() {
        // No limits requested, but count anyway: the step totals feed the
        // profiling registry, and a counting budget still never exhausts.
        return Budget::counting();
    }
    Budget::with_limits(deadline, options.max_steps, None)
}

fn analyze_row(item: &BatchItem, options: &BatchOptions) -> BatchRow {
    // One budget per row: a slow kernel exhausts only its own allowance.
    // Entering it makes the deadline ambient for the symbolic stages too.
    let budget = row_budget(options);
    let _scope = budget.enter();
    let _span = obs::span_arg("batch.kernel", item.label.clone());
    #[cfg(any(test, feature = "fault-inject"))]
    inject_fault(&item.label, &budget);
    // Persistent row tier (inert unless a store is installed): a disk
    // hit replays the finished row byte-for-byte and skips the stages.
    if options.memo {
        if let Some(row) = crate::rowstore::lookup(item, options) {
            obs::add(obs::Metric::BudgetSteps, budget.steps_used());
            return row;
        }
    }
    let row = analyze_row_stages(item, options);
    if options.memo {
        crate::rowstore::persist(item, options, &row);
    }
    obs::add(obs::Metric::BudgetSteps, budget.steps_used());
    row
}

fn analyze_row_stages(item: &BatchItem, options: &BatchOptions) -> BatchRow {
    let kernel = &item.kernel;
    let budget = Budget::ambient();
    let mut row = blank_row(item);
    let symbolic = {
        let _span = obs::span("iolb.symbolic");
        symbolic_lb(kernel)
    };
    let lower = match symbolic {
        Ok(lb) => {
            row.lb_symbolic = Some(lb.combined.to_string());
            if lb.degraded {
                row.status = Status::Degraded;
                row.note = Some(degradation_note("symbolic lower bound", &budget));
            }
            lb
        }
        Err(e) => {
            row.error = Some(e.to_string());
            row.status = Status::Failed;
            return row;
        }
    };
    // Keep the closed-form UB expression (and its provenance) around:
    // the certificate records both so the audit can re-evaluate it.
    let ub_closed: Option<(ioopt_symbolic::Expr, &'static str)> = {
        let _span = obs::span("ioub.closed_form");
        symbolic_tc_ub(kernel)
            .map(|ub| (ub.bound, "tc"))
            .or_else(|| {
                symbolic_conv_ub(kernel, &item.sizes, options.cache_elems)
                    .map(|ub| (ub.bound, "conv"))
            })
    };
    row.ub_symbolic = ub_closed.as_ref().map(|(bound, _)| bound.to_string());
    if !options.numeric {
        if options.certify {
            let _span = obs::span("certify.build");
            row.certificate = Some(crate::certificate::build_certificate(
                kernel,
                &item.sizes,
                options.cache_elems,
                &lower,
                ub_closed.as_ref(),
                None,
            ));
        }
        return row;
    }
    let analysis_options = AnalysisOptions::with_cache(options.cache_elems)
        .with_memo(options.memo)
        .with_budget(budget.clone());
    match analyze(kernel, &item.sizes, &analysis_options) {
        Ok(a) => {
            row.lb = Some(a.lb);
            row.ub = Some(a.ub);
            row.tightness = Some(a.tightness);
            let mut dims: Vec<&str> = kernel.dims().iter().map(|d| d.name.as_str()).collect();
            dims.sort_unstable();
            row.tiles = Some(
                dims.iter()
                    .map(|d| format!("{d}={}", a.recommendation.tiles[*d]))
                    .collect::<Vec<_>>()
                    .join(" "),
            );
            row.status = row.status.worst(a.status);
            if !a.degradations.is_empty() {
                let detail = a.degradations.join("; ");
                row.note = Some(match row.note.take() {
                    Some(prev) => format!("{prev}; {detail}"),
                    None => detail,
                });
            }
            if options.certify {
                let _span = obs::span("certify.build");
                row.certificate = Some(crate::certificate::build_certificate(
                    kernel,
                    &item.sizes,
                    options.cache_elems,
                    &a.lower,
                    ub_closed.as_ref(),
                    Some(&a.recommendation),
                ));
            }
        }
        Err(e) => {
            row.error = Some(e.to_string());
            row.status = Status::Failed;
        }
    }
    row
}

fn degradation_note(stage: &str, budget: &Budget) -> String {
    match budget.exhausted() {
        Some(e) => format!("{stage} degraded: {e}"),
        None => format!("{stage} degraded: rational overflow"),
    }
}

/// Test/CI-only fault injection, selected via the `IOOPT_FAULT`
/// environment variable (comma-separated directives):
///
/// * `panic:<label>` — panic while analyzing the labelled kernel.
/// * `overflow[:<label>]` — force a rational overflow (every kernel, or
///   just the labelled one).
/// * `slow:<ms>[:<label>]` — busy-wait `ms` milliseconds per kernel in
///   1 ms slices, checking the row budget between slices (exercises the
///   deadline path deterministically).
///
/// Compiled only under `cfg(test)` or the `fault-inject` feature, so
/// release builds carry no environment-variable hook.
#[cfg(any(test, feature = "fault-inject"))]
fn inject_fault(label: &str, budget: &Budget) {
    let Ok(spec) = std::env::var("IOOPT_FAULT") else {
        return;
    };
    for directive in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        let mut parts = directive.splitn(3, ':');
        match parts.next() {
            Some("panic") if parts.next() == Some(label) => {
                panic!("injected fault: panic while analyzing `{label}`");
            }
            Some("overflow") => {
                let target = parts.next();
                if target.is_none() || target == Some(label) {
                    // Reproduce the historical overflow failure mode: the
                    // checked product has no representation, which the
                    // ungoverned pipeline reports by panicking.
                    let huge = ioopt_symbolic::Rational::from(i128::MAX / 2);
                    if huge.try_mul(huge).is_none() {
                        panic!("rational overflow while analyzing `{label}` (injected)");
                    }
                }
            }
            Some("slow") => {
                let ms: u64 = parts.next().and_then(|v| v.parse().ok()).unwrap_or(0);
                let target = parts.next();
                if target.is_none() || target == Some(label) {
                    for _ in 0..ms {
                        if budget.checkpoint().is_err() {
                            break;
                        }
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
            }
            _ => {}
        }
    }
}

/// Numeric lower bound of the symbolic LB at the item's sizes — used by
/// the soundness tests without running the full numeric pipeline.
pub fn eval_lb(kernel: &Kernel, sizes: &HashMap<String, i64>, cache_elems: f64) -> Option<f64> {
    let lb = symbolic_lb(kernel).ok()?;
    let mut env = kernel.bind_sizes(sizes);
    env.insert(Symbol::new("S"), cache_elems);
    lb.combined.eval_f64(&env).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_all_19_builtins() {
        let items = builtin_corpus();
        assert_eq!(items.len(), 19);
        assert_eq!(items.iter().filter(|i| i.label.contains('-')).count(), 19);
        assert_eq!(
            items.iter().filter(|i| i.label.starts_with("Yolo")).count(),
            11
        );
        for item in &items {
            for d in item.kernel.dims() {
                assert!(item.sizes.contains_key(&d.name), "{}", item.label);
            }
        }
    }

    #[test]
    fn symbolic_batch_report_round_trips() {
        let items: Vec<BatchItem> = builtin_corpus()
            .into_iter()
            .filter(|i| !i.label.starts_with("Yolo"))
            .collect();
        let options = BatchOptions {
            numeric: false,
            ..BatchOptions::default()
        };
        let report = run_batch(&items, &options);
        assert_eq!(report.rows.len(), 8);
        for row in &report.rows {
            assert!(row.error.is_none(), "{}: {:?}", row.kernel, row.error);
            assert!(row.lb_symbolic.is_some(), "{}", row.kernel);
            assert!(row.ub_symbolic.is_some(), "{}", row.kernel);
        }
        let parsed = BatchReport::from_json(&report.to_json()).unwrap();
        assert_eq!(parsed, report);
        // And the markdown table has one line per kernel plus headers.
        let md = report.to_markdown();
        assert_eq!(md.lines().count(), 4 + items.len());
    }

    #[test]
    fn injected_panic_becomes_structured_failed_row() {
        // The directive names a label only this test uses, so concurrent
        // tests reading IOOPT_FAULT are unaffected.
        std::env::set_var("IOOPT_FAULT", "panic:__fault_target__");
        let matmul = kernels::matmul();
        let sizes: HashMap<String, i64> = [("i", 64i64), ("j", 64), ("k", 64)]
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect();
        let items = vec![
            BatchItem {
                label: "__fault_target__".to_string(),
                kernel: matmul.clone(),
                sizes: sizes.clone(),
            },
            BatchItem {
                label: "healthy".to_string(),
                kernel: matmul,
                sizes,
            },
        ];
        let report = run_batch(
            &items,
            &BatchOptions {
                numeric: false,
                ..BatchOptions::default()
            },
        );
        std::env::remove_var("IOOPT_FAULT");
        assert_eq!(report.rows[0].status, Status::Failed);
        let err = report.rows[0].error.as_deref().unwrap();
        assert!(err.starts_with("panic: injected fault"), "{err}");
        assert_eq!(report.rows[1].status, Status::Exact);
        assert!(report.rows[1].error.is_none());
        assert_eq!(report.worst_status(), Status::Failed);
        // The schema round-trips the new fields.
        let parsed = BatchReport::from_json(&report.to_json()).unwrap();
        assert_eq!(parsed, report);
    }

    #[test]
    fn fail_fast_skips_later_kernels() {
        // seidel is rejected as not tilable -> a failed row.
        let bad = ioopt_ir::parse_kernel(
            "kernel seidel { loop t : T; loop i : N; A[i] += A[i+1] * A[i]; }",
        )
        .unwrap();
        let bad_sizes: HashMap<String, i64> = [("t", 4i64), ("i", 16)]
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect();
        let ok_sizes: HashMap<String, i64> = [("i", 64i64), ("j", 64), ("k", 64)]
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect();
        let items = vec![
            BatchItem {
                label: "bad".to_string(),
                kernel: bad,
                sizes: bad_sizes,
            },
            BatchItem {
                label: "ok".to_string(),
                kernel: kernels::matmul(),
                sizes: ok_sizes,
            },
        ];
        let options = BatchOptions {
            fail_fast: true,
            ..BatchOptions::default()
        };
        let report = run_batch(&items, &options);
        assert_eq!(report.rows[0].status, Status::Failed);
        assert_eq!(report.rows[1].status, Status::Failed);
        assert!(report.rows[1]
            .error
            .as_deref()
            .unwrap()
            .starts_with("skipped:"));
        // Without fail-fast the second kernel still runs.
        let report = run_batch(
            &items,
            &BatchOptions {
                fail_fast: false,
                ..BatchOptions::default()
            },
        );
        assert_eq!(report.rows[1].status, Status::Exact);
    }

    #[test]
    fn fail_fast_reports_are_jobs_deterministic() {
        // Regression: fail-fast used to report whichever rows happened to
        // be in flight when the abort flag flipped, so `--jobs` changed
        // the report. The fix commits to the lowest-input-index genuine
        // failure and uniformly skips everything after it.
        let bad = ioopt_ir::parse_kernel(
            "kernel seidel { loop t : T; loop i : N; A[i] += A[i+1] * A[i]; }",
        )
        .unwrap();
        let bad_sizes: HashMap<String, i64> = [("t", 4i64), ("i", 16)]
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect();
        let ok_sizes: HashMap<String, i64> = [("i", 32i64), ("j", 32), ("k", 32)]
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect();
        // The failure sits mid-corpus so later rows genuinely race it.
        let mut items: Vec<BatchItem> = (0..3)
            .map(|i| BatchItem {
                label: format!("ok{i}"),
                kernel: kernels::matmul(),
                sizes: ok_sizes.clone(),
            })
            .collect();
        items.push(BatchItem {
            label: "bad".to_string(),
            kernel: bad,
            sizes: bad_sizes,
        });
        items.extend((3..8).map(|i| BatchItem {
            label: format!("ok{i}"),
            kernel: kernels::matmul(),
            sizes: ok_sizes.clone(),
        }));
        let options = BatchOptions {
            fail_fast: true,
            ..BatchOptions::default()
        };
        let seq = run_batch(&items, &options);
        // Rows before the failure computed, the failure itself reported,
        // every row after it skipped.
        for row in &seq.rows[..3] {
            assert_eq!(row.status, Status::Exact, "{}", row.kernel);
        }
        assert_eq!(seq.rows[3].status, Status::Failed);
        assert!(!seq.rows[3]
            .error
            .as_deref()
            .unwrap()
            .starts_with("skipped:"));
        for row in &seq.rows[4..] {
            assert_eq!(row.status, Status::Failed, "{}", row.kernel);
            assert!(
                row.error.as_deref().unwrap().starts_with("skipped:"),
                "{}",
                row.kernel
            );
        }
        for jobs in [2, 4, 8] {
            let par = run_batch(
                &items,
                &BatchOptions {
                    jobs,
                    ..options.clone()
                },
            );
            assert_eq!(seq.to_json(), par.to_json(), "jobs={jobs}");
        }
    }

    #[test]
    fn spent_timeout_degrades_rows_without_failing_them() {
        let items: Vec<BatchItem> = builtin_corpus().into_iter().take(2).collect();
        let options = BatchOptions {
            timeout_ms: Some(0),
            ..BatchOptions::default()
        };
        let report = run_batch(&items, &options);
        for row in &report.rows {
            assert_eq!(row.status, Status::Degraded, "{}", row.kernel);
            assert!(row.error.is_none(), "{}: {:?}", row.kernel, row.error);
            assert!(row.note.is_some(), "{}", row.kernel);
            // Degraded bounds must still bracket: lb <= ub.
            if let (Some(lb), Some(ub)) = (row.lb, row.ub) {
                assert!(lb <= ub * (1.0 + 1e-9), "{}: {lb} > {ub}", row.kernel);
            }
        }
        assert_eq!(report.worst_status(), Status::Degraded);
    }

    #[test]
    fn ambient_deadline_caps_row_budgets() {
        // The serving layer enters one deadline budget per request; rows
        // must inherit that cap even when the options ask for no timeout.
        let items: Vec<BatchItem> = builtin_corpus().into_iter().take(1).collect();
        let options = BatchOptions::default();
        assert!(options.timeout_ms.is_none());
        let ambient = Budget::with_limits(Some(Duration::ZERO), None, None);
        let _scope = ambient.enter();
        let report = run_batch(&items, &options);
        assert_eq!(
            report.rows[0].status,
            Status::Degraded,
            "{:?}",
            report.rows[0]
        );
        assert!(report.rows[0].error.is_none());
    }

    #[test]
    fn builtin_lookup_resolves_every_corpus_label() {
        for item in builtin_corpus() {
            let direct = builtin_kernel(&item.label).expect(&item.label);
            assert_eq!(direct.name(), item.kernel.name(), "{}", item.label);
            let corpus = corpus_item(&item.label).expect(&item.label);
            assert_eq!(corpus.sizes, item.sizes, "{}", item.label);
        }
        assert!(builtin_kernel("matmul").is_some());
        assert!(builtin_kernel("no-such-kernel").is_none());
        // Non-corpus classics resolve too; they carry no annotated
        // defaults, so callers must supply sizes.
        let classic = corpus_item("matmul").expect("matmul");
        assert!(classic.sizes.is_empty());
    }

    #[test]
    fn batch_jobs_do_not_change_the_report() {
        let items: Vec<BatchItem> = builtin_corpus().into_iter().take(4).collect();
        let options = BatchOptions {
            numeric: false,
            ..BatchOptions::default()
        };
        let seq = run_batch(&items, &options);
        for jobs in [2, 8] {
            let par = run_batch(
                &items,
                &BatchOptions {
                    jobs,
                    ..options.clone()
                },
            );
            assert_eq!(seq.to_json(), par.to_json(), "jobs={jobs}");
        }
    }
}
