//! The IOOpt command-line tool: parse a kernel from a DSL file (or one of
//! the builtin names), derive its I/O bounds, and print the report with
//! the suggested tiled code. The `check` subcommand runs the
//! `ioopt-verify` static analyzer alone and reports diagnostics.
//!
//! ```text
//! USAGE:
//!   ioopt <file.k | builtin:NAME> --sizes i=2000,j=1500,k=1500 [--cache 1024]
//!   ioopt check <file.k | builtin:NAME> [--sizes ...] [--deny warnings] [--json]
//!   ioopt batch <builtin:all | inputs...> [--jobs N] [--cache N] [--json]
//!   ioopt audit <report.json> [--json]
//!   ioopt serve [--addr HOST:PORT] [--workers N] [--queue N]
//!   ioopt cache <stats | verify | compact> --cache-dir PATH
//!   ioopt --list-builtins
//!
//! OPTIONS:
//!   --sizes a=V,b=V,...   concrete trip count per loop dimension
//!   --cache N             fast-memory capacity in elements [default: 4096]
//!   --symbolic            also print the symbolic expressions only
//!   --deny warnings       (check) exit non-zero on warnings too
//!   --json                (check, batch) machine-readable report
//!   --jobs N              (batch) concurrent kernel analyses [default: 1]
//!   --symbolic-only       (batch) skip the numeric TileOpt pipeline
//!   --no-memo             (batch) disable the memo caches
//!   --timeout-ms N        (batch) per-kernel wall-clock budget; rows degrade
//!   --max-steps N         (batch) per-kernel analysis step budget
//!   --fail-fast           (batch) stop scheduling kernels after a failure
//!   --certify             (batch) attach proof-carrying certificates to rows
//!   --profile             (batch) per-kernel/per-stage breakdown on stderr
//!                         (and a `profile` block in the --json report)
//!   --trace-json PATH     (batch) write a Chrome-trace JSON of the run
//!   --cache-dir PATH      (batch, serve) persistent memo store: finished
//!                         exact rows are replayed across restarts
//!   --shards N            (serve) fork N child serve processes, each
//!                         owning the key partition `route_hash % N` and
//!                         its own `shard-%02d/` store subdirectory,
//!                         behind an in-process router
//! ```
//!
//! `cache` inspects and maintains a `--cache-dir` store: `stats` opens
//! it read-only (safe against a live shard's partition) and prints
//! counters, `verify` is a read-only full-checksum scan (exit 2 on any
//! corruption), `compact` rewrites live frames into one fresh segment,
//! drops superseded and quarantined data, and evicts rows not read
//! since the previous compaction.
//!
//! `batch` exit codes: 0 when every row is exact, 2 when any row is
//! degraded or failed (the report still prints), 1 on usage errors.
//!
//! `audit` re-validates a certified report (`batch --json --certify`)
//! with the independent `ioopt-audit` checker: exit 0 when every
//! certificate is accepted, 2 when any is rejected (each rejection names
//! the violated check), 1 on usage/IO errors or an uncertified report.
//!
//! `batch` accepts `builtin:all` (the 19 Fig. 6 kernels), any builtin
//! names, DSL files, and simple `*` globs over file names. The report
//! table goes to stdout; wall-clock and cache statistics go to stderr so
//! the stdout bytes are identical for every `--jobs` value.

use std::collections::HashMap;
use std::process::ExitCode;
use std::time::Instant;

use ioopt::ir::{kernels, parse_kernel, Kernel};
use ioopt::verify::{verify, VerifyOptions};
use ioopt::{
    analysis_handler, analyze, builtin_corpus, builtin_kernel, memo_stats, obs, render_text,
    run_batch, symbolic_lb, symbolic_tc_ub, AnalysisOptions, BatchItem, BatchOptions,
    ServiceDefaults,
};
use ioopt_engine::obs_log;
use ioopt_serve::{ServeOptions, Server};

fn usage() -> &'static str {
    "usage: ioopt <file.k | builtin:NAME> --sizes a=V,b=V,... [--cache N] [--symbolic]\n\
     \u{20}      ioopt check <file.k | builtin:NAME> [--sizes a=V,...] [--deny warnings] [--json]\n\
     \u{20}      ioopt batch <builtin:all | inputs...> [--jobs N] [--cache N] [--json]\n\
     \u{20}                  [--symbolic-only] [--no-memo] [--timeout-ms N] [--max-steps N]\n\
     \u{20}                  [--fail-fast] [--certify] [--profile] [--trace-json PATH]\n\
     \u{20}                  [--cache-dir PATH]\n\
     \u{20}      ioopt audit <report.json> [--json]\n\
     \u{20}      ioopt serve [--addr HOST:PORT] [--workers N] [--queue N] [--cache N]\n\
     \u{20}                  [--timeout-ms N] [--max-kernels N] [--cache-dir PATH] [--shards N]\n\
     \u{20}      ioopt cache <stats | verify | compact> --cache-dir PATH [--json]\n\
     try:   ioopt --list-builtins"
}

/// Loads the kernel named on the command line; returns the DSL source
/// too when it came from a file (for caret excerpts in diagnostics).
fn load(input: &str) -> Result<(Kernel, Option<String>), String> {
    if let Some(name) = input.strip_prefix("builtin:") {
        let k = builtin_kernel(name).ok_or_else(|| format!("unknown builtin `{name}`"))?;
        Ok((k, None))
    } else {
        let src =
            std::fs::read_to_string(input).map_err(|e| format!("cannot read `{input}`: {e}"))?;
        let k = parse_kernel(&src).map_err(|e| e.render(&src))?;
        Ok((k, Some(src)))
    }
}

fn parse_sizes(arg: &str, into: &mut HashMap<String, i64>) -> Result<(), String> {
    for pair in arg.split(',') {
        let (name, value) = pair
            .split_once('=')
            .ok_or_else(|| format!("bad --sizes entry `{pair}` (want name=value)"))?;
        into.insert(
            name.trim().to_string(),
            value
                .trim()
                .parse()
                .map_err(|e| format!("bad size `{pair}`: {e}"))?,
        );
    }
    Ok(())
}

/// The `check` subcommand: run the static analyzer and set the exit
/// code from the findings (errors always fail; warnings fail under
/// `--deny warnings`).
fn run_check(args: Vec<String>) -> Result<ExitCode, String> {
    let mut input: Option<String> = None;
    let mut sizes_arg: Option<String> = None;
    let mut deny_warnings = false;
    let mut json = false;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--sizes" => sizes_arg = Some(it.next().ok_or("--sizes needs a value")?),
            "--deny" => match it.next().as_deref() {
                Some("warnings") => deny_warnings = true,
                other => {
                    return Err(format!(
                        "--deny takes `warnings`, got `{}`",
                        other.unwrap_or("nothing")
                    ))
                }
            },
            "--json" => json = true,
            "--help" | "-h" => {
                println!("{}", usage());
                return Ok(ExitCode::SUCCESS);
            }
            other if input.is_none() => input = Some(other.to_string()),
            other => return Err(format!("unexpected argument `{other}`\n{}", usage())),
        }
    }
    let input = input.ok_or_else(|| usage().to_string())?;
    let (kernel, src) = load(&input)?;

    let mut sizes = kernel.default_sizes().unwrap_or_default();
    if let Some(arg) = &sizes_arg {
        parse_sizes(arg, &mut sizes)?;
    }
    let options = VerifyOptions {
        sizes: if sizes.is_empty() { None } else { Some(sizes) },
        ..VerifyOptions::default()
    };
    let report = verify(&kernel, &options);
    if json {
        println!("{}", report.to_json());
    } else {
        println!("{}", report.render(src.as_deref()));
    }
    let fail = report.has_errors() || (deny_warnings && !report.is_clean());
    Ok(if fail {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}

/// Expands one `batch` input into items: `builtin:all`, a builtin name,
/// a DSL file path, or a simple `*` glob over file names.
fn batch_items(input: &str, sizes_arg: Option<&str>) -> Result<Vec<BatchItem>, String> {
    if input == "builtin:all" {
        return Ok(builtin_corpus());
    }
    // Corpus builtins (TCCG specs, Yolo layers) carry their Fig. 6 sizes.
    if let Some(name) = input.strip_prefix("builtin:") {
        if let Some(mut item) = builtin_corpus().into_iter().find(|i| i.label == name) {
            if let Some(arg) = sizes_arg {
                parse_sizes(arg, &mut item.sizes)?;
            }
            return Ok(vec![item]);
        }
    }
    let paths: Vec<String> = if input.contains('*') {
        expand_glob(input)?
    } else {
        vec![input.to_string()]
    };
    let mut items = Vec::new();
    for path in paths {
        let (kernel, _src) = load(&path)?;
        let mut sizes = kernel.default_sizes().unwrap_or_default();
        if let Some(arg) = sizes_arg {
            parse_sizes(arg, &mut sizes)?;
        }
        for d in kernel.dims() {
            if !sizes.contains_key(&d.name) {
                return Err(format!(
                    "`{path}`: missing size for loop dimension `{}` (use --sizes or defaults)",
                    d.name
                ));
            }
        }
        let label = path
            .strip_prefix("builtin:")
            .map(str::to_string)
            .unwrap_or_else(|| kernel.name().to_string());
        items.push(BatchItem {
            label,
            kernel,
            sizes,
        });
    }
    Ok(items)
}

/// Minimal `*` glob over a single path component (no `**`), e.g.
/// `kernels/*.k`. Matches are sorted for a deterministic input order.
fn expand_glob(pattern: &str) -> Result<Vec<String>, String> {
    let (dir, file_pat) = match pattern.rsplit_once('/') {
        Some((d, f)) => (d.to_string(), f.to_string()),
        None => (".".to_string(), pattern.to_string()),
    };
    if dir.contains('*') {
        return Err(format!(
            "`{pattern}`: `*` is only supported in the file name"
        ));
    }
    let matches_pat = |name: &str| -> bool {
        // Greedy segment matcher: the fragments between `*`s must appear
        // in order, anchored at both ends.
        let frags: Vec<&str> = file_pat.split('*').collect();
        let mut rest = name;
        for (i, frag) in frags.iter().enumerate() {
            if i == 0 {
                match rest.strip_prefix(frag) {
                    Some(r) => rest = r,
                    None => return false,
                }
            } else if i == frags.len() - 1 {
                return rest.ends_with(frag);
            } else if let Some(pos) = rest.find(frag) {
                rest = &rest[pos + frag.len()..];
            } else {
                return false;
            }
        }
        rest.is_empty() || file_pat.ends_with('*')
    };
    let entries =
        std::fs::read_dir(&dir).map_err(|e| format!("cannot read directory `{dir}`: {e}"))?;
    let mut out: Vec<String> = entries
        .filter_map(Result::ok)
        .filter(|e| e.path().is_file())
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|name| matches_pat(name))
        .map(|name| {
            if dir == "." {
                name
            } else {
                format!("{dir}/{name}")
            }
        })
        .collect();
    out.sort();
    if out.is_empty() {
        return Err(format!("`{pattern}` matches no files"));
    }
    Ok(out)
}

/// The `batch` subcommand: analyze many kernels concurrently and print
/// one combined report. Timing and cache statistics go to stderr.
fn run_batch_cmd(args: Vec<String>) -> Result<ExitCode, String> {
    let mut inputs: Vec<String> = Vec::new();
    let mut sizes_arg: Option<String> = None;
    let mut options = BatchOptions {
        cache_elems: 4096.0,
        ..BatchOptions::default()
    };
    let mut json = false;
    let mut profile = false;
    let mut trace_json: Option<String> = None;
    let mut cache_dir: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--sizes" => sizes_arg = Some(it.next().ok_or("--sizes needs a value")?),
            "--cache" => {
                options.cache_elems = it
                    .next()
                    .ok_or("--cache needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --cache value: {e}"))?;
            }
            "--jobs" => {
                options.jobs = it
                    .next()
                    .ok_or("--jobs needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --jobs value: {e}"))?;
                if options.jobs == 0 {
                    return Err("--jobs must be at least 1".to_string());
                }
            }
            "--json" => json = true,
            "--symbolic-only" => options.numeric = false,
            "--no-memo" => options.memo = false,
            "--timeout-ms" => {
                options.timeout_ms = Some(
                    it.next()
                        .ok_or("--timeout-ms needs a value")?
                        .parse()
                        .map_err(|e| format!("bad --timeout-ms value: {e}"))?,
                );
            }
            "--max-steps" => {
                options.max_steps = Some(
                    it.next()
                        .ok_or("--max-steps needs a value")?
                        .parse()
                        .map_err(|e| format!("bad --max-steps value: {e}"))?,
                );
            }
            "--fail-fast" => options.fail_fast = true,
            "--certify" => options.certify = true,
            "--profile" => profile = true,
            "--trace-json" => {
                trace_json = Some(it.next().ok_or("--trace-json needs a path")?);
            }
            "--cache-dir" => {
                cache_dir = Some(it.next().ok_or("--cache-dir needs a path")?);
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return Ok(ExitCode::SUCCESS);
            }
            other if !other.starts_with("--") => inputs.push(other.to_string()),
            other => return Err(format!("unexpected argument `{other}`\n{}", usage())),
        }
    }
    if inputs.is_empty() {
        return Err(format!("batch needs at least one input\n{}", usage()));
    }
    let mut items = Vec::new();
    for input in &inputs {
        items.extend(batch_items(input, sizes_arg.as_deref())?);
    }
    // The persistent row tier rides beneath the memo caches; opening
    // runs torn-tail recovery and never fails (an unusable directory
    // degrades to memory-only mode with a note on stderr).
    if let Some(dir) = &cache_dir {
        ioopt::install_row_store(std::path::Path::new(dir));
    }
    // Span collection only runs when asked for; metric counters are
    // always on (they are wait-free) but zeroed here so the report
    // reflects this batch alone.
    obs::reset_metrics();
    let trace = (profile || trace_json.is_some()).then(ioopt_engine::Trace::new);
    let start = Instant::now();
    // Panics inside the batch are contained into structured `failed`
    // rows; silence the default hook so no raw backtrace interleaves
    // with the report, then restore it for the rest of the process.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let report = {
        let _obs = trace.as_ref().map(|t| t.attach());
        run_batch(&items, &options)
    };
    std::panic::set_hook(prev_hook);
    let elapsed = start.elapsed();
    let records = trace.as_ref().map(|t| t.records()).unwrap_or_default();
    if json {
        // The optional `profile` block rides along in the shared schema;
        // consumers comparing reports across runs should strip it (its
        // timings and cache counters are not `--jobs`-deterministic).
        let mut value = report.to_json_value();
        if profile {
            if let ioopt::Json::Object(pairs) = &mut value {
                pairs.push(("profile".to_string(), obs::profile_json(&records)));
            }
        }
        println!("{}", value.render());
    } else {
        print!("{}", report.to_markdown());
    }
    if let Some(path) = &trace_json {
        let chrome = trace
            .as_ref()
            .expect("trace collected when --trace-json is set")
            .to_chrome_json();
        std::fs::write(path, chrome.render())
            .map_err(|e| format!("cannot write trace `{path}`: {e}"))?;
        obs_log!("trace: {} span(s) written to {path}", records.len());
    }
    if profile {
        obs::log_block(&obs::render_profile_table(&records));
    }
    let stats = memo_stats();
    obs::log_block(&format!(
        "batch: {} kernel(s), jobs={}, wall-clock {:.2}s\n\
         cache: {} hits, {} misses, {} entries ({:.1}% hit ratio)",
        report.rows.len(),
        options.jobs,
        elapsed.as_secs_f64(),
        stats.hits,
        stats.misses,
        stats.entries,
        stats.hit_ratio() * 100.0
    ));
    if cache_dir.is_some() {
        // Make the batch durable before exiting; a clean run must never
        // rely on crash recovery at the next open.
        ioopt::flush_row_store();
        if let Some(s) = ioopt::row_store_stats() {
            obs::log_block(&format!(
                "store: {} hit(s), {} miss(es), {} write(s), {} live key(s){}",
                s.hits,
                s.misses,
                s.writes,
                s.live_keys,
                if s.disabled {
                    " — memory-only (disabled)"
                } else {
                    ""
                }
            ));
        }
    }
    // Exit codes: 0 all rows exact, 2 any row degraded or failed (the
    // report still printed in full), 1 usage error (via `main`).
    match report.worst_status() {
        ioopt::Status::Exact => Ok(ExitCode::SUCCESS),
        worst => {
            let failed = report
                .rows
                .iter()
                .filter(|r| r.status == ioopt::Status::Failed)
                .count();
            let degraded = report
                .rows
                .iter()
                .filter(|r| r.status == ioopt::Status::Degraded)
                .count();
            obs_log!("batch: {failed} kernel(s) failed, {degraded} degraded ({worst:?})");
            Ok(ExitCode::from(2))
        }
    }
}

/// The byte span of the rejected row's `"kernel":"<label>"` key in the
/// report source, for caret diagnostics.
fn locate_row(src: &str, label: &str) -> Option<ioopt::ir::Span> {
    let needle = format!(
        "\"kernel\":{}",
        ioopt::Json::str(label.to_string()).render()
    );
    src.find(&needle)
        .map(|pos| ioopt::ir::Span::new(pos, pos + needle.len()))
}

/// Renders the caret excerpt for `span`, clipped to a window around it:
/// batch reports are single-line JSON, so rendering the raw line would
/// drown the caret in kilobytes of report.
fn render_clipped(src: &str, span: ioopt::ir::Span) -> String {
    let line_start = src[..span.start].rfind('\n').map_or(0, |p| p + 1);
    let line_end = src[span.start..]
        .find('\n')
        .map_or(src.len(), |p| span.start + p);
    let mut win_start = span.start.saturating_sub(20).max(line_start);
    while !src.is_char_boundary(win_start) {
        win_start -= 1;
    }
    let mut win_end = (span.end + 60).min(line_end);
    while !src.is_char_boundary(win_end) {
        win_end += 1;
    }
    let snippet = &src[win_start..win_end];
    ioopt::ir::Span::new(span.start - win_start, span.end - win_start).render(snippet)
}

/// The `audit` subcommand: re-validate a certified batch report with the
/// independent `ioopt-audit` checker. Exit 0 when every certificate is
/// accepted, 2 when any is rejected, 1 on usage/IO errors or a report
/// with no certificates at all.
fn run_audit(args: Vec<String>) -> Result<ExitCode, String> {
    let mut path: Option<String> = None;
    let mut json = false;
    for a in args {
        match a.as_str() {
            "--json" => json = true,
            "--help" | "-h" => {
                println!("{}", usage());
                return Ok(ExitCode::SUCCESS);
            }
            other if path.is_none() && !other.starts_with("--") => path = Some(other.to_string()),
            other => return Err(format!("unexpected argument `{other}`\n{}", usage())),
        }
    }
    let path = path.ok_or_else(|| format!("audit needs a report path\n{}", usage()))?;
    let src = std::fs::read_to_string(&path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let value = ioopt::Json::parse(&src).map_err(|e| format!("`{path}` is not valid JSON: {e}"))?;
    let audit = ioopt::audit_report(&value)?;
    if json {
        println!("{}", audit.to_json_value().render());
    } else {
        for r in &audit.results {
            if r.accepted() {
                println!("audit: kernel `{}`: accepted", r.kernel);
            } else {
                for f in &r.findings {
                    println!("error[{}]: kernel `{}`: {}", f.check, r.kernel, f.message);
                }
                if let Some(span) = locate_row(&src, &r.kernel) {
                    let (line, col) = span.line_col(&src);
                    println!("  --> {path}:{line}:{col}");
                    print!("{}", render_clipped(&src, span));
                }
            }
            for n in &r.notes {
                println!("note: kernel `{}`: {}", r.kernel, n);
            }
        }
        for label in &audit.uncertified {
            println!("warning: kernel `{label}` carries no certificate (failed row, or the report was produced without --certify)");
        }
        let rejected = audit.results.iter().filter(|r| !r.accepted()).count();
        println!(
            "audit: {} certificate(s) checked, {} accepted, {} rejected",
            audit.results.len(),
            audit.results.len() - rejected,
            rejected
        );
    }
    Ok(if audit.accepted() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    })
}

/// The `serve` subcommand: a persistent analysis service. The memo
/// cache lives for the process, so repeated requests hit warm; the
/// admission queue sheds overload with 429s; `POST /shutdown` drains
/// gracefully (in-flight requests finish, then the process exits 0).
fn run_serve(args: Vec<String>) -> Result<ExitCode, String> {
    let mut addr = "127.0.0.1:7070".to_string();
    let mut options = ServeOptions::default();
    let mut defaults = ServiceDefaults::default();
    let mut cache_dir: Option<String> = None;
    let mut shards: usize = 1;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => addr = it.next().ok_or("--addr needs host:port")?,
            "--workers" => {
                options.workers = it
                    .next()
                    .ok_or("--workers needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --workers value: {e}"))?;
                if options.workers == 0 {
                    return Err("--workers must be at least 1".to_string());
                }
            }
            "--queue" => {
                options.queue_capacity = it
                    .next()
                    .ok_or("--queue needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --queue value: {e}"))?;
            }
            "--cache" => {
                defaults.cache_elems = it
                    .next()
                    .ok_or("--cache needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --cache value: {e}"))?;
            }
            "--timeout-ms" => {
                defaults.timeout_ms = Some(
                    it.next()
                        .ok_or("--timeout-ms needs a value")?
                        .parse()
                        .map_err(|e| format!("bad --timeout-ms value: {e}"))?,
                );
            }
            "--max-kernels" => {
                defaults.max_kernels = it
                    .next()
                    .ok_or("--max-kernels needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --max-kernels value: {e}"))?;
            }
            "--cache-dir" => {
                cache_dir = Some(it.next().ok_or("--cache-dir needs a path")?);
            }
            "--shards" => {
                shards = it
                    .next()
                    .ok_or("--shards needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --shards value: {e}"))?;
                if shards == 0 {
                    return Err("--shards must be at least 1".to_string());
                }
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return Ok(ExitCode::SUCCESS);
            }
            other => return Err(format!("unexpected argument `{other}`\n{}", usage())),
        }
    }
    if shards > 1 {
        return run_serve_fleet(addr, shards, options, defaults, cache_dir);
    }
    // Install the persistent row tier before the first request can
    // arrive: a restarted server answers its first corpus pass from
    // disk instead of re-paying seconds-per-kernel analysis.
    if let Some(dir) = &cache_dir {
        let store = ioopt::install_row_store(std::path::Path::new(dir));
        let s = store.stats();
        obs_log!(
            "serve: persistent store at {dir}: {} live key(s), {} recovered, {} quarantined{}",
            s.live_keys,
            s.recovered,
            s.quarantined,
            if s.disabled {
                " — memory-only (disabled)"
            } else {
                ""
            }
        );
    }
    let server = Server::bind(&addr, options, analysis_handler(defaults))
        .map_err(|e| format!("cannot bind `{addr}`: {e}"))?;
    obs_log!(
        "serve: listening on {} (POST /analyze, GET /healthz, GET /metrics, POST /shutdown)",
        server.addr()
    );
    let start = Instant::now();
    // Contained request panics must not spray backtraces between the
    // access lines of concurrent workers; the rows already report them.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    server.run();
    std::panic::set_hook(prev_hook);
    // Durability ordering for graceful drain: `run` has returned, so
    // every in-flight request (and its write-through row appends) is
    // finished — fsync now, before reporting, so a clean `POST
    // /shutdown` never leaves frames for crash recovery to replay.
    if cache_dir.is_some() {
        ioopt::flush_row_store();
    }
    let stats = memo_stats();
    obs::log_block(&format!(
        "serve: drained after {:.1}s\n\
         serve: {} request(s) answered, {} rejected (429)\n\
         cache: {} hits, {} misses, {} entries ({:.1}% hit ratio)",
        start.elapsed().as_secs_f64(),
        obs::value(obs::Metric::ServeRequests),
        obs::value(obs::Metric::ServeRejected),
        stats.hits,
        stats.misses,
        stats.entries,
        stats.hit_ratio() * 100.0
    ));
    if cache_dir.is_some() {
        if let Some(s) = ioopt::row_store_stats() {
            obs::log_block(&format!(
                "store: {} hit(s), {} miss(es), {} write(s), {} live key(s){}",
                s.hits,
                s.misses,
                s.writes,
                s.live_keys,
                if s.disabled {
                    " — memory-only (disabled)"
                } else {
                    ""
                }
            ));
        }
    }
    Ok(ExitCode::SUCCESS)
}

/// The sharded `serve` path (`--shards N`, N ≥ 2): forks N child serve
/// processes — each owning the key partition `route_hash % N` and, when
/// `--cache-dir` is set, its own `shard-%02d/` store subdirectory
/// (single-writer per partition) — and fronts them with an in-process
/// router that proxies response bytes verbatim. A shard that dies is
/// respawned by the fleet supervisor and warm-starts from its own
/// partition's store; while it is down only that partition sheds (503).
fn run_serve_fleet(
    addr: String,
    shards: usize,
    mut options: ServeOptions,
    defaults: ServiceDefaults,
    cache_dir: Option<String>,
) -> Result<ExitCode, String> {
    use std::io::BufRead;
    use std::sync::Arc;

    use ioopt_serve::shard::{router_handler, ShardFleet, ShardHandle, ShardLauncher};
    use ioopt_serve::Request;

    let exe = std::env::current_exe().map_err(|e| format!("cannot find own binary: {e}"))?;
    // The children get the same knobs this process was given — minus
    // `--shards` (a shard serves its whole partition itself) and with a
    // kernel-assigned port and store subdirectory.
    let workers = options.workers.to_string();
    let queue = options.queue_capacity.to_string();
    let cache = defaults.cache_elems.to_string();
    let max_kernels = defaults.max_kernels.to_string();
    let timeout_ms = defaults.timeout_ms.map(|t| t.to_string());
    let launcher: Arc<ShardLauncher> = Arc::new(move |i: usize| {
        let mut cmd = std::process::Command::new(&exe);
        cmd.arg("serve")
            .args(["--addr", "127.0.0.1:0"])
            .args(["--workers", &workers])
            .args(["--queue", &queue])
            .args(["--cache", &cache])
            .args(["--max-kernels", &max_kernels]);
        if let Some(t) = &timeout_ms {
            cmd.args(["--timeout-ms", t]);
        }
        if let Some(dir) = &cache_dir {
            cmd.arg("--cache-dir")
                .arg(std::path::Path::new(dir).join(format!("shard-{i:02}")));
        }
        cmd.stdin(std::process::Stdio::null())
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::piped());
        let mut child = cmd.spawn()?;
        let stderr = child.stderr.take().expect("stderr was piped");
        let mut reader = std::io::BufReader::new(stderr);
        let mut line = String::new();
        let shard_addr = loop {
            line.clear();
            if reader.read_line(&mut line)? == 0 {
                let _ = child.kill();
                let _ = child.wait();
                return Err(std::io::Error::other(format!(
                    "shard {i} exited before it started listening"
                )));
            }
            eprintln!("shard {i}: {}", line.trim_end());
            if let Some(rest) = line.trim().strip_prefix("serve: listening on ") {
                let text = rest.split_whitespace().next().unwrap_or("");
                match text.parse::<std::net::SocketAddr>() {
                    Ok(a) => break a,
                    Err(e) => {
                        let _ = child.kill();
                        let _ = child.wait();
                        return Err(std::io::Error::other(format!(
                            "shard {i} announced unparseable address `{text}`: {e}"
                        )));
                    }
                }
            }
        };
        // Keep draining the child's stderr for its whole life: a full
        // pipe would wedge the shard mid-request.
        std::thread::Builder::new()
            .name(format!("shard-{i}-stderr"))
            .spawn(move || {
                let mut line = String::new();
                loop {
                    line.clear();
                    match reader.read_line(&mut line) {
                        Ok(0) | Err(_) => break,
                        Ok(_) => eprintln!("shard {i}: {}", line.trim_end()),
                    }
                }
            })
            .map_err(|e| std::io::Error::other(format!("spawn shard {i} drainer: {e}")))?;
        obs_log!(
            "serve: shard {i} listening on {shard_addr} (pid {})",
            child.id()
        );
        Ok(ShardHandle {
            child,
            addr: shard_addr,
        })
    });

    let fleet = ShardFleet::launch(shards, launcher)
        .map_err(|e| format!("cannot launch shard fleet: {e}"))?;
    options.extra_metrics = Some(Arc::new({
        let fleet = fleet.clone();
        move || fleet.metrics_text()
    }));
    let handler = router_handler(
        fleet.clone(),
        Arc::new(|request: &Request| ioopt::route_hash(&String::from_utf8_lossy(&request.body))),
    );
    let server =
        Server::bind(&addr, options, handler).map_err(|e| format!("cannot bind `{addr}`: {e}"))?;
    obs_log!(
        "serve: listening on {} (POST /analyze, GET /healthz, GET /metrics, POST /shutdown; routing {} shard(s))",
        server.addr(),
        shards
    );
    let start = Instant::now();
    server.run();
    // Drain order: the router has stopped admitting, so no new request
    // can reach a shard — now drain the children (each fsyncs its own
    // partition on its graceful exit).
    fleet.shutdown();
    obs::log_block(&format!(
        "serve: drained after {:.1}s\n\
         serve: {} request(s) routed, {} rejected (429), {} shard respawn(s)",
        start.elapsed().as_secs_f64(),
        obs::value(obs::Metric::ServeRequests),
        obs::value(obs::Metric::ServeRejected),
        obs::value(obs::Metric::ShardsRespawned),
    ));
    Ok(ExitCode::SUCCESS)
}

/// The `cache` subcommand: inspect and maintain a persistent memo store
/// without serving from it. `stats` opens the store **read-only** (no
/// repairs, no lock on the data — safe against a partition a live shard
/// owns; pending recovery shows up in the counters), `verify` scans
/// read-only and exits 2 on any corruption, `compact` rewrites live
/// frames, drops superseded and quarantined data, and evicts rows not
/// read since the previous compaction.
fn run_cache(args: Vec<String>) -> Result<ExitCode, String> {
    use ioopt_engine::store;

    let mut action: Option<String> = None;
    let mut dir: Option<String> = None;
    let mut json = false;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--cache-dir" => dir = Some(it.next().ok_or("--cache-dir needs a path")?),
            "--json" => json = true,
            "--help" | "-h" => {
                println!("{}", usage());
                return Ok(ExitCode::SUCCESS);
            }
            other if action.is_none() && !other.starts_with("--") => {
                action = Some(other.to_string());
            }
            other => return Err(format!("unexpected argument `{other}`\n{}", usage())),
        }
    }
    let action = action.ok_or_else(|| format!("cache needs an action\n{}", usage()))?;
    let dir = dir.ok_or_else(|| format!("cache needs --cache-dir\n{}", usage()))?;
    let path = std::path::Path::new(&dir);
    match action.as_str() {
        "stats" => {
            // Read-only so a live shard's partition can be inspected
            // without the single-writer discipline being violated: no
            // truncation, no quarantine rename, nothing created.
            let s = store::PersistentStore::open_readonly(path).stats();
            if json {
                println!(
                    "{}",
                    ioopt::Json::obj([
                        ("segments", ioopt::Json::Num(s.segments as f64)),
                        ("live_keys", ioopt::Json::Num(s.live_keys as f64)),
                        ("frames", ioopt::Json::Num(s.frames as f64)),
                        ("bytes", ioopt::Json::Num(s.bytes as f64)),
                        ("recovered", ioopt::Json::Num(s.recovered as f64)),
                        ("quarantined", ioopt::Json::Num(s.quarantined as f64)),
                        ("disabled", ioopt::Json::Bool(s.disabled)),
                    ])
                    .render()
                );
            } else {
                println!(
                    "cache: {} segment(s), {} live key(s), {} frame(s), {} byte(s)",
                    s.segments, s.live_keys, s.frames, s.bytes
                );
                println!(
                    "cache: recovered {} torn frame(s), quarantined {} segment(s)",
                    s.recovered, s.quarantined
                );
            }
            if s.disabled {
                obs_log!("cache: store at `{dir}` could not be opened");
                return Ok(ExitCode::from(2));
            }
            Ok(ExitCode::SUCCESS)
        }
        "verify" => {
            let report =
                store::verify_dir(path).map_err(|e| format!("cannot verify `{dir}`: {e}"))?;
            if json {
                println!(
                    "{}",
                    ioopt::Json::obj([
                        ("clean", ioopt::Json::Bool(report.is_clean())),
                        ("frames", ioopt::Json::Num(report.frames() as f64)),
                        (
                            "segments",
                            ioopt::Json::Array(
                                report
                                    .segments
                                    .iter()
                                    .map(|s| ioopt::Json::obj([
                                        ("name", ioopt::Json::str(s.name.clone())),
                                        ("frames", ioopt::Json::Num(s.frames as f64)),
                                        ("bytes", ioopt::Json::Num(s.bytes as f64)),
                                        (
                                            "corrupt_at",
                                            s.corrupt_at.map_or(ioopt::Json::Null, |at| {
                                                ioopt::Json::Num(at as f64)
                                            }),
                                        ),
                                    ]))
                                    .collect()
                            )
                        ),
                        (
                            "quarantined",
                            ioopt::Json::Array(
                                report
                                    .quarantined
                                    .iter()
                                    .map(|q| ioopt::Json::str(q.clone()))
                                    .collect()
                            )
                        ),
                    ])
                    .render()
                );
            } else {
                for s in &report.segments {
                    match s.corrupt_at {
                        None => println!(
                            "cache: {}: {} frame(s), {} byte(s), clean",
                            s.name, s.frames, s.bytes
                        ),
                        Some(at) => println!(
                            "cache: {}: {} valid frame(s), CORRUPT at byte {at}",
                            s.name, s.frames
                        ),
                    }
                }
                for q in &report.quarantined {
                    println!("cache: {q}: quarantined (run `ioopt cache compact` to drop)");
                }
                println!(
                    "cache: verify {}: {} segment(s), {} frame(s)",
                    if report.is_clean() { "clean" } else { "FAILED" },
                    report.segments.len(),
                    report.frames()
                );
            }
            Ok(if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(2)
            })
        }
        "compact" => {
            let report =
                store::compact_dir(path).map_err(|e| format!("cannot compact `{dir}`: {e}"))?;
            if json {
                println!(
                    "{}",
                    ioopt::Json::obj([
                        ("live_keys", ioopt::Json::Num(report.live_keys as f64)),
                        (
                            "segments_removed",
                            ioopt::Json::Num(report.segments_removed as f64)
                        ),
                        (
                            "quarantined_removed",
                            ioopt::Json::Num(report.quarantined_removed as f64)
                        ),
                        ("evicted", ioopt::Json::Num(report.evicted as f64)),
                        ("bytes_before", ioopt::Json::Num(report.bytes_before as f64)),
                        ("bytes_after", ioopt::Json::Num(report.bytes_after as f64)),
                    ])
                    .render()
                );
            } else {
                println!(
                    "cache: compacted {} live key(s): {} -> {} byte(s); removed {} segment(s), {} quarantined file(s), evicted {} cold row(s)",
                    report.live_keys,
                    report.bytes_before,
                    report.bytes_after,
                    report.segments_removed,
                    report.quarantined_removed,
                    report.evicted
                );
            }
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!(
            "unknown cache action `{other}` (want stats, verify, or compact)\n{}",
            usage()
        )),
    }
}

fn run() -> Result<ExitCode, String> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list-builtins") {
        println!("matmul conv1d conv2d mttkrp stencil2d doitgen");
        for e in kernels::TCCG {
            println!("{}", e.spec);
        }
        for l in kernels::YOLO9000 {
            println!("{}", l.name);
        }
        return Ok(ExitCode::SUCCESS);
    }
    if args.first().map(String::as_str) == Some("check") {
        return run_check(args.split_off(1));
    }
    if args.first().map(String::as_str) == Some("batch") {
        return run_batch_cmd(args.split_off(1));
    }
    if args.first().map(String::as_str) == Some("audit") {
        return run_audit(args.split_off(1));
    }
    if args.first().map(String::as_str) == Some("serve") {
        return run_serve(args.split_off(1));
    }
    if args.first().map(String::as_str) == Some("cache") {
        return run_cache(args.split_off(1));
    }
    let mut input: Option<String> = None;
    let mut sizes_arg: Option<String> = None;
    let mut cache = 4096.0f64;
    let mut symbolic = false;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--sizes" => sizes_arg = Some(it.next().ok_or("--sizes needs a value")?),
            "--cache" => {
                cache = it
                    .next()
                    .ok_or("--cache needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --cache value: {e}"))?;
            }
            "--symbolic" => symbolic = true,
            "--help" | "-h" => {
                println!("{}", usage());
                return Ok(ExitCode::SUCCESS);
            }
            other if input.is_none() => input = Some(other.to_string()),
            other => return Err(format!("unexpected argument `{other}`\n{}", usage())),
        }
    }
    let input = input.ok_or_else(|| usage().to_string())?;
    let (kernel, _src) = load(&input)?;

    if symbolic {
        println!("kernel {}", kernel.name());
        println!("arithmetic complexity: {}", kernel.arith_complexity());
        let lb = symbolic_lb(&kernel).map_err(|e| e.to_string())?;
        println!("symbolic LB(S) = {}", lb.combined);
        if let Some(ub) = symbolic_tc_ub(&kernel) {
            println!("symbolic UB(S) = {}", ub.bound);
        } else {
            println!("symbolic UB(S): no closed form (not a tensor contraction);");
            println!("  use --sizes for the numeric TileOpt bound");
        }
    }

    let mut sizes: HashMap<String, i64> = kernel.default_sizes().unwrap_or_default();
    match sizes_arg {
        Some(sizes_arg) => parse_sizes(&sizes_arg, &mut sizes)?,
        None if !sizes.is_empty() => {}
        None => {
            if symbolic {
                return Ok(ExitCode::SUCCESS);
            }
            return Err(format!(
                "--sizes is required (or annotate defaults with `loop i : Ni = 2000;`)\n{}",
                usage()
            ));
        }
    }
    for d in kernel.dims() {
        if !sizes.contains_key(&d.name) {
            return Err(format!("missing size for loop dimension `{}`", d.name));
        }
    }

    let analysis =
        analyze(&kernel, &sizes, &AnalysisOptions::with_cache(cache)).map_err(|e| e.to_string())?;
    // Surface pre-flight warnings next to the report (hard errors have
    // already aborted inside `analyze`). One atomic block keeps the
    // headlines contiguous even if other threads log concurrently.
    if !analysis.diagnostics.diagnostics.is_empty() {
        let headlines: Vec<String> = analysis
            .diagnostics
            .diagnostics
            .iter()
            .map(|d| d.headline())
            .collect();
        obs::log_block(&headlines.join("\n"));
    }
    print!("{}", render_text(&analysis));
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            obs_log!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
