//! The IOOpt command-line tool: parse a kernel from a DSL file (or one of
//! the builtin names), derive its I/O bounds, and print the report with
//! the suggested tiled code.
//!
//! ```text
//! USAGE:
//!   ioopt <file.k | builtin:NAME> --sizes i=2000,j=1500,k=1500 [--cache 1024]
//!   ioopt --list-builtins
//!
//! OPTIONS:
//!   --sizes a=V,b=V,...   concrete trip count per loop dimension (required)
//!   --cache N             fast-memory capacity in elements [default: 4096]
//!   --symbolic            also print the symbolic expressions only
//! ```

use std::collections::HashMap;
use std::process::ExitCode;

use ioopt::ir::{kernels, parse_kernel, Kernel};
use ioopt::{analyze, render_text, symbolic_lb, symbolic_tc_ub, AnalysisOptions};

fn builtin(name: &str) -> Option<Kernel> {
    match name {
        "matmul" => Some(kernels::matmul()),
        "conv1d" => Some(kernels::conv1d()),
        "conv2d" => Some(kernels::conv2d()),
        "mttkrp" => Some(kernels::mttkrp()),
        "stencil2d" => Some(kernels::stencil2d()),
        "doitgen" => Some(kernels::doitgen()),
        _ => kernels::TCCG
            .iter()
            .find(|e| e.spec == name)
            .map(|e| e.kernel()),
    }
}

fn usage() -> &'static str {
    "usage: ioopt <file.k | builtin:NAME> --sizes a=V,b=V,... [--cache N] [--symbolic]\n\
     try:   ioopt --list-builtins"
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list-builtins") {
        println!("matmul conv1d conv2d mttkrp stencil2d doitgen");
        for e in kernels::TCCG {
            println!("{}", e.spec);
        }
        return Ok(());
    }
    let mut input: Option<String> = None;
    let mut sizes_arg: Option<String> = None;
    let mut cache = 4096.0f64;
    let mut symbolic = false;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--sizes" => sizes_arg = Some(it.next().ok_or("--sizes needs a value")?),
            "--cache" => {
                cache = it
                    .next()
                    .ok_or("--cache needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --cache value: {e}"))?;
            }
            "--symbolic" => symbolic = true,
            "--help" | "-h" => {
                println!("{}", usage());
                return Ok(());
            }
            other if input.is_none() => input = Some(other.to_string()),
            other => return Err(format!("unexpected argument `{other}`\n{}", usage())),
        }
    }
    let input = input.ok_or_else(|| usage().to_string())?;

    let kernel = if let Some(name) = input.strip_prefix("builtin:") {
        builtin(name).ok_or_else(|| format!("unknown builtin `{name}`"))?
    } else {
        let src = std::fs::read_to_string(&input)
            .map_err(|e| format!("cannot read `{input}`: {e}"))?;
        parse_kernel(&src).map_err(|e| e.to_string())?
    };

    if symbolic {
        println!("kernel {}", kernel.name());
        println!("arithmetic complexity: {}", kernel.arith_complexity());
        let lb = symbolic_lb(&kernel).map_err(|e| e.to_string())?;
        println!("symbolic LB(S) = {}", lb.combined);
        if let Some(ub) = symbolic_tc_ub(&kernel) {
            println!("symbolic UB(S) = {}", ub.bound);
        } else {
            println!("symbolic UB(S): no closed form (not a tensor contraction);");
            println!("  use --sizes for the numeric TileOpt bound");
        }
    }

    let mut sizes: HashMap<String, i64> = kernel.default_sizes().unwrap_or_default();
    match sizes_arg {
        Some(sizes_arg) => {
            for pair in sizes_arg.split(',') {
                let (name, value) = pair
                    .split_once('=')
                    .ok_or_else(|| format!("bad --sizes entry `{pair}` (want name=value)"))?;
                sizes.insert(
                    name.trim().to_string(),
                    value.trim().parse().map_err(|e| format!("bad size `{pair}`: {e}"))?,
                );
            }
        }
        None if !sizes.is_empty() => {}
        None => {
            if symbolic {
                return Ok(());
            }
            return Err(format!(
                "--sizes is required (or annotate defaults with `loop i : Ni = 2000;`)\n{}",
                usage()
            ));
        }
    }
    for d in kernel.dims() {
        if !sizes.contains_key(&d.name) {
            return Err(format!("missing size for loop dimension `{}`", d.name));
        }
    }

    let analysis =
        analyze(&kernel, &sizes, &AnalysisOptions::with_cache(cache)).map_err(|e| e.to_string())?;
    print!("{}", render_text(&analysis));
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
