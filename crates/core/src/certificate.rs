//! Proof-carrying certificate assembly and offline audit plumbing
//! (DESIGN.md §11).
//!
//! [`build_certificate`] packages everything the independent
//! `ioopt-audit` checker needs to re-verify one batch row offline: the
//! Brascamp-Lieb LP witness (primal `s` and the dual vector that
//! certifies the optimum `σ`), the rendered bounds, the tile
//! feasibility witness behind the numeric `ub`, and the sampled
//! `LB ≤ UB` evidence grid. The block is purely additive: it only
//! appears in the report when `--certify` is set, so golden report
//! bytes are unchanged otherwise.
//!
//! [`audit_report`] is the inverse direction: decode a certified report
//! (strictly — a malformed certificate is an error, not a skip) and run
//! every row through [`ioopt_audit::audit_certificate`].

use std::collections::HashMap;

use ioopt_audit::{
    audit_certificate, AuditRowResult, CertificateData, ConstraintData, HomData, LbCertData,
    SampleData, ScenarioCertData, TileWitness, UbCertData,
};
use ioopt_engine::{Budget, Json};
use ioopt_iolb::{certify_scenario, Hom, HomKind, LowerBoundReport};
use ioopt_ir::{render_dsl, Kernel};
use ioopt_symbolic::Expr;
use ioopt_tileopt::Recommendation;
use ioopt_verify::sample_evidence;

/// The certificate schema version this workspace emits.
const VERSION: i64 = 1;

fn hom_kind(kind: HomKind) -> &'static str {
    match kind {
        HomKind::Input => "input",
        HomKind::Output => "output",
        HomKind::SmallDim => "sd",
    }
}

fn scenario_json(small_dims: &[usize], homs: &[Hom], cert: &ioopt_iolb::BlCertificate) -> Json {
    Json::obj([
        (
            "small_dims",
            Json::Array(small_dims.iter().map(|&d| Json::Int(d as i64)).collect()),
        ),
        ("sigma", Json::str(cert.sigma.to_string())),
        ("s_sd", Json::str(cert.s_sd.to_string())),
        (
            "homs",
            Json::Array(
                homs.iter()
                    .zip(&cert.s)
                    .map(|(h, s)| {
                        Json::obj([
                            ("name", Json::str(h.name.clone())),
                            ("kind", Json::str(hom_kind(h.kind))),
                            ("s", Json::str(s.to_string())),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "constraints",
            Json::Array(
                cert.constraints
                    .iter()
                    .map(|c| {
                        Json::obj([
                            ("lhs", Json::Int(c.lhs as i64)),
                            (
                                "image_ranks",
                                Json::Array(
                                    c.image_ranks.iter().map(|&r| Json::Int(r as i64)).collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "rank_duals",
            Json::Array(
                cert.rank_duals
                    .iter()
                    .map(|r| Json::str(r.to_string()))
                    .collect(),
            ),
        ),
        (
            "cap_duals",
            Json::Array(
                cert.cap_duals
                    .iter()
                    .map(|r| Json::str(r.to_string()))
                    .collect(),
            ),
        ),
    ])
}

/// Assembles the `certificate` block for one batch row. Scenario duals
/// are minted by re-solving each scenario's LP through
/// [`ioopt_iolb::certify_scenario`] under the ambient (row) budget; a
/// scenario whose certification exhausts the budget is omitted — the
/// audit checks what is present, never silently assumes the rest.
pub(crate) fn build_certificate(
    kernel: &Kernel,
    sizes: &HashMap<String, i64>,
    cache_elems: f64,
    lower: &LowerBoundReport,
    ub: Option<&(Expr, &'static str)>,
    recommendation: Option<&Recommendation>,
) -> Json {
    let budget = Budget::ambient();
    let mut scenarios = Vec::new();
    for sb in &lower.scenarios {
        if let Ok((homs, cert)) = certify_scenario(kernel, &sb.small_dims, true, &budget) {
            scenarios.push(scenario_json(&sb.small_dims, &homs, &cert));
        }
    }
    let mut sorted_sizes: Vec<(&String, &i64)> = sizes.iter().collect();
    sorted_sizes.sort_by(|a, b| a.0.cmp(b.0));

    let mut pairs: Vec<(String, Json)> = vec![
        ("version".to_string(), Json::Int(VERSION)),
        (
            "kernel_dsl".to_string(),
            render_dsl(kernel).map_or(Json::Null, Json::str),
        ),
        (
            "sizes".to_string(),
            Json::Object(
                sorted_sizes
                    .into_iter()
                    .map(|(name, v)| (name.clone(), Json::Int(*v)))
                    .collect(),
            ),
        ),
        ("cache_elems".to_string(), Json::Num(cache_elems)),
        (
            "lb".to_string(),
            Json::obj([
                ("trivial", Json::str(lower.trivial.to_string())),
                ("combined", Json::str(lower.combined.to_string())),
                ("scenarios", Json::Array(scenarios)),
            ]),
        ),
        (
            "ub".to_string(),
            ub.map_or(Json::Null, |(bound, source)| {
                Json::obj([
                    ("bound", Json::str(bound.to_string())),
                    ("source", Json::str(*source)),
                ])
            }),
        ),
    ];
    pairs.push((
        "tiles".to_string(),
        recommendation.map_or(Json::Null, |rec| {
            let mut dims: Vec<&str> = kernel.dims().iter().map(|d| d.name.as_str()).collect();
            dims.sort_unstable();
            Json::obj([
                (
                    "perm",
                    Json::Array(rec.perm.iter().map(|&d| Json::Int(d as i64)).collect()),
                ),
                (
                    "levels",
                    Json::Object(
                        kernel
                            .arrays()
                            .zip(&rec.levels)
                            .map(|(a, &l)| (a.name.clone(), Json::Int(l as i64)))
                            .collect(),
                    ),
                ),
                (
                    "tiles",
                    Json::Object(
                        dims.iter()
                            .map(|d| (d.to_string(), Json::Int(rec.tiles[*d])))
                            .collect(),
                    ),
                ),
                ("io", Json::Num(rec.io)),
            ])
        }),
    ));
    let samples = ub.map_or_else(Vec::new, |(bound, _)| {
        sample_evidence(&lower.combined, bound)
    });
    pairs.push((
        "samples".to_string(),
        Json::Array(
            samples
                .iter()
                .map(|s| {
                    Json::obj([
                        (
                            "assignment",
                            Json::Object(
                                s.assignment
                                    .iter()
                                    .map(|(n, v)| (n.clone(), Json::Num(*v)))
                                    .collect(),
                            ),
                        ),
                        ("lb", Json::Num(s.lb)),
                        ("ub", Json::Num(s.ub)),
                    ])
                })
                .collect(),
        ),
    ));
    Json::Object(pairs)
}

fn field<'a>(v: &'a Json, path: &str, key: &str) -> Result<&'a Json, String> {
    v.get(key)
        .ok_or_else(|| format!("certificate {path}: missing `{key}`"))
}

fn str_field(v: &Json, path: &str, key: &str) -> Result<String, String> {
    field(v, path, key)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| format!("certificate {path}: `{key}` must be a string"))
}

fn int_field(v: &Json, path: &str, key: &str) -> Result<i64, String> {
    field(v, path, key)?
        .as_i64()
        .ok_or_else(|| format!("certificate {path}: `{key}` must be an integer"))
}

fn num_field(v: &Json, path: &str, key: &str) -> Result<f64, String> {
    field(v, path, key)?
        .as_f64()
        .ok_or_else(|| format!("certificate {path}: `{key}` must be a number"))
}

fn array_field<'a>(v: &'a Json, path: &str, key: &str) -> Result<&'a [Json], String> {
    field(v, path, key)?
        .as_array()
        .ok_or_else(|| format!("certificate {path}: `{key}` must be an array"))
}

fn str_list(v: &Json, path: &str, key: &str) -> Result<Vec<String>, String> {
    array_field(v, path, key)?
        .iter()
        .map(|e| {
            e.as_str()
                .map(str::to_string)
                .ok_or_else(|| format!("certificate {path}: `{key}` entries must be strings"))
        })
        .collect()
}

fn decode_scenario(v: &Json, index: usize) -> Result<ScenarioCertData, String> {
    let path = format!("scenario {index}");
    let small_dims = array_field(v, &path, "small_dims")?
        .iter()
        .map(|e| {
            e.as_i64()
                .ok_or_else(|| format!("certificate {path}: small_dims must be integers"))
        })
        .collect::<Result<Vec<i64>, String>>()?;
    let homs = array_field(v, &path, "homs")?
        .iter()
        .map(|h| {
            Ok(HomData {
                name: str_field(h, &path, "name")?,
                kind: str_field(h, &path, "kind")?,
                s: str_field(h, &path, "s")?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    let constraints = array_field(v, &path, "constraints")?
        .iter()
        .map(|c| {
            Ok(ConstraintData {
                lhs: int_field(c, &path, "lhs")?,
                image_ranks: array_field(c, &path, "image_ranks")?
                    .iter()
                    .map(|r| {
                        r.as_i64().ok_or_else(|| {
                            format!("certificate {path}: image_ranks must be integers")
                        })
                    })
                    .collect::<Result<Vec<i64>, String>>()?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(ScenarioCertData {
        small_dims,
        sigma: str_field(v, &path, "sigma")?,
        s_sd: str_field(v, &path, "s_sd")?,
        homs,
        constraints,
        rank_duals: str_list(v, &path, "rank_duals")?,
        cap_duals: str_list(v, &path, "cap_duals")?,
    })
}

/// Decodes the `certificate` block of one report row into the audit
/// crate's plain data model (plus the row's own `lb`/`ub`/`kernel`
/// fields for cross-checking). `Ok(None)` when the row carries no
/// certificate; a *malformed* certificate is an error.
///
/// # Errors
///
/// A message naming the missing or mistyped field.
pub fn decode_certificate(row: &Json) -> Result<Option<CertificateData>, String> {
    let cert = match row.get("certificate") {
        None | Some(Json::Null) => return Ok(None),
        Some(c) => c,
    };
    let kernel_name = row
        .get("kernel")
        .and_then(Json::as_str)
        .unwrap_or("<unnamed>")
        .to_string();
    let kernel_dsl = match cert.get("kernel_dsl") {
        None | Some(Json::Null) => None,
        Some(v) => Some(
            v.as_str()
                .map(str::to_string)
                .ok_or("certificate: `kernel_dsl` must be a string or null")?,
        ),
    };
    let sizes = match cert.get("sizes") {
        None | Some(Json::Null) => Vec::new(),
        Some(Json::Object(pairs)) => pairs
            .iter()
            .map(|(name, v)| {
                v.as_i64()
                    .map(|n| (name.clone(), n))
                    .ok_or_else(|| format!("certificate: size `{name}` must be an integer"))
            })
            .collect::<Result<Vec<_>, String>>()?,
        Some(_) => return Err("certificate: `sizes` must be an object".to_string()),
    };
    let lb = field(cert, "root", "lb")?;
    let scenarios = array_field(lb, "lb", "scenarios")?
        .iter()
        .enumerate()
        .map(|(i, s)| decode_scenario(s, i))
        .collect::<Result<Vec<_>, String>>()?;
    let ub = match cert.get("ub") {
        None | Some(Json::Null) => None,
        Some(u) => Some(UbCertData {
            bound: str_field(u, "ub", "bound")?,
            source: str_field(u, "ub", "source")?,
        }),
    };
    let tiles = match cert.get("tiles") {
        None | Some(Json::Null) => None,
        Some(t) => {
            let perm = array_field(t, "tiles", "perm")?
                .iter()
                .map(|e| {
                    e.as_i64()
                        .ok_or_else(|| "certificate tiles: perm must be integers".to_string())
                })
                .collect::<Result<Vec<i64>, String>>()?;
            let obj_pairs = |key: &str| -> Result<Vec<(String, i64)>, String> {
                match field(t, "tiles", key)? {
                    Json::Object(pairs) => pairs
                        .iter()
                        .map(|(name, v)| {
                            v.as_i64().map(|n| (name.clone(), n)).ok_or_else(|| {
                                format!("certificate tiles: `{key}`.`{name}` must be an integer")
                            })
                        })
                        .collect(),
                    _ => Err(format!("certificate tiles: `{key}` must be an object")),
                }
            };
            Some(TileWitness {
                perm,
                levels: obj_pairs("levels")?,
                tiles: obj_pairs("tiles")?,
                io: num_field(t, "tiles", "io")?,
            })
        }
    };
    let samples = match cert.get("samples") {
        None | Some(Json::Null) => Vec::new(),
        Some(v) => v
            .as_array()
            .ok_or("certificate: `samples` must be an array")?
            .iter()
            .map(|s| {
                let assignment = match field(s, "sample", "assignment")? {
                    Json::Object(pairs) => pairs
                        .iter()
                        .map(|(name, v)| {
                            v.as_f64().map(|x| (name.clone(), x)).ok_or_else(|| {
                                format!("certificate sample: `{name}` must be a number")
                            })
                        })
                        .collect::<Result<Vec<_>, String>>()?,
                    _ => return Err("certificate sample: `assignment` must be an object".into()),
                };
                Ok(SampleData {
                    assignment,
                    lb: num_field(s, "sample", "lb")?,
                    ub: num_field(s, "sample", "ub")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?,
    };
    Ok(Some(CertificateData {
        version: int_field(cert, "root", "version")?,
        kernel_name,
        kernel_dsl,
        sizes,
        cache_elems: cert.get("cache_elems").and_then(Json::as_f64),
        row_lb: row.get("lb").and_then(Json::as_f64),
        row_ub: row.get("ub").and_then(Json::as_f64),
        lb: LbCertData {
            trivial: str_field(lb, "lb", "trivial")?,
            combined: str_field(lb, "lb", "combined")?,
            scenarios,
        },
        ub,
        tiles,
        samples,
    }))
}

/// The outcome of auditing one full report.
#[derive(Debug, Clone)]
pub struct AuditReport {
    /// One verdict per certified row, in report order.
    pub results: Vec<AuditRowResult>,
    /// Labels of rows that carried no certificate (failed rows, or a
    /// report produced without `--certify`).
    pub uncertified: Vec<String>,
}

impl AuditReport {
    /// Whether every certified row was accepted.
    pub fn accepted(&self) -> bool {
        self.results.iter().all(AuditRowResult::accepted)
    }

    /// The audit verdict in the shared report schema.
    pub fn to_json_value(&self) -> Json {
        Json::obj([
            ("accepted", Json::Bool(self.accepted())),
            (
                "rows",
                Json::Array(
                    self.results
                        .iter()
                        .map(|r| {
                            Json::obj([
                                ("kernel", Json::str(r.kernel.clone())),
                                (
                                    "status",
                                    Json::str(if r.accepted() { "accepted" } else { "rejected" }),
                                ),
                                (
                                    "findings",
                                    Json::Array(
                                        r.findings
                                            .iter()
                                            .map(|f| {
                                                Json::obj([
                                                    ("check", Json::str(f.check.clone())),
                                                    ("message", Json::str(f.message.clone())),
                                                ])
                                            })
                                            .collect(),
                                    ),
                                ),
                                (
                                    "notes",
                                    Json::Array(r.notes.iter().map(Json::str).collect()),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "uncertified",
                Json::Array(self.uncertified.iter().map(Json::str).collect()),
            ),
        ])
    }
}

/// Audits every row of a parsed `ioopt batch --json --certify` report.
///
/// # Errors
///
/// The report does not have the batch schema, a certificate block is
/// malformed, or **no** row carries a certificate at all (the caller
/// forgot `--certify`).
pub fn audit_report(report: &Json) -> Result<AuditReport, String> {
    let rows = report
        .get("kernels")
        .and_then(Json::as_array)
        .ok_or("report has no `kernels` array; is this an `ioopt batch --json` report?")?;
    let mut results = Vec::new();
    let mut uncertified = Vec::new();
    for row in rows {
        let label = row
            .get("kernel")
            .and_then(Json::as_str)
            .unwrap_or("<unnamed>")
            .to_string();
        match decode_certificate(row).map_err(|e| format!("kernel `{label}`: {e}"))? {
            Some(cert) => results.push(audit_certificate(&cert)),
            None => uncertified.push(label),
        }
    }
    if results.is_empty() {
        return Err(
            "report carries no certificates; produce one with `ioopt batch --certify --json`"
                .to_string(),
        );
    }
    Ok(AuditReport {
        results,
        uncertified,
    })
}
