//! # ioopt
//!
//! A Rust reproduction of **IOOpt** (Olivry et al., PLDI 2021):
//! automatic derivation of I/O complexity bounds for affine programs.
//!
//! Given a fully tilable kernel (tensor contraction, convolution, dense
//! linear algebra), IOOpt computes (paper Fig. 1):
//!
//! 1. its arithmetic complexity;
//! 2. a **symbolic lower bound** on data movement over *all* valid
//!    schedules (IOLB, §5 — Brascamp-Lieb with reduction detection and
//!    small dimensions);
//! 3. a **symbolic upper bound** with a matching footprint constraint
//!    (IOUB, §4 — sub-domain footprints and inverse densities);
//! 4. a **tiling recommendation** (loop permutation + tile sizes)
//!    realizing the upper bound (TileOpt).
//!
//! ```
//! use ioopt::{analyze, AnalysisOptions};
//! use ioopt_ir::kernels;
//! use std::collections::HashMap;
//!
//! let sizes = HashMap::from([
//!     ("i".to_string(), 2000i64),
//!     ("j".to_string(), 1500),
//!     ("k".to_string(), 1500),
//! ]);
//! let a = analyze(&kernels::matmul(), &sizes, &AnalysisOptions::with_cache(1024.0))?;
//! assert!(a.lb <= a.ub);                 // bounds are consistent
//! assert!(a.tightness < 1.1);            // and tight for matmul
//! # Ok::<(), ioopt::AnalyzeError>(())
//! ```
//!
//! The subsystem crates are re-exported for convenience: [`ir`], [`iolb`],
//! [`ioub`], [`tileopt`], [`verify`], [`cachesim`], [`cdag`], [`codegen`],
//! [`symbolic`], [`polyhedra`], [`linalg`], [`lp`].

#![warn(missing_docs)]

mod analysis;
mod batch;
pub mod certificate;
mod report;
mod rowstore;
mod sequence;
pub mod service;
pub mod tutorial;

pub use analysis::{
    analyze, memo_stats, reset_memo, set_memo_enabled, symbolic_conv_ub, symbolic_lb,
    symbolic_tc_ub, symbolic_tc_ub_for, Analysis, AnalysisOptions, AnalyzeError,
};
pub use batch::{
    builtin_corpus, builtin_kernel, corpus_item, eval_lb, run_batch, BatchItem, BatchOptions,
    BatchReport, BatchRow,
};
pub use certificate::{audit_report, decode_certificate, AuditReport};
pub use report::{csv_header, csv_row, render_text};
pub use rowstore::{flush_row_store, install_row_store, row_store_stats, uninstall_row_store};
pub use sequence::{analyze_sequence, SequenceAnalysis};
pub use service::{
    analysis_handler, handle_analyze, route_hash, run_service, service_items, KernelSpec,
    ServiceDefaults, ServiceError, ServiceRequest,
};

pub use ioopt_engine::{obs, Budget, Exhaustion, Json, Status, Trace};

pub use ioopt_audit as audit;
pub use ioopt_cachesim as cachesim;
pub use ioopt_cdag as cdag;
pub use ioopt_codegen as codegen;
pub use ioopt_iolb as iolb;
pub use ioopt_ioub as ioub;
pub use ioopt_ir as ir;
pub use ioopt_linalg as linalg;
pub use ioopt_lp as lp;
pub use ioopt_polyhedra as polyhedra;
pub use ioopt_symbolic as symbolic;
pub use ioopt_tileopt as tileopt;
pub use ioopt_verify as verify;
