//! Human-readable and CSV rendering of analyses.

use std::fmt::Write as _;

use crate::analysis::Analysis;

/// Renders a full analysis as a human-readable report (the tool's
/// terminal output).
pub fn render_text(a: &Analysis) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "=== IOOpt analysis: {} ===", a.kernel);
    let _ = writeln!(out, "arithmetic complexity: {}", a.arith_complexity);
    let _ = writeln!(out, "lower bound (combined): {}", a.lower.combined);
    for sc in &a.lower.scenarios {
        let _ = writeln!(
            out,
            "  scenario {:?}: sigma = {}, s_sd = {}, bound = {}",
            sc.small_dims, sc.sigma, sc.s_sd, sc.bound
        );
    }
    let _ = writeln!(out, "LB = {:.4e}", a.lb);
    let _ = writeln!(
        out,
        "UB = {:.4e}  (tightness UB/LB = {:.3})",
        a.ub, a.tightness
    );
    let _ = writeln!(
        out,
        "operational intensity at UB = {:.2} flop/element",
        a.operational_intensity
    );
    let _ = writeln!(out, "recommended tiles: {:?}", {
        let mut t: Vec<(&String, &i64)> = a.recommendation.tiles.iter().collect();
        t.sort();
        t
    });
    let _ = writeln!(out, "cost-model breakdown:");
    let explanation =
        ioopt_ioub::explain_cost(&a.ir, &a.recommendation.schedule, &a.recommendation.cost);
    for line in explanation.lines() {
        let _ = writeln!(out, "  {line}");
    }
    let _ = writeln!(out, "suggested tiled code:\n{}", a.tiled_code);
    out
}

/// One CSV row `kernel,S,lb,ub,tightness`.
pub fn csv_row(a: &Analysis, cache_elems: f64) -> String {
    format!(
        "{},{},{:.6e},{:.6e},{:.4}",
        a.kernel, cache_elems, a.lb, a.ub, a.tightness
    )
}

/// The CSV header matching [`csv_row`].
pub fn csv_header() -> &'static str {
    "kernel,S,lb,ub,tightness"
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{analyze, AnalysisOptions};
    use ioopt_ir::kernels;
    use std::collections::HashMap;

    #[test]
    fn report_renders_all_sections() {
        let sizes = HashMap::from([
            ("i".to_string(), 64i64),
            ("j".to_string(), 64),
            ("k".to_string(), 64),
        ]);
        let a = analyze(
            &kernels::matmul(),
            &sizes,
            &AnalysisOptions::with_cache(512.0),
        )
        .unwrap();
        let text = render_text(&a);
        assert!(text.contains("IOOpt analysis: matmul"));
        assert!(text.contains("lower bound"));
        assert!(text.contains("suggested tiled code"));
        let row = csv_row(&a, 512.0);
        assert!(row.starts_with("matmul,512,"));
        assert_eq!(csv_header().split(',').count(), row.split(',').count());
    }
}
