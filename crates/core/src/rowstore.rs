//! The persistent row tier: a process-wide [`PersistentStore`] layered
//! beneath the in-memory memo caches as a write-through second tier for
//! whole batch rows.
//!
//! Every bound the pipeline derives is a pure function of
//! `Kernel::structural_key()` plus the analysis options, so a finished
//! [`BatchRow`] can be replayed across process restarts byte-for-byte:
//! rows are stored as their canonical report JSON and parsed back
//! through the same `parse → render` fixpoint the report schema
//! round-trip tests pin down.
//!
//! The tier is **inert unless installed**: nothing consults the disk
//! until [`install_row_store`] runs (the CLI installs it only under
//! `--cache-dir`), and even then only batches with `memo: true` use it.
//! Only `exact`, error-free rows are ever persisted — the disk tier
//! extends the "degraded results are never cached" invariant of the
//! in-memory caches, and lookups re-check the invariant defensively so
//! a hand-edited store still cannot serve a weakened row. Exact rows
//! are budget-invariant, so `timeout_ms`/`max_steps` are deliberately
//! not part of the key: a budgeted rerun may be answered by an exact
//! row a generous earlier run persisted.

use std::path::Path;
use std::sync::{Arc, Mutex, OnceLock};

use ioopt_engine::store::{PersistentStore, StoreStats};
use ioopt_engine::{Json, Status};

use crate::batch::{BatchItem, BatchOptions, BatchRow};

fn slot() -> &'static Mutex<Option<Arc<PersistentStore>>> {
    static SLOT: OnceLock<Mutex<Option<Arc<PersistentStore>>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(None))
}

fn current() -> Option<Arc<PersistentStore>> {
    slot().lock().unwrap_or_else(|e| e.into_inner()).clone()
}

/// Opens (or creates) the persistent row store under `dir` and installs
/// it process-wide; batches with `memo: true` consult it from now on.
/// Replaces (and flushes) any previously installed store. The returned
/// handle is shared — callers may keep it for [`PersistentStore::stats`]
/// or disablement checks.
///
/// Opening never fails: an unusable directory yields a store already in
/// sticky memory-only mode (see `ioopt_engine::store`).
pub fn install_row_store(dir: &Path) -> Arc<PersistentStore> {
    let store = Arc::new(PersistentStore::open(dir));
    let previous = slot()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .replace(store.clone());
    if let Some(p) = previous {
        p.flush();
    }
    store
}

/// Uninstalls the row store, flushing it first. Subsequent batches run
/// memory-only again. (Tests use install/uninstall pairs to simulate a
/// process restart without forking.)
pub fn uninstall_row_store() {
    let store = slot().lock().unwrap_or_else(|e| e.into_inner()).take();
    if let Some(s) = store {
        s.flush();
    }
}

/// Fsyncs the installed row store, if any — the graceful-shutdown hook:
/// a clean drain must never rely on crash recovery at the next start.
pub fn flush_row_store() {
    if let Some(s) = current() {
        s.flush();
    }
}

/// A snapshot of the installed row store's counters, or `None` when no
/// store is installed.
pub fn row_store_stats() -> Option<StoreStats> {
    current().map(|s| s.stats())
}

fn push_len_prefixed(key: &mut Vec<u8>, bytes: &[u8]) {
    key.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    key.extend_from_slice(bytes);
}

/// The content address of one row: everything its bytes depend on.
/// The label is included because the row embeds it; the kernel enters
/// through its canonical structure, not its name, so renamed-but-equal
/// kernels share nothing only when their labels differ too.
fn row_key(item: &BatchItem, options: &BatchOptions) -> Vec<u8> {
    let mut key = Vec::with_capacity(128);
    key.extend_from_slice(b"ioopt-row/v1\0");
    push_len_prefixed(&mut key, item.label.as_bytes());
    push_len_prefixed(&mut key, &item.kernel.structural_key());
    let mut sizes: Vec<(&String, &i64)> = item.sizes.iter().collect();
    sizes.sort_by(|a, b| a.0.cmp(b.0));
    key.extend_from_slice(&(sizes.len() as u32).to_le_bytes());
    for (name, n) in sizes {
        push_len_prefixed(&mut key, name.as_bytes());
        key.extend_from_slice(&n.to_le_bytes());
    }
    key.extend_from_slice(&options.cache_elems.to_bits().to_le_bytes());
    key.push(u8::from(options.numeric));
    key.push(u8::from(options.certify));
    key
}

/// Whether a row is eligible for persistence: the disk tier stores only
/// fully exact, error-free results (satellite invariant; degraded
/// bounds are sound but weaker than a fresh run could produce).
fn storable(row: &BatchRow) -> bool {
    row.status == Status::Exact && row.error.is_none()
}

/// Looks up a finished row on disk. Any imperfection — no store, store
/// miss, undecodable value, or a row that should never have been
/// persisted — is a miss; the caller just recomputes.
pub(crate) fn lookup(item: &BatchItem, options: &BatchOptions) -> Option<BatchRow> {
    let store = current()?;
    let bytes = store.get(&row_key(item, options))?;
    let text = std::str::from_utf8(&bytes).ok()?;
    let row = BatchRow::from_json_value(&Json::parse(text).ok()?).ok()?;
    if !storable(&row) {
        return None;
    }
    Some(row)
}

/// Write-through: persists an exact row after computation. Non-exact
/// rows and uninstalled stores are silent no-ops.
pub(crate) fn persist(item: &BatchItem, options: &BatchOptions, row: &BatchRow) {
    if !storable(row) {
        return;
    }
    let Some(store) = current() else {
        return;
    };
    store.put(
        &row_key(item, options),
        row.to_json_value().render().as_bytes(),
    );
}
