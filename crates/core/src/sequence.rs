//! Sequences of kernels (imperfectly nested programs, §3.1).
//!
//! The paper's algorithms operate on one fully tilable band at a time; a
//! whole program is a *sequence* of such bands. Bounds compose soundly:
//!
//! * **Upper bound**: run the statements one after another with their own
//!   optimal tilings — `UB = Σ_k UB_k` (a valid schedule).
//! * **Lower bound**: any pebble game on the composite CDAG induces a
//!   partition of each statement's sub-CDAG, so every statement's
//!   *partition* bound still applies: `LB ≥ max_k partition_k`. The
//!   per-statement *trivial* bounds do **not** compose (an intermediate
//!   array produced by statement `k` may still sit in fast memory when
//!   statement `k+1` reads it), so the composite trivial term only counts
//!   program-level inputs (arrays read before ever being written) and
//!   final outputs.

use std::collections::{HashMap, HashSet};

use ioopt_ir::Kernel;
use ioopt_symbolic::Symbol;

use crate::analysis::{analyze, Analysis, AnalysisOptions, AnalyzeError};

/// The bounds of a kernel sequence.
#[derive(Debug, Clone)]
pub struct SequenceAnalysis {
    /// Per-statement analyses, in program order.
    pub per_kernel: Vec<Analysis>,
    /// Composite lower bound (see module docs).
    pub lb: f64,
    /// Composite upper bound `Σ UB_k`.
    pub ub: f64,
    /// The composite trivial term: program inputs + final outputs.
    pub boundary_traffic: f64,
}

/// Analyzes a sequence of kernels sharing one size binding.
///
/// Arrays are matched by name across statements: an array written by an
/// earlier statement and read by a later one is an *intermediate* and is
/// excluded from the composite compulsory-traffic term.
///
/// # Errors
///
/// Propagates [`AnalyzeError`] from any statement.
pub fn analyze_sequence(
    kernels: &[Kernel],
    sizes: &HashMap<String, i64>,
    options: &AnalysisOptions,
) -> Result<SequenceAnalysis, AnalyzeError> {
    let mut per_kernel = Vec::with_capacity(kernels.len());
    let mut ub = 0.0;
    let mut partition_lb: f64 = 0.0;
    for kernel in kernels {
        let a = analyze(kernel, sizes, options)?;
        ub += a.ub;
        // Partition terms only: evaluate each scenario bound.
        let mut env = kernel.bind_sizes(sizes);
        env.insert(Symbol::new("S"), options.cache_elems);
        for sc in &a.lower.scenarios {
            if let Ok(v) = sc.bound.eval_f64(&env) {
                partition_lb = partition_lb.max(v);
            }
        }
        per_kernel.push(a);
    }
    // Program-level boundary traffic: arrays read before ever written,
    // plus arrays written (final or not — every written array must be
    // stored at least... loads-only model: count program inputs only)
    // and the outputs of the *last* writers are counted as compulsory
    // loads only if also read later; keep the sound version: inputs only.
    let mut written: HashSet<String> = HashSet::new();
    let mut boundary = 0.0;
    let mut seen_input: HashSet<String> = HashSet::new();
    for kernel in kernels {
        let env = kernel.bind_sizes(sizes);
        for a in kernel.arrays() {
            let is_output = std::ptr::eq(a, kernel.output());
            if !is_output && !written.contains(&a.name) && seen_input.insert(a.name.clone()) {
                if let Ok(v) = kernel.array_size_lower(a).eval_f64(&env) {
                    boundary += v;
                }
            }
        }
        written.insert(kernel.output().name.clone());
    }
    let lb = partition_lb.max(boundary);
    Ok(SequenceAnalysis {
        per_kernel,
        lb,
        ub,
        boundary_traffic: boundary,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ioopt_ir::parse;

    fn chained_matmuls() -> Vec<Kernel> {
        parse(
            "kernel first {
                loop i : Ni; loop j : Nj; loop k : Nk;
                C[i][j] += A[i][k] * B[k][j];
            }
            kernel second {
                loop i : Ni; loop j : Nj; loop k : Nk;
                E[i][k] += C[i][j] * D[j][k];
            }",
        )
        .expect("parses")
    }

    #[test]
    fn sequence_bounds_are_consistent() {
        let kernels = chained_matmuls();
        let sizes = HashMap::from([
            ("i".to_string(), 128i64),
            ("j".to_string(), 128),
            ("k".to_string(), 128),
        ]);
        let seq = analyze_sequence(&kernels, &sizes, &AnalysisOptions::with_cache(1024.0))
            .expect("analyzes");
        assert_eq!(seq.per_kernel.len(), 2);
        assert!(seq.lb > 0.0);
        assert!(seq.lb <= seq.ub, "lb {} > ub {}", seq.lb, seq.ub);
        // The composite UB is the sum of the parts.
        let sum: f64 = seq.per_kernel.iter().map(|a| a.ub).sum();
        assert_eq!(seq.ub, sum);
        // Each statement's partition bound individually holds.
        for a in &seq.per_kernel {
            assert!(seq.ub >= a.lb * 0.5, "statement LB unexpectedly dominant");
        }
    }

    #[test]
    fn intermediates_excluded_from_boundary() {
        let kernels = chained_matmuls();
        let sizes = HashMap::from([
            ("i".to_string(), 64i64),
            ("j".to_string(), 64),
            ("k".to_string(), 64),
        ]);
        let seq = analyze_sequence(&kernels, &sizes, &AnalysisOptions::with_cache(100_000.0))
            .expect("analyzes");
        // Program inputs: A, B (first), D (second) — C is an
        // intermediate; 3 × 64² = 12288.
        assert_eq!(seq.boundary_traffic, 3.0 * 64.0 * 64.0);
    }
}
