//! The analysis service: the request schema and dispatch shared by
//! `ioopt serve`, the conformance/stress tests, and the loadgen bench.
//!
//! A service request names kernels — builtin corpus entries or inline
//! DSL source — plus the same knobs `ioopt batch` takes (`sizes`,
//! `cache`, `symbolic_only`, `timeout_ms`, `max_steps`), and the
//! response body is **exactly** the bytes `ioopt batch --json` would
//! print for the same inputs: both paths funnel through
//! [`crate::run_batch`] and [`crate::BatchReport::to_json`], so the
//! serving layer can never perturb an analysis result. The one thing
//! the service adds is scoping: each request runs inside its own
//! [`Budget`] deadline (rows inherit the remaining window), its own
//! `serve.request` span, and the process-lifetime memo cache.
//!
//! File paths are deliberately **not** accepted over the wire — a
//! served analysis may only name builtins or carry its source inline.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use ioopt_engine::{obs, Budget, Json};
use ioopt_serve::{Request, Response};

use crate::batch::{builtin_corpus, corpus_item, run_batch, BatchItem, BatchOptions, BatchReport};

/// Server-side defaults applied when a request omits an option.
#[derive(Debug, Clone)]
pub struct ServiceDefaults {
    /// Fast-memory capacity `S` when the request has no `cache` field
    /// (matches the single-kernel CLI default).
    pub cache_elems: f64,
    /// Per-request wall-clock budget when the request has no
    /// `timeout_ms`; `None` leaves requests unbounded.
    pub timeout_ms: Option<u64>,
    /// Upper bound on kernels per request (`builtin:all` counts 19).
    pub max_kernels: usize,
}

impl Default for ServiceDefaults {
    fn default() -> ServiceDefaults {
        ServiceDefaults {
            cache_elems: 4096.0,
            timeout_ms: None,
            max_kernels: 64,
        }
    }
}

/// One kernel named by a request.
#[derive(Debug, Clone, PartialEq)]
pub enum KernelSpec {
    /// A builtin name (`"builtin:matmul"`, `"builtin:all"`, a TCCG spec,
    /// a Yolo9000 layer) — the string keeps its `builtin:` prefix off.
    Builtin(String),
    /// Inline DSL source, parsed server-side.
    Inline {
        /// The kernel DSL text.
        source: String,
    },
}

/// A parsed `/analyze` request body.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceRequest {
    /// The kernels to analyze, in request order.
    pub kernels: Vec<KernelSpec>,
    /// Size overrides applied to every kernel (on top of corpus or
    /// annotated defaults).
    pub sizes: HashMap<String, i64>,
    /// Fast-memory capacity `S`; server default when absent.
    pub cache_elems: Option<f64>,
    /// Skip the numeric TileOpt pipeline (mirrors `--symbolic-only`).
    pub symbolic_only: bool,
    /// Wall-clock budget for the whole request, milliseconds.
    pub timeout_ms: Option<u64>,
    /// Per-kernel analysis step budget (mirrors `--max-steps`).
    pub max_steps: Option<u64>,
    /// Attach proof-carrying certificates to every row (mirrors
    /// `--certify`; see `ioopt audit`).
    pub certify: bool,
}

/// A request rejection: the HTTP status to answer with and the message
/// for the structured JSON error body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceError {
    /// HTTP status code (always 4xx from this module).
    pub status: u16,
    /// Human-readable reason.
    pub message: String,
}

impl ServiceError {
    fn bad(message: impl Into<String>) -> ServiceError {
        ServiceError {
            status: 400,
            message: message.into(),
        }
    }
}

impl ServiceRequest {
    /// Parses a request body. Strict: unknown fields are rejected so a
    /// client typo (`"symbolic"` for `"symbolic_only"`) fails loudly
    /// instead of silently changing semantics.
    ///
    /// # Errors
    ///
    /// A 400 [`ServiceError`] naming the offending field.
    pub fn from_json(v: &Json) -> Result<ServiceRequest, ServiceError> {
        let Json::Object(pairs) = v else {
            return Err(ServiceError::bad("request body must be a JSON object"));
        };
        let mut request = ServiceRequest {
            kernels: Vec::new(),
            sizes: HashMap::new(),
            cache_elems: None,
            symbolic_only: false,
            timeout_ms: None,
            max_steps: None,
            certify: false,
        };
        for (key, value) in pairs {
            match key.as_str() {
                "kernels" => {
                    let entries = value
                        .as_array()
                        .ok_or_else(|| ServiceError::bad("`kernels` must be an array"))?;
                    for entry in entries {
                        request.kernels.push(parse_kernel_spec(entry)?);
                    }
                }
                "sizes" => {
                    let Json::Object(sizes) = value else {
                        return Err(ServiceError::bad("`sizes` must be an object"));
                    };
                    for (name, size) in sizes {
                        let n = size
                            .as_f64()
                            .filter(|n| n.fract() == 0.0 && *n >= 1.0 && *n <= i64::MAX as f64)
                            .ok_or_else(|| {
                                ServiceError::bad(format!(
                                    "size `{name}` must be a positive integer"
                                ))
                            })?;
                        request.sizes.insert(name.clone(), n as i64);
                    }
                }
                "cache" => {
                    request.cache_elems = Some(
                        value
                            .as_f64()
                            .filter(|c| c.is_finite() && *c > 0.0)
                            .ok_or_else(|| {
                                ServiceError::bad("`cache` must be a positive number of elements")
                            })?,
                    );
                }
                "symbolic_only" => {
                    request.symbolic_only = match value {
                        Json::Bool(b) => *b,
                        _ => return Err(ServiceError::bad("`symbolic_only` must be a boolean")),
                    };
                }
                "timeout_ms" => {
                    request.timeout_ms = Some(positive_int(value, "timeout_ms")?);
                }
                "max_steps" => {
                    request.max_steps = Some(positive_int(value, "max_steps")?);
                }
                "certify" => {
                    request.certify = match value {
                        Json::Bool(b) => *b,
                        _ => return Err(ServiceError::bad("`certify` must be a boolean")),
                    };
                }
                other => {
                    return Err(ServiceError::bad(format!(
                        "unknown request field `{other}`"
                    )));
                }
            }
        }
        if request.kernels.is_empty() {
            return Err(ServiceError::bad(
                "request must name at least one kernel in `kernels`",
            ));
        }
        Ok(request)
    }

    /// The canonical rendering of this request: fixed field order,
    /// `sizes` sorted by dimension name, absent options omitted — so
    /// parse→render→parse is a fixpoint (the schema round-trip test).
    pub fn to_json(&self) -> Json {
        let mut pairs: Vec<(String, Json)> = Vec::new();
        pairs.push((
            "kernels".to_string(),
            Json::Array(
                self.kernels
                    .iter()
                    .map(|spec| match spec {
                        KernelSpec::Builtin(name) => Json::str(format!("builtin:{name}")),
                        KernelSpec::Inline { source } => {
                            Json::obj([("source", Json::str(source.clone()))])
                        }
                    })
                    .collect(),
            ),
        ));
        if !self.sizes.is_empty() {
            let mut sizes: Vec<(&String, &i64)> = self.sizes.iter().collect();
            sizes.sort_by(|a, b| a.0.cmp(b.0));
            pairs.push((
                "sizes".to_string(),
                Json::Object(
                    sizes
                        .into_iter()
                        .map(|(name, size)| (name.clone(), Json::Int(*size)))
                        .collect(),
                ),
            ));
        }
        if let Some(cache) = self.cache_elems {
            pairs.push(("cache".to_string(), Json::Num(cache)));
        }
        if self.symbolic_only {
            pairs.push(("symbolic_only".to_string(), Json::Bool(true)));
        }
        if let Some(ms) = self.timeout_ms {
            pairs.push(("timeout_ms".to_string(), Json::Int(ms as i64)));
        }
        if let Some(steps) = self.max_steps {
            pairs.push(("max_steps".to_string(), Json::Int(steps as i64)));
        }
        if self.certify {
            pairs.push(("certify".to_string(), Json::Bool(true)));
        }
        Json::Object(pairs)
    }
}

fn positive_int(value: &Json, field: &str) -> Result<u64, ServiceError> {
    value
        .as_i64()
        .filter(|n| *n >= 0)
        .map(|n| n as u64)
        .ok_or_else(|| ServiceError::bad(format!("`{field}` must be a non-negative integer")))
}

fn parse_kernel_spec(entry: &Json) -> Result<KernelSpec, ServiceError> {
    match entry {
        Json::Str(s) => {
            let name = s.strip_prefix("builtin:").ok_or_else(|| {
                ServiceError::bad(format!(
                    "kernel `{s}`: only `builtin:NAME` strings are served; \
                     send DSL source inline as {{\"source\": ...}}"
                ))
            })?;
            Ok(KernelSpec::Builtin(name.to_string()))
        }
        Json::Object(_) => {
            let source = entry
                .get("source")
                .and_then(Json::as_str)
                .ok_or_else(|| ServiceError::bad("inline kernel needs a string `source` field"))?;
            if let Json::Object(pairs) = entry {
                if let Some((key, _)) = pairs.iter().find(|(k, _)| k != "source") {
                    return Err(ServiceError::bad(format!(
                        "unknown inline-kernel field `{key}`"
                    )));
                }
            }
            Ok(KernelSpec::Inline {
                source: source.to_string(),
            })
        }
        _ => Err(ServiceError::bad(
            "each kernel must be a `builtin:NAME` string or a {\"source\": ...} object",
        )),
    }
}

/// Resolves a request into concrete batch items: expands `builtin:all`,
/// attaches corpus sizes, parses inline source, applies the request's
/// size overrides, and checks every loop dimension has a size.
///
/// # Errors
///
/// A 400 [`ServiceError`] for unknown builtins, parse failures, missing
/// dimension sizes, or a request exceeding
/// [`ServiceDefaults::max_kernels`].
pub fn service_items(
    request: &ServiceRequest,
    defaults: &ServiceDefaults,
) -> Result<Vec<BatchItem>, ServiceError> {
    let mut items: Vec<BatchItem> = Vec::new();
    for spec in &request.kernels {
        match spec {
            KernelSpec::Builtin(name) if name == "all" => {
                items.extend(builtin_corpus());
            }
            KernelSpec::Builtin(name) => {
                let item = corpus_item(name)
                    .ok_or_else(|| ServiceError::bad(format!("unknown builtin `{name}`")))?;
                items.push(item);
            }
            KernelSpec::Inline { source } => {
                let kernel = ioopt_ir::parse_kernel(source)
                    .map_err(|e| ServiceError::bad(e.render(source)))?;
                let sizes = kernel.default_sizes().unwrap_or_default();
                items.push(BatchItem {
                    label: kernel.name().to_string(),
                    kernel,
                    sizes,
                });
            }
        }
    }
    for item in &mut items {
        for (name, size) in &request.sizes {
            item.sizes.insert(name.clone(), *size);
        }
        for d in item.kernel.dims() {
            if !item.sizes.contains_key(&d.name) {
                return Err(ServiceError::bad(format!(
                    "kernel `{}`: missing size for loop dimension `{}`",
                    item.label, d.name
                )));
            }
        }
    }
    if items.len() > defaults.max_kernels {
        return Err(ServiceError::bad(format!(
            "request names {} kernels; this server caps a request at {}",
            items.len(),
            defaults.max_kernels
        )));
    }
    Ok(items)
}

/// Runs a resolved request on the shared batch machinery inside a
/// per-request budget scope and a `serve.request` span. The returned
/// report renders to the same bytes `ioopt batch --json` prints.
pub fn run_service(
    request: &ServiceRequest,
    items: &[BatchItem],
    defaults: &ServiceDefaults,
) -> BatchReport {
    let options = BatchOptions {
        cache_elems: request.cache_elems.unwrap_or(defaults.cache_elems),
        jobs: 1,
        memo: true,
        numeric: !request.symbolic_only,
        timeout_ms: request.timeout_ms.or(defaults.timeout_ms),
        max_steps: request.max_steps,
        fail_fast: false,
        certify: request.certify,
    };
    // One budget per request: every row's own deadline is capped by the
    // window this request has left (see `row_budget`), so a 19-kernel
    // request cannot spend 19 full timeouts.
    let budget = match options.timeout_ms {
        Some(ms) => Budget::with_limits(Some(Duration::from_millis(ms)), None, None),
        None => Budget::counting(),
    };
    let _scope = budget.enter();
    let _span = obs::span("serve.request");
    run_batch(items, &options)
}

/// The full `/analyze` path: parse the body, resolve items, run, render.
///
/// # Errors
///
/// A [`ServiceError`] carrying the HTTP status for malformed or
/// rejected requests.
pub fn handle_analyze(body: &str, defaults: &ServiceDefaults) -> Result<String, ServiceError> {
    let value = Json::parse(body)
        .map_err(|e| ServiceError::bad(format!("request is not valid JSON: {e}")))?;
    let request = ServiceRequest::from_json(&value)?;
    let items = service_items(&request, defaults)?;
    let report = run_service(&request, &items, defaults);
    // Exactly the bytes `ioopt batch --json` prints: report + newline.
    Ok(format!("{}\n", report.to_json()))
}

/// The shard-routing hash for an `/analyze` request body: a pure,
/// deterministic function of the kernels the request *means*, not the
/// bytes it happens to arrive as.
///
/// The router reduces this `% shards` to pick the partition owner, so
/// the hash must depend only on structural identity — the same
/// properties the memo cache keys on. Per kernel spec:
///
/// - `builtin:all` hashes as the literal string (the whole corpus is
///   one logical request; splitting it per-kernel would make a
///   multi-kernel body unroutable, since one response serves them all),
/// - a named builtin hashes its kernel's
///   [`structural_key`](ioopt_ir::Kernel::structural_key),
/// - inline source hashes its parsed kernel's structural key,
///
/// with the raw name/source bytes as the fallback for anything that
/// does not resolve (unknown builtin, unparseable source) — such
/// requests still route *somewhere*, stably, and the owning shard
/// produces the 400. A body that is not valid JSON hashes its raw
/// bytes for the same reason. Tests and the loadgen bench recompute
/// this to predict each kernel's owner.
pub fn route_hash(body: &str) -> u64 {
    let mut hasher = ioopt_engine::StableHasher::new();
    let request = Json::parse(body)
        .ok()
        .and_then(|v| ServiceRequest::from_json(&v).ok());
    let Some(request) = request else {
        hasher.write(body.as_bytes());
        return hasher.finish();
    };
    for spec in &request.kernels {
        match spec {
            KernelSpec::Builtin(name) if name == "all" => hasher.write(b"builtin:all"),
            KernelSpec::Builtin(name) => match corpus_item(name) {
                Some(item) => hasher.write(&item.kernel.structural_key()),
                None => hasher.write(name.as_bytes()),
            },
            KernelSpec::Inline { source } => match ioopt_ir::parse_kernel(source) {
                Ok(kernel) => hasher.write(&kernel.structural_key()),
                Err(_) => hasher.write(source.as_bytes()),
            },
        }
    }
    hasher.finish()
}

/// Builds the HTTP handler `ioopt serve` mounts: `POST /analyze` runs
/// [`handle_analyze`]; everything else is 404/405. Internal routes
/// (`/healthz`, `/metrics`, `/shutdown`) are handled by the serving
/// layer before this handler is consulted.
pub fn analysis_handler(
    defaults: ServiceDefaults,
) -> Arc<dyn Fn(&Request) -> Response + Send + Sync> {
    Arc::new(
        move |request: &Request| match (request.method.as_str(), request.path.as_str()) {
            ("POST", "/analyze") => {
                let body = match request.body_utf8() {
                    Ok(body) => body,
                    Err(e) => return Response::error(e.status, &e.message),
                };
                match handle_analyze(body, &defaults) {
                    Ok(rendered) => Response::json_raw(200, rendered),
                    Err(e) => Response::error(e.status, &e.message),
                }
            }
            (_, "/analyze") => Response::error(405, "use POST /analyze"),
            _ => Response::error(404, "unknown path; the API is POST /analyze"),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(body: &str) -> Result<ServiceRequest, ServiceError> {
        ServiceRequest::from_json(&Json::parse(body).expect("test body is valid JSON"))
    }

    #[test]
    fn request_parses_and_renders_canonically() {
        let body = r#"{"kernels":["builtin:matmul",{"source":"kernel k { loop i : N = 4; A[i] += B[i]; }"}],"sizes":{"j":8,"i":4},"cache":1024.0,"symbolic_only":true,"timeout_ms":500}"#;
        let request = parse(body).expect("parses");
        assert_eq!(request.kernels.len(), 2);
        assert_eq!(
            request.kernels[0],
            KernelSpec::Builtin("matmul".to_string())
        );
        assert_eq!(request.sizes.get("i"), Some(&4));
        assert!(request.symbolic_only);
        // Canonical render sorts sizes and keeps field order fixed.
        let rendered = request.to_json().render();
        let again = ServiceRequest::from_json(&Json::parse(&rendered).unwrap()).unwrap();
        assert_eq!(again, request);
        assert_eq!(again.to_json().render(), rendered, "render is a fixpoint");
    }

    #[test]
    fn strict_parsing_rejects_bad_shapes() {
        assert!(parse(r#"{"kernels":[]}"#).is_err(), "empty kernels");
        assert!(
            parse(r#"{"kernels":["matmul"]}"#).is_err(),
            "no builtin: prefix"
        );
        assert!(parse(r#"{"kernels":["builtin:matmul"],"symbolic":true}"#).is_err());
        assert!(
            parse(r#"{"kernels":[{"src":"x"}]}"#).is_err(),
            "bad inline key"
        );
        assert!(parse(r#"{"kernels":["builtin:matmul"],"sizes":{"i":0}}"#).is_err());
        assert!(parse(r#"{"kernels":["builtin:matmul"],"cache":-1}"#).is_err());
        let err = parse(r#"{"kernels":["/etc/passwd"]}"#).expect_err("no file paths");
        assert_eq!(err.status, 400);
        assert!(err.message.contains("builtin:NAME"), "{}", err.message);
    }

    #[test]
    fn items_resolve_builtins_and_inline_source() {
        let defaults = ServiceDefaults::default();
        let request = parse(
            r#"{"kernels":["builtin:all",{"source":"kernel tiny { loop i : N = 8; loop j : M = 8; A[i] += B[j]; }"}]}"#,
        )
        .unwrap();
        let items = service_items(&request, &defaults).expect("resolves");
        assert_eq!(items.len(), 20, "19 corpus + inline");
        assert_eq!(items[19].label, "tiny");
        assert_eq!(items[19].sizes.get("i"), Some(&8));
        // A classic builtin has no default sizes: the request supplies
        // them (and without them the dim-coverage check answers 400).
        let classic =
            parse(r#"{"kernels":["builtin:matmul"],"sizes":{"i":64,"j":64,"k":64}}"#).unwrap();
        let items = service_items(&classic, &defaults).expect("sized classic resolves");
        assert_eq!(items[0].sizes.len(), 3);
        let unsized_classic = parse(r#"{"kernels":["builtin:matmul"]}"#).unwrap();
        assert!(service_items(&unsized_classic, &defaults).is_err());

        let unknown = parse(r#"{"kernels":["builtin:nope"]}"#).unwrap();
        assert!(service_items(&unknown, &defaults).is_err());
        let bad_src = parse(r#"{"kernels":[{"source":"kernel {"}]}"#).unwrap();
        assert!(service_items(&bad_src, &defaults).is_err());
        let no_sizes =
            parse(r#"{"kernels":[{"source":"kernel k { loop i : N; A[i] += B[i]; }"}]}"#).unwrap();
        let err = service_items(&no_sizes, &defaults).expect_err("missing dimension size");
        assert!(err.message.contains("missing size"), "{}", err.message);

        let capped = ServiceDefaults {
            max_kernels: 3,
            ..ServiceDefaults::default()
        };
        let err = service_items(&request, &capped).expect_err("over the kernel cap");
        assert!(err.message.contains("caps a request"), "{}", err.message);
    }

    #[test]
    fn certify_flag_round_trips_and_attaches_certificates() {
        let body = r#"{"kernels":["builtin:matmul"],"sizes":{"i":8,"j":8,"k":8},"cache":64.0,"symbolic_only":true,"certify":true}"#;
        let request = parse(body).expect("parses");
        assert!(request.certify);
        let rendered = request.to_json().render();
        assert!(rendered.ends_with(r#""certify":true}"#), "{rendered}");
        let again = ServiceRequest::from_json(&Json::parse(&rendered).unwrap()).unwrap();
        assert_eq!(again, request);
        assert!(
            parse(r#"{"kernels":["builtin:matmul"],"certify":1}"#).is_err(),
            "certify must be boolean"
        );
        // A certified served report carries an auditable block per row.
        let served = handle_analyze(body, &ServiceDefaults::default()).expect("analyzes");
        let report = Json::parse(served.trim()).unwrap();
        let rows = report.get("kernels").and_then(Json::as_array).unwrap();
        assert!(
            rows[0].get("certificate").is_some(),
            "certified rows carry a certificate block"
        );
        let audit = crate::certificate::audit_report(&report).expect("audits");
        assert!(audit.accepted(), "{:?}", audit.results);
    }

    #[test]
    fn route_hash_tracks_kernel_identity_not_body_bytes() {
        // Same kernel, different option noise → same partition owner.
        let a =
            route_hash(r#"{"kernels":["builtin:ab-ac-cb"],"cache":32768,"symbolic_only":true}"#);
        let b = route_hash(r#"{"cache":1024, "kernels": ["builtin:ab-ac-cb"]}"#);
        assert_eq!(
            a, b,
            "options and formatting must not move a kernel's shard"
        );
        // Different kernels land on different hashes (the corpus would be
        // useless for balance tests otherwise).
        let c = route_hash(r#"{"kernels":["builtin:abc-bda-dc"]}"#);
        assert_ne!(a, c);
        // builtin:all is one logical unit, not the fold of its members.
        let all = route_hash(r#"{"kernels":["builtin:all"]}"#);
        assert_ne!(all, a);
        assert_eq!(all, route_hash(r#"{"kernels":["builtin:all"],"cache":1}"#));
        // Inline source routes by structural key: renaming the kernel
        // label alone must not change the hash any differently than the
        // structural key does — and at minimum it is deterministic.
        let src = r#"{"kernels":[{"source":"kernel k { loop i : N = 8; A[i] += B[i]; }"}]}"#;
        assert_eq!(route_hash(src), route_hash(src));
        // Garbage still routes stably (the owning shard answers the 400).
        assert_eq!(route_hash("not json"), route_hash("not json"));
        assert_ne!(route_hash("not json"), route_hash("also not json"));
    }

    #[test]
    fn served_report_matches_batch_bytes() {
        let defaults = ServiceDefaults::default();
        let body = r#"{"kernels":["builtin:matmul"],"sizes":{"i":64,"j":64,"k":64},"cache":1024.0,"symbolic_only":true}"#;
        let served = handle_analyze(body, &defaults).expect("analyzes");
        // The same inputs through the batch entry point directly.
        let request = parse(body).unwrap();
        let items = service_items(&request, &defaults).unwrap();
        let report = run_batch(
            &items,
            &BatchOptions {
                cache_elems: 1024.0,
                numeric: false,
                ..BatchOptions::default()
            },
        );
        assert_eq!(served, format!("{}\n", report.to_json()));
    }
}
