//! # Tutorial: the paper's §2 walkthrough, executable
//!
//! This module contains no items — it is a guided tour of the pipeline
//! using matrix multiplication (the paper's running overview example),
//! with every step checked as a doctest.
//!
//! ## 1. Describe the program
//!
//! The input is a fully tilable affine kernel (paper Listing 1):
//!
//! ```
//! use ioopt::ir::parse_kernel;
//! let kernel = parse_kernel(
//!     "kernel matmul {
//!         loop i : Ni;
//!         loop j : Nj;
//!         loop k : Nk;
//!         C[i][j] += A[i][k] * B[k][j];
//!     }",
//! )?;
//! assert_eq!(kernel.arith_complexity().to_string(), "Ni*Nj*Nk");
//! // The reduction over k is detected automatically (§5.3).
//! assert_eq!(kernel.reduced_dims().len(), 1);
//! # Ok::<(), ioopt::ir::ParseError>(())
//! ```
//!
//! ## 2. The upper-bound cost model (IOUB, §4)
//!
//! Pick Listing 1's tiling — permutation `(i, j, k)` with `Tk = 1` — and
//! the model reproduces the paper's cost and footprint *exactly*:
//!
//! ```
//! use ioopt::ioub::{cost_with_levels, TilingSchedule};
//! use ioopt::ir::kernels;
//! let kernel = kernels::matmul();
//! let sched = TilingSchedule::parametric(&kernel, &["i", "j", "k"])
//!     .expect("valid permutation")
//!     .pin_one(&kernel, "k");
//! let cost = cost_with_levels(&kernel, &sched, &[1, 1, 1]);
//! assert_eq!(
//!     cost.io.to_string(),
//!     "Ni*Nj + Ni*Nj*Nk/Ti + Ni*Nj*Nk/Tj"   // = Ni·Nj·Nk(1/Ti + 1/Tj + 1/Nk)
//! );
//! assert_eq!(cost.footprint.to_string(), "Ti + Tj + Ti*Tj");
//! ```
//!
//! ## 3. TileOpt: numeric tile selection
//!
//! At `Ni = 2000, Nj = Nk = 1500, S = 1024` the optimizer lands on the
//! paper's `Ti = Tj = 31`:
//!
//! ```
//! use ioopt::ioub::TilingSchedule;
//! use ioopt::ir::kernels;
//! use ioopt::tileopt::{optimize_schedule, TileOptConfig};
//! use std::collections::HashMap;
//! let kernel = kernels::matmul();
//! let sizes = HashMap::from([
//!     ("i".to_string(), 2000i64),
//!     ("j".to_string(), 1500),
//!     ("k".to_string(), 1500),
//! ]);
//! let sched = TilingSchedule::parametric(&kernel, &["i", "j", "k"]).unwrap();
//! let config = TileOptConfig { cache_elems: 1024.0, max_level_combos: 64, ..Default::default() };
//! let env = kernel.bind_sizes(&sizes);
//! let rec = optimize_schedule(&kernel, &sched, &env, &sizes, &config)
//!     .expect("no evaluation error")
//!     .expect("feasible");
//! assert_eq!((rec.tiles["i"], rec.tiles["j"], rec.tiles["k"]), (31, 31, 1));
//! ```
//!
//! ## 4. The closed-form symbolic upper bound (§6)
//!
//! Assume square tiles filling the cache (`T² + 2T = S`) and eliminate:
//!
//! ```
//! use ioopt::ir::kernels;
//! use ioopt::symbolic_tc_ub;
//! let mm = kernels::tensor_contraction("mm", "ab-ac-cb");
//! let ub = symbolic_tc_ub(&mm).expect("matmul is a contraction");
//! assert_eq!(ub.delta.to_string(), "(S + 1)^(1/2) - 1");
//! assert_eq!(
//!     ub.bound.to_string(),
//!     "2*A*B*C/((S + 1)^(1/2) - 1) + B*C"
//! );
//! ```
//!
//! ## 5. The lower bound (IOLB, §5)
//!
//! The Brascamp-Lieb system solves at `s = (1/2, 1/2, 1/2)`, `σ = 3/2`,
//! and the partition argument yields the `2·N³/√S` bound of [Smith et
//! al.] that the paper quotes:
//!
//! ```
//! use ioopt::iolb::{extract_homs, solve_bl, HomOptions};
//! use ioopt::ir::kernels;
//! use ioopt::symbolic_lb;
//! use ioopt::symbolic::Rational;
//! let kernel = kernels::matmul();
//! let homs = extract_homs(&kernel, &HomOptions::default());
//! let sol = solve_bl(&homs, 3).expect("solvable");
//! assert_eq!(sol.sigma, Rational::new(3, 2));
//!
//! let report = symbolic_lb(&kernel)?;
//! let v = report.combined.eval_with(&[
//!     ("Ni", 1000.0), ("Nj", 1000.0), ("Nk", 1000.0), ("S", 1024.0),
//! ]).unwrap();
//! let dominant = 2.0 * 1000.0f64.powi(3) / 32.0;
//! assert!(v > 0.9 * dominant);
//! # Ok::<(), ioopt::AnalyzeError>(())
//! ```
//!
//! ## 6. Everything at once
//!
//! [`crate::analyze`] chains the steps and certifies tightness:
//!
//! ```
//! use ioopt::{analyze, AnalysisOptions};
//! use ioopt::ir::kernels;
//! use std::collections::HashMap;
//! let sizes = HashMap::from([
//!     ("i".to_string(), 2000i64),
//!     ("j".to_string(), 1500),
//!     ("k".to_string(), 1500),
//! ]);
//! let a = analyze(&kernels::matmul(), &sizes, &AnalysisOptions::with_cache(1024.0))?;
//! assert!(a.lb <= a.ub);
//! assert!(a.tightness < 1.1); // provably within 10% of optimal I/O
//! assert!(a.tiled_code.contains("C[i][j] += A[i][k] * B[k][j];"));
//! # Ok::<(), ioopt::AnalyzeError>(())
//! ```
//!
//! ## Where to go next
//!
//! * [`crate::symbolic_conv_ub`] — closed forms for convolutions;
//! * [`crate::analyze_sequence`] — multi-statement programs;
//! * [`crate::cachesim`] — replay a recommendation through the simulator;
//! * [`crate::cdag`] — check the bounds against exact pebbling on tiny
//!   instances.
