//! Resource governance for long-running analyses.
//!
//! The IOOpt pipeline contains several worst-case exponential searches
//! (Algorithm 1 permutation enumeration, tile-size grid search,
//! Fourier–Motzkin elimination, Brascamp–Lieb subgroup enumeration). A
//! [`Budget`] is a cheap, cloneable handle threaded through those hot
//! loops; each loop calls [`Budget::step`] at iteration granularity and
//! bails out with an [`Exhaustion`] the moment the wall-clock deadline,
//! step count, or memory high-water estimate is exceeded — or when the
//! budget is [cancelled](Budget::cancel) from another thread.
//!
//! Exhaustion is *sticky*: once any check fails, every later check on
//! any clone of the same budget fails with the first recorded cause, so
//! a pipeline unwinds promptly instead of limping from stage to stage.
//!
//! The default budget is unlimited and checks are near-free (a single
//! `Option` test), so governed code paths cost nothing when no limit is
//! set.
//!
//! # Ambient budgets
//!
//! Plumbing a budget through every signature of a deep call tree is
//! invasive, so the module also offers a thread-local *ambient* budget:
//! [`Budget::enter`] installs a budget for the current scope (restoring
//! the previous one on drop) and [`Budget::ambient`] reads it.
//! [`crate::par_map`] propagates the caller's ambient budget into its
//! worker threads, so governed leaf code observes the same budget on
//! every thread of a fan-out.

use std::cell::RefCell;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a budget stopped the computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Exhaustion {
    /// The wall-clock deadline passed.
    Deadline,
    /// The step counter exceeded the configured maximum.
    Steps,
    /// The tracked memory estimate exceeded the configured maximum.
    Memory,
    /// [`Budget::cancel`] was called.
    Cancelled,
}

impl Exhaustion {
    fn code(self) -> u8 {
        match self {
            Exhaustion::Deadline => 1,
            Exhaustion::Steps => 2,
            Exhaustion::Memory => 3,
            Exhaustion::Cancelled => 4,
        }
    }

    fn from_code(code: u8) -> Option<Exhaustion> {
        match code {
            1 => Some(Exhaustion::Deadline),
            2 => Some(Exhaustion::Steps),
            3 => Some(Exhaustion::Memory),
            4 => Some(Exhaustion::Cancelled),
            _ => None,
        }
    }
}

impl fmt::Display for Exhaustion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Exhaustion::Deadline => write!(f, "wall-clock deadline exceeded"),
            Exhaustion::Steps => write!(f, "step budget exhausted"),
            Exhaustion::Memory => write!(f, "memory budget exhausted"),
            Exhaustion::Cancelled => write!(f, "analysis cancelled"),
        }
    }
}

/// Outcome quality of a governed analysis, carried by every report row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Status {
    /// Every stage ran to completion; the bounds are the exact model
    /// answers.
    Exact,
    /// At least one stage hit a resource limit (or an arithmetic
    /// overflow) and fell back to a sound but weaker answer.
    Degraded,
    /// The analysis produced no result (error or contained panic).
    Failed,
}

impl Status {
    /// Stable lowercase wire name (`exact` / `degraded` / `failed`).
    pub fn as_str(self) -> &'static str {
        match self {
            Status::Exact => "exact",
            Status::Degraded => "degraded",
            Status::Failed => "failed",
        }
    }

    /// Parses the wire name produced by [`Status::as_str`].
    pub fn parse(s: &str) -> Option<Status> {
        match s {
            "exact" => Some(Status::Exact),
            "degraded" => Some(Status::Degraded),
            "failed" => Some(Status::Failed),
            _ => None,
        }
    }

    /// The worse of two statuses (`Failed > Degraded > Exact`).
    pub fn worst(self, other: Status) -> Status {
        fn rank(s: Status) -> u8 {
            match s {
                Status::Exact => 0,
                Status::Degraded => 1,
                Status::Failed => 2,
            }
        }
        if rank(other) > rank(self) {
            other
        } else {
            self
        }
    }
}

impl fmt::Display for Status {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

#[derive(Debug)]
struct Inner {
    deadline: Option<Instant>,
    max_steps: Option<u64>,
    max_mem: Option<u64>,
    steps: AtomicU64,
    mem_now: AtomicU64,
    mem_peak: AtomicU64,
    /// 0 = live; otherwise `Exhaustion::code()` of the first failure.
    state: AtomicU8,
}

/// How often [`Budget::step`] consults the wall clock: every step checks
/// the sticky flag and the step counter, but `Instant::now()` only runs
/// when the counter crosses a multiple of this mask + 1.
const TIME_CHECK_MASK: u64 = 0x3F;

/// A cancellable resource budget: wall-clock deadline, step counter, and
/// memory high-water estimate.
///
/// Clones share the same counters, so a budget handed to several worker
/// threads is exhausted for all of them at once. The [`Default`] budget
/// is unlimited and its checks are near-free.
///
/// # Examples
///
/// ```
/// use ioopt_engine::{Budget, Exhaustion};
///
/// let b = Budget::with_limits(None, Some(2), None);
/// assert!(b.step().is_ok());
/// assert!(b.step().is_ok());
/// assert_eq!(b.step(), Err(Exhaustion::Steps));
/// // Exhaustion is sticky.
/// assert_eq!(b.checkpoint(), Err(Exhaustion::Steps));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Budget {
    inner: Option<Arc<Inner>>,
}

impl Budget {
    /// An unlimited budget (same as `Budget::default()`): every check
    /// succeeds and costs a single `Option` test.
    pub fn unlimited() -> Budget {
        Budget::default()
    }

    /// A budget limited by any combination of wall-clock time, step
    /// count, and estimated bytes of working memory (`None` = no limit
    /// on that axis). The deadline clock starts now.
    pub fn with_limits(
        timeout: Option<Duration>,
        max_steps: Option<u64>,
        max_mem_bytes: Option<u64>,
    ) -> Budget {
        Budget {
            inner: Some(Arc::new(Inner {
                deadline: timeout.map(|d| Instant::now() + d),
                max_steps,
                max_mem: max_mem_bytes,
                steps: AtomicU64::new(0),
                mem_now: AtomicU64::new(0),
                mem_peak: AtomicU64::new(0),
                state: AtomicU8::new(0),
            })),
        }
    }

    /// A budget that counts steps and memory but never exhausts: no
    /// deadline, no step cap, no memory cap — same as
    /// `with_limits(None, None, None)`. Use instead of
    /// [`Budget::unlimited`] when the step counter should feed the
    /// observability layer (see [`crate::obs::Metric::BudgetSteps`])
    /// even though no limit was requested.
    pub fn counting() -> Budget {
        Budget::with_limits(None, None, None)
    }

    /// Whether this budget can ever be exhausted (false for the
    /// unlimited default).
    pub fn is_limited(&self) -> bool {
        self.inner.is_some()
    }

    /// Records one unit of work and fails if any limit is exceeded.
    ///
    /// This is the per-iteration check for hot loops: the sticky flag
    /// and step counter are checked every call, the wall clock every
    /// [`TIME_CHECK_MASK`]` + 1` calls (checking `Instant::now` on every
    /// iteration of a tight loop would dominate the loop body).
    #[inline]
    pub fn step(&self) -> Result<(), Exhaustion> {
        let Some(inner) = &self.inner else {
            return Ok(());
        };
        if let Some(e) = Exhaustion::from_code(inner.state.load(Ordering::Relaxed)) {
            return Err(e);
        }
        let steps = inner.steps.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(max) = inner.max_steps {
            if steps > max {
                return Err(self.exhaust(Exhaustion::Steps));
            }
        }
        if steps & TIME_CHECK_MASK == 0 {
            self.check_deadline()?;
        }
        Ok(())
    }

    /// A stage-boundary check: consults the sticky flag and the wall
    /// clock unconditionally, without consuming a step. Call this at
    /// phase entry/exit so a deadline that passed during an ungoverned
    /// stretch is still noticed promptly.
    pub fn checkpoint(&self) -> Result<(), Exhaustion> {
        let Some(inner) = &self.inner else {
            return Ok(());
        };
        if let Some(e) = Exhaustion::from_code(inner.state.load(Ordering::Relaxed)) {
            return Err(e);
        }
        self.check_deadline()
    }

    fn check_deadline(&self) -> Result<(), Exhaustion> {
        let Some(inner) = &self.inner else {
            return Ok(());
        };
        if let Some(deadline) = inner.deadline {
            if Instant::now() >= deadline {
                return Err(self.exhaust(Exhaustion::Deadline));
            }
        }
        Ok(())
    }

    /// Adds `bytes` to the tracked memory estimate (updating the
    /// high-water mark) and fails if the memory limit is exceeded.
    /// Callers charge allocations they are about to make; there is no
    /// allocator hook, so this is an estimate, not an accounting.
    pub fn charge_mem(&self, bytes: u64) -> Result<(), Exhaustion> {
        let Some(inner) = &self.inner else {
            return Ok(());
        };
        if let Some(e) = Exhaustion::from_code(inner.state.load(Ordering::Relaxed)) {
            return Err(e);
        }
        let now = inner.mem_now.fetch_add(bytes, Ordering::Relaxed) + bytes;
        inner.mem_peak.fetch_max(now, Ordering::Relaxed);
        if let Some(max) = inner.max_mem {
            if now > max {
                return Err(self.exhaust(Exhaustion::Memory));
            }
        }
        Ok(())
    }

    /// Releases `bytes` previously charged with [`Budget::charge_mem`]
    /// (the high-water mark is unaffected).
    pub fn release_mem(&self, bytes: u64) {
        if let Some(inner) = &self.inner {
            // Saturating: a release without a matching charge clamps at 0.
            let mut cur = inner.mem_now.load(Ordering::Relaxed);
            loop {
                let next = cur.saturating_sub(bytes);
                match inner.mem_now.compare_exchange_weak(
                    cur,
                    next,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => return,
                    Err(actual) => cur = actual,
                }
            }
        }
    }

    /// Cancels the budget: every subsequent check on any clone fails
    /// with [`Exhaustion::Cancelled`] (unless already exhausted for
    /// another reason — the first cause wins).
    pub fn cancel(&self) {
        if self.inner.is_some() {
            self.exhaust(Exhaustion::Cancelled);
        }
    }

    /// The sticky exhaustion cause, if any check has failed.
    pub fn exhausted(&self) -> Option<Exhaustion> {
        self.inner
            .as_ref()
            .and_then(|i| Exhaustion::from_code(i.state.load(Ordering::Relaxed)))
    }

    /// The wall-clock deadline, if this budget has one.
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.as_ref().and_then(|i| i.deadline)
    }

    /// Time remaining until the wall-clock deadline: `None` when there is
    /// no deadline, `Some(Duration::ZERO)` once it has passed (or the
    /// budget is already exhausted for any reason).
    ///
    /// The serving layer uses this for *per-request budget scoping*: it
    /// enters one deadline budget per request, and every row budget the
    /// batch runner derives underneath caps its own deadline by the time
    /// remaining on the ambient request budget, so one slow kernel can
    /// never spend a later kernel's share of the request window.
    pub fn remaining_time(&self) -> Option<Duration> {
        let inner = self.inner.as_ref()?;
        if Exhaustion::from_code(inner.state.load(Ordering::Relaxed)).is_some() {
            return Some(Duration::ZERO);
        }
        inner
            .deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// Steps consumed so far (0 for the unlimited budget).
    pub fn steps_used(&self) -> u64 {
        self.inner
            .as_ref()
            .map(|i| i.steps.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// High-water mark of the tracked memory estimate, in bytes.
    pub fn mem_peak(&self) -> u64 {
        self.inner
            .as_ref()
            .map(|i| i.mem_peak.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Records `cause` as the sticky exhaustion state and returns the
    /// *first* recorded cause (which may differ under a race).
    fn exhaust(&self, cause: Exhaustion) -> Exhaustion {
        let inner = self.inner.as_ref().expect("exhaust on unlimited budget");
        match inner
            .state
            .compare_exchange(0, cause.code(), Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(_) => {
                crate::obs::add(crate::obs::Metric::BudgetExhaustions, 1);
                cause
            }
            Err(prev) => Exhaustion::from_code(prev).unwrap_or(cause),
        }
    }

    /// Installs this budget as the current thread's ambient budget for
    /// the lifetime of the returned guard; the previous ambient budget
    /// is restored on drop. Scopes nest.
    pub fn enter(&self) -> AmbientGuard {
        let previous = AMBIENT.with(|slot| slot.replace(self.clone()));
        AmbientGuard { previous }
    }

    /// The current thread's ambient budget (unlimited if none was
    /// entered). [`crate::par_map`] re-installs the spawning thread's
    /// ambient budget inside its workers, so fan-outs inherit it.
    pub fn ambient() -> Budget {
        AMBIENT.with(|slot| slot.borrow().clone())
    }
}

thread_local! {
    static AMBIENT: RefCell<Budget> = RefCell::new(Budget::default());
}

/// Guard returned by [`Budget::enter`]; restores the previously ambient
/// budget when dropped.
#[derive(Debug)]
pub struct AmbientGuard {
    previous: Budget,
}

impl Drop for AmbientGuard {
    fn drop(&mut self) {
        AMBIENT.with(|slot| {
            *slot.borrow_mut() = std::mem::take(&mut self.previous);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_exhausts() {
        let b = Budget::unlimited();
        for _ in 0..10_000 {
            assert!(b.step().is_ok());
        }
        assert!(b.checkpoint().is_ok());
        assert!(b.charge_mem(u64::MAX / 2).is_ok());
        assert_eq!(b.exhausted(), None);
        assert!(!b.is_limited());
    }

    #[test]
    fn step_limit_is_sticky_and_shared_across_clones() {
        let b = Budget::with_limits(None, Some(10), None);
        let clone = b.clone();
        let mut ok = 0;
        while clone.step().is_ok() {
            ok += 1;
            assert!(ok <= 10, "step limit not enforced");
        }
        assert_eq!(ok, 10);
        assert_eq!(b.step(), Err(Exhaustion::Steps));
        assert_eq!(b.checkpoint(), Err(Exhaustion::Steps));
        assert_eq!(b.exhausted(), Some(Exhaustion::Steps));
    }

    #[test]
    fn deadline_in_the_past_fails_at_checkpoint() {
        let b = Budget::with_limits(Some(Duration::ZERO), None, None);
        assert_eq!(b.checkpoint(), Err(Exhaustion::Deadline));
        // And step() notices within one time-check window.
        let b = Budget::with_limits(Some(Duration::ZERO), None, None);
        let mut failed = false;
        for _ in 0..=(TIME_CHECK_MASK + 1) {
            if b.step().is_err() {
                failed = true;
                break;
            }
        }
        assert!(failed, "deadline not noticed within one mask window");
    }

    #[test]
    fn memory_charges_track_high_water() {
        let b = Budget::with_limits(None, None, Some(100));
        assert!(b.charge_mem(60).is_ok());
        b.release_mem(50);
        assert!(b.charge_mem(60).is_ok());
        assert_eq!(b.mem_peak(), 70);
        assert_eq!(b.charge_mem(60), Err(Exhaustion::Memory));
        assert_eq!(b.exhausted(), Some(Exhaustion::Memory));
        // Release never underflows.
        let c = Budget::with_limits(None, None, Some(100));
        c.release_mem(10_000);
        assert!(c.charge_mem(99).is_ok());
    }

    #[test]
    fn cancel_wins_only_when_first() {
        let b = Budget::with_limits(None, Some(1), None);
        b.cancel();
        assert_eq!(b.step(), Err(Exhaustion::Cancelled));
        let c = Budget::with_limits(None, Some(1), None);
        assert!(c.step().is_ok());
        assert_eq!(c.step(), Err(Exhaustion::Steps));
        c.cancel();
        assert_eq!(c.exhausted(), Some(Exhaustion::Steps), "first cause wins");
    }

    #[test]
    fn ambient_scopes_nest_and_restore() {
        assert!(!Budget::ambient().is_limited());
        let outer = Budget::with_limits(None, Some(100), None);
        {
            let _g1 = outer.enter();
            assert!(Budget::ambient().is_limited());
            let inner = Budget::unlimited();
            {
                let _g2 = inner.enter();
                assert!(!Budget::ambient().is_limited());
            }
            assert!(Budget::ambient().is_limited());
            // The ambient handle shares state with the entered budget.
            Budget::ambient().cancel();
            assert_eq!(outer.exhausted(), Some(Exhaustion::Cancelled));
        }
        assert!(!Budget::ambient().is_limited());
    }

    #[test]
    fn par_map_propagates_ambient_budget() {
        let b = Budget::with_limits(None, Some(1_000_000), None);
        let _g = b.enter();
        let items: Vec<u32> = (0..64).collect();
        let seen = crate::par_map(4, &items, |_, _| Budget::ambient().is_limited());
        assert!(seen.iter().all(|&limited| limited));
        assert!(b.steps_used() == 0);
    }

    #[test]
    fn status_ordering_and_wire_names() {
        assert_eq!(Status::Exact.worst(Status::Degraded), Status::Degraded);
        assert_eq!(Status::Failed.worst(Status::Degraded), Status::Failed);
        assert_eq!(Status::Degraded.worst(Status::Exact), Status::Degraded);
        for s in [Status::Exact, Status::Degraded, Status::Failed] {
            assert_eq!(Status::parse(s.as_str()), Some(s));
            assert_eq!(format!("{s}"), s.as_str());
        }
        assert_eq!(Status::parse("bogus"), None);
    }

    #[test]
    fn remaining_time_tracks_the_deadline() {
        assert_eq!(Budget::unlimited().remaining_time(), None);
        let b = Budget::with_limits(None, Some(10), None);
        assert_eq!(b.remaining_time(), None, "no deadline, no remaining time");
        let b = Budget::with_limits(Some(Duration::from_secs(3600)), None, None);
        let left = b.remaining_time().expect("deadline budget has remaining");
        assert!(left > Duration::from_secs(3590), "{left:?}");
        assert!(b.deadline().is_some());
        let spent = Budget::with_limits(Some(Duration::ZERO), None, None);
        assert_eq!(spent.remaining_time(), Some(Duration::ZERO));
        // Exhaustion (for any cause) clamps remaining time to zero.
        let c = Budget::with_limits(Some(Duration::from_secs(3600)), None, None);
        c.cancel();
        assert_eq!(c.remaining_time(), Some(Duration::ZERO));
    }

    #[test]
    fn exhaustion_display_is_stable() {
        assert_eq!(
            format!("{}", Exhaustion::Deadline),
            "wall-clock deadline exceeded"
        );
        assert_eq!(format!("{}", Exhaustion::Steps), "step budget exhausted");
    }
}
