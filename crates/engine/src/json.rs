//! The minimal JSON value type shared by every machine-readable report.
//!
//! `ioopt check --json`, `ioopt batch --json`, and the test harnesses
//! all speak this one schema layer instead of hand-rolling strings: a
//! [`Json`] tree renders deterministically (object keys keep insertion
//! order) and parses back losslessly, which is what the schema
//! round-trip tests rely on. No third-party dependencies.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (rendered without a decimal point).
    Int(i64),
    /// A float (rendered with Rust's shortest round-trip formatting).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; insertion order is preserved when rendering.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Looks up a key in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as `f64` (from either number variant).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(v) => Some(*v as f64),
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The integer payload, if this is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Compact single-line rendering.
    pub fn render(&self) -> String {
        self.to_string()
    }

    /// Parses a JSON document (the subset this module renders: no
    /// exponent-less edge cases are lost; `NaN`/`Infinity` are not
    /// valid JSON and are rejected).
    ///
    /// # Errors
    ///
    /// A human-readable message with the byte offset of the problem.
    pub fn parse(src: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: src.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(v)
    }
}

/// Escapes a string body for embedding between JSON quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(v) => write!(f, "{v}"),
            Json::Num(v) => {
                if v.fract() == 0.0 && v.abs() <= i64::MAX as f64 {
                    // Keep a decimal point so the variant survives a
                    // round trip (Int vs Num). Whole floats beyond the
                    // i64 range render bare and re-parse as Num via the
                    // parser's overflow fallback.
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Json::Str(s) => write!(f, "\"{}\"", escape(s)),
            Json::Array(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Json::Object(pairs) => {
                write!(f, "{{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "\"{}\":{v}", escape(k))?;
                }
                write!(f, "}}")
            }
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn lit(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(
                                char::from_u32(code).ok_or("surrogate \\u escape unsupported")?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        if is_float {
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|e| format!("bad number `{text}`: {e}"))
        } else {
            match text.parse::<i64>() {
                Ok(n) => Ok(Json::Int(n)),
                // Integer literals beyond i64 (e.g. large sampled bounds
                // that rendered from f64 without a fractional part) keep
                // the nearest double, as every standard JSON parser does.
                Err(_) => text
                    .parse::<f64>()
                    .map(Json::Num)
                    .map_err(|e| format!("bad integer `{text}`: {e}")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(pairs));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_parse_roundtrip() {
        let v = Json::obj([
            ("kernel", Json::str("conv1d")),
            ("lb", Json::Num(1234.5)),
            ("count", Json::Int(19)),
            ("exact", Json::Bool(true)),
            ("span", Json::Null),
            (
                "rows",
                Json::Array(vec![Json::Int(1), Json::Num(0.5), Json::str("x\"y\\z")]),
            ),
        ]);
        let text = v.render();
        let back = Json::parse(&text).expect("parses");
        assert_eq!(back, v);
        // Rendering is stable (insertion order preserved).
        assert_eq!(back.render(), text);
    }

    #[test]
    fn integral_floats_keep_their_variant() {
        let v = Json::Array(vec![Json::Num(2.0), Json::Int(2)]);
        let text = v.render();
        assert_eq!(text, "[2.0,2]");
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn huge_whole_floats_round_trip_as_num() {
        // Sampled bounds can be astronomically large whole doubles;
        // they must survive render → parse with their variant intact.
        for v in [1.044807183830552e19, 4.5e15, -3.0e20, 1e300] {
            let text = Json::Num(v).render();
            assert_eq!(Json::parse(&text).unwrap(), Json::Num(v), "{text}");
        }
        // Integer literals past i64 degrade to the nearest double.
        assert_eq!(
            Json::parse("10448071838305520000").unwrap(),
            Json::Num(1.044807183830552e19)
        );
        assert!(Json::parse("-").is_err());
    }

    #[test]
    fn escapes_and_unicode() {
        let v = Json::str("tab\there\nnewline \u{1}");
        let text = v.render();
        assert_eq!(Json::parse(&text).unwrap(), v);
        assert!(text.contains("\\t"));
        assert!(text.contains("\\u0001"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "[1,", "\"open", "{\"k\" 1}", "nul", "1 2"] {
            assert!(Json::parse(bad).is_err(), "`{bad}` should fail");
        }
    }

    #[test]
    fn accessors() {
        let v = Json::parse("{\"a\": [1, 2.5], \"b\": \"s\"}").unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[0].as_i64(), Some(1));
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[1].as_f64(),
            Some(2.5)
        );
        assert_eq!(v.get("b").unwrap().as_str(), Some("s"));
        assert_eq!(v.get("missing"), None);
    }
}
