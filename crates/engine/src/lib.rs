//! # ioopt-engine
//!
//! The execution substrate of the IOOpt pipeline: a hand-rolled scoped
//! worker pool with *deterministic result ordering* ([`par_map`]), a
//! content-addressed memoization cache with hit/miss accounting
//! ([`MemoCache`]), and the minimal JSON value type shared by every
//! machine-readable report in the workspace ([`json::Json`]).
//!
//! The pipeline is embarrassingly parallel at three levels — candidate
//! inter-tile permutations (paper §4.3, Algorithm 1), tile-size search
//! per permutation, and independent kernels in a batch (§6) — and this
//! crate lets each level fan out without changing results: a map over
//! `N` items returns its results in input order regardless of the thread
//! count, so every downstream reduction sees the same sequence as the
//! sequential run.
//!
//! No third-party dependencies: the pool is `std::thread::scope` workers
//! pulling indices from a shared atomic counter (self-scheduling, which
//! behaves like work stealing for heterogeneous item costs), and the
//! cache is a sharded `Mutex<HashMap>` keyed by full canonical key bytes
//! (content-addressed: hash collisions are resolved by key equality,
//! never by trusting the hash).

#![warn(missing_docs)]

pub mod govern;
pub mod json;
mod memo;
pub mod obs;
mod pool;
pub mod store;

pub use govern::{AmbientGuard, Budget, Exhaustion, Status};
pub use json::Json;
pub use memo::{CacheStats, MemoCache, StableHasher};
pub use obs::{Histogram, Trace};
pub use pool::{available_threads, par_map, BoundedQueue, PushError};
pub use store::{PersistentStore, StoreStats};
