//! A content-addressed, thread-safe memoization cache.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// 64-bit FNV-1a, the stable hash used to shard and index cache keys.
///
/// The hash only routes a key to its shard and bucket; correctness never
/// depends on it (entries store the full key bytes and are compared by
/// equality), so the cache is content-addressed in the strict sense.
#[derive(Debug, Clone, Copy)]
pub struct StableHasher(u64);

impl StableHasher {
    const OFFSET: u64 = 0xcbf29ce484222325;
    const PRIME: u64 = 0x100000001b3;

    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> StableHasher {
        StableHasher(Self::OFFSET)
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// Absorbs an `i64` (little-endian).
    pub fn write_i64(&mut self, v: i64) {
        self.write(&v.to_le_bytes());
    }

    /// Absorbs a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for StableHasher {
    fn default() -> StableHasher {
        StableHasher::new()
    }
}

/// A snapshot of cache counters (see [`MemoCache::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute (and then stored the result).
    pub misses: u64,
    /// Entries currently resident.
    pub entries: u64,
}

impl CacheStats {
    /// Hit ratio in `[0, 1]`; 0 when the cache was never consulted.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Component-wise sum (for aggregating several caches into one
    /// report line).
    pub fn merged(&self, other: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            entries: self.entries + other.entries,
        }
    }

    /// The counter movement since `baseline` (a snapshot taken earlier on
    /// the same cache): hits and misses subtract saturating, entries keep
    /// the current resident count. This is how a long-lived server
    /// isolates one window's hit ratio — e.g. proving a request storm ran
    /// warmer than the cold batch that preceded it — without resetting
    /// the process-lifetime cache.
    pub fn delta(&self, baseline: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(baseline.hits),
            misses: self.misses.saturating_sub(baseline.misses),
            entries: self.entries,
        }
    }
}

const SHARDS: usize = 16;

/// Routes a 64-bit hash to a shard by folding the high half into the low
/// half before the modulo. FNV-1a mixes most of its entropy into the
/// high bits for short keys; plain `hash as usize % SHARDS` would use
/// only the low bits (and on a 32-bit target `as usize` discards the
/// high word entirely), clustering short keys onto few shards.
fn shard_index(hash: u64) -> usize {
    (((hash >> 32) ^ hash) as usize) % SHARDS
}

/// One shard: hash-routed buckets of `(full key bytes, value)` entries.
/// The hash only routes; key-byte equality decides hits, so FNV
/// collisions cost a scan, never a wrong answer.
type Shard<V> = Mutex<HashMap<u64, Vec<(Vec<u8>, V)>>>;

/// A sharded memo cache from canonical key bytes to a cloneable value.
///
/// Used for the polyhedral counting/projection subproblems and the
/// symbolic per-array cost terms that the analysis recomputes across
/// candidate permutations, tile searches, and batch kernels. Keys are
/// the caller's canonical serialization of the subproblem; values are
/// exact results, so replaying a hit is byte-identical to recomputing.
///
/// The cache can be disabled ([`MemoCache::set_enabled`]) to reproduce
/// cold-cache behaviour; a disabled cache answers nothing, stores
/// nothing, and counts nothing.
pub struct MemoCache<V> {
    shards: [Shard<V>; SHARDS],
    hits: AtomicU64,
    misses: AtomicU64,
    enabled: AtomicBool,
}

impl<V: Clone> MemoCache<V> {
    /// An empty, enabled cache.
    pub fn new() -> MemoCache<V> {
        MemoCache {
            shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            enabled: AtomicBool::new(true),
        }
    }

    /// Turns the cache on or off (off = every lookup recomputes).
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether lookups currently consult the cache.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Looks up `key`, computing and storing with `compute` on a miss.
    ///
    /// The computation runs *outside* the shard lock, so a slow
    /// subproblem never blocks unrelated lookups; if two threads race on
    /// the same fresh key both compute and the first store wins (both
    /// computations are deterministic, so the value is identical).
    pub fn get_or_insert_with(&self, key: &[u8], compute: impl FnOnce() -> V) -> V {
        if !self.is_enabled() {
            return compute();
        }
        let mut h = StableHasher::new();
        h.write(key);
        let hash = h.finish();
        let shard = &self.shards[shard_index(hash)];
        {
            let guard = shard.lock().expect("memo shard poisoned");
            if let Some(bucket) = guard.get(&hash) {
                if let Some((_, v)) = bucket.iter().find(|(k, _)| k == key) {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    crate::obs::add(crate::obs::Metric::MemoHits, 1);
                    return v.clone();
                }
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        crate::obs::add(crate::obs::Metric::MemoMisses, 1);
        let value = compute();
        let mut guard = shard.lock().expect("memo shard poisoned");
        let bucket = guard.entry(hash).or_default();
        if !bucket.iter().any(|(k, _)| k == key) {
            bucket.push((key.to_vec(), value.clone()));
        }
        value
    }

    /// Looks up `key` without computing on a miss (counted as a hit or
    /// miss like [`MemoCache::get_or_insert_with`]). Returns `None` when
    /// the cache is disabled.
    ///
    /// Paired with [`MemoCache::insert`], this lets callers decide
    /// *whether* to store a computed value — e.g. a result produced
    /// under an exhausted [`crate::Budget`] is degraded and must not
    /// poison the cache for later exact runs.
    pub fn get(&self, key: &[u8]) -> Option<V> {
        if !self.is_enabled() {
            return None;
        }
        let mut h = StableHasher::new();
        h.write(key);
        let hash = h.finish();
        let shard = &self.shards[shard_index(hash)];
        let guard = shard.lock().expect("memo shard poisoned");
        if let Some(bucket) = guard.get(&hash) {
            if let Some((_, v)) = bucket.iter().find(|(k, _)| k == key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                crate::obs::add(crate::obs::Metric::MemoHits, 1);
                return Some(v.clone());
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        crate::obs::add(crate::obs::Metric::MemoMisses, 1);
        None
    }

    /// Stores `value` under `key` (first store wins on a race, like
    /// [`MemoCache::get_or_insert_with`]); a no-op when disabled.
    pub fn insert(&self, key: &[u8], value: V) {
        if !self.is_enabled() {
            return;
        }
        let mut h = StableHasher::new();
        h.write(key);
        let hash = h.finish();
        let shard = &self.shards[shard_index(hash)];
        let mut guard = shard.lock().expect("memo shard poisoned");
        let bucket = guard.entry(hash).or_default();
        if !bucket.iter().any(|(k, _)| k == key) {
            bucket.push((key.to_vec(), value));
        }
    }

    /// Current hit/miss/entry counters.
    pub fn stats(&self) -> CacheStats {
        let entries = self
            .shards
            .iter()
            .map(|s| {
                s.lock()
                    .expect("memo shard poisoned")
                    .values()
                    .map(|b| b.len() as u64)
                    .sum::<u64>()
            })
            .sum();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries,
        }
    }

    /// Drops every entry and zeroes the counters (the enabled flag is
    /// left as-is).
    pub fn clear(&self) {
        for s in &self.shards {
            s.lock().expect("memo shard poisoned").clear();
        }
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

impl<V: Clone> Default for MemoCache<V> {
    fn default() -> MemoCache<V> {
        MemoCache::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_accounting() {
        let cache: MemoCache<u64> = MemoCache::new();
        let v1 = cache.get_or_insert_with(b"k1", || 41);
        let v2 = cache.get_or_insert_with(b"k1", || panic!("must hit"));
        assert_eq!((v1, v2), (41, 41));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert!((s.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn disabled_cache_always_recomputes() {
        let cache: MemoCache<u64> = MemoCache::new();
        cache.set_enabled(false);
        assert_eq!(cache.get_or_insert_with(b"k", || 1), 1);
        assert_eq!(cache.get_or_insert_with(b"k", || 2), 2);
        assert_eq!(cache.stats(), CacheStats::default());
        cache.set_enabled(true);
        assert_eq!(cache.get_or_insert_with(b"k", || 3), 3);
        assert_eq!(cache.get_or_insert_with(b"k", || 4), 3);
    }

    #[test]
    fn distinct_keys_with_equal_hash_prefixes() {
        let cache: MemoCache<String> = MemoCache::new();
        for i in 0..100u8 {
            let key = vec![i, i ^ 0x5a, 7];
            let v = cache.get_or_insert_with(&key, || format!("v{i}"));
            assert_eq!(v, format!("v{i}"));
        }
        assert_eq!(cache.stats().entries, 100);
        cache.clear();
        assert_eq!(cache.stats(), CacheStats::default());
    }

    #[test]
    fn concurrent_mixed_access_is_consistent() {
        let cache: MemoCache<u64> = MemoCache::new();
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let cache = &cache;
                s.spawn(move || {
                    for i in 0..200u64 {
                        let key = (i % 32).to_le_bytes();
                        let got = cache.get_or_insert_with(&key, || (i % 32) * 10);
                        assert_eq!(got, (i % 32) * 10, "thread {t}");
                    }
                });
            }
        });
        assert_eq!(cache.stats().entries, 32);
    }

    #[test]
    fn get_and_insert_respect_enable_flag() {
        let cache: MemoCache<u64> = MemoCache::new();
        assert_eq!(cache.get(b"k"), None);
        cache.insert(b"k", 7);
        assert_eq!(cache.get(b"k"), Some(7));
        // First store wins.
        cache.insert(b"k", 8);
        assert_eq!(cache.get(b"k"), Some(7));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (2, 1, 1));
        cache.set_enabled(false);
        assert_eq!(cache.get(b"k"), None);
        cache.insert(b"x", 1);
        cache.set_enabled(true);
        assert_eq!(cache.get(b"x"), None, "disabled insert stored nothing");
    }

    #[test]
    fn stats_delta_isolates_a_window() {
        let cache: MemoCache<u64> = MemoCache::new();
        cache.get_or_insert_with(b"a", || 1); // miss
        cache.get_or_insert_with(b"a", || 1); // hit
        let baseline = cache.stats();
        cache.get_or_insert_with(b"a", || 1); // hit
        cache.get_or_insert_with(b"a", || 1); // hit
        cache.get_or_insert_with(b"b", || 2); // miss
        let window = cache.stats().delta(&baseline);
        assert_eq!((window.hits, window.misses, window.entries), (2, 1, 2));
        assert!((window.hit_ratio() - 2.0 / 3.0).abs() < 1e-12);
        // Delta against a fresher snapshot saturates instead of wrapping.
        let stale = cache.stats().delta(&CacheStats {
            hits: u64::MAX,
            misses: u64::MAX,
            entries: 0,
        });
        assert_eq!((stale.hits, stale.misses), (0, 0));
    }

    #[test]
    fn shard_routing_folds_the_high_bits() {
        // Regression: routing used `hash as usize % SHARDS`, which takes
        // only the low bits — and on a 32-bit usize discards the high
        // word of the FNV hash entirely. Two hashes differing only in
        // the high word must land on different shards after folding.
        assert_ne!(shard_index(0x0000_0001_0000_0000), shard_index(0));
        assert_ne!(
            shard_index(0xdead_beef_0000_0000),
            shard_index(0x0000_0000_0000_0000)
        );
        // And folding must still cover every shard reachably: short FNV
        // keys spread across strictly more shards than the un-folded
        // low-bits-only routing would give them.
        let mut used = [false; SHARDS];
        for i in 0..256u32 {
            let mut h = StableHasher::new();
            h.write(&i.to_le_bytes());
            used[shard_index(h.finish())] = true;
        }
        let covered = used.iter().filter(|&&u| u).count();
        assert_eq!(covered, SHARDS, "256 short keys must reach all shards");
    }

    #[test]
    fn stable_hasher_is_stable() {
        let mut a = StableHasher::new();
        a.write(b"abc");
        // FNV-1a of "abc" is a published constant.
        assert_eq!(a.finish(), 0xe71fa2190541574b);
        let mut b = StableHasher::new();
        b.write_i64(-1);
        b.write_u64(1);
        assert_ne!(b.finish(), StableHasher::new().finish());
    }
}
