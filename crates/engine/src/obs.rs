//! Observability: hierarchical spans, a process-wide metrics registry,
//! and an atomic stderr formatter.
//!
//! The pipeline spans six stages (parse → verify → IOLB → IOUB →
//! TileOpt → report) across worker threads, a memo cache, and a resource
//! governor; this module is the one place their timings and counters
//! meet.
//!
//! # Spans
//!
//! A [`span`] is a lightweight scope guard recording wall-time, the
//! steps consumed on the ambient [`Budget`] while it was open, and the
//! thread it ran on. Spans are collected into a [`Trace`] installed as a
//! thread-local ambient ([`Trace::attach`]); [`crate::par_map`]
//! re-installs the spawning thread's context inside its workers, so
//! spans opened in a fan-out nest under the span that launched it. When
//! no trace is attached a span is a no-op guard — two thread-local reads
//! — so instrumented code costs nearly nothing in un-profiled runs and
//! the recorded trace never feeds back into any analysis result.
//!
//! Opening or closing a span also runs [`Budget::checkpoint`] on the
//! ambient budget. This is a correctness hook, not just telemetry: the
//! per-step governor only consults the wall clock every few dozen steps,
//! so one slow step (a large Fourier–Motzkin projection, say) can
//! overshoot a deadline by seconds. Stage boundaries force the check, so
//! the overshoot is bounded by one stage, and the sticky exhaustion then
//! degrades the remaining stages promptly.
//!
//! # Metrics
//!
//! [`Metric`] is the registry of process-wide counters that were
//! previously siloed per crate: memo hits/misses, budget steps and
//! exhaustions, permutations pruned, grid points evaluated, FM
//! projections. Counters are plain relaxed atomics — increments are
//! wait-free and never affect analysis output. [`metrics_snapshot`]
//! reads them all for a report.
//!
//! # Logging
//!
//! [`log_block`] writes a whole block to stderr as a single `write_all`
//! behind one process-wide lock, so concurrent worker threads can never
//! interleave partial lines into each other (or into a `--json` stdout
//! stream being piped elsewhere). The [`crate::obs_log!`] macro is the
//! `eprintln!`-shaped front end.

use std::cell::RefCell;
use std::collections::HashMap;
use std::io::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::govern::Budget;
use crate::json::Json;

// ---------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------

/// The unified registry of process-wide pipeline counters.
///
/// Each variant is one counter with a stable dotted wire name
/// ([`Metric::name`]). Counters only ever accumulate; [`reset_metrics`]
/// zeroes them between batch runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Metric {
    /// Memo-cache lookups answered from any [`crate::MemoCache`].
    MemoHits,
    /// Memo-cache lookups that had to compute.
    MemoMisses,
    /// Steps consumed by row [`Budget`]s (recorded per analysis).
    BudgetSteps,
    /// Budgets that hit a limit (deadline, steps, memory, or cancel).
    BudgetExhaustions,
    /// Algorithm 1 branches skipped because a dominating reuse set
    /// exists (paper §4.3 pruning).
    PermsPruned,
    /// Inter-tile permutations returned by Algorithm 1 selections.
    PermsSelected,
    /// Integer grid points visited by the tile-size search.
    GridPoints,
    /// Fourier–Motzkin projection steps (one per eliminated variable).
    FmProjections,
    /// HTTP requests the `ioopt serve` layer answered (any status except
    /// admission rejections).
    ServeRequests,
    /// Connections the serving layer's admission control turned away
    /// with a 429 because the request queue was full.
    ServeRejected,
    /// Distinct terms the symbolic arena interned in this window.
    TermsInterned,
    /// Intern calls answered by an existing arena term.
    TermHits,
    /// Intern calls that created a new arena term.
    TermMisses,
    /// Sub-expression simplification-memo hits (`expand`, structural
    /// `pow`) shared across kernels and requests.
    SimpHits,
    /// Sub-expression simplification-memo misses.
    SimpMisses,
    /// Persistent-store lookups answered from an on-disk frame.
    StoreHits,
    /// Persistent-store lookups that found no frame (or the store is
    /// disabled).
    StoreMisses,
    /// Frames appended to the persistent store.
    StoreWrites,
    /// Torn trailing frames truncated during store recovery (one per
    /// truncation event).
    StoreRecovered,
    /// Segments quarantined during store recovery (mid-file corruption).
    StoreQuarantined,
    /// Times a persistent store flipped into sticky memory-only mode
    /// after an I/O error (0 or 1 per store instance).
    StoreDisabled,
    /// Dead serve workers detected and respawned by the pool supervisor.
    ServeWorkersRespawned,
    /// Live shard child processes behind the serve router (gauge: the
    /// current fleet strength, not an accumulating count).
    ShardsLive,
    /// Dead shard children detected and respawned by the fleet
    /// supervisor.
    ShardsRespawned,
}

/// Prometheus exposition semantics of one [`Metric`]: most registry
/// entries only ever accumulate (`counter`), but a few report a current
/// level that can go down again (`gauge`) and must be declared as such —
/// scrapers apply `rate()` to counters, which is meaningless on a level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically accumulating within a reset window.
    Counter,
    /// A current level, set absolutely via [`set_gauge`].
    Gauge,
}

const METRIC_COUNT: usize = 24;

impl Metric {
    /// Every metric, in registry (display) order.
    pub const ALL: [Metric; METRIC_COUNT] = [
        Metric::MemoHits,
        Metric::MemoMisses,
        Metric::BudgetSteps,
        Metric::BudgetExhaustions,
        Metric::PermsPruned,
        Metric::PermsSelected,
        Metric::GridPoints,
        Metric::FmProjections,
        Metric::ServeRequests,
        Metric::ServeRejected,
        Metric::TermsInterned,
        Metric::TermHits,
        Metric::TermMisses,
        Metric::SimpHits,
        Metric::SimpMisses,
        Metric::StoreHits,
        Metric::StoreMisses,
        Metric::StoreWrites,
        Metric::StoreRecovered,
        Metric::StoreQuarantined,
        Metric::StoreDisabled,
        Metric::ServeWorkersRespawned,
        Metric::ShardsLive,
        Metric::ShardsRespawned,
    ];

    /// The stable dotted wire name (used in reports and the JSON
    /// `profile` block).
    pub fn name(self) -> &'static str {
        match self {
            Metric::MemoHits => "memo.hits",
            Metric::MemoMisses => "memo.misses",
            Metric::BudgetSteps => "budget.steps",
            Metric::BudgetExhaustions => "budget.exhaustions",
            Metric::PermsPruned => "perm.pruned",
            Metric::PermsSelected => "perm.selected",
            Metric::GridPoints => "grid.points",
            Metric::FmProjections => "fm.projections",
            Metric::ServeRequests => "serve.requests",
            Metric::ServeRejected => "serve.rejected",
            Metric::TermsInterned => "terms.interned",
            Metric::TermHits => "terms.hits",
            Metric::TermMisses => "terms.misses",
            Metric::SimpHits => "terms.simp_hits",
            Metric::SimpMisses => "terms.simp_misses",
            Metric::StoreHits => "store.hits",
            Metric::StoreMisses => "store.misses",
            Metric::StoreWrites => "store.writes",
            Metric::StoreRecovered => "store.recovered",
            Metric::StoreQuarantined => "store.quarantined",
            Metric::StoreDisabled => "store.disabled",
            Metric::ServeWorkersRespawned => "serve.workers_respawned",
            Metric::ShardsLive => "serve.shards_live",
            Metric::ShardsRespawned => "serve.shards_respawned",
        }
    }

    /// The exposition kind: `store.disabled` and `serve.shards_live`
    /// report current levels (0/1 sticky degradation, live fleet size);
    /// everything else accumulates.
    pub fn kind(self) -> MetricKind {
        match self {
            Metric::StoreDisabled | Metric::ShardsLive => MetricKind::Gauge,
            _ => MetricKind::Counter,
        }
    }

    /// Term-arena metrics read the symbolic interner's own counters
    /// instead of the local atomics; [`add`] is a no-op for them.
    fn term_source(self) -> Option<fn(ioopt_symbolic::InternStats) -> u64> {
        match self {
            Metric::TermsInterned => Some(|s| s.terms),
            Metric::TermHits => Some(|s| s.hits),
            Metric::TermMisses => Some(|s| s.misses),
            Metric::SimpHits => Some(|s| s.simp_hits),
            Metric::SimpMisses => Some(|s| s.simp_misses),
            _ => None,
        }
    }
}

static COUNTERS: [AtomicU64; METRIC_COUNT] = [const { AtomicU64::new(0) }; METRIC_COUNT];

// The arena's counters are never cleared (terms live for the process
// lifetime), so "reset" for term metrics means recording a baseline to
// subtract — keeping windowed semantics consistent with every other
// counter.
static TERM_BASELINE: [AtomicU64; METRIC_COUNT] = [const { AtomicU64::new(0) }; METRIC_COUNT];

/// Adds `n` to a metric's process-wide counter (wait-free; a no-op when
/// `n == 0` and for externally sourced term-arena metrics).
#[inline]
pub fn add(metric: Metric, n: u64) {
    if n != 0 && metric.term_source().is_none() {
        COUNTERS[metric as usize].fetch_add(n, Ordering::Relaxed);
    }
}

/// Stores an absolute level into a gauge-kind metric (the fleet
/// supervisor publishes the live shard count this way). Works on any
/// locally backed metric, but only gauges have set-semantics on the
/// wire.
#[inline]
pub fn set_gauge(metric: Metric, level: u64) {
    if metric.term_source().is_none() {
        COUNTERS[metric as usize].store(level, Ordering::Relaxed);
    }
}

/// The current value of one metric (windowed since the last
/// [`reset_metrics`]).
pub fn value(metric: Metric) -> u64 {
    match metric.term_source() {
        Some(read) => read(ioopt_symbolic::intern_stats())
            .saturating_sub(TERM_BASELINE[metric as usize].load(Ordering::Relaxed)),
        None => COUNTERS[metric as usize].load(Ordering::Relaxed),
    }
}

/// `(wire name, value)` for every registered metric, in registry order.
pub fn metrics_snapshot() -> Vec<(&'static str, u64)> {
    Metric::ALL.iter().map(|&m| (m.name(), value(m))).collect()
}

/// Zeroes every metric counter (e.g. at the start of a batch run so the
/// report reflects that run alone). Term-arena metrics are windowed by
/// baseline rather than cleared — the arena itself persists by design.
pub fn reset_metrics() {
    for c in &COUNTERS {
        c.store(0, Ordering::Relaxed);
    }
    let stats = ioopt_symbolic::intern_stats();
    for metric in Metric::ALL {
        if let Some(read) = metric.term_source() {
            TERM_BASELINE[metric as usize].store(read(stats), Ordering::Relaxed);
        }
    }
}

/// One `name=value` line over every metric, for the profile footer.
pub fn render_metrics_line() -> String {
    let mut out = String::from("metrics:");
    for (name, v) in metrics_snapshot() {
        out.push_str(&format!(" {name}={v}"));
    }
    out
}

// ---------------------------------------------------------------------
// Histograms
// ---------------------------------------------------------------------

/// Default latency bucket upper bounds in microseconds (250 µs … 10 s,
/// roughly ×2–×2.5 apart), chosen so both a warm memo-cache hit and a
/// slow numeric TileOpt request land in an interior bucket.
pub const LATENCY_BOUNDS_US: [u64; 15] = [
    250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000, 1_000_000,
    2_500_000, 5_000_000, 10_000_000,
];

/// A fixed-bucket histogram over relaxed atomics: wait-free to observe,
/// lock-free to read, never feeding back into any analysis result.
///
/// Buckets hold *non-cumulative* counts internally; readers get the
/// Prometheus-style cumulative view from [`Histogram::cumulative`]. One
/// extra overflow bucket (+Inf) catches observations beyond the last
/// bound.
#[derive(Debug)]
pub struct Histogram {
    bounds_us: Vec<u64>,
    buckets: Vec<AtomicU64>,
    sum_us: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    /// A histogram over the default request-latency bounds
    /// ([`LATENCY_BOUNDS_US`]).
    pub fn latency() -> Histogram {
        Histogram::with_bounds_us(&LATENCY_BOUNDS_US)
    }

    /// A histogram over the given strictly increasing bucket upper
    /// bounds (microseconds). A trailing +Inf bucket is always added.
    pub fn with_bounds_us(bounds_us: &[u64]) -> Histogram {
        assert!(
            bounds_us.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds_us: bounds_us.to_vec(),
            buckets: (0..=bounds_us.len()).map(|_| AtomicU64::new(0)).collect(),
            sum_us: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Records one observation of `us` microseconds.
    pub fn observe_us(&self, us: u64) {
        let idx = self
            .bounds_us
            .iter()
            .position(|&b| us <= b)
            .unwrap_or(self.bounds_us.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of every observation, microseconds.
    pub fn sum_us(&self) -> u64 {
        self.sum_us.load(Ordering::Relaxed)
    }

    /// The cumulative bucket view, Prometheus style: `(upper bound in
    /// µs, observations ≤ bound)` per bucket, ending with `(None, total)`
    /// for +Inf. Concurrent observers may race individual increments;
    /// the view is still internally monotone.
    pub fn cumulative(&self) -> Vec<(Option<u64>, u64)> {
        let mut acc = 0u64;
        let mut out = Vec::with_capacity(self.buckets.len());
        for (i, bucket) in self.buckets.iter().enumerate() {
            acc += bucket.load(Ordering::Relaxed);
            out.push((self.bounds_us.get(i).copied(), acc));
        }
        out
    }

    /// The upper bound (µs) of the bucket containing the `q`-quantile
    /// (0 < q ≤ 1) of the observations so far; observations beyond the
    /// last finite bound report that last bound. 0 when empty.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let view = self.cumulative();
        let total = view.last().map_or(0, |&(_, c)| c);
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        for (bound, cum) in &view {
            if *cum >= rank {
                return bound.unwrap_or_else(|| *self.bounds_us.last().unwrap_or(&0));
            }
        }
        *self.bounds_us.last().unwrap_or(&0)
    }
}

// ---------------------------------------------------------------------
// Spans and traces
// ---------------------------------------------------------------------

/// One completed span, as collected by a [`Trace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Unique id within the trace (1-based; ids increase in open order).
    pub id: u64,
    /// The id of the enclosing span, or 0 for a top-level span.
    pub parent: u64,
    /// The span name (dotted taxonomy, e.g. `iolb.scenario_sweep`).
    pub name: &'static str,
    /// Optional free-form argument (the batch row spans carry the kernel
    /// label here).
    pub arg: Option<String>,
    /// Trace-local thread id (assigned per attached thread, 0-based).
    pub tid: u64,
    /// Microseconds from the trace epoch to span open.
    pub start_us: u64,
    /// Span duration in microseconds.
    pub dur_us: u64,
    /// Steps consumed on the ambient [`Budget`] while the span was open
    /// (shared across every thread of the same row budget).
    pub steps: u64,
}

#[derive(Debug)]
struct TraceShared {
    epoch: Instant,
    records: Mutex<Vec<SpanRecord>>,
    next_id: AtomicU64,
    next_tid: AtomicU64,
}

/// A collector of hierarchical [`SpanRecord`]s for one profiled run.
///
/// Clones share the same buffer. Install with [`Trace::attach`]; every
/// [`span`] opened while attached (on this thread or any [`crate::par_map`]
/// worker it spawns) is recorded on drop.
///
/// # Examples
///
/// ```
/// use ioopt_engine::obs::{self, Trace};
///
/// let trace = Trace::new();
/// {
///     let _t = trace.attach();
///     let _outer = obs::span("stage.outer");
///     let _inner = obs::span("stage.inner");
/// }
/// let records = trace.records();
/// assert_eq!(records.len(), 2);
/// assert_eq!(records[0].name, "stage.outer");
/// assert_eq!(records[1].parent, records[0].id);
/// ```
#[derive(Debug, Clone)]
pub struct Trace {
    shared: Arc<TraceShared>,
}

struct TlCtx {
    shared: Arc<TraceShared>,
    current: u64,
    tid: u64,
}

thread_local! {
    static TL: RefCell<Option<TlCtx>> = const { RefCell::new(None) };
}

impl Trace {
    /// A fresh, empty trace; its epoch (the zero of every
    /// [`SpanRecord::start_us`]) is now.
    pub fn new() -> Trace {
        Trace {
            shared: Arc::new(TraceShared {
                epoch: Instant::now(),
                records: Mutex::new(Vec::new()),
                next_id: AtomicU64::new(1),
                next_tid: AtomicU64::new(0),
            }),
        }
    }

    /// Installs this trace as the current thread's ambient collector for
    /// the lifetime of the returned guard (the previous ambient trace is
    /// restored on drop). The thread gets a fresh trace-local tid.
    pub fn attach(&self) -> ObsGuard {
        let ctx = TlCtx {
            shared: self.shared.clone(),
            current: 0,
            tid: self.shared.next_tid.fetch_add(1, Ordering::Relaxed),
        };
        ObsGuard {
            previous: TL.with(|tl| tl.borrow_mut().replace(ctx)),
        }
    }

    /// Every completed span so far, sorted by id (open order).
    pub fn records(&self) -> Vec<SpanRecord> {
        let mut records = self
            .shared
            .records
            .lock()
            .expect("obs trace poisoned")
            .clone();
        records.sort_by_key(|r| r.id);
        records
    }

    /// The trace in the Chrome trace-event format (`chrome://tracing`,
    /// Perfetto): one complete (`"ph":"X"`) event per span, timestamps
    /// in microseconds from the trace epoch.
    pub fn to_chrome_json(&self) -> Json {
        let mut records = self.records();
        records.sort_by_key(|r| (r.start_us, r.id));
        let events: Vec<Json> = records
            .iter()
            .map(|r| {
                let mut args = vec![("steps".to_string(), Json::Int(r.steps as i64))];
                if let Some(a) = &r.arg {
                    args.push(("arg".to_string(), Json::str(a.clone())));
                }
                Json::obj([
                    ("name", Json::str(r.name)),
                    ("cat", Json::str("ioopt")),
                    ("ph", Json::str("X")),
                    ("pid", Json::Int(1)),
                    ("tid", Json::Int(r.tid as i64)),
                    ("ts", Json::Int(r.start_us as i64)),
                    ("dur", Json::Int(r.dur_us as i64)),
                    ("args", Json::Object(args)),
                ])
            })
            .collect();
        Json::obj([
            ("traceEvents", Json::Array(events)),
            ("displayTimeUnit", Json::str("ms")),
        ])
    }
}

impl Default for Trace {
    fn default() -> Trace {
        Trace::new()
    }
}

/// Guard returned by [`Trace::attach`] / [`ObsContext::attach`];
/// restores the previously ambient tracing context when dropped.
#[derive(Debug)]
pub struct ObsGuard {
    previous: Option<TlCtx>,
}

impl std::fmt::Debug for TlCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TlCtx")
            .field("current", &self.current)
            .field("tid", &self.tid)
            .finish()
    }
}

impl Drop for ObsGuard {
    fn drop(&mut self) {
        TL.with(|tl| {
            *tl.borrow_mut() = self.previous.take();
        });
    }
}

/// A snapshot of the calling thread's tracing context (the trace and the
/// currently open span), for re-installation inside worker threads.
/// [`crate::par_map`] captures one and attaches it in every worker, so
/// spans opened in a fan-out nest under the span that launched it.
#[derive(Debug, Clone)]
pub struct ObsContext {
    shared: Option<(Arc<TraceShared>, u64)>,
}

/// The calling thread's tracing context (empty when no trace is
/// attached).
pub fn context() -> ObsContext {
    ObsContext {
        shared: TL.with(|tl| {
            tl.borrow()
                .as_ref()
                .map(|ctx| (ctx.shared.clone(), ctx.current))
        }),
    }
}

impl ObsContext {
    /// Installs the snapshot on the current thread (a fresh trace-local
    /// tid is assigned); a no-op guard when the snapshot is empty.
    pub fn attach(&self) -> ObsGuard {
        let ctx = self.shared.as_ref().map(|(shared, current)| TlCtx {
            shared: shared.clone(),
            current: *current,
            tid: shared.next_tid.fetch_add(1, Ordering::Relaxed),
        });
        ObsGuard {
            previous: TL.with(|tl| std::mem::replace(&mut *tl.borrow_mut(), ctx)),
        }
    }
}

/// An open span; records itself into the ambient [`Trace`] when dropped.
/// When no trace is attached the guard is inert (but the budget
/// checkpoints at the boundaries still run).
#[derive(Debug)]
#[must_use = "a span records the scope it is alive for; bind it to a `_guard`"]
pub struct Span {
    live: Option<LiveSpan>,
}

#[derive(Debug)]
struct LiveSpan {
    shared: Arc<TraceShared>,
    id: u64,
    parent: u64,
    name: &'static str,
    arg: Option<String>,
    tid: u64,
    start: Instant,
    steps0: u64,
}

/// Opens a span named by the dotted stage taxonomy (see `DESIGN.md` §9).
pub fn span(name: &'static str) -> Span {
    open_span(name, None)
}

/// Opens a span carrying a free-form argument (e.g. the kernel label of
/// a batch row).
pub fn span_arg(name: &'static str, arg: impl Into<String>) -> Span {
    open_span(name, Some(arg.into()))
}

fn open_span(name: &'static str, arg: Option<String>) -> Span {
    // Stage-boundary deadline enforcement: a slow ungoverned stretch
    // must not let the budget's wall-clock overshoot survive into the
    // next stage. Sticky exhaustion makes every later check fail.
    let budget = Budget::ambient();
    let _ = budget.checkpoint();
    let live = TL.with(|tl| {
        let mut tl = tl.borrow_mut();
        let ctx = tl.as_mut()?;
        let id = ctx.shared.next_id.fetch_add(1, Ordering::Relaxed);
        let parent = ctx.current;
        ctx.current = id;
        Some(LiveSpan {
            shared: ctx.shared.clone(),
            id,
            parent,
            name,
            arg,
            tid: ctx.tid,
            start: Instant::now(),
            steps0: budget.steps_used(),
        })
    });
    Span { live }
}

impl Drop for Span {
    fn drop(&mut self) {
        let budget = Budget::ambient();
        if let Some(l) = self.live.take() {
            let dur_us = l.start.elapsed().as_micros() as u64;
            let start_us = l
                .start
                .checked_duration_since(l.shared.epoch)
                .map(|d| d.as_micros() as u64)
                .unwrap_or(0);
            TL.with(|tl| {
                if let Some(ctx) = tl.borrow_mut().as_mut() {
                    if ctx.current == l.id {
                        ctx.current = l.parent;
                    }
                }
            });
            l.shared
                .records
                .lock()
                .expect("obs trace poisoned")
                .push(SpanRecord {
                    id: l.id,
                    parent: l.parent,
                    name: l.name,
                    arg: l.arg,
                    tid: l.tid,
                    start_us,
                    dur_us,
                    steps: budget.steps_used().saturating_sub(l.steps0),
                });
        }
        let _ = budget.checkpoint();
    }
}

// ---------------------------------------------------------------------
// Profile aggregation
// ---------------------------------------------------------------------

/// Aggregated timing of one stage (one span name) under a top-level
/// span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageProfile {
    /// The stage span name.
    pub stage: &'static str,
    /// How many spans with this name ran under the kernel.
    pub calls: u64,
    /// Total wall time across those spans, microseconds.
    pub total_us: u64,
    /// Total budget steps consumed across those spans.
    pub steps: u64,
}

/// Per-stage breakdown of one top-level span (one batch kernel row).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelProfile {
    /// The top-level span's argument (the kernel label), falling back to
    /// its name.
    pub label: String,
    /// The top-level span's duration, microseconds.
    pub total_us: u64,
    /// Budget steps consumed over the whole top-level span.
    pub steps: u64,
    /// Direct child stages in execution order (deeper spans are visible
    /// in the Chrome trace but fold into their stage here — their time
    /// is already contained in it).
    pub stages: Vec<StageProfile>,
}

/// Groups a trace's records into per-kernel, per-stage aggregates:
/// top-level spans (parent 0) become kernels, their direct children
/// become stage rows. Kernels are sorted by label so the breakdown is
/// structurally identical for every `--jobs` value.
pub fn kernel_profiles(records: &[SpanRecord]) -> Vec<KernelProfile> {
    let mut children: HashMap<u64, Vec<&SpanRecord>> = HashMap::new();
    for r in records {
        children.entry(r.parent).or_default().push(r);
    }
    let mut tops: Vec<&SpanRecord> = children.get(&0).cloned().unwrap_or_default();
    tops.sort_by(|a, b| {
        let ka = a.arg.as_deref().unwrap_or(a.name);
        let kb = b.arg.as_deref().unwrap_or(b.name);
        ka.cmp(kb).then(a.id.cmp(&b.id))
    });
    tops.iter()
        .map(|top| {
            // Aggregate direct children by name, keeping first-open
            // order (ids increase in open order within one row).
            let mut order: Vec<&'static str> = Vec::new();
            let mut agg: HashMap<&'static str, StageProfile> = HashMap::new();
            let mut kids: Vec<&SpanRecord> = children.get(&top.id).cloned().unwrap_or_default();
            kids.sort_by_key(|r| r.id);
            for r in kids {
                let e = agg.entry(r.name).or_insert_with(|| {
                    order.push(r.name);
                    StageProfile {
                        stage: r.name,
                        calls: 0,
                        total_us: 0,
                        steps: 0,
                    }
                });
                e.calls += 1;
                e.total_us += r.dur_us;
                e.steps += r.steps;
            }
            KernelProfile {
                label: top.arg.clone().unwrap_or_else(|| top.name.to_string()),
                total_us: top.dur_us,
                steps: top.steps,
                stages: order.into_iter().map(|n| agg.remove(n).unwrap()).collect(),
            }
        })
        .collect()
}

/// The JSON `profile` block of the shared report schema: the current
/// metric counters plus the per-kernel stage breakdown.
pub fn profile_json(records: &[SpanRecord]) -> Json {
    let metrics = Json::Object(
        metrics_snapshot()
            .into_iter()
            .map(|(n, v)| (n.to_string(), Json::Int(v as i64)))
            .collect(),
    );
    let kernels: Vec<Json> = kernel_profiles(records)
        .into_iter()
        .map(|k| {
            Json::obj([
                ("kernel", Json::str(k.label)),
                ("total_us", Json::Int(k.total_us as i64)),
                ("steps", Json::Int(k.steps as i64)),
                (
                    "stages",
                    Json::Array(
                        k.stages
                            .into_iter()
                            .map(|s| {
                                Json::obj([
                                    ("stage", Json::str(s.stage)),
                                    ("calls", Json::Int(s.calls as i64)),
                                    ("total_us", Json::Int(s.total_us as i64)),
                                    ("steps", Json::Int(s.steps as i64)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ])
        })
        .collect();
    Json::obj([("metrics", metrics), ("kernels", Json::Array(kernels))])
}

/// A human-readable per-kernel, per-stage breakdown table (the
/// `--profile` output), ending with the stage-coverage summary: the
/// fraction of kernel wall time accounted for by stage spans.
pub fn render_profile_table(records: &[SpanRecord]) -> String {
    let profiles = kernel_profiles(records);
    let ms = |us: u64| us as f64 / 1000.0;
    let mut out = String::from("profile: per-kernel stage breakdown\n");
    out.push_str(&format!(
        "{:<24} {:<22} {:>5} {:>10} {:>10}\n",
        "kernel", "stage", "calls", "ms", "steps"
    ));
    let mut kernel_us = 0u64;
    let mut stage_us = 0u64;
    for k in &profiles {
        kernel_us += k.total_us;
        out.push_str(&format!(
            "{:<24} {:<22} {:>5} {:>10.2} {:>10}\n",
            k.label,
            "<total>",
            1,
            ms(k.total_us),
            k.steps
        ));
        for s in &k.stages {
            stage_us += s.total_us;
            out.push_str(&format!(
                "{:<24} {:<22} {:>5} {:>10.2} {:>10}\n",
                "",
                s.stage,
                s.calls,
                ms(s.total_us),
                s.steps
            ));
        }
    }
    let coverage = if kernel_us > 0 {
        100.0 * stage_us as f64 / kernel_us as f64
    } else {
        0.0
    };
    out.push_str(&format!(
        "stage coverage: {:.1}% of {:.2} ms kernel time\n",
        coverage,
        ms(kernel_us)
    ));
    out.push_str(&render_metrics_line());
    out.push('\n');
    out
}

// ---------------------------------------------------------------------
// Atomic stderr logging
// ---------------------------------------------------------------------

static LOG: Mutex<()> = Mutex::new(());

/// Writes `text` (a trailing newline is added if missing) to stderr as a
/// single `write_all` behind a process-wide lock, so concurrent writers
/// — worker threads mid-batch, say — can never interleave partial lines
/// into each other or corrupt a `--json` stdout stream consumer that
/// also captures stderr.
pub fn log_block(text: &str) {
    let mut buf = String::with_capacity(text.len() + 1);
    buf.push_str(text);
    if !buf.ends_with('\n') {
        buf.push('\n');
    }
    let _guard = LOG.lock().unwrap_or_else(|e| e.into_inner());
    let _ = std::io::stderr().write_all(buf.as_bytes());
}

/// [`log_block`] over pre-formatted arguments (the [`crate::obs_log!`]
/// macro's backend).
pub fn logln(args: std::fmt::Arguments<'_>) {
    log_block(&args.to_string());
}

/// `eprintln!`-shaped atomic stderr logging through the obs formatter:
/// the whole formatted line is written with one `write_all` under a
/// process-wide lock (see [`obs::log_block`](log_block)).
#[macro_export]
macro_rules! obs_log {
    ($($arg:tt)*) => {
        $crate::obs::logln(::std::format_args!($($arg)*))
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::govern::Exhaustion;
    use std::time::Duration;

    #[test]
    fn spans_record_nesting_and_restore_parent() {
        let trace = Trace::new();
        let _t = trace.attach();
        {
            let _a = span("stage.a");
            {
                let _b = span_arg("stage.b", "detail");
            }
            let _c = span("stage.c");
        }
        let records = trace.records();
        assert_eq!(records.len(), 3);
        let a = records.iter().find(|r| r.name == "stage.a").unwrap();
        let b = records.iter().find(|r| r.name == "stage.b").unwrap();
        let c = records.iter().find(|r| r.name == "stage.c").unwrap();
        assert_eq!(a.parent, 0);
        assert_eq!(b.parent, a.id);
        assert_eq!(c.parent, a.id, "parent restored after sibling closed");
        assert_eq!(b.arg.as_deref(), Some("detail"));
        assert_eq!(a.tid, b.tid);
    }

    #[test]
    fn spans_without_a_trace_are_inert() {
        // No attach: nothing panics, nothing is recorded anywhere.
        let _s = span("stage.orphan");
        drop(_s);
        let trace = Trace::new();
        assert!(trace.records().is_empty());
    }

    #[test]
    fn par_map_nests_worker_spans_under_the_launching_span() {
        let trace = Trace::new();
        let _t = trace.attach();
        let outer_id;
        {
            let _outer = span("stage.fanout");
            outer_id = trace
                .shared
                .next_id
                .load(Ordering::Relaxed)
                .saturating_sub(1);
            let items: Vec<u32> = (0..16).collect();
            crate::par_map(4, &items, |_, _| {
                let _w = span("stage.worker");
            });
        }
        let records = trace.records();
        let workers: Vec<_> = records
            .iter()
            .filter(|r| r.name == "stage.worker")
            .collect();
        assert_eq!(workers.len(), 16);
        for w in &workers {
            assert_eq!(w.parent, outer_id, "worker span must nest under fanout");
        }
        // Worker threads got their own tids (at least the fan-out used
        // more than one distinct tid including the main thread's).
        let outer = records.iter().find(|r| r.name == "stage.fanout").unwrap();
        assert_eq!(outer.parent, 0);
    }

    #[test]
    fn span_boundaries_force_the_deadline_check() {
        // Regression: the governor consults the wall clock only every
        // TIME_CHECK_MASK+1 steps, so a slow ungoverned stretch used to
        // overshoot --timeout-ms until the next governed loop got warm.
        // Span entry/exit must notice a passed deadline immediately,
        // with no step() calls at all — even with no trace attached.
        let budget = Budget::with_limits(Some(Duration::from_millis(5)), None, None);
        let _scope = budget.enter();
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(
            budget.exhausted(),
            None,
            "nothing has checked the clock yet"
        );
        {
            let _stage = span("stage.boundary");
        }
        assert_eq!(
            budget.exhausted(),
            Some(Exhaustion::Deadline),
            "span boundary must mark the sticky deadline exhaustion"
        );
    }

    #[test]
    fn metrics_accumulate_snapshot_and_reset() {
        reset_metrics();
        add(Metric::FmProjections, 3);
        add(Metric::FmProjections, 0); // no-op
        add(Metric::GridPoints, 7);
        assert_eq!(value(Metric::FmProjections), 3);
        let snap = metrics_snapshot();
        assert_eq!(snap.len(), Metric::ALL.len());
        assert!(snap.contains(&("fm.projections", 3)));
        assert!(snap.contains(&("grid.points", 7)));
        let line = render_metrics_line();
        assert!(line.starts_with("metrics:"), "{line}");
        assert!(line.contains("fm.projections=3"), "{line}");
        reset_metrics();
        assert_eq!(value(Metric::GridPoints), 0);
    }

    #[test]
    fn gauge_metrics_are_tagged_and_set_absolutely() {
        // Every registry entry declares a kind, and exactly the
        // level-semantics metrics are gauges — a new gauge added without
        // updating `kind()` would scrape as a counter again.
        for m in Metric::ALL {
            let expect_gauge = matches!(m, Metric::StoreDisabled | Metric::ShardsLive);
            assert_eq!(
                m.kind() == MetricKind::Gauge,
                expect_gauge,
                "{} has the wrong exposition kind",
                m.name()
            );
        }
        set_gauge(Metric::ShardsLive, 3);
        assert_eq!(value(Metric::ShardsLive), 3);
        set_gauge(Metric::ShardsLive, 1);
        assert_eq!(value(Metric::ShardsLive), 1, "gauges overwrite, not add");
        set_gauge(Metric::ShardsLive, 0);
    }

    #[test]
    fn chrome_trace_round_trips_through_the_shared_json() {
        let trace = Trace::new();
        {
            let _t = trace.attach();
            let _a = span_arg("batch.kernel", "matmul");
            let _b = span("iolb.lower_bound");
        }
        let chrome = trace.to_chrome_json();
        let text = chrome.render();
        let back = Json::parse(&text).expect("chrome trace is valid JSON");
        let events = back
            .get("traceEvents")
            .and_then(Json::as_array)
            .expect("traceEvents array");
        assert_eq!(events.len(), 2);
        for e in events {
            assert_eq!(e.get("ph").and_then(Json::as_str), Some("X"));
            assert!(e.get("ts").and_then(Json::as_i64).is_some());
            assert!(e.get("dur").and_then(Json::as_i64).is_some());
        }
    }

    #[test]
    fn kernel_profiles_aggregate_direct_children_only() {
        let trace = Trace::new();
        {
            let _t = trace.attach();
            {
                let _k = span_arg("batch.kernel", "k1");
                {
                    let _s = span("tileopt.optimize");
                    let _deep = span("ioub.permsel"); // nested: folds into its stage
                }
                let _s2 = span("tileopt.optimize"); // second call, same stage
            }
            let _k2 = span_arg("batch.kernel", "k0");
        }
        let profiles = kernel_profiles(&trace.records());
        assert_eq!(profiles.len(), 2);
        // Sorted by label for --jobs determinism.
        assert_eq!(profiles[0].label, "k0");
        assert_eq!(profiles[1].label, "k1");
        let k1 = &profiles[1];
        assert_eq!(k1.stages.len(), 1, "deep span must not appear as a stage");
        assert_eq!(k1.stages[0].stage, "tileopt.optimize");
        assert_eq!(k1.stages[0].calls, 2);
        let table = render_profile_table(&trace.records());
        assert!(table.contains("k1"), "{table}");
        assert!(table.contains("stage coverage"), "{table}");
        let json = profile_json(&trace.records());
        let parsed = Json::parse(&json.render()).expect("profile block is valid JSON");
        assert!(parsed.get("metrics").is_some());
        assert_eq!(
            parsed
                .get("kernels")
                .and_then(Json::as_array)
                .map(<[Json]>::len),
            Some(2)
        );
    }

    #[test]
    fn histogram_buckets_sum_and_quantiles() {
        let h = Histogram::with_bounds_us(&[10, 100, 1_000]);
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile_us(0.5), 0, "empty histogram reports 0");
        for us in [5, 10, 11, 99, 500, 2_000] {
            h.observe_us(us);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum_us(), 5 + 10 + 11 + 99 + 500 + 2_000);
        let view = h.cumulative();
        assert_eq!(
            view,
            vec![(Some(10), 2), (Some(100), 4), (Some(1_000), 5), (None, 6)]
        );
        // p50 lands in the ≤100 bucket (rank 3 of 6); p99 is in +Inf,
        // which reports the last finite bound.
        assert_eq!(h.quantile_us(0.5), 100);
        assert_eq!(h.quantile_us(0.99), 1_000);
    }

    #[test]
    fn histogram_default_latency_bounds_are_increasing() {
        let h = Histogram::latency();
        h.observe_us(300);
        h.observe_us(30_000_000); // beyond the last bound → +Inf bucket
        let view = h.cumulative();
        assert_eq!(view.last(), Some(&(None, 2)));
        assert_eq!(view.len(), LATENCY_BOUNDS_US.len() + 1);
        assert_eq!(h.quantile_us(1.0), *LATENCY_BOUNDS_US.last().unwrap());
    }

    #[test]
    fn histogram_is_safe_under_concurrent_observers() {
        let h = std::sync::Arc::new(Histogram::latency());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..250u64 {
                        h.observe_us(t * 1_000 + i);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("observer joins");
        }
        assert_eq!(h.count(), 1_000);
        assert_eq!(h.cumulative().last(), Some(&(None, 1_000)));
    }
}
