//! A scoped worker pool with deterministic result ordering.

use crate::govern::Budget;
use std::sync::atomic::{AtomicUsize, Ordering};

/// The number of hardware threads available, or 1 when undetectable.
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Maps `f` over `items` on up to `threads` scoped worker threads and
/// returns the results **in input order** — the output is byte-identical
/// to the sequential map for any thread count, which is what lets the
/// analysis pipeline fan out without changing its answers.
///
/// Work is self-scheduled: each worker repeatedly claims the next
/// unclaimed index from a shared atomic counter, so a slow item (one
/// hard tile-size NLP) never serializes the rest of the queue behind it.
/// With `threads <= 1` or fewer than two items the map runs inline on
/// the calling thread with no synchronization at all.
///
/// The calling thread's ambient [`Budget`] (see [`Budget::ambient`]) and
/// tracing context (see [`crate::obs::context`]) are re-installed inside
/// every worker, so governed code deep in `f` observes the same resource
/// budget on every thread of the fan-out and spans opened by workers
/// nest under the span that launched the map.
///
/// Panics in `f` propagate to the caller (the scope joins every worker).
///
/// # Examples
///
/// ```
/// let squares = ioopt_engine::par_map(4, &[1, 2, 3, 4, 5], |_, &x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16, 25]);
/// ```
pub fn par_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let workers = threads.min(n);
    let next = AtomicUsize::new(0);
    let ambient = Budget::ambient();
    let obs_ctx = crate::obs::context();
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let chunks = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let (ambient, obs_ctx, next, f) = (&ambient, &obs_ctx, &next, &f);
                scope.spawn(move || {
                    let _scope = ambient.enter();
                    let _obs = obs_ctx.attach();
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            return local;
                        }
                        local.push((i, f(i, &items[i])));
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("par_map worker panicked"))
            .collect::<Vec<_>>()
    });
    for chunk in chunks {
        for (i, r) in chunk {
            debug_assert!(slots[i].is_none(), "index claimed twice");
            slots[i] = Some(r);
        }
    }
    slots
        .into_iter()
        .map(|s| s.expect("par_map slot unfilled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_deterministic_across_thread_counts() {
        let items: Vec<u64> = (0..257).collect();
        let seq = par_map(1, &items, |i, &x| (i as u64) * 1000 + x * x);
        for threads in [2, 3, 8, 64] {
            let par = par_map(threads, &items, |i, &x| (i as u64) * 1000 + x * x);
            assert_eq!(seq, par, "threads = {threads}");
        }
    }

    #[test]
    fn handles_empty_and_singleton() {
        let empty: Vec<i32> = Vec::new();
        assert!(par_map(8, &empty, |_, &x| x).is_empty());
        assert_eq!(par_map(8, &[7], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn more_threads_than_items() {
        let items = [1, 2, 3];
        assert_eq!(par_map(100, &items, |_, &x| x * 2), vec![2, 4, 6]);
    }

    #[test]
    fn uneven_work_is_rebalanced() {
        // One expensive item must not force a serial tail: just check
        // correctness under skew (timing is for the benches).
        let items: Vec<u64> = (0..32).collect();
        let out = par_map(4, &items, |_, &x| {
            let spins = if x == 0 { 200_000 } else { 10 };
            let mut acc = x;
            for i in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            (x, acc)
        });
        for (i, (x, _)) in out.iter().enumerate() {
            assert_eq!(*x, i as u64);
        }
    }

    #[test]
    fn available_threads_is_positive() {
        assert!(available_threads() >= 1);
    }
}
