//! A scoped worker pool with deterministic result ordering, plus the
//! bounded MPMC queue the serving layer uses for admission control.

use crate::govern::Budget;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// The number of hardware threads available, or 1 when undetectable.
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Maps `f` over `items` on up to `threads` scoped worker threads and
/// returns the results **in input order** — the output is byte-identical
/// to the sequential map for any thread count, which is what lets the
/// analysis pipeline fan out without changing its answers.
///
/// Work is self-scheduled: each worker repeatedly claims the next
/// unclaimed index from a shared atomic counter, so a slow item (one
/// hard tile-size NLP) never serializes the rest of the queue behind it.
/// With `threads <= 1` or fewer than two items the map runs inline on
/// the calling thread with no synchronization at all.
///
/// The calling thread's ambient [`Budget`] (see [`Budget::ambient`]) and
/// tracing context (see [`crate::obs::context`]) are re-installed inside
/// every worker, so governed code deep in `f` observes the same resource
/// budget on every thread of the fan-out and spans opened by workers
/// nest under the span that launched the map.
///
/// Panics in `f` propagate to the caller (the scope joins every worker).
///
/// # Examples
///
/// ```
/// let squares = ioopt_engine::par_map(4, &[1, 2, 3, 4, 5], |_, &x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16, 25]);
/// ```
pub fn par_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let workers = threads.min(n);
    let next = AtomicUsize::new(0);
    let ambient = Budget::ambient();
    let obs_ctx = crate::obs::context();
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let chunks = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let (ambient, obs_ctx, next, f) = (&ambient, &obs_ctx, &next, &f);
                scope.spawn(move || {
                    let _scope = ambient.enter();
                    let _obs = obs_ctx.attach();
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            return local;
                        }
                        local.push((i, f(i, &items[i])));
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("par_map worker panicked"))
            .collect::<Vec<_>>()
    });
    for chunk in chunks {
        for (i, r) in chunk {
            debug_assert!(slots[i].is_none(), "index claimed twice");
            slots[i] = Some(r);
        }
    }
    slots
        .into_iter()
        .map(|s| s.expect("par_map slot unfilled"))
        .collect()
}

#[derive(Debug)]
struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Why [`BoundedQueue::try_push`] handed an item back. The two cases
/// demand different producer reactions: `Full` is transient overload
/// (retry later — HTTP 429 + `Retry-After`), `Closed` is a permanent
/// drain (go elsewhere — HTTP 503, no retry hint).
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity; it may accept the item again soon.
    Full(T),
    /// The queue has been closed; it will never accept an item again.
    Closed(T),
}

impl<T> PushError<T> {
    /// Recovers the rejected item regardless of the reason.
    pub fn into_inner(self) -> T {
        match self {
            PushError::Full(item) | PushError::Closed(item) => item,
        }
    }
}

/// A bounded multi-producer / multi-consumer queue with *rejecting*
/// overflow semantics: [`BoundedQueue::try_push`] never blocks and hands
/// the item back when the queue is full, so the producer can apply
/// backpressure (the serving layer turns a full queue into an HTTP 429
/// instead of queuing unboundedly).
///
/// Consumers block in [`BoundedQueue::pop`] until an item arrives or the
/// queue is [closed](BoundedQueue::close); a closed queue still drains
/// every item that was admitted before the close, which is what gives
/// the server its graceful-drain semantics (stop accepting, finish
/// everything in flight).
#[derive(Debug)]
pub struct BoundedQueue<T> {
    capacity: usize,
    state: Mutex<QueueState<T>>,
    available: Condvar,
}

impl<T> BoundedQueue<T> {
    /// An open queue admitting at most `capacity` items at a time
    /// (`capacity` is clamped to at least 1).
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            capacity: capacity.max(1),
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
        }
    }

    /// The admission capacity this queue was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Admits `item` if there is room; hands it back when the queue is
    /// full ([`PushError::Full`]) or closed ([`PushError::Closed`]) so
    /// the producer can distinguish transient overload from a permanent
    /// drain. Never blocks.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut state = self.state.lock().expect("queue poisoned");
        if state.closed {
            return Err(PushError::Closed(item));
        }
        if state.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        state.items.push_back(item);
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks until an item is available and returns it, or returns
    /// `None` once the queue is closed *and* fully drained.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.available.wait(state).expect("queue poisoned");
        }
    }

    /// Closes the queue: future pushes are rejected, and consumers get
    /// `None` once the already-admitted items are drained.
    pub fn close(&self) {
        self.state.lock().expect("queue poisoned").closed = true;
        self.available.notify_all();
    }

    /// Items currently waiting (a point-in-time snapshot; the `/metrics`
    /// queue-depth gauge).
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue poisoned").items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_deterministic_across_thread_counts() {
        let items: Vec<u64> = (0..257).collect();
        let seq = par_map(1, &items, |i, &x| (i as u64) * 1000 + x * x);
        for threads in [2, 3, 8, 64] {
            let par = par_map(threads, &items, |i, &x| (i as u64) * 1000 + x * x);
            assert_eq!(seq, par, "threads = {threads}");
        }
    }

    #[test]
    fn handles_empty_and_singleton() {
        let empty: Vec<i32> = Vec::new();
        assert!(par_map(8, &empty, |_, &x| x).is_empty());
        assert_eq!(par_map(8, &[7], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn more_threads_than_items() {
        let items = [1, 2, 3];
        assert_eq!(par_map(100, &items, |_, &x| x * 2), vec![2, 4, 6]);
    }

    #[test]
    fn uneven_work_is_rebalanced() {
        // One expensive item must not force a serial tail: just check
        // correctness under skew (timing is for the benches).
        let items: Vec<u64> = (0..32).collect();
        let out = par_map(4, &items, |_, &x| {
            let spins = if x == 0 { 200_000 } else { 10 };
            let mut acc = x;
            for i in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            (x, acc)
        });
        for (i, (x, _)) in out.iter().enumerate() {
            assert_eq!(*x, i as u64);
        }
    }

    #[test]
    fn available_threads_is_positive() {
        assert!(available_threads() >= 1);
    }

    #[test]
    fn bounded_queue_rejects_overflow_and_drains_on_close() {
        let q: BoundedQueue<u32> = BoundedQueue::new(2);
        assert_eq!(q.capacity(), 2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(
            q.try_push(3),
            Err(PushError::Full(3)),
            "full queue hands the item back as transient overload"
        );
        assert_eq!(q.len(), 2);
        q.close();
        assert_eq!(
            q.try_push(4),
            Err(PushError::Closed(4)),
            "closed queue rejects pushes as permanent"
        );
        assert_eq!(PushError::Closed(4).into_inner(), 4);
        // Admitted items still drain after the close, in FIFO order.
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn bounded_queue_wakes_blocked_consumers() {
        let q: std::sync::Arc<BoundedQueue<u32>> = std::sync::Arc::new(BoundedQueue::new(4));
        let consumer = {
            let q = q.clone();
            std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(v) = q.pop() {
                    got.push(v);
                }
                got
            })
        };
        for v in 0..8u32 {
            // Capacity 4: spin until the consumer makes room.
            let mut item = v;
            while let Err(back) = q.try_push(item) {
                assert!(
                    matches!(back, PushError::Full(_)),
                    "an open queue can only reject as Full"
                );
                item = back.into_inner();
                std::thread::yield_now();
            }
        }
        q.close();
        let got = consumer.join().expect("consumer joins");
        assert_eq!(got, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn bounded_queue_capacity_is_at_least_one() {
        let q: BoundedQueue<u8> = BoundedQueue::new(0);
        assert_eq!(q.capacity(), 1);
        assert!(q.try_push(9).is_ok());
        assert_eq!(q.try_push(10), Err(PushError::Full(10)));
        assert_eq!(q.pop(), Some(9));
    }
}
