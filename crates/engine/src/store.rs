//! Crash-safe persistent memo store: append-only, content-addressed
//! on-disk segments layered beneath the in-memory [`crate::MemoCache`]
//! as a write-through second tier.
//!
//! # Frame format
//!
//! A segment file starts with an 8-byte magic (`IOSTORE1`) and then
//! holds length-prefixed frames:
//!
//! ```text
//! u32 payload_len (LE) | u32 crc32(payload) (LE) | payload
//! payload = u64 key_hash (LE) | u32 key_len (LE) | key bytes | value bytes
//! ```
//!
//! The key hash is the same FNV-1a the memo cache uses
//! ([`crate::StableHasher`]); like the cache, the store is
//! content-addressed — a lookup compares the **full key bytes**, never
//! trusting the hash. Duplicate keys are resolved append-wins: the last
//! frame for a key is the live one, earlier frames become garbage that
//! [`compact_dir`] drops.
//!
//! # Fsync discipline
//!
//! Appends go straight to the segment file (`write_all`, no user-space
//! buffer) and the file is fsynced every [`SYNC_EVERY`] appends and on
//! [`PersistentStore::flush`] (which the serving layer calls during
//! graceful drain, and `Drop` calls as a backstop). A `kill -9`
//! therefore loses at most nothing (page-cache writes survive process
//! death); only an OS crash can tear the tail of a segment.
//!
//! # Recovery and quarantine
//!
//! Opening a store scans every segment front to back, rebuilding the
//! in-memory index. A frame that fails validation is classified:
//!
//! * **Torn tail** — the failure extends to end-of-file in the *last*
//!   segment (incomplete header, incomplete payload, or a bad checksum
//!   on the final frame). This is what a crash mid-write leaves behind:
//!   the file is truncated back to the last good frame and the store
//!   counts one `store.recovered` event.
//! * **Mid-file corruption** — anything else (bad magic, garbage length,
//!   checksum failure with more data after it, or any failure in a
//!   non-last segment). The whole segment is quarantined: renamed to
//!   `*.quarantined`, dropped from the index, counted in
//!   `store.quarantined` — and the scan continues with the next segment.
//!
//! Either way the store **never serves a bad value and never refuses to
//! start**. Reads re-verify the checksum and the full key, so even a
//! file mutated behind a running store cannot leak wrong bytes.
//!
//! # Sticky memory-only degradation
//!
//! Following the workspace degradation doctrine (DESIGN.md §8), any
//! persistent I/O error — `ENOSPC`, `EIO`, a permission failure —
//! flips the store into a *sticky* memory-only mode: every later `get`
//! misses, every later `put`/`flush` is a no-op, the `store.disabled`
//! metric records the flip, and the process keeps answering with
//! correct (recomputed) bytes. Durability degrades; correctness never.

use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use crate::memo::StableHasher;
use crate::obs::{self, Metric};

/// Segment-file magic: 7 ASCII bytes + a format version.
pub const MAGIC: &[u8; 8] = b"IOSTORE1";

/// Frame header size: `u32` payload length + `u32` CRC32.
const FRAME_HEADER: usize = 8;

/// Minimum payload: key hash (8) + key length (4), with an empty key
/// and value.
const MIN_PAYLOAD: u32 = 12;

/// Upper bound on one frame's payload; a length field beyond it is
/// garbage, not a large record.
const MAX_FRAME: u32 = 16 * 1024 * 1024;

/// Appends between fsyncs (fsync-on-batch); `flush` always syncs.
const SYNC_EVERY: u32 = 8;

/// Target segment size; an append beyond it rolls to a fresh segment.
const SEGMENT_TARGET: u64 = 8 * 1024 * 1024;

/// Reserved store-internal key of the per-key access-clock frame that
/// [`compact_dir`] persists in the compacted segment. Keys starting with
/// a NUL byte are reserved for the store itself — no caller tier uses
/// them (row-store keys start with ASCII `i`), so collision is
/// impossible by construction.
const CLOCK_KEY: &[u8] = b"\0ioopt/access-clock";

/// Sidecar file of 8-byte LE key hashes, appended on flush for every
/// key read or written since the last flush. Purely advisory: it feeds
/// [`compact_dir`]'s eviction decision and losing it only delays an
/// eviction by one compaction window, so its I/O is best-effort and
/// deliberately outside the fault-injection counters.
const ACCESS_LOG: &str = "access.log";

/// True for keys the store reserves for itself (never served to callers
/// through stats, access tracking, or compaction's live set).
fn is_reserved_key(key: &[u8]) -> bool {
    key.first() == Some(&0)
}

// ---------------------------------------------------------------------
// CRC32 (IEEE 802.3), table-driven, zero dependencies.
// ---------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xedb8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// IEEE CRC32 of `bytes` (the checksum every frame carries).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xffff_ffffu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ u32::from(b)) & 0xff) as usize] ^ (c >> 8);
    }
    c ^ 0xffff_ffff
}

// ---------------------------------------------------------------------
// Fault injection (disk faults), IOOPT_FAULT directives
// ---------------------------------------------------------------------

/// Which file operation a fault directive targets.
#[cfg(any(test, feature = "fault-inject"))]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum IoOp {
    Open,
    Read,
    Write,
    Sync,
}

#[cfg(any(test, feature = "fault-inject"))]
mod faults {
    //! `IOOPT_FAULT` disk directives (compiled only under `cfg(test)` or
    //! the `fault-inject` feature, like the batch-layer hook):
    //!
    //! * `io:<op>[:<nth>]` — fail the `nth` (1-based) call of `op`
    //!   (`open`, `read`, `write`, `sync`) with an injected `EIO`;
    //!   without `<nth>`, every call fails. The first failure flips the
    //!   sticky memory-only mode, so `io:write` deterministically
    //!   exercises the degradation path end to end.
    //! * `torn-write` — the next append writes only the first half of
    //!   its frame and then flips the store into memory-only mode,
    //!   simulating a crash mid-write; the next open must truncate the
    //!   torn tail.

    use super::IoOp;
    use std::sync::atomic::{AtomicU64, Ordering};

    static CALLS: [AtomicU64; 4] = [const { AtomicU64::new(0) }; 4];
    static TORN_CONSUMED: AtomicU64 = AtomicU64::new(0);

    fn op_name(op: IoOp) -> &'static str {
        match op {
            IoOp::Open => "open",
            IoOp::Read => "read",
            IoOp::Write => "write",
            IoOp::Sync => "sync",
        }
    }

    pub(super) fn injected(op: IoOp) -> Option<std::io::Error> {
        let spec = std::env::var("IOOPT_FAULT").ok()?;
        for directive in spec.split(',').map(str::trim) {
            let mut parts = directive.splitn(3, ':');
            if parts.next() != Some("io") || parts.next() != Some(op_name(op)) {
                continue;
            }
            let n = CALLS[op as usize].fetch_add(1, Ordering::SeqCst) + 1;
            let hit = match parts.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(nth) => n == nth,
                None => true,
            };
            if hit {
                return Some(std::io::Error::other(format!(
                    "injected fault: io:{} (call {n})",
                    op_name(op)
                )));
            }
        }
        None
    }

    /// Consumes the one-shot `torn-write` directive.
    pub(super) fn take_torn_write() -> bool {
        let Ok(spec) = std::env::var("IOOPT_FAULT") else {
            return false;
        };
        spec.split(',').map(str::trim).any(|d| d == "torn-write")
            && TORN_CONSUMED.fetch_add(1, Ordering::SeqCst) == 0
    }
}

#[cfg(any(test, feature = "fault-inject"))]
fn fault_check(op: IoOp) -> io::Result<()> {
    match faults::injected(op) {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

#[cfg(not(any(test, feature = "fault-inject")))]
#[inline]
fn fault_check_noop() {}

macro_rules! faultable {
    ($op:ident, $body:expr) => {{
        #[cfg(any(test, feature = "fault-inject"))]
        fault_check(IoOp::$op)?;
        #[cfg(not(any(test, feature = "fault-inject")))]
        fault_check_noop();
        $body
    }};
}

// ---------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------

/// A snapshot of one store's counters (windowed accounting works the
/// same way as [`crate::CacheStats`]: keep a baseline and [`StoreStats::delta`]
/// against it).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StoreStats {
    /// Live segments on disk.
    pub segments: usize,
    /// Distinct keys the index serves.
    pub live_keys: usize,
    /// Frames scanned at open plus frames appended since.
    pub frames: u64,
    /// Bytes across live segments (as of the last append).
    pub bytes: u64,
    /// Lookups answered from disk.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Frames appended.
    pub writes: u64,
    /// Torn-tail truncation events at open.
    pub recovered: u64,
    /// Segments quarantined at open.
    pub quarantined: u64,
    /// Whether the store is in sticky memory-only mode.
    pub disabled: bool,
}

impl StoreStats {
    /// Hit ratio over the lookups in this snapshot (0 when idle).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// The counters accumulated since `baseline` (gauges — segment,
    /// key, byte, and disabled state — stay absolute).
    pub fn delta(&self, baseline: &StoreStats) -> StoreStats {
        StoreStats {
            segments: self.segments,
            live_keys: self.live_keys,
            frames: self.frames,
            bytes: self.bytes,
            hits: self.hits.saturating_sub(baseline.hits),
            misses: self.misses.saturating_sub(baseline.misses),
            writes: self.writes.saturating_sub(baseline.writes),
            recovered: self.recovered,
            quarantined: self.quarantined,
            disabled: self.disabled,
        }
    }
}

// ---------------------------------------------------------------------
// Segment scanning
// ---------------------------------------------------------------------

#[derive(Debug)]
struct FrameRef {
    key: Vec<u8>,
    offset: u64,
    frame_len: u32,
}

#[derive(Debug, PartialEq, Eq)]
enum ScanEnd {
    Clean,
    /// Torn tail starting at this offset (only possible in the last
    /// segment; callers truncate there).
    Torn(u64),
    /// Mid-file corruption at this offset; callers quarantine.
    Corrupt(u64),
}

/// Scans one segment image front to back. `last` marks the final
/// segment of the store, the only place a torn tail is a legal state.
fn scan_segment(bytes: &[u8], last: bool) -> (Vec<FrameRef>, ScanEnd) {
    let mut frames = Vec::new();
    if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
        // A header shorter than the magic can only be a crash during
        // segment creation — recoverable only as the trailing file.
        let end = if last && bytes.len() < MAGIC.len() {
            ScanEnd::Torn(0)
        } else {
            ScanEnd::Corrupt(0)
        };
        return (frames, end);
    }
    let mut off = MAGIC.len() as u64;
    let len = bytes.len() as u64;
    loop {
        let rem = len - off;
        if rem == 0 {
            return (frames, ScanEnd::Clean);
        }
        let torn_or_corrupt = |at: u64| {
            if last {
                ScanEnd::Torn(at)
            } else {
                ScanEnd::Corrupt(at)
            }
        };
        if rem < FRAME_HEADER as u64 {
            return (frames, torn_or_corrupt(off));
        }
        let header = &bytes[off as usize..off as usize + FRAME_HEADER];
        let payload_len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
        let crc = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
        if !(MIN_PAYLOAD..=MAX_FRAME).contains(&payload_len) {
            // A garbage length field means nothing after this offset can
            // be parsed. In the last segment that is what a crash tearing
            // the final frame's header leaves behind — truncating keeps
            // every good frame before it, where quarantining would lose
            // the whole segment. Mid-file (any earlier segment) a frame
            // boundary can only land on garbage through real corruption.
            return (frames, torn_or_corrupt(off));
        }
        if rem - (FRAME_HEADER as u64) < u64::from(payload_len) {
            return (frames, torn_or_corrupt(off));
        }
        let start = off as usize + FRAME_HEADER;
        let payload = &bytes[start..start + payload_len as usize];
        let frame_end = off + FRAME_HEADER as u64 + u64::from(payload_len);
        if crc32(payload) != crc {
            // A bad checksum on the very last frame of the last segment
            // is a partially persisted write; anywhere else it is
            // mid-file corruption.
            let end = if last && frame_end == len {
                ScanEnd::Torn(off)
            } else {
                ScanEnd::Corrupt(off)
            };
            return (frames, end);
        }
        let key_len = u32::from_le_bytes([payload[8], payload[9], payload[10], payload[11]]);
        if MIN_PAYLOAD + key_len > payload_len {
            return (frames, ScanEnd::Corrupt(off));
        }
        frames.push(FrameRef {
            key: payload[12..12 + key_len as usize].to_vec(),
            offset: off,
            frame_len: FRAME_HEADER as u32 + payload_len,
        });
        off = frame_end;
    }
}

fn encode_frame(key: &[u8], value: &[u8]) -> Vec<u8> {
    let payload_len = MIN_PAYLOAD as usize + key.len() + value.len();
    let mut frame = Vec::with_capacity(FRAME_HEADER + payload_len);
    frame.extend_from_slice(&(payload_len as u32).to_le_bytes());
    frame.extend_from_slice(&[0u8; 4]); // CRC patched below
    let mut hasher = StableHasher::new();
    hasher.write(key);
    frame.extend_from_slice(&hasher.finish().to_le_bytes());
    frame.extend_from_slice(&(key.len() as u32).to_le_bytes());
    frame.extend_from_slice(key);
    frame.extend_from_slice(value);
    let crc = crc32(&frame[FRAME_HEADER..]);
    frame[4..8].copy_from_slice(&crc.to_le_bytes());
    frame
}

fn segment_name(id: u32) -> String {
    format!("seg-{id:06}.log")
}

fn segment_id(name: &str) -> Option<u32> {
    name.strip_prefix("seg-")?
        .strip_suffix(".log")?
        .parse()
        .ok()
}

fn list_segments(dir: &Path) -> io::Result<Vec<(u32, PathBuf)>> {
    let mut segments = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        if !entry.path().is_file() {
            continue;
        }
        let Some(name) = entry.file_name().to_str().map(str::to_string) else {
            continue;
        };
        if let Some(id) = segment_id(&name) {
            segments.push((id, entry.path()));
        }
    }
    segments.sort_by_key(|(id, _)| *id);
    Ok(segments)
}

// ---------------------------------------------------------------------
// The store
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
struct Location {
    segment: u32,
    offset: u64,
    frame_len: u32,
}

struct Inner {
    /// Full key bytes → latest frame (append-wins).
    index: HashMap<Vec<u8>, Location>,
    /// Read handles, opened on demand, keyed by segment id.
    readers: HashMap<u32, File>,
    /// Append handle on the current (highest-id) segment.
    current: Option<File>,
    current_id: u32,
    current_len: u64,
    appends_since_sync: u32,
    frames: u64,
    bytes: u64,
    segments: usize,
    /// Key hashes read or written since the last flush, buffered for the
    /// access-log sidecar (see [`ACCESS_LOG`]).
    accessed: Vec<u64>,
}

/// The append-only, content-addressed on-disk memo store. See the
/// module docs for the format and the recovery/degradation rules.
///
/// All methods are `&self` and thread-safe; `get`/`put` serialize on an
/// internal lock (the values stored here are whole analysis rows — the
/// disk tier is consulted once per row, not in any hot loop).
pub struct PersistentStore {
    dir: PathBuf,
    inner: Mutex<Inner>,
    disabled: AtomicBool,
    readonly: bool,
    hits: AtomicU64,
    misses: AtomicU64,
    writes: AtomicU64,
    recovered: u64,
    quarantined: u64,
}

impl std::fmt::Debug for PersistentStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PersistentStore")
            .field("dir", &self.dir)
            .field("disabled", &self.disabled.load(Ordering::Relaxed))
            .finish()
    }
}

impl PersistentStore {
    /// Opens (or creates) the store under `dir`, scanning every segment
    /// to rebuild the index — truncating a torn tail, quarantining
    /// corrupt segments, and **never failing**: when the directory
    /// cannot be prepared at all, the returned store starts in sticky
    /// memory-only mode instead of erroring.
    pub fn open(dir: &Path) -> PersistentStore {
        PersistentStore::open_with(dir, false)
    }

    /// Opens the store under `dir` for inspection only: segments are
    /// scanned with the same validation as [`PersistentStore::open`],
    /// but **nothing on disk is touched** — no directory creation, no
    /// torn-tail truncation, no quarantine rename. A torn tail still
    /// indexes every good frame before it and counts one *pending*
    /// recovery in [`StoreStats::recovered`]; a corrupt segment's frames
    /// are skipped and counted in [`StoreStats::quarantined`]. This is
    /// what lets `ioopt cache stats` inspect a partition a live shard
    /// owns without racing its single writer. `put`/`flush` are no-ops;
    /// a missing directory is an empty store, not an error.
    pub fn open_readonly(dir: &Path) -> PersistentStore {
        PersistentStore::open_with(dir, true)
    }

    fn open_with(dir: &Path, readonly: bool) -> PersistentStore {
        let mut store = PersistentStore {
            dir: dir.to_path_buf(),
            inner: Mutex::new(Inner {
                index: HashMap::new(),
                readers: HashMap::new(),
                current: None,
                current_id: 1,
                current_len: 0,
                appends_since_sync: 0,
                frames: 0,
                bytes: 0,
                segments: 0,
                accessed: Vec::new(),
            }),
            disabled: AtomicBool::new(false),
            readonly,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            recovered: 0,
            quarantined: 0,
        };
        if let Err(e) = store.open_impl() {
            store.disable(&format!("open {}: {e}", dir.display()));
        }
        store
    }

    fn open_impl(&mut self) -> io::Result<()> {
        if self.readonly {
            if !self.dir.is_dir() {
                return Ok(());
            }
        } else {
            faultable!(Open, fs::create_dir_all(&self.dir)?);
        }
        let readonly = self.readonly;
        let segments = list_segments(&self.dir)?;
        let inner = self.inner.get_mut().unwrap_or_else(|e| e.into_inner());
        let mut max_id = 0u32;
        let last_index = segments.len().saturating_sub(1);
        for (i, (id, path)) in segments.iter().enumerate() {
            max_id = max_id.max(*id);
            let bytes = faultable!(Read, fs::read(path)?);
            let (frames, end) = scan_segment(&bytes, i == last_index);
            match end {
                ScanEnd::Clean | ScanEnd::Torn(_) => {
                    if let ScanEnd::Torn(at) = end {
                        // Crash mid-write: drop the torn tail, keep every
                        // good frame before it. A read-only open reports
                        // the pending repair but leaves the file alone.
                        if !readonly {
                            let file = OpenOptions::new().write(true).open(path)?;
                            file.set_len(at)?;
                            file.sync_data()?;
                            obs::add(Metric::StoreRecovered, 1);
                            crate::obs_log!(
                                "store: truncated torn frame at byte {at} of {}",
                                path.display()
                            );
                        }
                        self.recovered += 1;
                    }
                    let segment_len = match end {
                        ScanEnd::Torn(at) => at,
                        _ => bytes.len() as u64,
                    };
                    for frame in frames {
                        inner.index.insert(
                            frame.key,
                            Location {
                                segment: *id,
                                offset: frame.offset,
                                frame_len: frame.frame_len,
                            },
                        );
                        inner.frames += 1;
                    }
                    inner.bytes += segment_len;
                    inner.segments += 1;
                    if i == last_index {
                        inner.current_id = *id;
                        inner.current_len = segment_len;
                    }
                }
                ScanEnd::Corrupt(at) => {
                    // Mid-file corruption: nothing in this segment can be
                    // trusted past validation, and index entries pointing
                    // into a renamed file would dangle — drop the whole
                    // segment. Frames it superseded in older segments
                    // become live again (they are valid, just stale). A
                    // read-only open skips the frames without renaming.
                    if !readonly {
                        let quarantined = path.with_extension("log.quarantined");
                        fs::rename(path, &quarantined)?;
                        obs::add(Metric::StoreQuarantined, 1);
                        crate::obs_log!(
                            "store: quarantined {} (corruption at byte {at})",
                            path.display()
                        );
                    }
                    self.quarantined += 1;
                    if i == last_index {
                        // The append segment is gone; start a fresh one.
                        inner.current_id = max_id + 1;
                        inner.current_len = 0;
                    }
                }
            }
        }
        if segments.is_empty() {
            inner.current_id = 1;
            inner.current_len = 0;
        }
        Ok(())
    }

    /// The directory this store persists under.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Whether the store has flipped into sticky memory-only mode.
    pub fn is_disabled(&self) -> bool {
        self.disabled.load(Ordering::SeqCst)
    }

    /// Whether this store was opened with
    /// [`PersistentStore::open_readonly`].
    pub fn is_readonly(&self) -> bool {
        self.readonly
    }

    /// Buffers `key`'s hash for the access-log sidecar (reserved keys
    /// and read-only opens never track).
    fn record_access(&self, inner: &mut Inner, key: &[u8]) {
        if self.readonly || is_reserved_key(key) {
            return;
        }
        let mut hasher = StableHasher::new();
        hasher.write(key);
        inner.accessed.push(hasher.finish());
    }

    /// Appends the buffered access hashes to the sidecar. Best-effort by
    /// design: the log only tunes compaction's eviction, so an I/O error
    /// here must neither disable the store nor perturb the
    /// fault-injection call counters (no `faultable!`).
    fn flush_access(&self, inner: &mut Inner) {
        if self.readonly || inner.accessed.is_empty() {
            return;
        }
        let mut buf = Vec::with_capacity(inner.accessed.len() * 8);
        for hash in &inner.accessed {
            buf.extend_from_slice(&hash.to_le_bytes());
        }
        inner.accessed.clear();
        if let Ok(mut file) = OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.dir.join(ACCESS_LOG))
        {
            let _ = file.write_all(&buf);
        }
    }

    fn disable(&self, reason: &str) {
        if !self.disabled.swap(true, Ordering::SeqCst) {
            obs::add(Metric::StoreDisabled, 1);
            crate::obs_log!(
                "store: persistent I/O error — continuing in memory-only mode ({reason})"
            );
        }
    }

    /// Looks up `key`, re-verifying the frame checksum and the full key
    /// bytes before serving. Disabled stores always miss; an I/O error
    /// during the read flips memory-only mode and reports a miss.
    pub fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        if self.is_disabled() {
            return None;
        }
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let Some(location) = inner.index.get(key).copied() else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            obs::add(Metric::StoreMisses, 1);
            return None;
        };
        match self.read_frame(&mut inner, location, key) {
            Ok(Some(value)) => {
                self.record_access(&mut inner, key);
                self.hits.fetch_add(1, Ordering::Relaxed);
                obs::add(Metric::StoreHits, 1);
                Some(value)
            }
            Ok(None) => {
                // The frame no longer validates (the file changed under
                // us): drop the entry so it is recomputed, never served.
                inner.index.remove(key);
                self.misses.fetch_add(1, Ordering::Relaxed);
                obs::add(Metric::StoreMisses, 1);
                None
            }
            Err(e) => {
                drop(inner);
                self.misses.fetch_add(1, Ordering::Relaxed);
                obs::add(Metric::StoreMisses, 1);
                self.disable(&format!("read: {e}"));
                None
            }
        }
    }

    fn read_frame(
        &self,
        inner: &mut Inner,
        location: Location,
        key: &[u8],
    ) -> io::Result<Option<Vec<u8>>> {
        // Make sure the append handle's bytes are visible to the read
        // handle (write_all goes straight to the fd, so they are; this
        // is belt and braces for the current segment).
        let file = match inner.readers.entry(location.segment) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(e) => {
                let path = self.dir.join(segment_name(location.segment));
                e.insert(faultable!(Open, File::open(path)?))
            }
        };
        file.seek(SeekFrom::Start(location.offset))?;
        let mut frame = vec![0u8; location.frame_len as usize];
        faultable!(Read, file.read_exact(&mut frame)?);
        let payload = &frame[FRAME_HEADER..];
        let crc = u32::from_le_bytes([frame[4], frame[5], frame[6], frame[7]]);
        if crc32(payload) != crc {
            return Ok(None);
        }
        let key_len =
            u32::from_le_bytes([payload[8], payload[9], payload[10], payload[11]]) as usize;
        if MIN_PAYLOAD as usize + key_len > payload.len() || &payload[12..12 + key_len] != key {
            return Ok(None);
        }
        Ok(Some(payload[12 + key_len..].to_vec()))
    }

    /// Appends `(key, value)` as a new frame (write-through: callers
    /// keep their in-memory tier authoritative). No-op once disabled;
    /// an I/O error flips memory-only mode instead of propagating.
    pub fn put(&self, key: &[u8], value: &[u8]) {
        if self.readonly || self.is_disabled() {
            return;
        }
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        match self.append_frame(&mut inner, key, value) {
            Ok(()) => {
                self.record_access(&mut inner, key);
                self.writes.fetch_add(1, Ordering::Relaxed);
                obs::add(Metric::StoreWrites, 1);
            }
            Err(e) => {
                drop(inner);
                self.disable(&format!("write: {e}"));
            }
        }
    }

    fn append_frame(&self, inner: &mut Inner, key: &[u8], value: &[u8]) -> io::Result<()> {
        let frame = encode_frame(key, value);
        if inner.current.is_some() && inner.current_len + frame.len() as u64 > SEGMENT_TARGET {
            // Roll: sync and retire the full segment, then fall through
            // to create the next one.
            if let Some(file) = inner.current.take() {
                faultable!(Sync, file.sync_data()?);
            }
            inner.current_id += 1;
            inner.current_len = 0;
            inner.appends_since_sync = 0;
        }
        if inner.current.is_none() {
            let path = self.dir.join(segment_name(inner.current_id));
            let mut file = faultable!(
                Open,
                OpenOptions::new().create(true).append(true).open(path)?
            );
            if inner.current_len == 0 {
                faultable!(Write, file.write_all(MAGIC)?);
                inner.current_len = MAGIC.len() as u64;
                inner.bytes += MAGIC.len() as u64;
                inner.segments += 1;
            }
            inner.current = Some(file);
        }
        let offset = inner.current_len;
        #[cfg(any(test, feature = "fault-inject"))]
        if faults::take_torn_write() {
            // Crash simulation: half a frame reaches the disk, then the
            // store goes memory-only as if the process had died here.
            let file = inner.current.as_mut().unwrap_or_else(|| unreachable!());
            file.write_all(&frame[..frame.len() / 2])?;
            file.sync_data()?;
            return Err(io::Error::other("injected fault: torn-write"));
        }
        {
            let file = inner
                .current
                .as_mut()
                .unwrap_or_else(|| unreachable!("append handle opened above"));
            faultable!(Write, file.write_all(&frame)?);
            inner.appends_since_sync += 1;
            if inner.appends_since_sync >= SYNC_EVERY {
                faultable!(Sync, file.sync_data()?);
                inner.appends_since_sync = 0;
            }
        }
        inner.current_len += frame.len() as u64;
        inner.bytes += frame.len() as u64;
        inner.frames += 1;
        inner.index.insert(
            key.to_vec(),
            Location {
                segment: inner.current_id,
                offset,
                frame_len: frame.len() as u32,
            },
        );
        Ok(())
    }

    /// Fsyncs the current segment (the graceful-drain durability hook:
    /// a clean shutdown must never rely on crash recovery). No-op when
    /// disabled; an error flips memory-only mode.
    pub fn flush(&self) {
        if self.readonly || self.is_disabled() {
            return;
        }
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        self.flush_access(&mut inner);
        let result: io::Result<()> = (|| {
            let pending = inner.appends_since_sync > 0;
            if let Some(file) = inner.current.as_mut() {
                if pending {
                    faultable!(Sync, file.sync_data()?);
                }
            }
            inner.appends_since_sync = 0;
            Ok(())
        })();
        if let Err(e) = result {
            drop(inner);
            self.disable(&format!("sync: {e}"));
        }
    }

    /// A snapshot of this store's counters.
    pub fn stats(&self) -> StoreStats {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        StoreStats {
            segments: inner.segments,
            // Reserved store-internal frames (the compaction access
            // clock) are bookkeeping, not cached rows.
            live_keys: inner.index.keys().filter(|k| !is_reserved_key(k)).count(),
            frames: inner.frames,
            bytes: inner.bytes,
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            recovered: self.recovered,
            quarantined: self.quarantined,
            disabled: self.is_disabled(),
        }
    }
}

impl Drop for PersistentStore {
    fn drop(&mut self) {
        self.flush();
    }
}

// ---------------------------------------------------------------------
// Offline maintenance: verify and compact
// ---------------------------------------------------------------------

/// What [`verify_dir`] found in one segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentReport {
    /// Segment file name.
    pub name: String,
    /// Valid frames in the segment.
    pub frames: u64,
    /// Bytes scanned.
    pub bytes: u64,
    /// `None` when the segment is clean; otherwise the byte offset of
    /// the first invalid frame.
    pub corrupt_at: Option<u64>,
}

/// The result of a full offline scan ([`verify_dir`]).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct VerifyReport {
    /// Per-segment findings, in segment order.
    pub segments: Vec<SegmentReport>,
    /// Quarantined files present in the directory.
    pub quarantined: Vec<String>,
}

impl VerifyReport {
    /// True when every live segment validated end to end.
    pub fn is_clean(&self) -> bool {
        self.segments.iter().all(|s| s.corrupt_at.is_none())
    }

    /// Total valid frames across segments.
    pub fn frames(&self) -> u64 {
        self.segments.iter().map(|s| s.frames).sum()
    }
}

/// Scans every live segment under `dir`, validating each frame's
/// checksum and structure, without mutating anything — the read-only
/// audit behind `ioopt cache verify`.
///
/// # Errors
///
/// Only on directory/file I/O failures; corruption is reported in the
/// returned [`VerifyReport`], not as an error.
pub fn verify_dir(dir: &Path) -> io::Result<VerifyReport> {
    let mut report = VerifyReport::default();
    for (_, path) in list_segments(dir)? {
        let bytes = fs::read(&path)?;
        // Strict mode: a verify treats even a torn tail as a finding
        // (`open` would repair it; `verify` only reports).
        let (frames, end) = scan_segment(&bytes, false);
        report.segments.push(SegmentReport {
            name: path
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default()
                .to_string(),
            frames: frames.len() as u64,
            bytes: bytes.len() as u64,
            corrupt_at: match end {
                ScanEnd::Clean => None,
                ScanEnd::Torn(at) | ScanEnd::Corrupt(at) => Some(at),
            },
        });
    }
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(name) = entry.file_name().to_str() {
            if name.ends_with(".quarantined") {
                report.quarantined.push(name.to_string());
            }
        }
    }
    report.quarantined.sort();
    Ok(report)
}

/// The result of [`compact_dir`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactReport {
    /// Live keys rewritten into the fresh segment.
    pub live_keys: u64,
    /// Keys dropped by hit-ratio-aware eviction: rows not read (or
    /// rewritten) since the previous compaction.
    pub evicted: u64,
    /// Segment files removed (superseded originals).
    pub segments_removed: usize,
    /// Quarantined files removed.
    pub quarantined_removed: usize,
    /// Bytes before and after.
    pub bytes_before: u64,
    /// Bytes after compaction.
    pub bytes_after: u64,
}

/// Decodes the access-clock frame persisted by the previous compaction:
/// `u64 generation | (u64 key_hash, u64 clock)*`. Absent or malformed →
/// generation 0 with an empty clock (every key gets a grace window).
fn decode_clock(value: Option<Vec<u8>>) -> (u64, HashMap<u64, u64>) {
    let Some(bytes) = value else {
        return (0, HashMap::new());
    };
    if bytes.len() < 8 || (bytes.len() - 8) % 16 != 0 {
        return (0, HashMap::new());
    }
    let le = |chunk: &[u8]| u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
    let generation = le(&bytes[..8]);
    let clock = bytes[8..]
        .chunks_exact(16)
        .map(|pair| (le(&pair[..8]), le(&pair[8..])))
        .collect();
    (generation, clock)
}

fn encode_clock(generation: u64, clock: &HashMap<u64, u64>) -> Vec<u8> {
    let mut entries: Vec<(u64, u64)> = clock.iter().map(|(&h, &c)| (h, c)).collect();
    entries.sort_unstable(); // deterministic frame bytes
    let mut out = Vec::with_capacity(8 + entries.len() * 16);
    out.extend_from_slice(&generation.to_le_bytes());
    for (hash, at) in entries {
        out.extend_from_slice(&hash.to_le_bytes());
        out.extend_from_slice(&at.to_le_bytes());
    }
    out
}

/// Reads the advisory access-log sidecar: the set of key hashes touched
/// since the previous compaction. A trailing partial record (torn by a
/// crash) is ignored; a missing file is an empty set.
fn read_access_set(dir: &Path) -> std::collections::HashSet<u64> {
    let Ok(bytes) = fs::read(dir.join(ACCESS_LOG)) else {
        return Default::default();
    };
    bytes
        .chunks_exact(8)
        .map(|chunk| u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")))
        .collect()
}

/// Rewrites the store down to its live frames: opens the store (running
/// normal recovery), streams every live `(key, value)` into one fresh
/// segment, fsyncs it, then removes the superseded segments and any
/// quarantined files. Crash-safe ordering: the fresh segment gets the
/// highest id and is fully durable *before* any original is deleted, so
/// an interrupted compaction only leaves redundant (append-wins
/// shadowed) frames behind, never missing ones.
///
/// # Eviction
///
/// Compaction is hit-ratio aware: a row that was *not* read or
/// rewritten since the previous compaction (per the advisory access-log
/// sidecar) **and** was already present at that previous compaction
/// (per the persisted access clock) is dropped instead of rewritten.
/// Rows the clock has never seen get one full grace window, so a fresh
/// store's first compaction evicts nothing and a lost access log only
/// delays eviction, never loses a hot row's only copy prematurely. The
/// surviving keys' clocks are stamped with the new generation and
/// persisted as a reserved frame in the compacted segment; the access
/// log is consumed (deleted) once the compaction has committed.
///
/// # Errors
///
/// Any I/O failure; the store on disk is never left smaller than its
/// live contents.
pub fn compact_dir(dir: &Path) -> io::Result<CompactReport> {
    let store = PersistentStore::open(dir);
    if store.is_disabled() {
        return Err(io::Error::other("store could not be opened for compaction"));
    }
    let stats = store.stats();
    let (prev_generation, prev_clock) = decode_clock(store.get(CLOCK_KEY));
    let accessed = read_access_set(dir);
    let generation = prev_generation + 1;
    let mut clock: HashMap<u64, u64> = HashMap::new();
    let mut evicted = 0u64;
    let live: Vec<(Vec<u8>, Vec<u8>)> = {
        let mut inner = store.inner.lock().unwrap_or_else(|e| e.into_inner());
        let mut keys: Vec<(Vec<u8>, Location)> = inner
            .index
            .iter()
            .filter(|(k, _)| !is_reserved_key(k))
            .map(|(k, loc)| (k.clone(), *loc))
            .collect();
        // Deterministic output order: by (segment, offset) — append order.
        keys.sort_by_key(|(_, loc)| (loc.segment, loc.offset));
        let mut out = Vec::with_capacity(keys.len());
        for (key, location) in keys {
            let mut hasher = StableHasher::new();
            hasher.write(&key);
            let hash = hasher.finish();
            if !accessed.contains(&hash) && prev_clock.contains_key(&hash) {
                // A full window old and untouched across it: evict.
                evicted += 1;
                continue;
            }
            if let Some(value) = store.read_frame(&mut inner, location, &key)? {
                clock.insert(hash, generation);
                out.push((key, value));
            }
        }
        out
    };
    let old_segments = list_segments(dir)?;
    let next_id = old_segments.iter().map(|(id, _)| *id).max().unwrap_or(0) + 1;
    drop(store);

    // Write the replacement under a temporary name, fsync, then rename
    // into place — the rename is the commit point.
    let tmp = dir.join(format!("compact-{next_id:06}.tmp"));
    let mut bytes_after = MAGIC.len() as u64;
    {
        let mut file = File::create(&tmp)?;
        file.write_all(MAGIC)?;
        for (key, value) in &live {
            let frame = encode_frame(key, value);
            file.write_all(&frame)?;
            bytes_after += frame.len() as u64;
        }
        let clock_frame = encode_frame(CLOCK_KEY, &encode_clock(generation, &clock));
        file.write_all(&clock_frame)?;
        bytes_after += clock_frame.len() as u64;
        file.sync_data()?;
    }
    fs::rename(&tmp, dir.join(segment_name(next_id)))?;

    let mut segments_removed = 0usize;
    for (_, path) in old_segments {
        fs::remove_file(path)?;
        segments_removed += 1;
    }
    let mut quarantined_removed = 0usize;
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        if entry
            .file_name()
            .to_str()
            .is_some_and(|n| n.ends_with(".quarantined"))
        {
            fs::remove_file(entry.path())?;
            quarantined_removed += 1;
        }
    }
    // The access window is consumed: the next window starts empty.
    let _ = fs::remove_file(dir.join(ACCESS_LOG));
    Ok(CompactReport {
        live_keys: live.len() as u64,
        evicted,
        segments_removed,
        quarantined_removed,
        bytes_before: stats.bytes,
        bytes_after,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A unique scratch directory per test (std-only; no tempfile dep).
    fn scratch(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "ioopt-store-{tag}-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::SeqCst)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn crc32_matches_the_ieee_check_value() {
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn put_get_survive_reopen_with_zero_recovery() {
        let dir = scratch("roundtrip");
        {
            let store = PersistentStore::open(&dir);
            for i in 0..20u32 {
                store.put(
                    format!("key-{i}").as_bytes(),
                    format!("value-{i}").as_bytes(),
                );
            }
            // Append-wins on duplicate keys.
            store.put(b"key-3", b"value-3-updated");
            assert_eq!(
                store.get(b"key-3").as_deref(),
                Some(&b"value-3-updated"[..])
            );
            assert_eq!(store.stats().writes, 21);
        }
        let store = PersistentStore::open(&dir);
        let stats = store.stats();
        assert_eq!(stats.recovered, 0, "clean shutdown must not need recovery");
        assert_eq!(stats.quarantined, 0);
        assert_eq!(stats.live_keys, 20);
        for i in 0..20u32 {
            let expected = if i == 3 {
                "value-3-updated".to_string()
            } else {
                format!("value-{i}")
            };
            assert_eq!(
                store.get(format!("key-{i}").as_bytes()).as_deref(),
                Some(expected.as_bytes()),
                "key-{i}"
            );
        }
        assert!(store.get(b"absent").is_none());
        let stats = store.stats();
        assert_eq!(stats.hits, 20);
        assert_eq!(stats.misses, 1);
        drop(store);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_and_earlier_frames_survive() {
        let dir = scratch("torn");
        {
            let store = PersistentStore::open(&dir);
            store.put(b"alpha", b"1");
            store.put(b"beta", b"2");
        }
        // Simulate a crash mid-write: append half a frame.
        let path = dir.join(segment_name(1));
        let frame = encode_frame(b"gamma", b"3");
        let mut file = OpenOptions::new().append(true).open(&path).unwrap();
        file.write_all(&frame[..frame.len() / 2]).unwrap();
        drop(file);

        let store = PersistentStore::open(&dir);
        let stats = store.stats();
        assert_eq!(stats.recovered, 1, "one torn-tail truncation event");
        assert_eq!(stats.quarantined, 0);
        assert_eq!(store.get(b"alpha").as_deref(), Some(&b"1"[..]));
        assert_eq!(store.get(b"beta").as_deref(), Some(&b"2"[..]));
        assert!(store.get(b"gamma").is_none());
        // The truncated store accepts new appends cleanly.
        store.put(b"gamma", b"3");
        drop(store);
        let store = PersistentStore::open(&dir);
        assert_eq!(store.stats().recovered, 0);
        assert_eq!(store.get(b"gamma").as_deref(), Some(&b"3"[..]));
        drop(store);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn mid_file_corruption_quarantines_the_segment() {
        let dir = scratch("quarantine");
        {
            let store = PersistentStore::open(&dir);
            store.put(b"alpha", b"1");
            store.put(b"beta", b"2");
            store.put(b"gamma", b"3");
        }
        // Flip one byte inside the *first* frame's value: the bad frame
        // has valid data after it, so this is mid-file corruption.
        let path = dir.join(segment_name(1));
        let mut bytes = fs::read(&path).unwrap();
        let first_value_offset = MAGIC.len() + FRAME_HEADER + 12 + "alpha".len();
        bytes[first_value_offset] ^= 0x40;
        fs::write(&path, &bytes).unwrap();

        let store = PersistentStore::open(&dir);
        let stats = store.stats();
        assert_eq!(stats.quarantined, 1);
        assert_eq!(stats.recovered, 0);
        assert_eq!(stats.live_keys, 0, "quarantined frames are never served");
        assert!(store.get(b"alpha").is_none());
        assert!(store.get(b"beta").is_none());
        assert!(!path.exists(), "corrupt segment renamed away");
        assert!(path.with_extension("log.quarantined").exists());
        // The store keeps working: new writes land in a fresh segment.
        store.put(b"delta", b"4");
        assert_eq!(store.get(b"delta").as_deref(), Some(&b"4"[..]));
        drop(store);
        let store = PersistentStore::open(&dir);
        assert_eq!(store.get(b"delta").as_deref(), Some(&b"4"[..]));
        drop(store);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn unopenable_directory_degrades_to_memory_only() {
        // The "directory" is a file: create_dir_all fails, but open()
        // must still return a working (inert) store.
        let dir = scratch("degraded");
        fs::create_dir_all(dir.parent().unwrap()).unwrap();
        fs::write(&dir, b"not a directory").unwrap();
        let store = PersistentStore::open(&dir);
        assert!(store.is_disabled());
        store.put(b"k", b"v"); // no panic, no effect
        assert!(store.get(b"k").is_none());
        store.flush();
        assert!(store.stats().disabled);
        drop(store);
        let _ = fs::remove_file(&dir);
    }

    #[test]
    fn verify_reports_corruption_without_mutating() {
        let dir = scratch("verify");
        {
            let store = PersistentStore::open(&dir);
            store.put(b"a", b"1");
            store.put(b"b", b"2");
        }
        let report = verify_dir(&dir).unwrap();
        assert!(report.is_clean());
        assert_eq!(report.frames(), 2);

        let path = dir.join(segment_name(1));
        let mut bytes = fs::read(&path).unwrap();
        let len = bytes.len();
        bytes[len - 1] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        let report = verify_dir(&dir).unwrap();
        assert!(!report.is_clean());
        assert_eq!(report.segments.len(), 1);
        assert!(report.segments[0].corrupt_at.is_some());
        // verify must not have repaired or renamed anything.
        assert_eq!(fs::read(&path).unwrap(), bytes);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn compact_drops_shadowed_frames_and_quarantined_files() {
        let dir = scratch("compact");
        {
            let store = PersistentStore::open(&dir);
            for i in 0..10u32 {
                store.put(b"hot-key", format!("gen-{i}").as_bytes());
            }
            store.put(b"stable", b"s");
        }
        fs::write(dir.join("seg-000099.log.quarantined"), b"junk").unwrap();
        let report = compact_dir(&dir).unwrap();
        assert_eq!(report.live_keys, 2);
        assert_eq!(report.evicted, 0, "first compaction grants every key grace");
        assert_eq!(report.quarantined_removed, 1);
        assert!(report.bytes_after < report.bytes_before);
        let store = PersistentStore::open(&dir);
        let stats = store.stats();
        // 2 live rows + the reserved access-clock frame.
        assert_eq!(stats.frames, 3, "only live frames survive compaction");
        assert_eq!(stats.live_keys, 2, "the clock frame is not a cached row");
        assert_eq!(store.get(b"hot-key").as_deref(), Some(&b"gen-9"[..]));
        assert_eq!(store.get(b"stable").as_deref(), Some(&b"s"[..]));
        drop(store);
        assert!(verify_dir(&dir).unwrap().is_clean());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn compact_evicts_rows_unread_since_the_previous_compact() {
        let dir = scratch("evict");
        {
            let store = PersistentStore::open(&dir);
            store.put(b"hot", b"h");
            store.put(b"cold-1", b"c1");
            store.put(b"cold-2", b"c2");
        }
        // Generation 1: every key is new to the clock → grace, no evictions.
        let report = compact_dir(&dir).unwrap();
        assert_eq!((report.live_keys, report.evicted), (3, 0));

        // One read and one fresh write inside the next window; the drop
        // flushes the access log.
        {
            let store = PersistentStore::open(&dir);
            assert_eq!(store.get(b"hot").as_deref(), Some(&b"h"[..]));
            store.put(b"new", b"n");
        }
        assert!(dir.join("access.log").exists(), "flush persists the window");

        // Generation 2: the two untouched full-window rows go.
        let report = compact_dir(&dir).unwrap();
        assert_eq!(
            report.evicted, 2,
            "cold-1 and cold-2 had a full idle window"
        );
        assert_eq!(report.live_keys, 2);
        assert!(!dir.join("access.log").exists(), "the window is consumed");
        let store = PersistentStore::open(&dir);
        assert_eq!(store.get(b"hot").as_deref(), Some(&b"h"[..]));
        assert_eq!(store.get(b"new").as_deref(), Some(&b"n"[..]));
        assert!(store.get(b"cold-1").is_none());
        assert!(store.get(b"cold-2").is_none());
        drop(store);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_readonly_reports_damage_without_repairing() {
        let dir = scratch("readonly");
        {
            let store = PersistentStore::open(&dir);
            store.put(b"alpha", b"1");
            store.put(b"beta", b"2");
        }
        // Torn tail: half a frame appended, as a crash mid-write leaves it.
        let path = dir.join(segment_name(1));
        let frame = encode_frame(b"gamma", b"3");
        let mut file = OpenOptions::new().append(true).open(&path).unwrap();
        file.write_all(&frame[..frame.len() / 2]).unwrap();
        drop(file);
        let damaged = fs::read(&path).unwrap();

        let store = PersistentStore::open_readonly(&dir);
        assert!(store.is_readonly());
        let stats = store.stats();
        assert_eq!(stats.recovered, 1, "the pending repair is reported");
        assert_eq!(stats.live_keys, 2);
        // Good frames before the torn point are still served.
        assert_eq!(store.get(b"alpha").as_deref(), Some(&b"1"[..]));
        // Mutations are inert.
        store.put(b"delta", b"4");
        store.flush();
        assert_eq!(store.stats().writes, 0);
        drop(store);
        assert_eq!(
            fs::read(&path).unwrap(),
            damaged,
            "a read-only open must leave the segment bytes untouched"
        );

        // A writable open still repairs the same damage.
        let store = PersistentStore::open(&dir);
        assert_eq!(store.stats().recovered, 1);
        drop(store);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_readonly_of_a_missing_directory_is_an_empty_store() {
        let dir = scratch("readonly-missing");
        let store = PersistentStore::open_readonly(&dir);
        assert!(!store.is_disabled());
        assert_eq!(store.stats().live_keys, 0);
        assert!(store.get(b"anything").is_none());
        assert!(!dir.exists(), "inspection must not create the directory");
    }

    #[test]
    fn scan_classifies_torn_versus_corrupt() {
        let mut image = MAGIC.to_vec();
        let f1 = encode_frame(b"k1", b"v1");
        let f2 = encode_frame(b"k2", b"v2");
        image.extend_from_slice(&f1);
        image.extend_from_slice(&f2);

        let (frames, end) = scan_segment(&image, true);
        assert_eq!(frames.len(), 2);
        assert_eq!(end, ScanEnd::Clean);

        // Incomplete trailing frame: torn in the last segment, corrupt
        // in an earlier one.
        let torn = &image[..image.len() - 3];
        let (frames, end) = scan_segment(torn, true);
        assert_eq!(frames.len(), 1);
        assert_eq!(end, ScanEnd::Torn((MAGIC.len() + f1.len()) as u64));
        let (_, end) = scan_segment(torn, false);
        assert!(matches!(end, ScanEnd::Corrupt(_)));

        // Checksum failure on the final frame at EOF: torn; the same
        // failure followed by more data: corrupt.
        let mut flipped = image.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x01;
        let (_, end) = scan_segment(&flipped, true);
        assert_eq!(end, ScanEnd::Torn((MAGIC.len() + f1.len()) as u64));
        let mut mid = flipped.clone();
        mid.extend_from_slice(&encode_frame(b"k3", b"v3"));
        let (frames, end) = scan_segment(&mid, true);
        assert_eq!(frames.len(), 1);
        assert!(matches!(end, ScanEnd::Corrupt(_)));

        // Garbage length field at the tail of the *last* segment: a torn
        // header — truncating keeps the good frames before it. The same
        // bytes in an earlier segment are corruption.
        let mut garbage = image.clone();
        garbage.extend_from_slice(&u32::MAX.to_le_bytes());
        garbage.extend_from_slice(&[0u8; 4]);
        let (frames, end) = scan_segment(&garbage, true);
        assert_eq!(frames.len(), 2, "good frames before a torn header survive");
        assert_eq!(
            end,
            ScanEnd::Torn((MAGIC.len() + f1.len() + f2.len()) as u64)
        );
        let (_, end) = scan_segment(&garbage, false);
        assert!(matches!(end, ScanEnd::Corrupt(_)));
    }
}
