//! Symbolic lower-bound assembly (paper §5, following the IOLB
//! partitioning method with the small-dimension refinement).
//!
//! For a segment of `T` loads, at most `K = S + T` distinct values are
//! available, and they are split between the arrays, so
//! `Σ_j |φ_j(E)| ≤ K` and the Brascamp-Lieb inequality gives
//! `|E| ≤ ρ(K) = ∏(s_j/σ)^{s_j} · K^σ · N_sd^{s_sd}`. Maximizing
//! `T·(|V|/ρ(S+T) − 1)` at `T* = S/(σ−1)` yields the closed-form bound;
//! the trivial bound (sum of array sizes) and all scenario bounds are
//! combined with `max` (§6: a small-dimension bound stays sound even when
//! the hypothesis fails, since `|φ_sd(E)| ≤ N_sd` always holds).

use ioopt_engine::Budget;
use ioopt_ir::Kernel;
use ioopt_symbolic::{Expr, Rational};

use crate::brascamp::{solve_bl_governed, BlError};
use crate::homs::{extract_homs, small_dim_hom, HomOptions};

/// Options for the lower-bound derivation (ablation knobs of DESIGN.md).
#[derive(Debug, Clone, PartialEq)]
pub struct LbOptions {
    /// Detect multi-dimensional reductions (§5.3). Disable to reproduce
    /// the pre-IOOpt IOLB baseline.
    pub detect_reductions: bool,
    /// Small-dimension scenarios: each entry is a set of dimension
    /// indices assumed small (§5.2). The empty scenario is always
    /// implicitly included.
    pub scenarios: Vec<Vec<usize>>,
}

impl Default for LbOptions {
    fn default() -> LbOptions {
        LbOptions {
            detect_reductions: true,
            scenarios: Vec::new(),
        }
    }
}

/// The bound derived for one small-dimension scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioBound {
    /// The dimensions assumed small (indices; empty = no assumption).
    pub small_dims: Vec<usize>,
    /// `σ = Σ s_j`.
    pub sigma: Rational,
    /// The small-dimension coefficient.
    pub s_sd: Rational,
    /// `(array name, s_j)` per homomorphism.
    pub coefficients: Vec<(String, Rational)>,
    /// The symbolic bound `T*·(|V|/ρ(S+T*) − 1)` (may be negative for
    /// large `S`; the combined bound maxes it with the trivial bound).
    pub bound: Expr,
    /// The bounded-set size bound `ρ(K) = ∏(σ_A/σ)^{σ_A}·K^σ·N_sd^{s_sd}`
    /// as a function of the symbol `K` — the paper's `|E| ≤ K^σ·…`
    /// statement (Fig. 3d).
    pub rho: Expr,
}

/// The full lower-bound report for a kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct LowerBoundReport {
    /// The trivial bound: every array must be touched once.
    pub trivial: Expr,
    /// Per-scenario partition bounds.
    pub scenarios: Vec<ScenarioBound>,
    /// `max(trivial, scenarios…)` — the paper's combined expression
    /// (Fig. 6).
    pub combined: Expr,
    /// Whether a resource budget (or an arithmetic overflow) cut the
    /// scenario sweep short. The report is then a *weaker but still
    /// sound* lower bound: `max` over a prefix of the scenario bounds —
    /// in the worst case just the trivial `Σ|arrays|` term.
    pub degraded: bool,
}

/// Derives the symbolic I/O lower bound of a kernel as a function of the
/// program parameters and the cache-size symbol `S`.
///
/// # Errors
///
/// Propagates [`BlError`] if a Brascamp-Lieb system is malformed.
///
/// # Examples
///
/// ```
/// use ioopt_iolb::{lower_bound, LbOptions};
/// use ioopt_ir::kernels;
/// let report = lower_bound(&kernels::matmul(), &LbOptions::default())?;
/// // Dominant term 2·Ni·Nj·(Nk−1)/√S (paper Fig. 6, ab-ac-cb row).
/// let v = report.combined.eval_with(&[
///     ("Ni", 1000.0), ("Nj", 1000.0), ("Nk", 1000.0), ("S", 1024.0),
/// ]).unwrap();
/// assert!(v > 2.0 * 1000.0f64.powi(3) / 32.0 * 0.9);
/// # Ok::<(), ioopt_iolb::BlError>(())
/// ```
pub fn lower_bound(kernel: &Kernel, options: &LbOptions) -> Result<LowerBoundReport, BlError> {
    lower_bound_governed(kernel, options, &Budget::ambient())
}

/// [`lower_bound`] under an explicit [`Budget`].
///
/// Exhaustion never fails the derivation: the scenario sweep stops where
/// the budget ran out and the report combines the scenarios derived so
/// far (a sound prefix — `max` over fewer terms only weakens the bound),
/// falling back to the trivial `Σ|arrays|` term when nothing was
/// derived. Rational overflow in one scenario skips that scenario. Both
/// paths set [`LowerBoundReport::degraded`].
///
/// # Errors
///
/// As [`lower_bound`] — only genuinely malformed systems.
pub fn lower_bound_governed(
    kernel: &Kernel,
    options: &LbOptions,
    budget: &Budget,
) -> Result<LowerBoundReport, BlError> {
    let dim = kernel.dims().len();
    let hom_opts = HomOptions {
        detect_reductions: options.detect_reductions,
    };
    let base_homs = extract_homs(kernel, &hom_opts);

    // The compulsory term must not over-approximate (diagonal or strided
    // accesses touch fewer cells than the product form suggests).
    let trivial = Expr::add_all(kernel.arrays().map(|a| kernel.array_size_lower(a)));
    let volume = compute_volume(kernel, options.detect_reductions);

    let mut scenario_list: Vec<Vec<usize>> = vec![Vec::new()];
    for s in &options.scenarios {
        if !scenario_list.contains(s) {
            scenario_list.push(s.clone());
        }
    }

    // Without reduction detection, a multi-dimensional reduction defeats
    // the path analysis: the sequential chain wraps across the reduced
    // dimensions and is not an affine projection. The published IOLB
    // "fails to find an interesting bound, and returns the sum of array
    // sizes" (paper §6) — reproduce exactly that fallback.
    let path_analysis_ok = options.detect_reductions || kernel.reduced_dims().len() < 2;

    let mut scenarios = Vec::new();
    let mut degraded = false;
    if !path_analysis_ok {
        return Ok(LowerBoundReport {
            trivial,
            scenarios,
            combined: trivial,
            degraded,
        });
    }
    let _sweep = ioopt_engine::obs::span("iolb.scenario_sweep");
    'scenarios: for small in scenario_list {
        let mut homs = base_homs.clone();
        if !small.is_empty() {
            homs.push(small_dim_hom(kernel, &small));
        }
        // An infeasible system means some subgroup escapes every
        // homomorphism (e.g. a dimension no array uses): arbitrarily
        // large bounded sets exist and the partition argument yields
        // nothing — fall back to the trivial bound for this scenario.
        let sol = match solve_bl_governed(&homs, dim, budget) {
            Ok(sol) => sol,
            Err(BlError::Infeasible) => continue,
            Err(BlError::Overflow) => {
                degraded = true;
                continue;
            }
            Err(BlError::Exhausted(_)) => {
                // Budgets are sticky: later scenarios would fail too.
                degraded = true;
                break;
            }
        };
        // The sum constraint Σ x_A ≤ K ranges over *distinct arrays*: two
        // homomorphisms reading the same array (e.g. A[x] and A[x+k] in an
        // autocorrelation) share one data budget, so their coefficients
        // aggregate before the AM-GM constant is computed.
        let mut per_array: Vec<(String, Rational)> = Vec::new();
        for (h, &sj) in base_homs.iter().zip(&sol.s) {
            match per_array.iter_mut().find(|(n, _)| *n == h.name) {
                Some((_, acc)) => match acc.try_add(sj) {
                    Some(sum) => *acc = sum,
                    None => {
                        degraded = true;
                        continue 'scenarios;
                    }
                },
                None => per_array.push((h.name.clone(), sj)),
            }
        }
        let sigma_by_array: Vec<Rational> = per_array.iter().map(|&(_, v)| v).collect();
        let bound = match assemble_bound(
            kernel,
            &volume,
            &sigma_by_array,
            sol.sigma,
            sol.s_sd,
            &small,
        ) {
            Ok(Some(bound)) => bound,
            Ok(None) => continue,
            Err(BlError::Overflow) => {
                degraded = true;
                continue;
            }
            Err(e) => return Err(e),
        };
        let rho = match rho_expr(kernel, &sigma_by_array, sol.sigma, sol.s_sd, &small) {
            Some(rho) => rho,
            None => {
                degraded = true;
                continue;
            }
        };
        scenarios.push(ScenarioBound {
            small_dims: small,
            sigma: sol.sigma,
            s_sd: sol.s_sd,
            coefficients: base_homs
                .iter()
                .map(|h| h.name.clone())
                .zip(sol.s.iter().copied())
                .collect(),
            bound,
            rho,
        });
    }

    let combined = Expr::max_all(std::iter::once(trivial).chain(scenarios.iter().map(|s| s.bound)));
    Ok(LowerBoundReport {
        trivial,
        scenarios,
        combined,
        degraded,
    })
}

/// `|V|`: the reduction-aware vertex count
/// `∏_{d∉red} N_d · (∏_{d∈red} N_d − 1)`, matching Fig. 6's `(C−1)`-style
/// factors; plain `∏ N_d` without a detected reduction.
fn compute_volume(kernel: &Kernel, detect_reductions: bool) -> Expr {
    let reduced = if detect_reductions {
        kernel.reduced_dims()
    } else {
        Vec::new()
    };
    if reduced.is_empty() {
        return kernel.domain_size();
    }
    let outer = Expr::mul_all(
        (0..kernel.dims().len())
            .filter(|d| !reduced.contains(d))
            .map(|d| kernel.size_expr(d)),
    );
    let inner = Expr::mul_all(reduced.iter().map(|&d| kernel.size_expr(d)));
    outer * (inner - Expr::one())
}

/// `∏_{s_j > 0} (s_j/σ)^{s_j}` — the AM-GM constant shared by the bound
/// and `ρ`; `None` on `i128` overflow in the exact division.
fn am_gm_constant(s: &[Rational], sigma: Rational) -> Option<Expr> {
    let mut factors = Vec::new();
    for &sj in s.iter().filter(|v| v.is_positive()) {
        factors.push(Expr::pow(Expr::num(sj.try_div(sigma)?), sj));
    }
    Some(Expr::mul_all(factors))
}

/// `ρ(K)` as a symbolic function of `K` for reporting; `None` on
/// rational overflow.
fn rho_expr(
    kernel: &Kernel,
    s: &[Rational],
    sigma: Rational,
    s_sd: Rational,
    small: &[usize],
) -> Option<Expr> {
    let k = Expr::sym("K");
    let c = am_gm_constant(s, sigma)?;
    let n_sd = Expr::mul_all(small.iter().map(|&d| kernel.size_expr(d)));
    Some(c * Expr::pow(k, sigma) * Expr::pow(n_sd, s_sd))
}

/// Builds `T*·(|V|/ρ(S+T*) − 1)`; `Ok(None)` when `σ ≤ 1` (the partition
/// argument then gives nothing beyond the trivial bound),
/// [`BlError::Overflow`] when the exact coefficient arithmetic leaves
/// `i128`.
fn assemble_bound(
    kernel: &Kernel,
    volume: &Expr,
    s: &[Rational],
    sigma: Rational,
    s_sd: Rational,
    small: &[usize],
) -> Result<Option<Expr>, BlError> {
    if sigma <= Rational::ONE {
        return Ok(None);
    }
    let cache = Expr::sym("S");
    let c = am_gm_constant(s, sigma).ok_or(BlError::Overflow)?;
    // T* = S/(σ−1), K* = S·σ/(σ−1).
    let sigma_m1 = sigma.try_sub(Rational::ONE).ok_or(BlError::Overflow)?;
    let t_coeff = Rational::ONE.try_div(sigma_m1).ok_or(BlError::Overflow)?;
    let k_coeff = sigma.try_div(sigma_m1).ok_or(BlError::Overflow)?;
    let t_star = cache * Expr::num(t_coeff);
    let k_star = cache * Expr::num(k_coeff);
    let n_sd = Expr::mul_all(small.iter().map(|&d| kernel.size_expr(d)));
    let rho = c * Expr::pow(k_star, sigma) * Expr::pow(n_sd, s_sd);
    Ok(Some(t_star * volume * rho.recip() - t_star))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ioopt_ir::kernels;

    fn eval(e: &Expr, pairs: &[(&str, f64)]) -> f64 {
        e.eval_with(pairs).unwrap()
    }

    #[test]
    fn matmul_bound_matches_iolb_constant() {
        // Scenario bound: 2S·|V|/(S+2S choose …) = 2|V|/√S − 2S with
        // |V| = Ni·Nj·(Nk−1).
        let report = lower_bound(&kernels::matmul(), &LbOptions::default()).unwrap();
        assert_eq!(report.scenarios.len(), 1);
        let b = &report.scenarios[0].bound;
        let env = [("Ni", 500.0), ("Nj", 400.0), ("Nk", 300.0), ("S", 1024.0)];
        let expect = 2.0 * 500.0 * 400.0 * 299.0 / 32.0 - 2048.0;
        assert!((eval(b, &env) - expect).abs() < 1e-6 * expect);
    }

    #[test]
    fn combined_bound_includes_trivial() {
        // For huge S the partition bound goes negative; the combined
        // bound must fall back to the sum of array sizes.
        let report = lower_bound(&kernels::matmul(), &LbOptions::default()).unwrap();
        let env = [("Ni", 100.0), ("Nj", 100.0), ("Nk", 100.0), ("S", 1e9)];
        let arrays = 3.0 * 100.0 * 100.0;
        assert_eq!(eval(&report.combined, &env), arrays);
    }

    #[test]
    fn conv2d_small_dims_improves_bound() {
        let k = kernels::conv2d();
        let h = k.dim_index("h").unwrap();
        let w = k.dim_index("w").unwrap();
        let plain = lower_bound(&k, &LbOptions::default()).unwrap();
        let with_sd = lower_bound(
            &k,
            &LbOptions {
                detect_reductions: true,
                scenarios: vec![vec![h, w]],
            },
        )
        .unwrap();
        // Yolo-like sizes: H = W = 3 small, S = 32k elements.
        let env = [
            ("B", 1.0),
            ("C", 256.0),
            ("F", 256.0),
            ("X", 68.0),
            ("Y", 68.0),
            ("H", 3.0),
            ("W", 3.0),
            ("S", 32768.0),
        ];
        let lb_plain = eval(&plain.combined, &env);
        let lb_sd = eval(&with_sd.combined, &env);
        assert!(lb_sd > lb_plain, "sd bound {lb_sd} must beat {lb_plain}");
        // And it should be within the ballpark of the asymptotic form
        // 2·C·F·X·Y·√(HW)/√S.
        let asym = 2.0 * 256.0 * 256.0 * 68.0 * 68.0 * 3.0 / 32768.0f64.sqrt();
        assert!(lb_sd > 0.5 * asym, "lb_sd = {lb_sd}, asym = {asym}");
    }

    #[test]
    fn reduction_detection_improves_conv_bound() {
        // §5.4 / §6: without reduction management the published IOLB
        // returns only the sum of array sizes (O(N⁴)); with it, the bound
        // becomes O(N⁷/S).
        let k = kernels::conv2d();
        let baseline = lower_bound(
            &k,
            &LbOptions {
                detect_reductions: false,
                scenarios: vec![],
            },
        )
        .unwrap();
        assert!(baseline.scenarios.is_empty());
        assert_eq!(baseline.combined, baseline.trivial);
        let improved = lower_bound(&k, &LbOptions::default()).unwrap();
        let env = [
            ("B", 8.0),
            ("C", 64.0),
            ("F", 64.0),
            ("X", 64.0),
            ("Y", 64.0),
            ("H", 64.0),
            ("W", 64.0),
            ("S", 4096.0),
        ];
        let b = eval(&baseline.combined, &env);
        let i = eval(&improved.combined, &env);
        assert!(i > 2.0 * b, "improved {i} vs baseline {b}");
    }

    #[test]
    fn one_dimensional_reductions_survive_baseline() {
        // A 1-D reduction chain is itself an affine projection, so the
        // pre-IOOpt analysis already handles matmul: the baseline bound
        // equals the reduction-aware one up to the |V| adjustment.
        let k = kernels::matmul();
        let baseline = lower_bound(
            &k,
            &LbOptions {
                detect_reductions: false,
                scenarios: vec![],
            },
        )
        .unwrap();
        assert_eq!(baseline.scenarios.len(), 1);
        assert_eq!(baseline.scenarios[0].sigma, Rational::new(3, 2));
    }

    #[test]
    fn exhausted_lower_bound_degrades_to_a_weaker_sound_bound() {
        use ioopt_engine::Budget;
        let k = kernels::matmul();
        let exact = lower_bound(&k, &LbOptions::default()).unwrap();
        assert!(!exact.degraded);
        let env = [("Ni", 500.0), ("Nj", 400.0), ("Nk", 300.0), ("S", 1024.0)];
        let exact_lb = eval(&exact.combined, &env);
        // A spent budget stops the scenario sweep before anything is
        // derived: the report degrades to the trivial bound.
        let spent = Budget::with_limits(None, Some(0), None);
        assert!(spent.step().is_err());
        let degraded = lower_bound_governed(&k, &LbOptions::default(), &spent).unwrap();
        assert!(degraded.degraded);
        assert!(degraded.scenarios.is_empty());
        assert_eq!(degraded.combined, degraded.trivial);
        // Degraded LB must never exceed the exact LB.
        assert!(eval(&degraded.combined, &env) <= exact_lb);
        // An unlimited explicit budget reproduces the exact report.
        let full = lower_bound_governed(&k, &LbOptions::default(), &Budget::unlimited()).unwrap();
        assert_eq!(full, exact);
    }

    #[test]
    fn scenario_coefficients_reported() {
        let report = lower_bound(&kernels::matmul(), &LbOptions::default()).unwrap();
        let sc = &report.scenarios[0];
        assert_eq!(sc.sigma, Rational::new(3, 2));
        assert_eq!(sc.coefficients.len(), 3);
        assert_eq!(sc.coefficients[0].0, "C");
        // rho(K) = (K/3)^(3/2): at K = 12, 8.
        let v = sc.rho.eval_with(&[("K", 12.0)]).unwrap();
        assert!((v - 8.0).abs() < 1e-12, "rho(12) = {v}");
    }

    #[test]
    fn conv_rho_matches_fig3d() {
        // Fig. 3d with small dims: |E| <= K^(3/2)·(HW)^(1/2) (times the
        // AM-GM constant (1/3)^(3/2) from the sum form).
        let k = kernels::conv2d();
        let h = k.dim_index("h").unwrap();
        let w = k.dim_index("w").unwrap();
        let report = lower_bound(
            &k,
            &LbOptions {
                detect_reductions: true,
                scenarios: vec![vec![h, w]],
            },
        )
        .unwrap();
        let sc = report
            .scenarios
            .iter()
            .find(|s| !s.small_dims.is_empty())
            .expect("small-dim scenario present");
        let v = sc
            .rho
            .eval_with(&[("K", 27.0), ("H", 4.0), ("W", 9.0)])
            .unwrap();
        // (1/3)^(3/2) · 27^(3/2) · 6 = 27/3^(3/2)·... = (27/3)^(3/2)·... :
        // (K/3)^(3/2)·sqrt(HW) = 9^(3/2)·6 = 27·6 = 162.
        assert!((v - 162.0).abs() < 1e-9, "rho = {v}");
    }
}
