//! Proof-carrying witnesses for the Brascamp-Lieb lower bound
//! (DESIGN.md §11).
//!
//! A [`BlCertificate`] packages everything an *independent* checker
//! needs to re-verify one scenario's LP optimum by arithmetic alone:
//!
//! * the rank constraints `Σ_j rank(φ_j(H))·s_j ≥ rank(H)` (with the
//!   per-hom caps `s_j ≤ 1` implicit),
//! * the primal solution `s` (the production lexicographic optimum),
//! * a dual vector: multipliers `u ≥ 0` for the rank rows and `v ≥ 0`
//!   for the cap rows.
//!
//! The auditor checks primal feasibility, dual feasibility
//! (`Σ_i u_i·R_ij − v_j ≤ c_j`, where `c_j = 1` for main homs and `0`
//! for the small-dimension hom), and strong duality
//! (`Σ_i u_i·rank(H_i) − Σ_j v_j = σ`). Together these prove `σ` is the
//! *optimal* objective of `min Σ_main s_j` over the system — no simplex
//! run needed on the audit side.
//!
//! Trust boundary: the duals certify `σ`-optimality only. That `s`
//! itself is the lexicographic (σ, then `s_sd`, then min-max) solution
//! is not dual-certified; soundness of the exported bound needs only
//! primal feasibility of `s`, which the auditor checks directly.

use ioopt_engine::Budget;
use ioopt_ir::Kernel;
use ioopt_linalg::Rational;
use ioopt_lp::{solve_dual, Cmp, Lp};

use crate::brascamp::{rank_constraints_governed, solve_bl_governed, BlError, RankConstraint};
use crate::homs::{extract_homs, small_dim_hom, Hom, HomKind, HomOptions};

/// A re-checkable witness of one scenario's Brascamp-Lieb LP optimum.
#[derive(Debug, Clone, PartialEq)]
pub struct BlCertificate {
    /// The deduplicated rank constraints, aligned with `homs` order.
    pub constraints: Vec<RankConstraint>,
    /// The full primal solution, one `s_j` per hom in `homs` order
    /// (including the small-dimension hom when present).
    pub s: Vec<Rational>,
    /// `σ = Σ_{main} s_j` — the certified LP optimum.
    pub sigma: Rational,
    /// The small-dimension coefficient (zero without a `φ_sd`).
    pub s_sd: Rational,
    /// Dual multipliers of the rank rows, non-negative, one per entry
    /// of [`BlCertificate::constraints`].
    pub rank_duals: Vec<Rational>,
    /// Dual multipliers of the cap rows `s_j ≤ 1`, non-negative (the
    /// export convention negates the ≤-row sign), one per hom.
    pub cap_duals: Vec<Rational>,
}

/// Solves one Brascamp-Lieb system *and* derives the dual witness that
/// certifies its optimum.
///
/// The primal solution is the production lexicographic optimum (same
/// path as [`crate::solve_bl_governed`], so the exported `s` matches
/// what the bound assembly used); the duals come from the plain
/// `min Σ_main s_j` view of the system, which has the same first-stage
/// optimum — the min-max helper variable and its rows never change `σ`.
///
/// # Errors
///
/// As [`crate::solve_bl_governed`]; additionally
/// [`BlError::Infeasible`] if the dual solve fails to reproduce the
/// primal optimum (which would mean the system is malformed — strong
/// duality cannot fail on a feasible bounded LP).
pub fn certify_bl(homs: &[Hom], dim: usize, budget: &Budget) -> Result<BlCertificate, BlError> {
    let constraints = rank_constraints_governed(homs, dim, budget).map_err(BlError::Exhausted)?;
    let sol = solve_bl_governed(homs, dim, budget)?;

    let nh = homs.len();
    let main_idx: Vec<usize> = homs
        .iter()
        .enumerate()
        .filter(|(_, h)| h.kind != HomKind::SmallDim)
        .map(|(i, _)| i)
        .collect();
    let sd_idx: Option<usize> = homs.iter().position(|h| h.kind == HomKind::SmallDim);
    let mut s = vec![Rational::ZERO; nh];
    for (k, &j) in main_idx.iter().enumerate() {
        s[j] = sol.s[k];
    }
    if let Some(j) = sd_idx {
        s[j] = sol.s_sd;
    }

    // The certificate LP: min Σ_main s_j over the rank rows and caps.
    let zero = Rational::ZERO;
    let one = Rational::ONE;
    let mut lp = Lp::new(nh);
    let mut obj = vec![zero; nh];
    for &j in &main_idx {
        obj[j] = one;
    }
    lp.set_objective(obj);
    for c in &constraints {
        let row: Vec<Rational> = c
            .image_ranks
            .iter()
            .map(|&r| Rational::from(r as i128))
            .collect();
        lp.add_constraint(row, Cmp::Ge, Rational::from(c.lhs as i128));
    }
    for j in 0..nh {
        let mut row = vec![zero; nh];
        row[j] = one;
        lp.add_constraint(row, Cmp::Le, one);
    }

    budget.checkpoint().map_err(BlError::Exhausted)?;
    let dual = solve_dual(&lp).map_err(|_| BlError::Infeasible)?;
    if dual.objective != sol.sigma {
        // Strong duality holds on every feasible bounded LP, so a
        // mismatch can only mean the constraint system itself is bad.
        return Err(BlError::Infeasible);
    }
    let (rank_y, cap_y) = dual.y.split_at(constraints.len());
    Ok(BlCertificate {
        constraints,
        s,
        sigma: sol.sigma,
        s_sd: sol.s_sd,
        rank_duals: rank_y.to_vec(),
        cap_duals: cap_y.iter().map(|&v| -v).collect(),
    })
}

/// Reconstructs the homomorphisms of one scenario (the base homs plus
/// the small-dimension hom when `small_dims` is non-empty) and
/// certifies its Brascamp-Lieb system.
///
/// Returns the homs alongside the certificate so callers can serialize
/// names, kinds, and matrices consistently with the `s` ordering.
///
/// # Errors
///
/// As [`certify_bl`].
pub fn certify_scenario(
    kernel: &Kernel,
    small_dims: &[usize],
    detect_reductions: bool,
    budget: &Budget,
) -> Result<(Vec<Hom>, BlCertificate), BlError> {
    let mut homs = extract_homs(kernel, &HomOptions { detect_reductions });
    if !small_dims.is_empty() {
        homs.push(small_dim_hom(kernel, small_dims));
    }
    let cert = certify_bl(&homs, kernel.dims().len(), budget)?;
    Ok((homs, cert))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ioopt_ir::kernels;

    /// Re-runs the auditor's arithmetic: primal feasibility, dual
    /// feasibility, and strong duality — all in exact rationals.
    fn audit(homs: &[Hom], cert: &BlCertificate) {
        let main: Vec<bool> = homs.iter().map(|h| h.kind != HomKind::SmallDim).collect();
        // Primal: rank rows and caps hold, sigma = sum of main s_j.
        let mut sigma = Rational::ZERO;
        for (j, &sj) in cert.s.iter().enumerate() {
            assert!(!sj.is_negative() && sj <= Rational::ONE);
            if main[j] {
                sigma += sj;
            }
        }
        assert_eq!(sigma, cert.sigma);
        for c in &cert.constraints {
            let mut lhs = Rational::ZERO;
            for (j, &r) in c.image_ranks.iter().enumerate() {
                lhs += Rational::from(r as i128) * cert.s[j];
            }
            assert!(lhs >= Rational::from(c.lhs as i128), "rank row violated");
        }
        // Dual feasibility: sum_i u_i R_ij - v_j <= c_j.
        assert!(cert.rank_duals.iter().all(|u| !u.is_negative()));
        assert!(cert.cap_duals.iter().all(|v| !v.is_negative()));
        for (j, &is_main) in main.iter().enumerate() {
            let mut acc = -cert.cap_duals[j];
            for (u, c) in cert.rank_duals.iter().zip(&cert.constraints) {
                acc += *u * Rational::from(c.image_ranks[j] as i128);
            }
            let cj = if is_main {
                Rational::ONE
            } else {
                Rational::ZERO
            };
            assert!(acc <= cj, "dual row {j} violated");
        }
        // Strong duality: u·r - sum v = sigma.
        let mut dual_obj = Rational::ZERO;
        for (u, c) in cert.rank_duals.iter().zip(&cert.constraints) {
            dual_obj += *u * Rational::from(c.lhs as i128);
        }
        for v in &cert.cap_duals {
            dual_obj -= *v;
        }
        assert_eq!(dual_obj, cert.sigma);
    }

    #[test]
    fn matmul_certificate_audits_clean() {
        let k = kernels::matmul();
        let (homs, cert) = certify_scenario(&k, &[], true, &Budget::unlimited()).unwrap();
        assert_eq!(cert.sigma, Rational::new(3, 2));
        assert_eq!(cert.s, vec![Rational::new(1, 2); 3]);
        audit(&homs, &cert);
    }

    #[test]
    fn conv2d_small_dim_certificate_audits_clean() {
        let k = kernels::conv2d();
        let small = [k.dim_index("h").unwrap(), k.dim_index("w").unwrap()];
        let (homs, cert) = certify_scenario(&k, &small, true, &Budget::unlimited()).unwrap();
        assert_eq!(cert.sigma, Rational::new(3, 2));
        assert_eq!(cert.s_sd, Rational::new(1, 2));
        assert_eq!(homs.len(), 4);
        assert_eq!(cert.s.len(), 4);
        audit(&homs, &cert);
    }

    #[test]
    fn tampered_dual_fails_strong_duality() {
        let k = kernels::matmul();
        let (_, mut cert) = certify_scenario(&k, &[], true, &Budget::unlimited()).unwrap();
        cert.rank_duals[0] += Rational::new(1, 7);
        let mut dual_obj = Rational::ZERO;
        for (u, c) in cert.rank_duals.iter().zip(&cert.constraints) {
            dual_obj += *u * Rational::from(c.lhs as i128);
        }
        for v in &cert.cap_duals {
            dual_obj -= *v;
        }
        assert_ne!(dual_obj, cert.sigma);
    }

    #[test]
    fn exhausted_budget_reports_exhaustion() {
        let spent = Budget::with_limits(None, Some(0), None);
        let k = kernels::matmul();
        let err = certify_scenario(&k, &[], true, &spent).unwrap_err();
        assert!(matches!(err, BlError::Exhausted(_)));
    }
}
