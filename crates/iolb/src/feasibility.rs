//! Queryable feasibility diagnostics for the Brascamp-Lieb system.
//!
//! [`lower_bound`](crate::lower_bound) silently falls back to the trivial
//! bound when a scenario's LP is infeasible or the path analysis is
//! defeated. Front-end tooling (notably `ioopt-verify`) needs to know
//! *why* that happened and *which* dimension is responsible, so this
//! module re-runs the same extraction and exposes the intermediate
//! verdicts as plain data instead of internal fallbacks.

use ioopt_ir::Kernel;
use ioopt_linalg::Rational;

use crate::bound::LbOptions;
use crate::brascamp::solve_bl;
use crate::homs::{extract_homs, small_dim_hom, HomOptions};

/// Dimensions indexed by no array access: dimension `d` escapes when every
/// extracted homomorphism maps the basis vector `e_d` to zero, i.e. the
/// `d`-th column of every access matrix vanishes. Bounded sets can then
/// grow arbitrarily along `d` without touching new data, so the partition
/// argument yields nothing (DESIGN.md §7.3) and the Brascamp-Lieb LP is
/// infeasible.
pub fn escaping_dims(kernel: &Kernel, options: &HomOptions) -> Vec<usize> {
    let homs = extract_homs(kernel, options);
    let d = kernel.dims().len();
    (0..d)
        .filter(|&dim| {
            homs.iter()
                .all(|h| (0..h.matrix.rows()).all(|r| h.matrix[(r, dim)] == Rational::ZERO))
        })
        .collect()
}

/// The Brascamp-Lieb verdict for one small-dimension scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioFeasibility {
    /// The dimensions assumed small (empty = no assumption).
    pub small_dims: Vec<usize>,
    /// `Some(σ)` when the LP solved; `None` when it was infeasible.
    pub sigma: Option<Rational>,
}

impl ScenarioFeasibility {
    /// Whether the scenario's LP admitted a solution.
    pub fn is_feasible(&self) -> bool {
        self.sigma.is_some()
    }
}

/// A feasibility report over every scenario [`lower_bound`](crate::lower_bound)
/// would attempt, in the same order (the empty scenario first).
#[derive(Debug, Clone, PartialEq)]
pub struct FeasibilityReport {
    /// Whether the dependence-path analysis applies at all: `false` when
    /// reduction detection is off and the kernel reduces over more than
    /// one dimension (the sequential chain is then not affine, §5.3).
    pub path_analysis_ok: bool,
    /// Per-scenario LP verdicts (empty when `path_analysis_ok` is false).
    pub scenarios: Vec<ScenarioFeasibility>,
}

impl FeasibilityReport {
    /// Whether at least one scenario produced a usable partition bound.
    pub fn any_feasible(&self) -> bool {
        self.scenarios.iter().any(ScenarioFeasibility::is_feasible)
    }
}

/// Runs the same scenario loop as [`lower_bound`](crate::lower_bound) but
/// records each LP verdict instead of silently skipping infeasible ones.
pub fn check_feasibility(kernel: &Kernel, options: &LbOptions) -> FeasibilityReport {
    let dim = kernel.dims().len();
    let hom_opts = HomOptions {
        detect_reductions: options.detect_reductions,
    };
    let base_homs = extract_homs(kernel, &hom_opts);

    let path_analysis_ok = options.detect_reductions || kernel.reduced_dims().len() < 2;
    if !path_analysis_ok {
        return FeasibilityReport {
            path_analysis_ok,
            scenarios: Vec::new(),
        };
    }

    let mut scenario_list: Vec<Vec<usize>> = vec![Vec::new()];
    for s in &options.scenarios {
        if !scenario_list.contains(s) {
            scenario_list.push(s.clone());
        }
    }

    let scenarios = scenario_list
        .into_iter()
        .map(|small| {
            let mut homs = base_homs.clone();
            if !small.is_empty() {
                homs.push(small_dim_hom(kernel, &small));
            }
            // Diagnostics treat any failed solve (infeasible, overflow,
            // exhausted budget) as "no partition bound here".
            let sigma = match solve_bl(&homs, dim) {
                Ok(sol) => Some(sol.sigma),
                Err(_) => None,
            };
            ScenarioFeasibility {
                small_dims: small,
                sigma,
            }
        })
        .collect();
    FeasibilityReport {
        path_analysis_ok,
        scenarios,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ioopt_ir::kernels;

    #[test]
    fn matmul_has_no_escaping_dims_and_is_feasible() {
        let k = kernels::matmul();
        assert!(escaping_dims(&k, &HomOptions::default()).is_empty());
        let rep = check_feasibility(&k, &LbOptions::default());
        assert!(rep.path_analysis_ok);
        assert!(rep.any_feasible());
        assert_eq!(rep.scenarios[0].sigma, Some(Rational::new(3, 2)));
    }

    #[test]
    fn escaping_dim_detected_and_lp_infeasible() {
        // C[i] += A[i] * B[i] inside loops i, q: q touches no array.
        let src = "kernel escape {\n  loop i : N;\n  loop q : Q;\n  C[i] += A[i] * B[i];\n}";
        let k = ioopt_ir::parse_kernel(src).unwrap();
        let q = k.dim_index("q").unwrap();
        assert_eq!(escaping_dims(&k, &HomOptions::default()), vec![q]);
        let rep = check_feasibility(&k, &LbOptions::default());
        assert!(rep.path_analysis_ok);
        assert!(!rep.any_feasible());
    }

    #[test]
    fn baseline_multi_reduction_defeats_path_analysis() {
        let k = kernels::conv2d();
        let rep = check_feasibility(
            &k,
            &LbOptions {
                detect_reductions: false,
                scenarios: vec![],
            },
        );
        assert!(!rep.path_analysis_ok);
        assert!(rep.scenarios.is_empty());
        // With detection the same kernel is feasible.
        let rep = check_feasibility(&k, &LbOptions::default());
        assert!(rep.path_analysis_ok && rep.any_feasible());
    }
}
