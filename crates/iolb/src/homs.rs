//! Homomorphism extraction from affine dependence paths (paper §5.1–5.3).
//!
//! Each array access induces a group homomorphism `φ_j : Z^d → Z^{d_j}`
//! (its affine access matrix). The accumulated output contributes a
//! *broadcast* homomorphism once the multi-dimensional reduction is
//! detected (§5.3): the projection that forgets every reduced dimension.
//! Without reduction detection (the pre-IOOpt IOLB baseline), the
//! sequential dependence chain only forgets the innermost reduced
//! dimension — which is exactly why the old bounds were loose for
//! convolutions.

use ioopt_ir::{AccessKind, Kernel};
use ioopt_linalg::{Matrix, Rational};

/// The role of a homomorphism in the Brascamp-Lieb system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HomKind {
    /// An input array access.
    Input,
    /// The output (reduction broadcast or plain write).
    Output,
    /// The small-dimension projection `φ_sd` (§5.2).
    SmallDim,
}

/// A homomorphism `φ : Z^d → Z^m` with provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct Hom {
    /// Display name (array name or `sd`).
    pub name: String,
    /// The `m × d` matrix of the linear map.
    pub matrix: Matrix,
    /// Role.
    pub kind: HomKind,
}

impl Hom {
    /// Rank of the image of the subgroup spanned by the rows of `h`
    /// (`rank(φ(H))`).
    pub fn image_rank(&self, h: &Matrix) -> usize {
        self.matrix.matmul(&h.transpose()).rank()
    }

    /// A basis of `Ker(φ)` as row vectors.
    pub fn kernel_basis(&self) -> Vec<Vec<Rational>> {
        self.matrix.kernel_basis()
    }
}

/// Options controlling homomorphism extraction (used by the ablation
/// study of DESIGN.md).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HomOptions {
    /// Detect multi-dimensional reductions and replace the sequential
    /// chain by broadcast dependencies (§5.3). The paper's improvement.
    pub detect_reductions: bool,
}

impl Default for HomOptions {
    fn default() -> HomOptions {
        HomOptions {
            detect_reductions: true,
        }
    }
}

/// Builds the access matrix of an array reference.
fn access_matrix(kernel: &Kernel, a: &ioopt_ir::ArrayRef) -> Matrix {
    let d = kernel.dims().len();
    let forms = a.access.dims();
    let mut m = Matrix::zeros(forms.len(), d);
    for (i, f) in forms.iter().enumerate() {
        for &(dim, c) in f.terms() {
            m[(i, dim)] = Rational::from(c);
        }
    }
    m
}

/// Extracts the data-path homomorphisms of a kernel: one per input array,
/// plus the output homomorphism.
pub fn extract_homs(kernel: &Kernel, options: &HomOptions) -> Vec<Hom> {
    let mut homs = Vec::new();
    // Output first (matches the paper's φ_1).
    let out = kernel.output();
    let out_matrix = if out.kind == AccessKind::Accumulate && !kernel.reduced_dims().is_empty() {
        if options.detect_reductions {
            // Broadcast dependence: projection forgetting every reduced
            // dimension — the output access matrix itself.
            access_matrix(kernel, out)
        } else {
            // Sequential chain in lexicographic order: the path relation
            // only forgets the innermost reduced dimension.
            let d = kernel.dims().len();
            let last_reduced = *kernel.reduced_dims().last().expect("nonempty");
            let rows: Vec<Vec<Rational>> = (0..d)
                .filter(|&i| i != last_reduced)
                .map(|i| {
                    let mut row = vec![Rational::ZERO; d];
                    row[i] = Rational::ONE;
                    row
                })
                .collect();
            Matrix::from_rows(&rows, d)
        }
    } else {
        access_matrix(kernel, out)
    };
    homs.push(Hom {
        name: out.name.clone(),
        matrix: out_matrix,
        kind: HomKind::Output,
    });
    for a in kernel.inputs() {
        homs.push(Hom {
            name: a.name.clone(),
            matrix: access_matrix(kernel, a),
            kind: HomKind::Input,
        });
    }
    homs
}

/// The small-dimension projection `φ_sd` onto the given dimensions.
pub fn small_dim_hom(kernel: &Kernel, dims: &[usize]) -> Hom {
    let d = kernel.dims().len();
    let rows: Vec<Vec<Rational>> = dims
        .iter()
        .map(|&i| {
            let mut row = vec![Rational::ZERO; d];
            row[i] = Rational::ONE;
            row
        })
        .collect();
    Hom {
        name: "sd".into(),
        matrix: Matrix::from_rows(&rows, d),
        kind: HomKind::SmallDim,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ioopt_ir::kernels;

    #[test]
    fn matmul_homs_and_kernels() {
        let k = kernels::matmul();
        let homs = extract_homs(&k, &HomOptions::default());
        assert_eq!(homs.len(), 3);
        // Ker(φ_C) = span{e_k}, Ker(φ_A) = span{e_j}, Ker(φ_B) = span{e_i}.
        let kc = homs[0].kernel_basis();
        assert_eq!(kc.len(), 1);
        assert!(!kc[0][2].is_zero());
        let ka = homs[1].kernel_basis();
        assert!(!ka[0][1].is_zero());
    }

    #[test]
    fn conv2d_homs_match_fig3b() {
        // Fig. 3b: φ1 forgets (c, h, w); φ2 = Image; φ3 = Filter.
        let k = kernels::conv2d();
        let homs = extract_homs(&k, &HomOptions::default());
        let phi1 = &homs[0];
        // Dims order: b, c, f, x, y, h, w.
        for name in ["c", "h", "w"] {
            let d = k.dim_index(name).unwrap();
            let mut v = vec![Rational::ZERO; 7];
            v[d] = Rational::ONE;
            let m = Matrix::from_rows(&[v], 7);
            assert_eq!(phi1.image_rank(&m), 0, "φ1 must forget {name}");
        }
        let db = k.dim_index("b").unwrap();
        let mut v = vec![Rational::ZERO; 7];
        v[db] = Rational::ONE;
        assert_eq!(phi1.image_rank(&Matrix::from_rows(&[v], 7)), 1);
        // Ker(φ_Image) has dimension 3 (f free; x+h, y+w slide).
        assert_eq!(homs[1].kernel_basis().len(), 3);
        // Ker(φ_Filter) = span{e_b, e_x, e_y}.
        assert_eq!(homs[2].kernel_basis().len(), 3);
    }

    #[test]
    fn baseline_keeps_partial_chain() {
        // Without reduction detection the output hom only forgets the
        // innermost reduced dimension (w), per §5.3.
        let k = kernels::conv2d();
        let homs = extract_homs(
            &k,
            &HomOptions {
                detect_reductions: false,
            },
        );
        let phi1 = &homs[0];
        let dc = k.dim_index("c").unwrap();
        let mut v = vec![Rational::ZERO; 7];
        v[dc] = Rational::ONE;
        // c is NOT forgotten by the baseline chain hom.
        assert_eq!(phi1.image_rank(&Matrix::from_rows(&[v], 7)), 1);
        let dw = k.dim_index("w").unwrap();
        let mut v = vec![Rational::ZERO; 7];
        v[dw] = Rational::ONE;
        assert_eq!(phi1.image_rank(&Matrix::from_rows(&[v], 7)), 0);
    }

    #[test]
    fn small_dim_projection() {
        let k = kernels::conv2d();
        let dims = [k.dim_index("h").unwrap(), k.dim_index("w").unwrap()];
        let sd = small_dim_hom(&k, &dims);
        assert_eq!(sd.kind, HomKind::SmallDim);
        assert_eq!(sd.matrix.rows(), 2);
        assert_eq!(sd.kernel_basis().len(), 5);
    }
}
