//! # ioopt-iolb
//!
//! The IOLB lower-bound algorithm of the paper (§5): homomorphism
//! extraction from affine dependence paths with multi-dimensional
//! **reduction detection** (§5.3), subgroup/rank constraint generation via
//! the Brascamp-Lieb inequality, an exact-rational LP for the `s_j`
//! coefficients with the **small-dimension** refinement `φ_sd` (§5.2), and
//! the closed-form bound assembly
//! `Q ≥ max(Σ|arrays|, T*·(|V|/ρ(S+T*) − 1), …)`.

#![warn(missing_docs)]

mod bound;
mod brascamp;
mod certify;
mod feasibility;
mod homs;
mod scenarios;

pub use bound::{lower_bound, lower_bound_governed, LbOptions, LowerBoundReport, ScenarioBound};
pub use brascamp::{
    candidate_subgroups, candidate_subgroups_governed, rank_constraints, rank_constraints_governed,
    solve_bl, solve_bl_governed, BlError, BlSolution, RankConstraint,
};
pub use certify::{certify_bl, certify_scenario, BlCertificate};
pub use feasibility::{check_feasibility, escaping_dims, FeasibilityReport, ScenarioFeasibility};
pub use homs::{extract_homs, small_dim_hom, Hom, HomKind, HomOptions};
pub use scenarios::{conv2d_scenarios, default_scenarios, tc_scenarios};
