//! Small-dimension scenario generation (paper §6, "Parametric lower bound
//! expressions").

use ioopt_ir::{classify_tc, Kernel};

/// Scenarios for tensor contractions: all `2³ = 8` combinations of the
/// three shared-dimension groups assumed small (paper: "Dimensions shared
/// between two arrays are grouped together, and every combination of
/// small/regular dimensions for those three groups is examined").
///
/// Returns `None` if the kernel is not a tensor contraction.
pub fn tc_scenarios(kernel: &Kernel) -> Option<Vec<Vec<usize>>> {
    let class = classify_tc(kernel)?;
    let mut out = Vec::new();
    for mask in 0u8..8 {
        let mut dims = Vec::new();
        for (g, group) in class.groups.iter().enumerate() {
            if mask & (1 << g) != 0 {
                dims.extend(group.iter().copied());
            }
        }
        dims.sort_unstable();
        out.push(dims);
    }
    Some(out)
}

/// Scenarios for 2D convolutions, matching the paper's five: (i) none,
/// (ii) `H, W`, (iii) `H, W, B`, (iv) `H, W, X, Y, B`, (v) `C, H, W, B`.
///
/// Returns `None` unless the kernel has the conv2d dimension names.
pub fn conv2d_scenarios(kernel: &Kernel) -> Option<Vec<Vec<usize>>> {
    let idx = |n: &str| kernel.dim_index(n);
    let (b, c, x, y, h, w) = (
        idx("b")?,
        idx("c")?,
        idx("x")?,
        idx("y")?,
        idx("h")?,
        idx("w")?,
    );
    Some(vec![
        vec![],
        vec![h, w],
        vec![b, h, w],
        vec![b, x, y, h, w],
        vec![b, c, h, w],
    ])
}

/// The default scenario list: the empty scenario plus the kernel's
/// small-marked dimensions, extended with the TC group combinations when
/// the kernel is a tensor contraction.
pub fn default_scenarios(kernel: &Kernel) -> Vec<Vec<usize>> {
    if let Some(tc) = tc_scenarios(kernel) {
        return tc;
    }
    if let Some(conv) = conv2d_scenarios(kernel) {
        return conv;
    }
    let marked: Vec<usize> = (0..kernel.dims().len())
        .filter(|&d| kernel.dims()[d].small)
        .collect();
    if marked.is_empty() {
        vec![vec![]]
    } else {
        vec![vec![], marked]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ioopt_ir::kernels;

    #[test]
    fn tc_scenarios_are_group_combinations() {
        let k = kernels::tensor_contraction("mm", "ab-ac-cb");
        let sc = tc_scenarios(&k).unwrap();
        assert_eq!(sc.len(), 8);
        assert!(sc.contains(&vec![]));
        // Group {c} alone must be a scenario.
        let c = k.dim_index("c").unwrap();
        assert!(sc.contains(&vec![c]));
    }

    #[test]
    fn conv_scenarios_match_paper_count() {
        let k = kernels::conv2d();
        let sc = conv2d_scenarios(&k).unwrap();
        assert_eq!(sc.len(), 5);
        assert_eq!(sc[0], Vec::<usize>::new());
        assert_eq!(sc[1].len(), 2);
        assert_eq!(sc[4].len(), 4);
    }

    #[test]
    fn default_dispatches_by_kernel_kind() {
        assert_eq!(default_scenarios(&kernels::conv2d()).len(), 5);
        assert_eq!(default_scenarios(&kernels::matmul()).len(), 8);
        // conv1d: not a TC, no conv2d names -> empty + marked {w}.
        let sc = default_scenarios(&kernels::conv1d());
        assert_eq!(sc.len(), 2);
        assert_eq!(sc[1], vec![3]);
    }
}
