//! The IOUB cost model (paper §4.2): per-array I/O cost and footprint
//! constraint for a tiling schedule.
//!
//! Per-array costs are pure functions of the kernel structure, the
//! schedule, and the reuse level, and the search layers above
//! (permutation selection, level enumeration, tile NLP, batch runs over
//! same-structure kernels) pose them repeatedly — so they are memoized
//! in a process-wide content-addressed cache ([`cost_cache_stats`]).

use std::collections::HashSet;
use std::sync::OnceLock;

use ioopt_engine::{CacheStats, MemoCache};
use ioopt_ir::{ArrayRef, Kernel};
use ioopt_symbolic::Expr;

use crate::footprint::{inverse_density, sdf};
use crate::schedule::TilingSchedule;

/// The cost contribution of one array at its chosen reuse level.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayCost {
    /// Array name.
    pub array: String,
    /// The chosen reuse level `l` (1 = innermost).
    pub level: usize,
    /// The I/O cost `IO_A = ID^front·|I_front| + ID^back·|I_back|`.
    pub io: Expr,
    /// The cache share needed: `SDF_{A,l} ≤ S_A`.
    pub footprint: Expr,
    /// Whether the expressions are exact for this kernel class.
    pub exact: bool,
}

/// The total cost of a schedule under a reuse-level assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct UbCost {
    /// Total I/O cost `Σ_A IO_A`.
    pub io: Expr,
    /// Total footprint `Σ_A SDF_{A,l_A}`; feasibility requires `≤ S`.
    pub footprint: Expr,
    /// Per-array detail.
    pub per_array: Vec<ArrayCost>,
}

fn cost_cache() -> &'static MemoCache<ArrayCost> {
    static CACHE: OnceLock<MemoCache<ArrayCost>> = OnceLock::new();
    CACHE.get_or_init(MemoCache::new)
}

/// Hit/miss/entry counters of the per-array cost memo cache.
pub fn cost_cache_stats() -> CacheStats {
    cost_cache().stats()
}

/// Enables or disables the cost memo cache (process-wide).
pub fn set_cost_cache_enabled(enabled: bool) {
    cost_cache().set_enabled(enabled);
}

/// Drops every memoized cost and zeroes the counters.
pub fn reset_cost_cache() {
    cost_cache().clear();
}

/// The memo key: kernel structure, schedule (permutation + tile
/// expressions, both canonical), array name, and reuse level.
fn cost_key(kernel: &Kernel, sched: &TilingSchedule, array: &ArrayRef, level: usize) -> Vec<u8> {
    let mut key = kernel.structural_key();
    key.extend_from_slice(sched.to_string().as_bytes());
    key.push(0);
    key.extend_from_slice(array.name.as_bytes());
    key.push(0);
    key.extend_from_slice(&(level as u64).to_le_bytes());
    key
}

/// Computes the cost of `array` when its data is reused across the
/// dimension at `level` (the paper's "outermost reuse dimension" `d_l`),
/// memoized per `(kernel structure, schedule, array, level)`.
pub fn array_cost(
    kernel: &Kernel,
    sched: &TilingSchedule,
    array: &ArrayRef,
    level: usize,
) -> ArrayCost {
    cost_cache().get_or_insert_with(&cost_key(kernel, sched, array, level), || {
        array_cost_uncached(kernel, sched, array, level)
    })
}

fn array_cost_uncached(
    kernel: &Kernel,
    sched: &TilingSchedule,
    array: &ArrayRef,
    level: usize,
) -> ArrayCost {
    let id = inverse_density(kernel, sched, array, level);
    let footprint = sdf(kernel, sched, array, level);
    let total = kernel.domain_size();
    let d = sched.dim_at_level(level);
    // |I_front| = |I| · T_d / N_d ; |I_back| = |I| − |I_front|.
    let ratio = sched.tile(d) / kernel.size_expr(d);
    let front_size = total * ratio;
    let back_size = total - front_size;
    // Expand so that the front/back split collapses whenever the two
    // densities coincide (e.g. Ni·Nj·Nk/Ti instead of a two-term split).
    let io = (id.front * front_size + id.back * back_size).expand();
    ArrayCost {
        array: array.name.clone(),
        level,
        io,
        footprint: footprint.card,
        exact: id.exact && footprint.exact,
    }
}

/// Computes the total cost for one reuse level per array (ordered as
/// [`Kernel::arrays`]: output first).
///
/// # Panics
///
/// Panics if `levels.len()` differs from the number of arrays.
pub fn cost_with_levels(kernel: &Kernel, sched: &TilingSchedule, levels: &[usize]) -> UbCost {
    let arrays: Vec<&ArrayRef> = kernel.arrays().collect();
    assert_eq!(levels.len(), arrays.len(), "one reuse level per array");
    let per_array: Vec<ArrayCost> = arrays
        .iter()
        .zip(levels)
        .map(|(a, &l)| array_cost(kernel, sched, a, l))
        .collect();
    let io = Expr::add_all(per_array.iter().map(|c| c.io));
    let footprint = Expr::add_all(per_array.iter().map(|c| c.footprint));
    UbCost {
        io,
        footprint,
        per_array,
    }
}

/// Candidate reuse levels for each array: all levels, deduplicated by the
/// `(io, footprint)` expression pair (many levels are equivalent when the
/// level's dimension does not affect the array).
pub fn candidate_levels(kernel: &Kernel, sched: &TilingSchedule) -> Vec<Vec<usize>> {
    kernel
        .arrays()
        .map(|a| {
            // Hash-consed exprs are Copy ids, so the dedup key is 8 bytes
            // and set membership is a hash probe, not a structural walk.
            let mut seen: HashSet<(Expr, Expr)> = HashSet::new();
            let mut out = Vec::new();
            for l in 1..=sched.ndims() {
                let c = array_cost(kernel, sched, a, l);
                if seen.insert((c.io, c.footprint)) {
                    out.push(l);
                }
            }
            out
        })
        .collect()
}

/// All combinations of candidate reuse levels (cartesian product), capped
/// at `max_combos` to keep downstream optimization bounded.
pub fn level_combinations(
    kernel: &Kernel,
    sched: &TilingSchedule,
    max_combos: usize,
) -> Vec<Vec<usize>> {
    let cands = candidate_levels(kernel, sched);
    let mut combos: Vec<Vec<usize>> = vec![Vec::new()];
    for c in &cands {
        let mut next = Vec::with_capacity(combos.len() * c.len());
        for combo in &combos {
            for &l in c {
                let mut ext = combo.clone();
                ext.push(l);
                next.push(ext);
                if next.len() >= max_combos {
                    break;
                }
            }
            if next.len() >= max_combos {
                break;
            }
        }
        combos = next;
    }
    combos
}

#[cfg(test)]
mod tests {
    use super::*;
    use ioopt_ir::kernels;

    fn matmul_paper_schedule() -> (ioopt_ir::Kernel, TilingSchedule) {
        let k = kernels::matmul();
        let s = TilingSchedule::parametric(&k, &["i", "j", "k"])
            .unwrap()
            .pin_one(&k, "k");
        (k, s)
    }

    #[test]
    fn matmul_io_matches_paper_eq1() {
        // IO = Ni·Nj·Nk (1/Ti + 1/Tj + 1/Nk)   (paper §6 eq. (1))
        let (k, s) = matmul_paper_schedule();
        let cost = cost_with_levels(&k, &s, &[1, 1, 1]);
        let n = Expr::sym("Ni") * Expr::sym("Nj") * Expr::sym("Nk");
        let expected =
            n * Expr::sym("Ti").recip() + n * Expr::sym("Tj").recip() + n * Expr::sym("Nk").recip();
        assert_eq!(cost.io.expand(), expected.expand());
    }

    #[test]
    fn matmul_footprint_matches_paper_eq2() {
        // SDF sum = Ti + Tj + Ti·Tj   (paper §6 eq. (2))
        let (k, s) = matmul_paper_schedule();
        let cost = cost_with_levels(&k, &s, &[1, 1, 1]);
        let expected = Expr::sym("Ti") + Expr::sym("Tj") + Expr::sym("Ti") * Expr::sym("Tj");
        assert_eq!(cost.footprint.expand(), expected.expand());
    }

    #[test]
    fn conv1d_io_matches_paper() {
        // Paper §4.2: IO_Image = Nc·Nf·(Nx+Nw−1)/Tf, IO_Out = Nc·Nf·Nx/Tc,
        // IO_Filter = Nc·Nf·Nw with levels (Out: 1, Image: 1, Filter: 2).
        let k = kernels::conv1d();
        let s = TilingSchedule::parametric(&k, &["w", "c", "f", "x"])
            .unwrap()
            .pin_one(&k, "x")
            .pin_full(&k, "w");
        let cost = cost_with_levels(&k, &s, &[1, 1, 2]);
        let nc = Expr::sym("Nc");
        let nf = Expr::sym("Nf");
        let nx = Expr::sym("Nx");
        let nw = Expr::sym("Nw");
        let io_out = nc * nf * nx / Expr::sym("Tc");
        let io_image = nc * nf * (nx + nw - Expr::one()) / Expr::sym("Tf");
        let io_filter = nc * nf * nw;
        let expected = io_out + io_image + io_filter;
        assert_eq!(cost.io.expand(), expected.expand());
    }

    #[test]
    fn candidate_levels_deduplicate() {
        let (k, s) = matmul_paper_schedule();
        let cands = candidate_levels(&k, &s);
        assert_eq!(cands.len(), 3);
        // Every array has at least the innermost level.
        for c in &cands {
            assert!(c.contains(&1));
        }
        let combos = level_combinations(&k, &s, 1000);
        assert_eq!(combos.len(), cands.iter().map(Vec::len).product::<usize>());
    }

    #[test]
    fn higher_level_has_no_smaller_footprint() {
        // Footprints grow (weakly) with the reuse level.
        let k = kernels::conv1d();
        let s = TilingSchedule::parametric(&k, &["w", "c", "f", "x"]).unwrap();
        let env: Vec<(&str, f64)> = vec![
            ("Nc", 64.0),
            ("Nf", 32.0),
            ("Nx", 100.0),
            ("Nw", 3.0),
            ("Tc", 8.0),
            ("Tf", 4.0),
            ("Tx", 10.0),
            ("Tw", 3.0),
        ];
        for a in k.arrays() {
            let mut prev = 0.0;
            for l in 1..=4 {
                let c = array_cost(&k, &s, a, l);
                let f = c.footprint.eval_with(&env).unwrap();
                assert!(f >= prev - 1e-9, "array {} level {l}", a.name);
                prev = f;
            }
        }
    }
}
