//! Human-readable explanation of a cost-model result: which reuse level
//! each array sits at, its densities, and the footprint budget — the
//! narrative form of §4.2's per-array reasoning.

use std::fmt::Write as _;

use ioopt_ir::Kernel;

use crate::cost::UbCost;
use crate::footprint::inverse_density;
use crate::schedule::TilingSchedule;

/// Renders a cost breakdown for `cost` (as produced by
/// [`crate::cost_with_levels`] on `sched`).
///
/// # Examples
///
/// ```
/// use ioopt_ioub::{cost_with_levels, explain_cost, TilingSchedule};
/// use ioopt_ir::kernels;
/// let mm = kernels::matmul();
/// let sched = TilingSchedule::parametric(&mm, &["i", "j", "k"])
///     .unwrap()
///     .pin_one(&mm, "k");
/// let cost = cost_with_levels(&mm, &sched, &[1, 1, 1]);
/// let text = explain_cost(&mm, &sched, &cost);
/// assert!(text.contains("array C"));
/// assert!(text.contains("footprint"));
/// ```
pub fn explain_cost(kernel: &Kernel, sched: &TilingSchedule, cost: &UbCost) -> String {
    let mut out = String::new();
    let perm_names: Vec<&str> = sched
        .perm()
        .iter()
        .map(|&d| kernel.dims()[d].name.as_str())
        .collect();
    let _ = writeln!(
        out,
        "schedule: inter-tile order {perm_names:?} (outer to inner)"
    );
    for d in 0..kernel.dims().len() {
        let _ = writeln!(out, "  tile T{} = {}", kernel.dims()[d].name, sched.tile(d));
    }
    for (array, pa) in kernel.arrays().zip(&cost.per_array) {
        let level_dim = kernel.dims()[sched.dim_at_level(pa.level)].name.as_str();
        let id = inverse_density(kernel, sched, array, pa.level);
        let _ = writeln!(
            out,
            "array {name}: reuse across `{level_dim}` (level {level})",
            name = pa.array,
            level = pa.level,
        );
        let _ = writeln!(out, "  footprint kept resident: {}", pa.footprint);
        let _ = writeln!(
            out,
            "  inverse density front/back: {} / {}",
            id.front, id.back
        );
        let _ = writeln!(out, "  I/O contribution: {}", pa.io);
    }
    let _ = writeln!(out, "total I/O: {}", cost.io);
    let _ = writeln!(out, "footprint constraint: {} <= S", cost.footprint);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::cost_with_levels;
    use ioopt_ir::kernels;

    #[test]
    fn conv1d_explanation_mentions_every_array() {
        let k = kernels::conv1d();
        let sched = TilingSchedule::parametric(&k, &["w", "c", "f", "x"])
            .unwrap()
            .pin_one(&k, "x")
            .pin_full(&k, "w");
        let cost = cost_with_levels(&k, &sched, &[1, 1, 2]);
        let text = explain_cost(&k, &sched, &cost);
        for name in ["Out", "Image", "Filter"] {
            assert!(
                text.contains(&format!("array {name}")),
                "missing {name}:\n{text}"
            );
        }
        assert!(text.contains("reuse across `x`"));
        assert!(text.contains("reuse across `f`")); // Filter at level 2
        assert!(text.contains("total I/O"));
    }
}
