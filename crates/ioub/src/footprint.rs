//! Sub-domain footprints, reuse, and inverse densities (paper §4.1).

use ioopt_ir::{ArrayRef, Kernel};
use ioopt_polyhedra::Cardinality;
use ioopt_symbolic::Expr;

use crate::schedule::TilingSchedule;

/// The sub-domain data footprint `SDF_{A,level}`: cells of `array` touched
/// by the sub-domain at `level`.
pub fn sdf(kernel: &Kernel, sched: &TilingSchedule, array: &ArrayRef, level: usize) -> Cardinality {
    let extents = sched.level_extents(kernel, level);
    array.access.image_cardinality(&extents)
}

/// The inter-sub-domain reuse `SDR_{A,level}`: overlap between the
/// footprints of two consecutive sub-domains along the level's dimension.
pub fn sdr(kernel: &Kernel, sched: &TilingSchedule, array: &ArrayRef, level: usize) -> Cardinality {
    let extents = sched.level_extents(kernel, level);
    let d = sched.dim_at_level(level);
    array.access.overlap_cardinality(&extents, d, sched.tile(d))
}

/// Inverse densities at a level: data moved per iteration point for the
/// first sub-domain along the dimension (`front`) and the subsequent ones
/// (`back`).
#[derive(Debug, Clone, PartialEq)]
pub struct InverseDensity {
    /// `ID^front = SDF / |SD|`.
    pub front: Expr,
    /// `ID^back = (SDF − SDR) / |SD|`.
    pub back: Expr,
    /// Whether both are exact (otherwise sound over-approximations).
    pub exact: bool,
}

/// Computes the front/back inverse densities of `array` at `level`.
///
/// `max(0, …)` guards from the overlap computation are simplified away
/// under the schedule's positivity assumptions by clamping at zero — the
/// result is exactly the paper's `ID` when tile sizes do not exceed
/// extents.
pub fn inverse_density(
    kernel: &Kernel,
    sched: &TilingSchedule,
    array: &ArrayRef,
    level: usize,
) -> InverseDensity {
    let footprint = sdf(kernel, sched, array, level);
    let reuse = sdr(kernel, sched, array, level);
    let volume = sched.level_domain_size(kernel, level);
    let inv = volume.recip();
    let front = footprint.card * inv;
    // Expand so that SDF − SDR cancels shared factored terms (e.g.
    // Nw·Tc − Tc·(Nw−1) = Tc).
    let moved = simplify_nonneg(&(footprint.card - reuse.card)).expand();
    let back = moved * inv;
    InverseDensity {
        front,
        back,
        exact: footprint.exact && reuse.exact,
    }
}

/// Rewrites `max(0, e)` sub-terms to `e` and clamps a syntactically
/// non-positive result to zero; sound because footprints dominate reuse.
fn simplify_nonneg(e: &Expr) -> Expr {
    strip_max_zero(e)
}

fn strip_max_zero(e: &Expr) -> Expr {
    use ioopt_symbolic::Node;
    match e.node() {
        Node::Max(items) if items.len() == 2 && items.iter().any(|i| i.is_zero()) => {
            let other = items
                .iter()
                .find(|i| !i.is_zero())
                .cloned()
                .unwrap_or_else(Expr::zero);
            strip_max_zero(&other)
        }
        Node::Add(items) => Expr::add_all(items.iter().map(strip_max_zero)),
        Node::Mul(items) => Expr::mul_all(items.iter().map(strip_max_zero)),
        Node::Pow(b, exp) => Expr::pow(strip_max_zero(b), *exp),
        Node::Max(items) => Expr::max_all(items.iter().map(strip_max_zero)),
        Node::Min(items) => Expr::min_all(items.iter().map(strip_max_zero)),
        _ => *e,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::TilingSchedule;
    use ioopt_ir::kernels;

    /// The conv1d tiling of paper Listing 3:
    /// `(P = (w,c,f,x), {Tc, Tf, Tx = 1, Tw = Nw})`.
    fn conv1d_paper_schedule() -> (ioopt_ir::Kernel, TilingSchedule) {
        let k = kernels::conv1d();
        let s = TilingSchedule::parametric(&k, &["w", "c", "f", "x"])
            .unwrap()
            .pin_one(&k, "x")
            .pin_full(&k, "w");
        (k, s)
    }

    #[test]
    fn paper_sdf_values() {
        let (k, s) = conv1d_paper_schedule();
        let image = &k.inputs()[0];
        // SDF_Image,2 = (Nx + Nw - 1) * Tc (paper §4.1).
        let f2 = sdf(&k, &s, image, 2);
        assert!(f2.exact);
        let expected =
            ((Expr::sym("Nx") + Expr::sym("Nw") - Expr::one()) * Expr::sym("Tc")).expand();
        assert_eq!(f2.card.expand(), expected);
        // SDF_Image,1 = Nw * Tc (level 1: x window of 1, w full).
        let f1 = sdf(&k, &s, image, 1);
        assert_eq!(
            f1.card.expand(),
            (Expr::sym("Nw") * Expr::sym("Tc")).expand()
        );
    }

    #[test]
    fn paper_sdr_value() {
        let (k, s) = conv1d_paper_schedule();
        let image = &k.inputs()[0];
        // SDR_Image,1 = Tc * (Nw - 1) (paper §4.1).
        let r1 = sdr(&k, &s, image, 1);
        let expected = (Expr::sym("Tc") * (Expr::sym("Nw") - Expr::one())).expand();
        assert_eq!(simplify(&r1.card), expected);
    }

    fn simplify(e: &Expr) -> Expr {
        super::strip_max_zero(e).expand()
    }

    #[test]
    fn paper_inverse_densities() {
        let (k, s) = conv1d_paper_schedule();
        let image = &k.inputs()[0];
        let id = inverse_density(&k, &s, image, 1);
        // |SD_x| = Nw * Tc * Tf; ID_back = Tc / (Nw*Tc*Tf) = 1/(Nw*Tf),
        // ID_front = Nw*Tc / (Nw*Tc*Tf) = 1/Tf (paper §4.1).
        assert_eq!(id.back, (Expr::sym("Nw") * Expr::sym("Tf")).recip());
        assert_eq!(id.front, Expr::sym("Tf").recip());
        assert!(id.exact);
    }

    #[test]
    fn full_reuse_when_array_ignores_dim() {
        // Matmul: C[i][j] at level 1 with d_1 = k: back density is 0.
        let k = kernels::matmul();
        let s = TilingSchedule::parametric(&k, &["i", "j", "k"])
            .unwrap()
            .pin_one(&k, "k");
        let id = inverse_density(&k, &s, k.output(), 1);
        assert!(id.back.is_zero());
        // SDF_C,1 / |SD_1| = Ti*Tj / (Ti*Tj*1) = 1.
        assert_eq!(id.front, Expr::one());
    }
}
