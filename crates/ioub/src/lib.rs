//! # ioopt-ioub
//!
//! The IOUB upper-bound algorithm of the paper (§4): sub-domain footprints
//! (`SDF`), inter-sub-domain reuse (`SDR`), inverse densities, the
//! per-array I/O cost model with its footprint constraint, and the
//! reuse-driven loop permutation selection (Algorithm 1).
//!
//! The output of this crate — a symbolic I/O cost as a function of tile
//! sizes plus a footprint inequality — feeds `ioopt-tileopt`, which picks
//! tile sizes (numerically or in closed form).

#![warn(missing_docs)]

mod cost;
mod explain;
mod footprint;
mod multilevel;
mod permsel;
mod schedule;

pub use cost::{
    array_cost, candidate_levels, cost_with_levels, level_combinations, ArrayCost, UbCost,
};
pub use explain::explain_cost;
pub use footprint::{inverse_density, sdf, sdr, InverseDensity};
pub use multilevel::{multilevel_cost, CacheLevelSpec, MultiLevelCost, MultiLevelSchedule};
pub use permsel::{select_permutations, ReuseOracle, SmallDimOracle};
pub use schedule::{ScheduleDisplay, TilingSchedule};
