//! # ioopt-ioub
//!
//! The IOUB upper-bound algorithm of the paper (§4): sub-domain footprints
//! (`SDF`), inter-sub-domain reuse (`SDR`), inverse densities, the
//! per-array I/O cost model with its footprint constraint, and the
//! reuse-driven loop permutation selection (Algorithm 1).
//!
//! The output of this crate — a symbolic I/O cost as a function of tile
//! sizes plus a footprint inequality — feeds `ioopt-tileopt`, which picks
//! tile sizes (numerically or in closed form).

#![warn(missing_docs)]

mod cost;
mod explain;
mod footprint;
mod multilevel;
mod permsel;
mod schedule;

pub use cost::{
    array_cost, candidate_levels, cost_cache_stats, cost_with_levels, level_combinations,
    reset_cost_cache, set_cost_cache_enabled, ArrayCost, UbCost,
};
pub use explain::explain_cost;
pub use footprint::{inverse_density, sdf, sdr, InverseDensity};
pub use multilevel::{multilevel_cost, CacheLevelSpec, MultiLevelCost, MultiLevelSchedule};
pub use permsel::{
    perm_cache_stats, reset_perm_cache, select_permutations, select_permutations_governed,
    select_permutations_with, set_perm_cache_enabled, PermSelection, ReuseOracle, SmallDimOracle,
};
pub use schedule::{ScheduleDisplay, TilingSchedule};
