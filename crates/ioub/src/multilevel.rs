//! Multi-level cache extension of the cost model (paper §4.2 and §6).
//!
//! "The above computation of I/O can also be extended by simply
//! considering one tiling band per cache level and independently applying
//! the previous reasoning to each level." The tiling recommendation for
//! Fig. 8 minimizes the *weighted* sum of per-level data movements, the
//! weights being measured inverse bandwidths.

use ioopt_ir::Kernel;
use ioopt_symbolic::{Expr, Symbol};

use crate::cost::{cost_with_levels, UbCost};
use crate::schedule::TilingSchedule;

/// One level of the cache hierarchy.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheLevelSpec {
    /// Display name (e.g. `L1`).
    pub name: String,
    /// Capacity in data elements.
    pub capacity: f64,
    /// Relative inverse bandwidth of the traffic *above* this level
    /// (weight of the misses out of this level in the objective).
    pub inverse_bandwidth: f64,
}

impl CacheLevelSpec {
    /// Convenience constructor.
    pub fn new(name: &str, capacity: f64, inverse_bandwidth: f64) -> CacheLevelSpec {
        CacheLevelSpec {
            name: name.into(),
            capacity,
            inverse_bandwidth,
        }
    }
}

/// A tiling band per cache level.
///
/// `bands[0]` is the innermost band (tiles sized for the smallest, fastest
/// cache); `bands[l]` tiles must enclose `bands[l-1]` tiles. Tile symbols
/// are suffixed with the band index (`Ti_1`, `Ti_2`, …) so that a single
/// optimization problem can hold all of them.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiLevelSchedule {
    bands: Vec<TilingSchedule>,
}

impl MultiLevelSchedule {
    /// Builds one parametric band per cache level, all using the same
    /// inter-tile permutation (dimension indices, outermost first).
    ///
    /// Returns `None` if `perm` is invalid for the kernel.
    pub fn parametric(
        kernel: &Kernel,
        perm: &[usize],
        num_levels: usize,
    ) -> Option<MultiLevelSchedule> {
        let mut bands = Vec::with_capacity(num_levels);
        for band in 0..num_levels {
            let mut sched = TilingSchedule::parametric_by_index(kernel, perm.to_vec())?;
            // Rename tile vars with a band suffix.
            for d in 0..kernel.dims().len() {
                let sym = Symbol::new(&format!("T{}_{}", kernel.dims()[d].name, band + 1));
                sched = sched.pin(kernel, &kernel.dims()[d].name.clone(), Expr::symbol(sym));
                sched.push_tile_var(d, sym);
            }
            bands.push(sched);
        }
        Some(MultiLevelSchedule { bands })
    }

    /// The per-level bands (innermost first).
    pub fn bands(&self) -> &[TilingSchedule] {
        &self.bands
    }

    /// Nesting constraints: each outer band's tile must be at least as
    /// large as the inner band's, `T_d^{l} ≥ T_d^{l-1}` — returned as
    /// expressions that must be `≥ 0`.
    pub fn nesting_constraints(&self) -> Vec<Expr> {
        let mut out = Vec::new();
        for w in self.bands.windows(2) {
            for d in 0..w[0].ndims() {
                out.push(w[1].tile(d) - w[0].tile(d));
            }
        }
        out
    }
}

/// The multi-level cost: one [`UbCost`] per cache level plus the weighted
/// total objective.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiLevelCost {
    /// Per-level costs (innermost first), each with its own footprint
    /// constraint against the level's capacity.
    pub per_level: Vec<UbCost>,
    /// The weighted objective `Σ_l w_l · IO_l`.
    pub objective: Expr,
}

/// Computes the multi-level cost of a schedule: level `l`'s band is
/// analyzed with the single-level model and weighted by the level's
/// inverse bandwidth.
///
/// `levels[l]` gives the reuse-level assignment for band `l` (see
/// [`cost_with_levels`]).
///
/// # Panics
///
/// Panics if the numbers of bands, cache levels, and level assignments
/// disagree.
pub fn multilevel_cost(
    kernel: &Kernel,
    sched: &MultiLevelSchedule,
    caches: &[CacheLevelSpec],
    levels: &[Vec<usize>],
) -> MultiLevelCost {
    assert_eq!(
        sched.bands().len(),
        caches.len(),
        "one band per cache level"
    );
    assert_eq!(
        levels.len(),
        caches.len(),
        "one level assignment per cache level"
    );
    let per_level: Vec<UbCost> = sched
        .bands()
        .iter()
        .zip(levels)
        .map(|(band, ls)| cost_with_levels(kernel, band, ls))
        .collect();
    // Normalize so the rational conversion keeps relative magnitudes
    // (hardware inverse bandwidths are ~1e-11 and would round to zero).
    let wmax = caches
        .iter()
        .map(|c| c.inverse_bandwidth)
        .fold(f64::MIN_POSITIVE, f64::max);
    let objective = Expr::add_all(
        per_level
            .iter()
            .zip(caches)
            .map(|(c, spec)| Expr::num(f64_to_rational(spec.inverse_bandwidth / wmax)) * c.io),
    );
    MultiLevelCost {
        per_level,
        objective,
    }
}

/// Converts a normalized positive f64 weight to an exact rational
/// (9 decimal digits), keeping the objective inside the symbolic engine.
fn f64_to_rational(v: f64) -> ioopt_symbolic::Rational {
    let denom = 1_000_000_000i128;
    let num = (v * denom as f64).round() as i128;
    ioopt_symbolic::Rational::new(num, denom)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ioopt_ir::kernels;

    #[test]
    fn bands_have_distinct_symbols() {
        let k = kernels::matmul();
        let ms = MultiLevelSchedule::parametric(&k, &[0, 1, 2], 2).unwrap();
        assert_eq!(ms.bands().len(), 2);
        assert_eq!(ms.bands()[0].tile(0).to_string(), "Ti_1");
        assert_eq!(ms.bands()[1].tile(0).to_string(), "Ti_2");
        assert_eq!(ms.bands()[0].tile_vars().len(), 3);
    }

    #[test]
    fn nesting_constraints_count() {
        let k = kernels::matmul();
        let ms = MultiLevelSchedule::parametric(&k, &[0, 1, 2], 3).unwrap();
        assert_eq!(ms.nesting_constraints().len(), 6);
    }

    #[test]
    fn weighted_objective_combines_levels() {
        let k = kernels::matmul();
        let ms = MultiLevelSchedule::parametric(&k, &[0, 1, 2], 2).unwrap();
        let caches = vec![
            CacheLevelSpec::new("L1", 4096.0, 1.0),
            CacheLevelSpec::new("L2", 131072.0, 4.0),
        ];
        let cost = multilevel_cost(&k, &ms, &caches, &[vec![1, 1, 1], vec![1, 1, 1]]);
        assert_eq!(cost.per_level.len(), 2);
        // The objective evaluates to w1*IO1 + w2*IO2.
        let env: Vec<(&str, f64)> = vec![
            ("Ni", 100.0),
            ("Nj", 100.0),
            ("Nk", 100.0),
            ("Ti_1", 8.0),
            ("Tj_1", 8.0),
            ("Tk_1", 1.0),
            ("Ti_2", 32.0),
            ("Tj_2", 32.0),
            ("Tk_2", 1.0),
        ];
        let o = cost.objective.eval_with(&env).unwrap();
        let io1 = cost.per_level[0].io.eval_with(&env).unwrap();
        let io2 = cost.per_level[1].io.eval_with(&env).unwrap();
        // Weights are normalized by the largest (4.0): 1/4·IO1 + 1·IO2.
        assert!((o - (0.25 * io1 + io2)).abs() < 1e-6 * o.abs());
    }
}
