//! Loop permutation selection (paper §4.3, Algorithm 1).
//!
//! Builds permutations innermost-out, at each step keeping only the
//! dimensions whose *reuse set* (arrays that can reuse data across that
//! dimension) is maximal, and intersecting reuse sets as dimensions are
//! consumed.

use std::collections::BTreeSet;
use std::sync::OnceLock;

use ioopt_engine::{obs, par_map, Budget, CacheStats, MemoCache};
use ioopt_ir::{ArrayRef, Kernel};

/// The reuse oracle of §4.3: decides whether `array` can reuse data across
/// consecutive iterations of `dim` when `dim` is placed innermost.
pub trait ReuseOracle {
    /// Whether there is reuse for `array` along `dim`.
    fn reuse(&self, kernel: &Kernel, array: &ArrayRef, dim: usize) -> bool;
}

/// The default oracle, using the kernel's small-dimension annotations:
///
/// * an array that does not use `dim` is fully reused across it;
/// * a sliding-window subscript (`x + w` with `w` the moving dim) gives
///   reuse when the moving dimension is *small* — the paper's
///   `Tw − 1 ≪ Tx` criterion, answered by the user oracle.
#[derive(Debug, Clone, Copy, Default)]
pub struct SmallDimOracle;

impl ReuseOracle for SmallDimOracle {
    fn reuse(&self, kernel: &Kernel, array: &ArrayRef, dim: usize) -> bool {
        if !array.access.uses(dim) {
            return true;
        }
        let small = kernel.dims()[dim].small;
        small
            && array
                .access
                .dims()
                .iter()
                .any(|f| f.uses(dim) && f.terms().len() > 1)
    }
}

/// Runs Algorithm 1: returns the pruned list of inter-tile permutations
/// (dimension indices, outermost first).
///
/// # Examples
///
/// ```
/// use ioopt_ioub::{select_permutations, SmallDimOracle};
/// use ioopt_ir::kernels;
/// let k = kernels::conv1d();
/// let perms = select_permutations(&k, &SmallDimOracle);
/// assert_eq!(perms.len(), 3); // paper Fig. 2
/// ```
pub fn select_permutations(kernel: &Kernel, oracle: &dyn ReuseOracle) -> Vec<Vec<usize>> {
    select_permutations_with(kernel, oracle, 1)
}

fn perm_cache() -> &'static MemoCache<Vec<Vec<usize>>> {
    static CACHE: OnceLock<MemoCache<Vec<Vec<usize>>>> = OnceLock::new();
    CACHE.get_or_init(MemoCache::new)
}

/// Hit/miss/entry counters of the permutation-selection memo cache.
pub fn perm_cache_stats() -> CacheStats {
    perm_cache().stats()
}

/// Enables or disables the permutation memo cache (process-wide).
pub fn set_perm_cache_enabled(enabled: bool) {
    perm_cache().set_enabled(enabled);
}

/// Drops every memoized permutation set and zeroes the counters.
pub fn reset_perm_cache() {
    perm_cache().clear();
}

/// [`select_permutations`] with an explicit worker count for the top-level
/// branch fan-out. `threads == 1` runs the exact sequential algorithm; any
/// other count produces byte-identical output because the branch results
/// are merged in input order and then sorted + deduplicated.
///
/// The whole selection is memoized on the reuse sets (which depend only on
/// the kernel structure and the oracle's answers, not on sizes), so
/// same-structure kernels — e.g. every Yolo9000 conv layer — share one
/// entry.
pub fn select_permutations_with(
    kernel: &Kernel,
    oracle: &dyn ReuseOracle,
    threads: usize,
) -> Vec<Vec<usize>> {
    select_permutations_governed(kernel, oracle, threads, &Budget::ambient()).perms
}

/// The result of a governed permutation selection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PermSelection {
    /// The selected permutations (outermost first), sorted and deduped.
    /// Never empty: on exhaustion the enumerated prefix is completed
    /// with canonical orders, and any single valid permutation yields a
    /// sound upper bound.
    pub perms: Vec<Vec<usize>>,
    /// Whether Algorithm 1 ran to completion. Incomplete selections are
    /// still sound (every returned permutation is valid) but may miss
    /// the cheapest candidate; they are never memoized.
    pub complete: bool,
}

/// [`select_permutations_with`] under an explicit [`Budget`].
///
/// One budget step is consumed per Algorithm 1 tree node; on exhaustion
/// every unexpanded subtree collapses to its canonical dimension order,
/// so the search terminates promptly with a valid (prefix) selection.
pub fn select_permutations_governed(
    kernel: &Kernel,
    oracle: &dyn ReuseOracle,
    threads: usize,
    budget: &Budget,
) -> PermSelection {
    let _span = obs::span("ioub.permsel");
    let dims: Vec<usize> = (0..kernel.dims().len()).collect();
    let reuse_sets: Vec<(usize, BTreeSet<String>)> = dims
        .iter()
        .map(|&d| {
            let set: BTreeSet<String> = kernel
                .arrays()
                .filter(|a| oracle.reuse(kernel, a, d))
                .map(|a| a.name.clone())
                .collect();
            (d, set)
        })
        .collect();
    let mut key: Vec<u8> = vec![b'P'];
    key.extend_from_slice(&(dims.len() as u64).to_le_bytes());
    for (d, s) in &reuse_sets {
        key.extend_from_slice(&(*d as u64).to_le_bytes());
        for name in s {
            key.extend_from_slice(name.as_bytes());
            key.push(0);
        }
        key.push(1);
    }
    // A cache hit replays a complete prior run, exactly — degraded runs
    // are never inserted, so hits are always complete.
    if let Some(perms) = perm_cache().get(&key) {
        obs::add(obs::Metric::PermsSelected, perms.len() as u64);
        return PermSelection {
            perms,
            complete: true,
        };
    }
    let mut perms = gen_perm_root(&dims, &reuse_sets, threads, budget);
    perms.sort();
    perms.dedup();
    let complete = budget.exhausted().is_none();
    if complete {
        perm_cache().insert(&key, perms.clone());
    }
    obs::add(obs::Metric::PermsSelected, perms.len() as u64);
    PermSelection { perms, complete }
}

/// Top level of Algorithm 1: expands each non-dominated innermost choice,
/// fanning the (independent) subtrees out over `threads` workers.
fn gen_perm_root(
    remaining: &[usize],
    reuse: &[(usize, BTreeSet<String>)],
    threads: usize,
    budget: &Budget,
) -> Vec<Vec<usize>> {
    if remaining.is_empty() || reuse.iter().all(|(_, s)| s.is_empty()) {
        return gen_perm(remaining, reuse, budget);
    }
    let choices: Vec<usize> = reuse
        .iter()
        .filter(|(d, s)| {
            let dominated = reuse
                .iter()
                .any(|(d2, s2)| d2 != d && s.is_subset(s2) && s != s2);
            if dominated {
                obs::add(obs::Metric::PermsPruned, 1);
            }
            !dominated && !s.is_empty()
        })
        .map(|(d, _)| *d)
        .collect();
    if choices.is_empty() {
        return gen_perm(remaining, reuse, budget);
    }
    let subtrees = par_map(threads, &choices, |_, &d| {
        let rest: Vec<usize> = remaining.iter().copied().filter(|&x| x != d).collect();
        let s = &reuse.iter().find(|(d2, _)| *d2 == d).unwrap().1;
        let next_reuse: Vec<(usize, BTreeSet<String>)> = reuse
            .iter()
            .filter(|(d2, _)| *d2 != d)
            .map(|(d2, s2)| (*d2, s2.intersection(s).cloned().collect()))
            .collect();
        let mut perms = gen_perm(&rest, &next_reuse, budget);
        for p in &mut perms {
            p.push(d);
        }
        perms
    });
    subtrees.into_iter().flatten().collect()
}

/// The recursive core (paper Algorithm 1). Returns permutations of
/// `remaining`, outermost first. One budget step per tree node; on
/// exhaustion the subtree collapses to the canonical order of its
/// remaining dimensions (a valid permutation, so the overall selection
/// stays sound).
fn gen_perm(
    remaining: &[usize],
    reuse: &[(usize, BTreeSet<String>)],
    budget: &Budget,
) -> Vec<Vec<usize>> {
    if remaining.is_empty() {
        return vec![Vec::new()];
    }
    if budget.step().is_err() {
        let mut perm: Vec<usize> = remaining.to_vec();
        perm.sort_unstable();
        return vec![perm];
    }
    if reuse.iter().all(|(_, s)| s.is_empty()) {
        // No reuse potential left: one arbitrary (canonical) order.
        let mut perm: Vec<usize> = remaining.to_vec();
        perm.sort_unstable();
        return vec![perm];
    }
    let mut perms = Vec::new();
    for (d, s) in reuse {
        // Prune dominated choices: skip d if another dimension's reuse set
        // strictly contains s.
        let dominated = reuse
            .iter()
            .any(|(d2, s2)| d2 != d && s.is_subset(s2) && s != s2);
        if dominated || s.is_empty() {
            if dominated {
                obs::add(obs::Metric::PermsPruned, 1);
            }
            continue;
        }
        let rest: Vec<usize> = remaining.iter().copied().filter(|x| x != d).collect();
        let next_reuse: Vec<(usize, BTreeSet<String>)> = reuse
            .iter()
            .filter(|(d2, _)| d2 != d)
            .map(|(d2, s2)| (*d2, s2.intersection(s).cloned().collect()))
            .collect();
        for mut p in gen_perm(&rest, &next_reuse, budget) {
            // d was chosen innermost among `remaining`.
            p.push(*d);
            perms.push(p);
        }
    }
    if perms.is_empty() {
        // All non-empty sets were mutually dominated duplicates; fall back.
        let mut perm: Vec<usize> = remaining.to_vec();
        perm.sort_unstable();
        return vec![perm];
    }
    perms
}

#[cfg(test)]
mod tests {
    use super::*;
    use ioopt_ir::kernels;

    fn names(kernel: &Kernel, perm: &[usize]) -> Vec<String> {
        perm.iter()
            .map(|&d| kernel.dims()[d].name.clone())
            .collect()
    }

    #[test]
    fn conv1d_matches_fig2() {
        let k = kernels::conv1d();
        let perms = select_permutations(&k, &SmallDimOracle);
        let rendered: Vec<Vec<String>> = perms.iter().map(|p| names(&k, p)).collect();
        // Paper Fig. 2: three permutations; one has x innermost (after
        // choosing w..), two have w innermost with {c, f} second-innermost.
        assert_eq!(perms.len(), 3);
        let innermost: Vec<&str> = rendered
            .iter()
            .map(|p| p.last().unwrap().as_str())
            .collect();
        assert_eq!(innermost.iter().filter(|&&d| d == "x").count(), 1);
        assert_eq!(innermost.iter().filter(|&&d| d == "w").count(), 2);
        let second: BTreeSet<&str> = rendered
            .iter()
            .filter(|p| p.last().unwrap() == "w")
            .map(|p| p[p.len() - 2].as_str())
            .collect();
        assert_eq!(second, BTreeSet::from(["c", "f"]));
    }

    #[test]
    fn conv1d_initial_reuse_sets_match_fig2() {
        let k = kernels::conv1d();
        let oracle = SmallDimOracle;
        let set_for = |dim: &str| -> BTreeSet<String> {
            let d = k.dim_index(dim).unwrap();
            k.arrays()
                .filter(|a| oracle.reuse(&k, a, d))
                .map(|a| a.name.clone())
                .collect()
        };
        // Fig. 2: x: {Filter}, w: {Out, Image}, f: {Image}, c: {Out}.
        assert_eq!(set_for("x"), BTreeSet::from(["Filter".to_string()]));
        assert_eq!(
            set_for("w"),
            BTreeSet::from(["Out".to_string(), "Image".to_string()])
        );
        assert_eq!(set_for("f"), BTreeSet::from(["Image".to_string()]));
        assert_eq!(set_for("c"), BTreeSet::from(["Out".to_string()]));
    }

    #[test]
    fn matmul_permutations() {
        // Singleton reuse sets: i → {B}, j → {A}, k → {C}; none dominates
        // another, so each can go innermost. After one choice the
        // intersections are empty, so the outer order is canonical:
        // exactly three representative permutations.
        let k = kernels::matmul();
        let perms = select_permutations(&k, &SmallDimOracle);
        assert_eq!(perms.len(), 3);
        let inner: BTreeSet<String> = perms
            .iter()
            .map(|p| k.dims()[*p.last().unwrap()].name.clone())
            .collect();
        assert_eq!(inner.len(), 3);
    }

    #[test]
    fn permutations_are_valid() {
        for kernel in [kernels::matmul(), kernels::conv1d(), kernels::conv2d()] {
            for p in select_permutations(&kernel, &SmallDimOracle) {
                let mut sorted = p.clone();
                sorted.sort_unstable();
                let want: Vec<usize> = (0..kernel.dims().len()).collect();
                assert_eq!(sorted, want, "{} perm {:?}", kernel.name(), p);
            }
        }
    }

    #[test]
    fn parallel_selection_is_identical() {
        for kernel in [kernels::matmul(), kernels::conv1d(), kernels::conv2d()] {
            let seq = select_permutations_with(&kernel, &SmallDimOracle, 1);
            for threads in [2, 4, 8] {
                reset_perm_cache(); // force recomputation, not a cache replay
                let par = select_permutations_with(&kernel, &SmallDimOracle, threads);
                assert_eq!(seq, par, "{} threads={threads}", kernel.name());
            }
        }
    }

    #[test]
    fn exhausted_selection_is_a_valid_prefix_and_not_cached() {
        let k = kernels::conv2d();
        let spent = Budget::with_limits(None, Some(0), None);
        assert!(spent.step().is_err());
        reset_perm_cache();
        let degraded = select_permutations_governed(&k, &SmallDimOracle, 1, &spent);
        assert!(!degraded.complete);
        assert!(!degraded.perms.is_empty(), "prefix fallback must exist");
        let want: Vec<usize> = (0..k.dims().len()).collect();
        for p in &degraded.perms {
            let mut sorted = p.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, want, "invalid permutation {p:?}");
        }
        // The degraded selection was not memoized: a fresh run is complete
        // and is a superset of the prefix.
        let exact = select_permutations_governed(&k, &SmallDimOracle, 1, &Budget::unlimited());
        assert!(exact.complete);
        assert!(exact.perms.len() >= degraded.perms.len());
        // A mid-size budget lands between the two.
        reset_perm_cache();
        let partial = select_permutations_governed(
            &k,
            &SmallDimOracle,
            1,
            &Budget::with_limits(None, Some(10), None),
        );
        assert!(!partial.perms.is_empty());
        for p in &partial.perms {
            let mut sorted = p.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, want);
        }
    }

    #[test]
    fn conv2d_selection_is_pruned() {
        // 7 dims would have 5040 permutations; the algorithm must prune
        // to a small representative set.
        let k = kernels::conv2d();
        let perms = select_permutations(&k, &SmallDimOracle);
        assert!(!perms.is_empty());
        assert!(perms.len() <= 60, "got {}", perms.len());
    }
}
