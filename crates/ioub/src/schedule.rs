//! Tiling schedules `(P, T)`: inter-tile loop permutation and tile sizes.

use std::fmt;

use ioopt_ir::Kernel;
use ioopt_symbolic::{Expr, Symbol};

/// A rectangular tiling schedule: a permutation `P` of the kernel's
/// dimensions (outermost first) and a symbolic tile size per dimension
/// (paper §4.1).
///
/// Tile sizes of `1` and `N_d` encode untiled inner/outer dimensions, as
/// in the paper's notation `(P = (w,c,f,x), {T_c, T_f, T_x = 1, T_w = Nw})`.
///
/// # Examples
///
/// ```
/// use ioopt_ioub::TilingSchedule;
/// use ioopt_ir::kernels;
/// let mm = kernels::matmul();
/// let sched = TilingSchedule::parametric(&mm, &["i", "j", "k"]).unwrap();
/// assert_eq!(sched.to_string(), "P = (d0, d1, d2), T = {Ti, Tj, Tk}");
/// assert_eq!(
///     sched.display(&mm).to_string(),
///     "(i, j, k), {Ti = Ti, Tj = Tj, Tk = Tk}"
/// );
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TilingSchedule {
    /// Dimension indices, outermost first (`perm[0]` is the paper's
    /// `d_{|D|}`).
    perm: Vec<usize>,
    /// Tile size expression per dimension (indexed by dimension, not by
    /// permutation position).
    tiles: Vec<Expr>,
    /// The free tile-size symbols (those not pinned to `1` or `N_d`),
    /// with their dimension.
    tile_vars: Vec<(usize, Symbol)>,
}

impl TilingSchedule {
    /// Creates a schedule with fully parametric tile sizes `T<name>` for a
    /// permutation given by dimension names (outermost first).
    ///
    /// Returns `None` if `perm` is not a permutation of the kernel's
    /// dimension names.
    pub fn parametric(kernel: &Kernel, perm: &[&str]) -> Option<TilingSchedule> {
        let indices: Option<Vec<usize>> = perm.iter().map(|n| kernel.dim_index(n)).collect();
        let indices = indices?;
        TilingSchedule::parametric_by_index(kernel, indices)
    }

    /// As [`TilingSchedule::parametric`], from dimension indices.
    pub fn parametric_by_index(kernel: &Kernel, perm: Vec<usize>) -> Option<TilingSchedule> {
        let n = kernel.dims().len();
        if perm.len() != n {
            return None;
        }
        let mut seen = vec![false; n];
        for &d in &perm {
            if d >= n || seen[d] {
                return None;
            }
            seen[d] = true;
        }
        let mut tiles = Vec::with_capacity(n);
        let mut tile_vars = Vec::new();
        for d in 0..n {
            let sym = Symbol::new(&format!("T{}", kernel.dims()[d].name));
            tiles.push(Expr::symbol(sym));
            tile_vars.push((d, sym));
        }
        Some(TilingSchedule {
            perm,
            tiles,
            tile_vars,
        })
    }

    /// Pins the tile size of dimension `name` to a fixed expression
    /// (commonly `1` or the full extent `N_d`), removing it from the free
    /// variables.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not a dimension of the schedule's kernel.
    pub fn pin(mut self, kernel: &Kernel, name: &str, value: Expr) -> TilingSchedule {
        let d = kernel
            .dim_index(name)
            .unwrap_or_else(|| panic!("unknown dimension `{name}`"));
        self.tiles[d] = value;
        self.tile_vars.retain(|&(vd, _)| vd != d);
        self
    }

    /// Pins the tile size of `name` to 1 (the dimension iterates between
    /// tiles only).
    pub fn pin_one(self, kernel: &Kernel, name: &str) -> TilingSchedule {
        self.pin(kernel, name, Expr::one())
    }

    /// Pins the tile size of `name` to the full extent `N_d` (the
    /// dimension iterates inside the tile only).
    pub fn pin_full(self, kernel: &Kernel, name: &str) -> TilingSchedule {
        let d = kernel
            .dim_index(name)
            .unwrap_or_else(|| panic!("unknown dimension `{name}`"));
        let full = kernel.size_expr(d);
        self.pin(kernel, name, full)
    }

    /// Registers `sym` as the free tile variable of dimension `d` after a
    /// re-pin (used by the multi-level bands to rename tile symbols).
    pub(crate) fn push_tile_var(&mut self, d: usize, sym: Symbol) {
        self.tile_vars.retain(|&(vd, _)| vd != d);
        self.tile_vars.push((d, sym));
    }

    /// The permutation (dimension indices, outermost first).
    pub fn perm(&self) -> &[usize] {
        &self.perm
    }

    /// The tile size of dimension `d`.
    pub fn tile(&self, d: usize) -> &Expr {
        &self.tiles[d]
    }

    /// All tile sizes, indexed by dimension.
    pub fn tiles(&self) -> &[Expr] {
        &self.tiles
    }

    /// The free tile-size variables `(dim, symbol)`.
    pub fn tile_vars(&self) -> &[(usize, Symbol)] {
        &self.tile_vars
    }

    /// The number of dimensions.
    pub fn ndims(&self) -> usize {
        self.perm.len()
    }

    /// The dimension at paper level `j ∈ 1..=n` (level 1 is innermost:
    /// `d_1 = perm[n-1]`).
    pub fn dim_at_level(&self, level: usize) -> usize {
        assert!((1..=self.ndims()).contains(&level), "level out of range");
        self.perm[self.ndims() - level]
    }

    /// The level of dimension `d`.
    pub fn level_of(&self, d: usize) -> usize {
        let pos = self
            .perm
            .iter()
            .position(|&p| p == d)
            .expect("dimension in permutation");
        self.ndims() - pos
    }

    /// Per-dimension extents of the sub-domain at `level` (paper §4.1):
    /// dimensions at levels ≥ `level` span one tile, the inner ones span
    /// their full extent.
    pub fn level_extents(&self, kernel: &Kernel, level: usize) -> Vec<Expr> {
        (0..self.ndims())
            .map(|d| {
                if self.level_of(d) >= level {
                    self.tiles[d]
                } else {
                    kernel.size_expr(d)
                }
            })
            .collect()
    }

    /// `|SD_level|`: the number of iteration points in the sub-domain.
    pub fn level_domain_size(&self, kernel: &Kernel, level: usize) -> Expr {
        Expr::mul_all(self.level_extents(kernel, level))
    }

    /// Renders with dimension names from `kernel`.
    pub fn display<'a>(&'a self, kernel: &'a Kernel) -> ScheduleDisplay<'a> {
        ScheduleDisplay {
            sched: self,
            kernel,
        }
    }
}

impl fmt::Display for TilingSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P = (")?;
        for (i, &d) in self.perm.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "d{d}")?;
        }
        write!(f, "), T = {{")?;
        for (i, t) in self.tiles.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "}}")
    }
}

/// [`TilingSchedule`] renderer with human dimension names.
#[derive(Debug)]
pub struct ScheduleDisplay<'a> {
    sched: &'a TilingSchedule,
    kernel: &'a Kernel,
}

impl fmt::Display for ScheduleDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, &d) in self.sched.perm.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", self.kernel.dims()[d].name)?;
        }
        write!(f, "), {{")?;
        for (i, t) in self.sched.tiles.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "T{} = {}", self.kernel.dims()[i].name, t)?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ioopt_ir::kernels;

    #[test]
    fn level_indexing_matches_paper() {
        // Conv1d with P = (w, c, f, x): d_4 = w, d_3 = c, d_2 = f, d_1 = x.
        let k = kernels::conv1d();
        let s = TilingSchedule::parametric(&k, &["w", "c", "f", "x"]).unwrap();
        assert_eq!(k.dims()[s.dim_at_level(4)].name, "w");
        assert_eq!(k.dims()[s.dim_at_level(1)].name, "x");
        assert_eq!(s.level_of(k.dim_index("f").unwrap()), 2);
    }

    #[test]
    fn level_extents_widen_inner_dims() {
        let k = kernels::matmul();
        let s = TilingSchedule::parametric(&k, &["i", "j", "k"]).unwrap();
        // Level 2: i and j tiled, k full.
        let exts = s.level_extents(&k, 2);
        assert_eq!(exts[0].to_string(), "Ti");
        assert_eq!(exts[1].to_string(), "Tj");
        assert_eq!(exts[2].to_string(), "Nk");
        // Level 1: everything tiled.
        let exts = s.level_extents(&k, 1);
        assert_eq!(exts[2].to_string(), "Tk");
    }

    #[test]
    fn pinning_removes_vars() {
        let k = kernels::matmul();
        let s = TilingSchedule::parametric(&k, &["i", "j", "k"])
            .unwrap()
            .pin_one(&k, "k");
        assert_eq!(s.tile_vars().len(), 2);
        assert!(s.tile(2).is_one());
        let s2 = s.pin_full(&k, "j");
        assert_eq!(s2.tile(1).to_string(), "Nj");
    }

    #[test]
    fn rejects_non_permutations() {
        let k = kernels::matmul();
        assert!(TilingSchedule::parametric(&k, &["i", "j"]).is_none());
        assert!(TilingSchedule::parametric(&k, &["i", "j", "j"]).is_none());
        assert!(TilingSchedule::parametric(&k, &["i", "j", "z"]).is_none());
    }

    #[test]
    fn display_with_names() {
        let k = kernels::matmul();
        let s = TilingSchedule::parametric(&k, &["i", "j", "k"])
            .unwrap()
            .pin_one(&k, "k");
        assert_eq!(
            s.display(&k).to_string(),
            "(i, j, k), {Ti = Ti, Tj = Tj, Tk = 1}"
        );
    }
}
