//! Randomized tests: the symbolic SDF/SDR of random tilings equal
//! brute-force enumeration over the corresponding concrete sub-domains.
//! Deterministic SplitMix64-driven cases.

use std::collections::HashMap;

use ioopt_ioub::{sdf, sdr, TilingSchedule};
use ioopt_ir::kernels;
use ioopt_polyhedra::{count_image, count_image_overlap, ConcreteBox};
use ioopt_symbolic::{Rational, SplitMix64, Symbol};

/// Concrete sizes, tiles, permutation, and level for conv1d's four
/// dimensions (c, f, x, w).
fn random_case(rng: &mut SplitMix64) -> (Vec<i64>, Vec<i64>, Vec<usize>, usize) {
    let sizes: Vec<i64> = (0..4).map(|_| rng.range_i64(2, 5)).collect();
    let tiles: Vec<i64> = sizes.iter().map(|&n| rng.range_i64(1, n)).collect();
    let mut perm = vec![0usize, 1, 2, 3];
    rng.shuffle(&mut perm);
    let level = 1 + rng.range_usize(4);
    (sizes, tiles, perm, level)
}

fn env_for(kernel: &ioopt_ir::Kernel, sizes: &[i64], tiles: &[i64]) -> HashMap<Symbol, Rational> {
    let mut env: HashMap<Symbol, Rational> = HashMap::new();
    for (d, dim) in kernel.dims().iter().enumerate() {
        env.insert(dim.size, Rational::from(sizes[d] as i128));
        env.insert(
            Symbol::new(&format!("T{}", dim.name)),
            Rational::from(tiles[d] as i128),
        );
    }
    env
}

/// SDF equals the enumerated distinct-cell count of the level's box.
#[test]
fn sdf_matches_enumeration() {
    let mut rng = SplitMix64::new(0x100b01);
    for _ in 0..64 {
        let (sizes, tiles, perm, level) = random_case(&mut rng);
        let kernel = kernels::conv1d();
        let sched =
            TilingSchedule::parametric_by_index(&kernel, perm.clone()).expect("valid permutation");
        let env = env_for(&kernel, &sizes, &tiles);
        // Concrete box: tiled dims (level >= `level`) use the tile size,
        // inner dims the full extent.
        let extents: Vec<i64> = (0..4)
            .map(|d| {
                if sched.level_of(d) >= level {
                    tiles[d]
                } else {
                    sizes[d]
                }
            })
            .collect();
        let boxdom = ConcreteBox::at_origin(extents);
        for array in kernel.arrays() {
            let symbolic = sdf(&kernel, &sched, array, level);
            assert!(symbolic.exact);
            let value = symbolic.card.eval_rational(&env).expect("rational");
            let enumerated = count_image(&boxdom, &array.access);
            assert_eq!(
                value,
                Rational::from(enumerated as i128),
                "array {} level {level} perm {perm:?}",
                array.name
            );
        }
    }
}

/// SDR equals the enumerated overlap of consecutive sub-domains.
#[test]
fn sdr_matches_enumeration() {
    let mut rng = SplitMix64::new(0x100b02);
    for _ in 0..64 {
        let (sizes, tiles, perm, level) = random_case(&mut rng);
        let kernel = kernels::conv1d();
        let sched =
            TilingSchedule::parametric_by_index(&kernel, perm.clone()).expect("valid permutation");
        let env = env_for(&kernel, &sizes, &tiles);
        let extents: Vec<i64> = (0..4)
            .map(|d| {
                if sched.level_of(d) >= level {
                    tiles[d]
                } else {
                    sizes[d]
                }
            })
            .collect();
        let d_level = sched.dim_at_level(level);
        let b1 = ConcreteBox::at_origin(extents);
        let b2 = b1.shifted(d_level, tiles[d_level]);
        for array in kernel.arrays() {
            let symbolic = sdr(&kernel, &sched, array, level);
            let value = symbolic.card.eval_rational(&env).expect("rational");
            let enumerated = count_image_overlap(&b1, &b2, &array.access);
            assert_eq!(
                value,
                Rational::from(enumerated as i128),
                "array {} level {level} shift dim {d_level} perm {perm:?}",
                array.name
            );
        }
    }
}
