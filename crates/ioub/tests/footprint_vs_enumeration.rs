//! Property tests: the symbolic SDF/SDR of random tilings equal
//! brute-force enumeration over the corresponding concrete sub-domains.

use std::collections::HashMap;

use ioopt_ioub::{sdf, sdr, TilingSchedule};
use ioopt_ir::kernels;
use ioopt_polyhedra::{count_image, count_image_overlap, ConcreteBox};
use ioopt_symbolic::{Rational, Symbol};
use proptest::prelude::*;

/// Concrete sizes and tiles for conv1d's four dimensions (c, f, x, w).
fn case_strategy() -> impl Strategy<Value = (Vec<i64>, Vec<i64>, Vec<usize>, usize)> {
    let sizes = proptest::collection::vec(2i64..6, 4);
    let perm = Just(vec![0usize, 1, 2, 3]).prop_shuffle();
    (sizes, perm, 1usize..=4).prop_flat_map(|(sizes, perm, level)| {
        let tiles = sizes
            .iter()
            .map(|&n| 1i64..=n)
            .collect::<Vec<_>>();
        (Just(sizes), tiles, Just(perm), Just(level))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// SDF equals the enumerated distinct-cell count of the level's box.
    #[test]
    fn sdf_matches_enumeration((sizes, tiles, perm, level) in case_strategy()) {
        let kernel = kernels::conv1d();
        let sched = TilingSchedule::parametric_by_index(&kernel, perm.clone())
            .expect("valid permutation");
        // Bindings: dimension sizes and tile symbols.
        let mut env: HashMap<Symbol, Rational> = HashMap::new();
        for (d, dim) in kernel.dims().iter().enumerate() {
            env.insert(dim.size, Rational::from(sizes[d] as i128));
            env.insert(
                Symbol::new(&format!("T{}", dim.name)),
                Rational::from(tiles[d] as i128),
            );
        }
        // Concrete box: tiled dims (level >= `level`) use the tile size,
        // inner dims the full extent.
        let extents: Vec<i64> = (0..4)
            .map(|d| {
                if sched.level_of(d) >= level {
                    tiles[d]
                } else {
                    sizes[d]
                }
            })
            .collect();
        let boxdom = ConcreteBox::at_origin(extents);
        for array in kernel.arrays() {
            let symbolic = sdf(&kernel, &sched, array, level);
            prop_assert!(symbolic.exact);
            let value = symbolic.card.eval_rational(&env).expect("rational");
            let enumerated = count_image(&boxdom, &array.access);
            prop_assert_eq!(
                value,
                Rational::from(enumerated as i128),
                "array {} level {}", array.name, level
            );
        }
    }

    /// SDR equals the enumerated overlap of consecutive sub-domains.
    #[test]
    fn sdr_matches_enumeration((sizes, tiles, perm, level) in case_strategy()) {
        let kernel = kernels::conv1d();
        let sched = TilingSchedule::parametric_by_index(&kernel, perm.clone())
            .expect("valid permutation");
        let mut env: HashMap<Symbol, Rational> = HashMap::new();
        for (d, dim) in kernel.dims().iter().enumerate() {
            env.insert(dim.size, Rational::from(sizes[d] as i128));
            env.insert(
                Symbol::new(&format!("T{}", dim.name)),
                Rational::from(tiles[d] as i128),
            );
        }
        let extents: Vec<i64> = (0..4)
            .map(|d| {
                if sched.level_of(d) >= level {
                    tiles[d]
                } else {
                    sizes[d]
                }
            })
            .collect();
        let d_level = sched.dim_at_level(level);
        let b1 = ConcreteBox::at_origin(extents);
        let b2 = b1.shifted(d_level, tiles[d_level]);
        for array in kernel.arrays() {
            let symbolic = sdr(&kernel, &sched, array, level);
            let value = symbolic.card.eval_rational(&env).expect("rational");
            let enumerated = count_image_overlap(&b1, &b2, &array.access);
            prop_assert_eq!(
                value,
                Rational::from(enumerated as i128),
                "array {} level {} shift dim {}", array.name, level, d_level
            );
        }
    }
}
