//! Tensor-contraction classification (derives the paper's Fig. 5 rows).
//!
//! The paper groups the 49 distinct TCCG kernels into eight classes "by
//! the number of dimensions of each array and the number of dimensions
//! shared between them". This module computes that signature from a
//! [`Kernel`], so the Fig. 5 table is *derived*, not hard-coded.

use std::collections::BTreeSet;

use crate::program::Kernel;

/// The class signature of a tensor contraction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcClass {
    /// Dimensions per array: `(Out, In1, In2)`.
    pub array_dims: (usize, usize, usize),
    /// Shared dimensions: `(Out∩In1, Out∩In2, In1∩In2)`.
    pub shared_dims: (usize, usize, usize),
    /// The dimension groups, as indices into the kernel's dims:
    /// `[Out∩In1, Out∩In2, In1∩In2]`. For a well-formed contraction these
    /// partition all dimensions ("merging" each group turns the kernel
    /// into a matrix multiplication, §6).
    pub groups: [Vec<usize>; 3],
}

impl TcClass {
    /// Formats the signature like Fig. 5, e.g. `332 / 211`.
    pub fn signature(&self) -> String {
        format!(
            "{}{}{} / {}{}{}",
            self.array_dims.0,
            self.array_dims.1,
            self.array_dims.2,
            self.shared_dims.0,
            self.shared_dims.1,
            self.shared_dims.2
        )
    }
}

/// Classifies a two-input kernel as a tensor contraction.
///
/// Returns `None` if the kernel does not have exactly two inputs, or if
/// the subscripts are not simple distinct indices (e.g. a convolution), or
/// if some dimension does not appear in exactly two of the three arrays.
pub fn classify_tc(kernel: &Kernel) -> Option<TcClass> {
    if kernel.inputs().len() != 2 {
        return None;
    }
    let dims_of = |a: &crate::program::ArrayRef| -> Option<BTreeSet<usize>> {
        let mut set = BTreeSet::new();
        for f in a.access.dims() {
            // Tensor contractions index arrays by single distinct dims.
            if f.terms().len() != 1 || f.terms()[0].1 != 1 {
                return None;
            }
            if !set.insert(f.terms()[0].0) {
                return None;
            }
        }
        Some(set)
    };
    let out = dims_of(kernel.output())?;
    let in1 = dims_of(&kernel.inputs()[0])?;
    let in2 = dims_of(&kernel.inputs()[1])?;

    let g01: Vec<usize> = out.intersection(&in1).copied().collect();
    let g02: Vec<usize> = out.intersection(&in2).copied().collect();
    let g12: Vec<usize> = in1.intersection(&in2).copied().collect();

    // Every dimension must lie in exactly two arrays.
    for d in 0..kernel.dims().len() {
        let count = usize::from(out.contains(&d))
            + usize::from(in1.contains(&d))
            + usize::from(in2.contains(&d));
        if count != 2 {
            return None;
        }
    }

    Some(TcClass {
        array_dims: (out.len(), in1.len(), in2.len()),
        shared_dims: (g01.len(), g02.len(), g12.len()),
        groups: [g01, g02, g12],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{conv2d, tensor_contraction, TCCG};

    #[test]
    fn fig5_signatures_are_derived() {
        // The expected (dims, shared) columns of Fig. 5, in table order.
        let expected = [
            ("abcde-efbad-cf", "552 / 411"),
            ("abcd-dbea-ec", "442 / 311"),
            ("abc-bda-dc", "332 / 211"),
            ("abcdef-dega-gfbc", "644 / 331"),
            ("abc-adec-ebd", "343 / 212"),
            ("ab-cad-dcb", "233 / 112"),
            ("ab-ac-cb", "222 / 111"),
            ("abcd-aebf-fdec", "444 / 222"),
        ];
        for (entry, (spec, sig)) in TCCG.iter().zip(expected) {
            assert_eq!(entry.spec, spec);
            let class = classify_tc(&entry.kernel()).expect("classifies");
            assert_eq!(class.signature(), sig, "for {spec}");
        }
    }

    #[test]
    fn groups_partition_dims() {
        for entry in TCCG {
            let k = entry.kernel();
            let class = classify_tc(&k).unwrap();
            let mut all: Vec<usize> = class.groups.iter().flatten().copied().collect();
            all.sort_unstable();
            let want: Vec<usize> = (0..k.dims().len()).collect();
            assert_eq!(all, want, "for {}", entry.spec);
        }
    }

    #[test]
    fn convolution_is_not_a_tc() {
        assert_eq!(classify_tc(&conv2d()), None);
    }

    #[test]
    fn matmul_class() {
        let class = classify_tc(&tensor_contraction("mm", "ab-ac-cb")).unwrap();
        assert_eq!(class.array_dims, (2, 2, 2));
        assert_eq!(class.shared_dims, (1, 1, 1));
    }
}
