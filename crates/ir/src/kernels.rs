//! The paper's benchmark kernels: matmul, 1D/2D convolution, the TCCG
//! tensor-contraction classes (Fig. 5) and the Yolo9000 layers (Fig. 4).

use std::collections::HashMap;

use ioopt_polyhedra::{AccessFunction, LinearForm};
use ioopt_symbolic::Symbol;

use crate::parser::parse_kernel;
use crate::program::{AccessKind, ArrayRef, Dim, Kernel};

/// Matrix-matrix multiplication (paper Listing 1).
pub fn matmul() -> Kernel {
    parse_kernel(
        "kernel matmul {
            loop i : Ni;
            loop j : Nj;
            loop k : Nk;
            C[i][j] += A[i][k] * B[k][j];
        }",
    )
    .expect("builtin matmul parses")
}

/// 1D convolution, the paper's running example (Listing 2).
pub fn conv1d() -> Kernel {
    parse_kernel(
        "kernel conv1d {
            loop c : Nc;
            loop f : Nf;
            loop x : Nx;
            loop w : Nw small;
            Out[f][x] += Image[x+w][c] * Filter[f][w][c];
        }",
    )
    .expect("builtin conv1d parses")
}

/// 2D convolution (paper Fig. 3a): the Yolo9000 layer shape.
///
/// Dimensions, outermost first: `b, c, f, x, y, h, w`; `h` and `w` carry
/// the small-dimension annotation used by §5.2.
pub fn conv2d() -> Kernel {
    parse_kernel(
        "kernel conv2d {
            loop b : B;
            loop c : C;
            loop f : F;
            loop x : X;
            loop y : Y;
            loop h : H small;
            loop w : W small;
            Out[f][x][y][b] += Image[x+h][y+w][c][b] * Filter[f][h][w][c];
        }",
    )
    .expect("builtin conv2d parses")
}

/// MTTKRP (matricized tensor times Khatri-Rao product), the CP
/// decomposition workhorse: `A[i][j] += B[i][k][l] * C[k][j] * D[l][j]`.
///
/// A three-input kernel: exercises the cost model and lower-bound
/// machinery beyond the two-input tensor-contraction class.
pub fn mttkrp() -> Kernel {
    parse_kernel(
        "kernel mttkrp {
            loop i : Ni;
            loop j : Nj;
            loop k : Nk;
            loop l : Nl;
            A[i][j] += B[i][k][l] * C[k][j] * D[l][j];
        }",
    )
    .expect("builtin mttkrp parses")
}

/// A 2D cross-correlation stencil written as a weighted reduction:
/// `Out[x][y] += In[x+h][y+w] * W[h][w]` — the single-channel analogue of
/// [`conv2d`], useful for small-scale validation.
pub fn stencil2d() -> Kernel {
    parse_kernel(
        "kernel stencil2d {
            loop x : Nx;
            loop y : Ny;
            loop h : Nh small;
            loop w : Nw small;
            Out[x][y] += In[x+h][y+w] * W[h][w];
        }",
    )
    .expect("builtin stencil2d parses")
}

/// `doitgen` (PolyBench): `A[r][q][p] += C4[s][p] * A0[r][q][s]` — a
/// tensor contraction with a 2-dimensional free group, class `332 / 211`.
pub fn doitgen() -> Kernel {
    parse_kernel(
        "kernel doitgen {
            loop r : Nr;
            loop q : Nq;
            loop p : Np;
            loop s : Ns;
            A[r][q][p] += A0[r][q][s] * C4[s][p];
        }",
    )
    .expect("builtin doitgen parses")
}

/// Builds a tensor contraction from a TCCG spec string such as
/// `"abc-bda-dc"` (`Out-In1-In2`, one letter per dimension).
///
/// Dimensions are created in alphabetical order; the size symbol of
/// dimension `a` is `A`, and so on.
///
/// # Panics
///
/// Panics if the spec is not three `-`-separated index strings or if a
/// letter appears twice within one tensor.
pub fn tensor_contraction(name: &str, spec: &str) -> Kernel {
    let parts: Vec<&str> = spec.split('-').collect();
    assert_eq!(parts.len(), 3, "TC spec must be Out-In1-In2, got `{spec}`");
    let mut letters: Vec<char> = spec.chars().filter(|c| c.is_ascii_alphabetic()).collect();
    letters.sort_unstable();
    letters.dedup();
    let dims: Vec<Dim> = letters
        .iter()
        .map(|&c| Dim::new(c.to_string(), Symbol::new(&c.to_uppercase().to_string())))
        .collect();
    let dim_of = |c: char| -> usize {
        letters
            .iter()
            .position(|&l| l == c)
            .expect("letter registered")
    };
    let make_access = |indices: &str| -> AccessFunction {
        let mut seen = Vec::new();
        let forms: Vec<LinearForm> = indices
            .chars()
            .map(|c| {
                assert!(!seen.contains(&c), "repeated index `{c}` in `{indices}`");
                seen.push(c);
                LinearForm::var(dim_of(c))
            })
            .collect();
        AccessFunction::new(forms)
    };
    let output = ArrayRef::new("Out", make_access(parts[0]), AccessKind::Accumulate);
    let inputs = vec![
        ArrayRef::new("In1", make_access(parts[1]), AccessKind::Read),
        ArrayRef::new("In2", make_access(parts[2]), AccessKind::Read),
    ];
    Kernel::new(name, dims, output, inputs).expect("TC spec produces a valid kernel")
}

/// PolyBench-style multi-statement programs, expressed as sequences of
/// fully tilable kernels (each statement is one band; compose bounds with
/// `ioopt::analyze_sequence`).
pub mod polybench {
    use super::*;

    /// `atax`: `y = Aᵀ(Ax)` as two matvec statements over an `M×N` matrix.
    pub fn atax() -> Vec<Kernel> {
        crate::parser::parse(
            "kernel atax_t1 {
                loop i : M;
                loop j : N;
                T[i] += A[i][j] * X[j];
             }
             kernel atax_t2 {
                loop i : M;
                loop j : N;
                Y[j] += A[i][j] * T[i];
             }",
        )
        .expect("builtin atax parses")
    }

    /// `bicg`: the BiCG sub-kernel `s = Aᵀr ; q = Ap`.
    pub fn bicg() -> Vec<Kernel> {
        crate::parser::parse(
            "kernel bicg_s {
                loop i : M;
                loop j : N;
                S[j] += A[i][j] * R[i];
             }
             kernel bicg_q {
                loop i : M;
                loop j : N;
                Q[i] += A[i][j] * P[j];
             }",
        )
        .expect("builtin bicg parses")
    }

    /// `mvt`: `x1 += A·y1 ; x2 += Aᵀ·y2`.
    pub fn mvt() -> Vec<Kernel> {
        crate::parser::parse(
            "kernel mvt_x1 {
                loop i : N;
                loop j : N;
                X1[i] += A[i][j] * Y1[j];
             }
             kernel mvt_x2 {
                loop i : N;
                loop j : N;
                X2[i] += A[j][i] * Y2[j];
             }",
        )
        .expect("builtin mvt parses")
    }

    /// `gemm`-chain (`2mm`): `T = A·B ; D = T·C`.
    pub fn two_mm() -> Vec<Kernel> {
        crate::parser::parse(
            "kernel mm_first {
                loop i : Ni;
                loop j : Nj;
                loop k : Nk;
                T[i][j] += A[i][k] * B[k][j];
             }
             kernel mm_second {
                loop i : Ni;
                loop l : Nl;
                loop j : Nj;
                D[i][l] += T[i][j] * C[j][l];
             }",
        )
        .expect("builtin 2mm parses")
    }
}

/// One row of the paper's Fig. 5 (TCCG benchmark classes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TccgEntry {
    /// The `Out-In1-In2` index spec.
    pub spec: &'static str,
    /// Problem sizes per dimension, in alphabetical dimension order.
    pub sizes: &'static [i64],
}

/// The eight TCCG tensor-contraction classes with the paper's problem
/// sizes (Fig. 5).
pub const TCCG: [TccgEntry; 8] = [
    TccgEntry {
        spec: "abcde-efbad-cf",
        sizes: &[48, 32, 24, 32, 48, 32],
    },
    TccgEntry {
        spec: "abcd-dbea-ec",
        sizes: &[72, 72, 24, 72, 72],
    },
    TccgEntry {
        spec: "abc-bda-dc",
        sizes: &[312, 312, 296, 312],
    },
    TccgEntry {
        spec: "abcdef-dega-gfbc",
        sizes: &[24, 16, 16, 24, 16, 16, 24],
    },
    TccgEntry {
        spec: "abc-adec-ebd",
        sizes: &[72, 72, 72, 72, 72],
    },
    TccgEntry {
        spec: "ab-cad-dcb",
        sizes: &[312, 296, 312, 312],
    },
    TccgEntry {
        spec: "ab-ac-cb",
        sizes: &[5136, 5136, 5120],
    },
    TccgEntry {
        spec: "abcd-aebf-fdec",
        sizes: &[72, 72, 72, 72, 72, 72],
    },
];

impl TccgEntry {
    /// The kernel for this entry (named after its spec).
    pub fn kernel(&self) -> Kernel {
        tensor_contraction(self.spec, self.spec)
    }

    /// `{dimension name -> size}` bindings from Fig. 5.
    pub fn size_map(&self) -> HashMap<String, i64> {
        let ndims = self
            .spec
            .chars()
            .filter(|c| c.is_ascii_alphabetic())
            .collect::<std::collections::BTreeSet<_>>()
            .len();
        assert_eq!(
            self.sizes.len(),
            ndims,
            "size list length mismatch for {}",
            self.spec
        );
        (0..ndims)
            .map(|i| {
                let letter = (b'a' + i as u8) as char;
                (letter.to_string(), self.sizes[i])
            })
            .collect()
    }
}

/// One convolutional layer of Yolo9000 (paper Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct YoloLayer {
    /// Layer name, e.g. `Yolo9000-0`.
    pub name: &'static str,
    /// Output channels.
    pub f: i64,
    /// Input channels.
    pub c: i64,
    /// Output width.
    pub x: i64,
    /// Output height.
    pub y: i64,
    /// Filter width.
    pub w: i64,
    /// Filter height.
    pub h: i64,
}

/// The eleven Yolo9000 layers of the paper's Fig. 4 (batch `B = 1`).
pub const YOLO9000: [YoloLayer; 11] = [
    YoloLayer {
        name: "Yolo9000-0",
        f: 32,
        c: 3,
        x: 544,
        y: 544,
        w: 3,
        h: 3,
    },
    YoloLayer {
        name: "Yolo9000-2",
        f: 64,
        c: 32,
        x: 272,
        y: 272,
        w: 3,
        h: 3,
    },
    YoloLayer {
        name: "Yolo9000-4",
        f: 128,
        c: 64,
        x: 136,
        y: 136,
        w: 3,
        h: 3,
    },
    YoloLayer {
        name: "Yolo9000-5",
        f: 64,
        c: 128,
        x: 136,
        y: 136,
        w: 1,
        h: 1,
    },
    YoloLayer {
        name: "Yolo9000-8",
        f: 256,
        c: 128,
        x: 68,
        y: 68,
        w: 3,
        h: 3,
    },
    YoloLayer {
        name: "Yolo9000-9",
        f: 128,
        c: 256,
        x: 68,
        y: 68,
        w: 1,
        h: 1,
    },
    YoloLayer {
        name: "Yolo9000-12",
        f: 512,
        c: 256,
        x: 34,
        y: 34,
        w: 3,
        h: 3,
    },
    YoloLayer {
        name: "Yolo9000-13",
        f: 256,
        c: 512,
        x: 34,
        y: 34,
        w: 1,
        h: 1,
    },
    YoloLayer {
        name: "Yolo9000-18",
        f: 1024,
        c: 512,
        x: 17,
        y: 17,
        w: 3,
        h: 3,
    },
    YoloLayer {
        name: "Yolo9000-19",
        f: 512,
        c: 1024,
        x: 17,
        y: 17,
        w: 1,
        h: 1,
    },
    YoloLayer {
        name: "Yolo9000-23",
        f: 28272,
        c: 1024,
        x: 17,
        y: 17,
        w: 1,
        h: 1,
    },
];

impl YoloLayer {
    /// `{dimension name -> size}` bindings for the [`conv2d`] kernel.
    pub fn size_map(&self) -> HashMap<String, i64> {
        HashMap::from([
            ("b".to_string(), 1),
            ("c".to_string(), self.c),
            ("f".to_string(), self.f),
            ("x".to_string(), self.x),
            ("y".to_string(), self.y),
            ("h".to_string(), self.h),
            ("w".to_string(), self.w),
        ])
    }

    /// A proportionally downscaled copy (spatial dims divided by `factor`,
    /// channel dims capped), used to drive the cache simulator on
    /// tractable instances.
    pub fn downscaled(&self, factor: i64, channel_cap: i64) -> YoloLayer {
        YoloLayer {
            name: self.name,
            f: self.f.min(channel_cap),
            c: self.c.min(channel_cap),
            x: (self.x / factor).max(self.w),
            y: (self.y / factor).max(self.h),
            w: self.w,
            h: self.h,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_shape() {
        let k = matmul();
        assert_eq!(k.dims().len(), 3);
        assert_eq!(k.reduced_dims().len(), 1);
    }

    #[test]
    fn mttkrp_shape() {
        let k = mttkrp();
        assert_eq!(k.inputs().len(), 3);
        // Reduction over k and l.
        assert_eq!(k.reduced_dims().len(), 2);
        assert_eq!(k.array_size(k.output()).to_string(), "Ni*Nj");
    }

    #[test]
    fn stencil_is_conv_shaped() {
        let k = stencil2d();
        assert_eq!(k.reduced_dims().len(), 2);
        let img = &k.inputs()[0];
        assert!(img.access.dims()[0].terms().len() == 2);
        assert!(k.dims()[k.dim_index("h").unwrap()].small);
    }

    #[test]
    fn doitgen_classifies_as_tc() {
        let k = doitgen();
        let class = crate::classify::classify_tc(&k).expect("doitgen is a TC");
        assert_eq!(class.signature(), "332 / 211");
    }

    #[test]
    fn conv2d_shape() {
        let k = conv2d();
        assert_eq!(k.dims().len(), 7);
        // Reduction over c, h, w (paper §5.3).
        let reduced: Vec<&str> = k
            .reduced_dims()
            .iter()
            .map(|&d| k.dims()[d].name.as_str())
            .collect();
        assert_eq!(reduced, vec!["c", "h", "w"]);
        assert!(k.dims()[k.dim_index("h").unwrap()].small);
    }

    #[test]
    fn tc_spec_roundtrip() {
        let k = tensor_contraction("t", "abc-bda-dc");
        assert_eq!(k.dims().len(), 4);
        assert_eq!(k.output().access.arity(), 3);
        assert_eq!(k.inputs()[0].access.arity(), 3);
        assert_eq!(k.inputs()[1].access.arity(), 2);
        // Contraction dim is `d` (absent from Out).
        assert_eq!(k.reduced_dims(), vec![3]);
    }

    #[test]
    fn tccg_sizes_consistent() {
        for entry in TCCG {
            let k = entry.kernel();
            let sizes = entry.size_map();
            assert_eq!(sizes.len(), k.dims().len(), "{}", entry.spec);
            // Every kernel dimension has a size.
            for d in k.dims() {
                assert!(
                    sizes.contains_key(&d.name),
                    "{} missing {}",
                    entry.spec,
                    d.name
                );
            }
        }
    }

    #[test]
    fn tccg_matmul_member() {
        // ab-ac-cb is matrix multiplication (paper §6).
        let k = tensor_contraction("mm", "ab-ac-cb");
        assert_eq!(k.reduced_dims().len(), 1);
        assert_eq!(k.dims()[k.reduced_dims()[0]].name, "c");
    }

    #[test]
    fn yolo_table_matches_paper() {
        assert_eq!(YOLO9000.len(), 11);
        let l0 = YOLO9000[0];
        assert_eq!(
            (l0.f, l0.c, l0.x, l0.y, l0.w, l0.h),
            (32, 3, 544, 544, 3, 3)
        );
        let l23 = YOLO9000[10];
        assert_eq!(l23.f, 28272);
        assert_eq!(l23.w, 1);
    }

    #[test]
    fn yolo_binds_conv2d() {
        let k = conv2d();
        for layer in YOLO9000 {
            let env = k.bind_sizes(&layer.size_map());
            assert_eq!(env.len(), 7);
        }
    }

    #[test]
    fn polybench_sequences_parse_and_chain() {
        for (name, seq) in [
            ("atax", polybench::atax()),
            ("bicg", polybench::bicg()),
            ("mvt", polybench::mvt()),
            ("2mm", polybench::two_mm()),
        ] {
            assert_eq!(seq.len(), 2, "{name}");
            for k in &seq {
                assert!(k.is_reduction(), "{name}/{}", k.name());
            }
        }
        // atax's intermediate T links statement 1's output to 2's input.
        let atax = polybench::atax();
        assert_eq!(atax[0].output().name, "T");
        assert!(atax[1].inputs().iter().any(|a| a.name == "T"));
    }

    #[test]
    fn downscaling_keeps_filter_viable() {
        let small = YOLO9000[0].downscaled(32, 8);
        assert!(small.x >= small.w);
        assert_eq!(small.c, 3);
        assert_eq!(small.f, 8);
    }
}
