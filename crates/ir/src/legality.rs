//! Tiling legality (paper §3.1): "a tiling is legal when there is no
//! cycle of dependencies between the computation of different tiles".
//!
//! For the single-statement kernels of this workspace the dependence
//! structure is simple enough to check exactly:
//!
//! * **input arrays** distinct from the output carry no dependences;
//! * the **accumulation chain** on the output is a reduction —
//!   reassociable by §5.3's argument — so it never blocks rectangular
//!   tiling;
//! * an input that **aliases the output array** creates flow/anti
//!   dependences between iterations whenever the two access functions
//!   can touch the same cell at different iteration points; we detect
//!   that case and reject it (conservatively for non-identical affine
//!   accesses).

use crate::program::{AccessKind, Kernel};

/// The tiling-legality verdict for a kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Legality {
    /// Every rectangular tiling of every permutation is legal; no array
    /// is both read and written.
    FullyTilable,
    /// Legal thanks to reduction reassociativity: the output is
    /// accumulated (`+=`) and no other dependence exists (the common
    /// case for all the paper's kernels).
    ReductionTilable,
    /// A read aliases the written array with a different access
    /// function: tiles would have to respect the flow/anti dependence,
    /// so rectangular tiling is not legal in general.
    Illegal(String),
}

impl Legality {
    /// Whether the kernel may be tiled rectangularly in any permutation.
    pub fn is_tilable(&self) -> bool {
        !matches!(self, Legality::Illegal(_))
    }
}

/// Checks whether every rectangular tiling of `kernel` is legal.
///
/// # Examples
///
/// ```
/// use ioopt_ir::{check_tilable, kernels, Legality};
/// assert_eq!(check_tilable(&kernels::matmul()), Legality::ReductionTilable);
/// ```
pub fn check_tilable(kernel: &Kernel) -> Legality {
    let out = kernel.output();
    for input in kernel.inputs() {
        if input.name != out.name {
            continue;
        }
        if input.access == out.access {
            // Same-cell read-modify-write: behaves like accumulation on
            // that cell; no cross-iteration dependence.
            continue;
        }
        // Distinct affine accesses to the written array: e.g. an
        // in-place stencil A[i] = A[i-1] + A[i+1]. Some such pairs are
        // still safe (disjoint images), but deciding that needs the
        // dependence polyhedron; reject conservatively with an
        // explanation.
        return Legality::Illegal(format!(
            "array `{}` is written and read through different affine accesses; \
             a loop-carried dependence may cross tile boundaries",
            out.name
        ));
    }
    if out.kind == AccessKind::Accumulate && kernel.is_reduction() {
        Legality::ReductionTilable
    } else {
        Legality::FullyTilable
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels;
    use crate::parser::parse_kernel;

    #[test]
    fn paper_kernels_are_tilable() {
        for k in [
            kernels::matmul(),
            kernels::conv1d(),
            kernels::conv2d(),
            kernels::mttkrp(),
            kernels::stencil2d(),
        ] {
            assert_eq!(
                check_tilable(&k),
                Legality::ReductionTilable,
                "{}",
                k.name()
            );
        }
        for entry in kernels::TCCG {
            assert!(
                check_tilable(&entry.kernel()).is_tilable(),
                "{}",
                entry.spec
            );
        }
    }

    #[test]
    fn copy_kernel_is_fully_tilable() {
        let k = parse_kernel("kernel copy { loop i : N; B[i] = A[i]; }").unwrap();
        assert_eq!(check_tilable(&k), Legality::FullyTilable);
    }

    #[test]
    fn in_place_stencil_is_rejected() {
        let k = parse_kernel(
            "kernel seidel {
                loop t : T;
                loop i : N;
                A[i] += A[i+1] * A[i];
            }",
        )
        .unwrap();
        let verdict = check_tilable(&k);
        assert!(!verdict.is_tilable());
        assert!(matches!(verdict, Legality::Illegal(msg) if msg.contains("A")));
    }

    #[test]
    fn same_cell_rmw_is_allowed() {
        let k = parse_kernel(
            "kernel scale {
                loop i : N;
                A[i] += A[i] * W[i];
            }",
        )
        .unwrap();
        assert!(check_tilable(&k).is_tilable());
    }
}
