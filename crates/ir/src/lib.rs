//! # ioopt-ir
//!
//! Program representation for IOOpt: fully tilable single-statement affine
//! kernels ([`Kernel`]), a small DSL with a hand-written parser
//! ([`parse`]), the paper's benchmark kernel library ([`kernels`]:
//! matmul, convolutions, the TCCG classes of Fig. 5 and the Yolo9000
//! layers of Fig. 4), and tensor-contraction classification
//! ([`classify_tc`]).

#![warn(missing_docs)]

mod classify;
pub mod kernels;
mod legality;
mod parser;
mod program;
mod render;
mod span;

pub use classify::{classify_tc, TcClass};
pub use legality::{check_tilable, Legality};
pub use parser::{parse, parse_kernel, ParseError};
pub use program::{AccessKind, ArrayRef, Dim, Kernel, KernelError};
pub use render::render_dsl;
pub use span::Span;
