//! A hand-written lexer/parser for the kernel DSL.
//!
//! The input language mirrors the paper's examples (Listings 1–2):
//!
//! ```text
//! kernel conv1d {
//!     loop c : Nc;
//!     loop f : Nf;
//!     loop x : Nx;
//!     loop w : Nw small;
//!     Out[f][x] += Image[x+w][c] * Filter[f][w][c];
//! }
//! ```
//!
//! Each `loop` declares a fully permutable dimension with a symbolic trip
//! count; `small` is the oracle annotation for small dimensions (§4.3,
//! §5.2); an optional `= N` default gives the dimension a concrete trip
//! count (`loop i : Ni = 2000;`) usable when no sizes are supplied.
//! Subscripts are affine: sums of indices with optional integer
//! coefficients (`[2*x + w]`).

use std::fmt;

use ioopt_polyhedra::{AccessFunction, LinearForm};
use ioopt_symbolic::Symbol;

use crate::program::{AccessKind, ArrayRef, Dim, Kernel};
use crate::span::Span;

/// A parse error with source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// Byte-offset span of the offending token ([`Span::NONE`] when no
    /// token position applies).
    pub span: Span,
    /// Human-readable message.
    pub message: String,
}

impl ParseError {
    /// Renders the error with a caret-underline source excerpt. The
    /// first line is the plain [`fmt::Display`] form, so existing
    /// consumers that match on it keep working:
    ///
    /// ```text
    /// parse error at 3:25: unknown loop index `q`
    ///   |
    /// 3 |                 C[i] += A[q];
    ///   |                           ^
    /// ```
    pub fn render(&self, src: &str) -> String {
        let mut out = self.to_string();
        let excerpt = self.span.render(src);
        if !excerpt.is_empty() {
            out.push('\n');
            out.push_str(&excerpt);
        }
        out
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Num(i64),
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Colon,
    Plus,
    Star,
    Assign,
    PlusAssign,
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier `{s}`"),
            Tok::Num(n) => write!(f, "number `{n}`"),
            Tok::LBrace => write!(f, "`{{`"),
            Tok::RBrace => write!(f, "`}}`"),
            Tok::LBracket => write!(f, "`[`"),
            Tok::RBracket => write!(f, "`]`"),
            Tok::Semi => write!(f, "`;`"),
            Tok::Colon => write!(f, "`:`"),
            Tok::Plus => write!(f, "`+`"),
            Tok::Star => write!(f, "`*`"),
            Tok::Assign => write!(f, "`=`"),
            Tok::PlusAssign => write!(f, "`+=`"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

/// A token with its 1-based line/column and byte-offset span.
#[derive(Debug, Clone)]
struct SpTok {
    tok: Tok,
    line: usize,
    col: usize,
    span: Span,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Lexer<'a> {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line,
            col: self.col,
            span: Span::new(self.pos, (self.pos + 1).min(self.src.len())),
            message: message.into(),
        }
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.src.get(self.pos).copied()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'#') => {
                    while let Some(c) = self.bump() {
                        if c == b'\n' {
                            break;
                        }
                    }
                }
                _ => return,
            }
        }
    }

    fn next_token(&mut self) -> Result<SpTok, ParseError> {
        self.skip_trivia();
        let (line, col) = (self.line, self.col);
        let start = self.pos;
        let Some(c) = self.peek() else {
            return Ok(SpTok {
                tok: Tok::Eof,
                line,
                col,
                span: Span::new(start, start),
            });
        };
        let tok = match c {
            b'{' => {
                self.bump();
                Tok::LBrace
            }
            b'}' => {
                self.bump();
                Tok::RBrace
            }
            b'[' => {
                self.bump();
                Tok::LBracket
            }
            b']' => {
                self.bump();
                Tok::RBracket
            }
            b';' => {
                self.bump();
                Tok::Semi
            }
            b':' => {
                self.bump();
                Tok::Colon
            }
            b'*' => {
                self.bump();
                Tok::Star
            }
            b'+' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    Tok::PlusAssign
                } else {
                    Tok::Plus
                }
            }
            b'=' => {
                self.bump();
                Tok::Assign
            }
            c if c.is_ascii_digit() => {
                let mut n: i64 = 0;
                while let Some(d) = self.peek() {
                    if !d.is_ascii_digit() {
                        break;
                    }
                    n = n * 10 + i64::from(d - b'0');
                    self.bump();
                }
                Tok::Num(n)
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                while let Some(d) = self.peek() {
                    if !(d.is_ascii_alphanumeric() || d == b'_') {
                        break;
                    }
                    self.bump();
                }
                let s = std::str::from_utf8(&self.src[start..self.pos])
                    .expect("ascii slice")
                    .to_owned();
                Tok::Ident(s)
            }
            other => return Err(self.error(format!("unexpected character `{}`", other as char))),
        };
        Ok(SpTok {
            tok,
            line,
            col,
            span: Span::new(start, self.pos),
        })
    }
}

struct Parser {
    tokens: Vec<SpTok>,
    pos: usize,
}

impl Parser {
    fn new(src: &str) -> Result<Parser, ParseError> {
        let mut lexer = Lexer::new(src);
        let mut tokens = Vec::new();
        loop {
            let t = lexer.next_token()?;
            let eof = t.tok == Tok::Eof;
            tokens.push(t);
            if eof {
                break;
            }
        }
        Ok(Parser { tokens, pos: 0 })
    }

    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].tok
    }

    /// Span of the token about to be consumed.
    fn here_span(&self) -> Span {
        self.tokens[self.pos].span
    }

    /// Span of the most recently consumed token.
    fn prev_span(&self) -> Span {
        self.tokens[self.pos.saturating_sub(1)].span
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        let t = &self.tokens[self.pos];
        ParseError {
            line: t.line,
            col: t.col,
            span: t.span,
            message: message.into(),
        }
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.pos].tok.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: &Tok) -> Result<(), ParseError> {
        if self.peek() == want {
            self.bump();
            Ok(())
        } else {
            Err(self.error(format!("expected {want}, found {}", self.peek())))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(self.error(format!("expected identifier, found {other}"))),
        }
    }

    fn kernels(&mut self) -> Result<Vec<Kernel>, ParseError> {
        let mut out = Vec::new();
        while *self.peek() != Tok::Eof {
            out.push(self.kernel()?);
        }
        if out.is_empty() {
            return Err(self.error("expected at least one `kernel` block"));
        }
        Ok(out)
    }

    fn kernel(&mut self) -> Result<Kernel, ParseError> {
        // Note: default sizes are attached after construction.
        let kw = self.ident()?;
        if kw != "kernel" {
            return Err(self.error(format!("expected `kernel`, found `{kw}`")));
        }
        let name = self.ident()?;
        self.expect(&Tok::LBrace)?;
        let mut dims: Vec<Dim> = Vec::new();
        let mut defaults: Vec<(String, i64)> = Vec::new();
        while matches!(self.peek(), Tok::Ident(s) if s == "loop") {
            let loop_span = self.here_span();
            self.bump();
            let dim_name = self.ident()?;
            self.expect(&Tok::Colon)?;
            let size = self.ident()?;
            if *self.peek() == Tok::Assign {
                self.bump();
                match self.bump() {
                    Tok::Num(v) => defaults.push((dim_name.clone(), v)),
                    other => {
                        return Err(
                            self.error(format!("expected a default size after `=`, found {other}"))
                        )
                    }
                }
            }
            let small = if matches!(self.peek(), Tok::Ident(s) if s == "small") {
                self.bump();
                true
            } else {
                false
            };
            self.expect(&Tok::Semi)?;
            // The span covers the whole declaration, `loop` through `;`.
            let span = loop_span.to(self.prev_span());
            dims.push(
                Dim::new(dim_name, Symbol::new(&size))
                    .small(small)
                    .with_span(span),
            );
        }
        // Statement: Out[..] (+= | =) A[..] * B[..] ... ;
        let (out_name, out_access, out_span) = self.access(&dims)?;
        let kind = match self.bump() {
            Tok::PlusAssign => AccessKind::Accumulate,
            Tok::Assign => AccessKind::Write,
            other => return Err(self.error(format!("expected `+=` or `=`, found {other}"))),
        };
        let mut inputs = Vec::new();
        loop {
            let (in_name, in_access, in_span) = self.access(&dims)?;
            inputs.push(ArrayRef::new(in_name, in_access, AccessKind::Read).with_span(in_span));
            match self.peek() {
                Tok::Star | Tok::Plus => {
                    self.bump();
                }
                _ => break,
            }
        }
        self.expect(&Tok::Semi)?;
        self.expect(&Tok::RBrace)?;
        let output = ArrayRef::new(out_name, out_access, kind).with_span(out_span);
        let kernel =
            Kernel::new(name, dims, output, inputs).map_err(|e| self.error(e.to_string()))?;
        Ok(kernel.with_default_sizes(defaults))
    }

    /// `Name[sub]...[sub]`
    fn access(&mut self, dims: &[Dim]) -> Result<(String, AccessFunction, Span), ParseError> {
        let start = self.here_span();
        let name = self.ident()?;
        let mut forms = Vec::new();
        while *self.peek() == Tok::LBracket {
            self.bump();
            forms.push(self.subscript(dims)?);
            self.expect(&Tok::RBracket)?;
        }
        if forms.is_empty() {
            return Err(self.error(format!("array `{name}` needs at least one subscript")));
        }
        Ok((name, AccessFunction::new(forms), start.to(self.prev_span())))
    }

    /// `term (+ term)*` where `term := (num '*')? index`
    fn subscript(&mut self, dims: &[Dim]) -> Result<LinearForm, ParseError> {
        let mut terms: Vec<(usize, i64)> = Vec::new();
        let mut constant = 0i64;
        loop {
            match self.peek().clone() {
                Tok::Num(n) => {
                    self.bump();
                    if *self.peek() == Tok::Star {
                        self.bump();
                        let idx = self.ident()?;
                        let d = self.lookup_dim(dims, &idx)?;
                        terms.push((d, n));
                    } else {
                        constant += n;
                    }
                }
                Tok::Ident(idx) => {
                    self.bump();
                    let d = self.lookup_dim(dims, &idx)?;
                    terms.push((d, 1));
                }
                other => return Err(self.error(format!("expected subscript term, found {other}"))),
            }
            if *self.peek() == Tok::Plus {
                self.bump();
            } else {
                break;
            }
        }
        Ok(LinearForm::new(&terms, constant))
    }

    /// Resolves a loop-index name, reporting the error at the *previous*
    /// token (the identifier just consumed), not the lookahead.
    fn lookup_dim(&self, dims: &[Dim], name: &str) -> Result<usize, ParseError> {
        dims.iter().position(|d| d.name == name).ok_or_else(|| {
            let t = &self.tokens[self.pos.saturating_sub(1)];
            ParseError {
                line: t.line,
                col: t.col,
                span: t.span,
                message: format!("unknown loop index `{name}`"),
            }
        })
    }
}

/// Parses one or more kernels from DSL source.
///
/// # Errors
///
/// Returns a [`ParseError`] with line/column information on malformed
/// input.
///
/// # Examples
///
/// ```
/// use ioopt_ir::parse;
/// let ks = parse(
///     "kernel mm {
///          loop i : Ni; loop j : Nj; loop k : Nk;
///          C[i][j] += A[i][k] * B[k][j];
///      }",
/// )?;
/// assert_eq!(ks[0].name(), "mm");
/// # Ok::<(), ioopt_ir::ParseError>(())
/// ```
pub fn parse(src: &str) -> Result<Vec<Kernel>, ParseError> {
    Parser::new(src)?.kernels()
}

/// Parses exactly one kernel.
///
/// # Errors
///
/// As [`parse`]; additionally errors if the source does not contain
/// exactly one kernel.
pub fn parse_kernel(src: &str) -> Result<Kernel, ParseError> {
    let mut ks = parse(src)?;
    if ks.len() != 1 {
        return Err(ParseError {
            line: 1,
            col: 1,
            span: Span::NONE,
            message: format!("expected exactly one kernel, found {}", ks.len()),
        });
    }
    Ok(ks.pop().expect("len checked"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_matmul() {
        let k = parse_kernel(
            "kernel matmul {
                loop i : Ni;
                loop j : Nj;
                loop k : Nk;
                C[i][j] += A[i][k] * B[k][j];
            }",
        )
        .unwrap();
        assert_eq!(k.name(), "matmul");
        assert_eq!(k.dims().len(), 3);
        assert_eq!(k.inputs().len(), 2);
        assert_eq!(k.output().kind, AccessKind::Accumulate);
        assert_eq!(k.reduced_dims(), vec![2]);
    }

    #[test]
    fn parses_conv1d_with_small_and_sums() {
        let k = parse_kernel(
            "# 1D convolution (paper Listing 2)
             kernel conv1d {
                loop c : Nc;
                loop f : Nf;
                loop x : Nx;
                loop w : Nw small;
                Out[f][x] += Image[x+w][c] * Filter[f][w][c];
            }",
        )
        .unwrap();
        assert!(k.dims()[3].small);
        let image = &k.inputs()[0];
        assert_eq!(image.name, "Image");
        assert_eq!(image.access.dims()[0].terms(), &[(2, 1), (3, 1)]);
    }

    #[test]
    fn parses_strided_subscripts() {
        let k = parse_kernel(
            "kernel strided {
                loop x : Nx;
                loop w : Nw;
                Out[x] += In[2*x + w];
            }",
        )
        .unwrap();
        assert_eq!(k.inputs()[0].access.dims()[0].coeff(0), 2);
    }

    #[test]
    fn error_on_unknown_index() {
        let err = parse_kernel(
            "kernel bad {
                loop i : Ni;
                C[i] += A[q];
            }",
        )
        .unwrap_err();
        assert!(err.message.contains("unknown loop index"));
        assert_eq!(err.line, 3);
    }

    #[test]
    fn error_reports_position() {
        let err = parse("kernel m { loop i Ni; }").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("expected `:`"));
    }

    #[test]
    fn error_render_underlines_offending_token() {
        let src = "kernel bad {\n    loop i : Ni;\n    C[i] += A[q];\n}";
        let err = parse(src).unwrap_err();
        let rendered = err.render(src);
        // Display prefix stays the first line.
        assert!(rendered.starts_with(&err.to_string()), "got:\n{rendered}");
        assert!(rendered.contains("C[i] += A[q];"), "got:\n{rendered}");
        let caret_line = rendered.lines().last().unwrap();
        assert!(caret_line.trim_end().ends_with('^'), "got:\n{rendered}");
        // The caret sits under the `q`.
        let src_line = src.lines().nth(err.line - 1).unwrap();
        let caret_col = caret_line.find('^').unwrap() - caret_line.find('|').unwrap() - 2;
        assert_eq!(src_line.as_bytes()[caret_col], b'q', "got:\n{rendered}");
    }

    #[test]
    fn parsed_ir_carries_spans() {
        let src = "kernel mm {\n    loop i : Ni;\n    loop k : Nk;\n    C[i] += A[i][k];\n}";
        let k = parse_kernel(src).unwrap();
        let dim_span = k.dims()[0].span;
        assert_eq!(&src[dim_span.start..dim_span.end], "loop i : Ni;");
        let out_span = k.output().span;
        assert_eq!(&src[out_span.start..out_span.end], "C[i]");
        let in_span = k.inputs()[0].span;
        assert_eq!(&src[in_span.start..in_span.end], "A[i][k]");
    }

    #[test]
    fn default_sizes_annotation() {
        let k = parse_kernel(
            "kernel sized {
                loop i : Ni = 128;
                loop j : Nj = 64 small;
                C[i][j] += A[i][j] * B[j][i];
            }",
        )
        .unwrap();
        let defaults = k.default_sizes().expect("all dims annotated");
        assert_eq!(defaults["i"], 128);
        assert_eq!(defaults["j"], 64);
        assert!(k.dims()[1].small);

        // Partial annotation -> None.
        let k =
            parse_kernel("kernel partial { loop i : Ni = 4; loop j : Nj; C[i] += A[j]; }").unwrap();
        assert!(k.default_sizes().is_none());
    }

    #[test]
    fn multiple_kernels() {
        let ks = parse(
            "kernel a { loop i : N; X[i] = Y[i]; }
             kernel b { loop j : M; P[j] = Q[j]; }",
        )
        .unwrap();
        assert_eq!(ks.len(), 2);
        assert_eq!(ks[1].name(), "b");
    }

    #[test]
    fn rejects_empty_input() {
        assert!(parse("").is_err());
        assert!(parse("   # only a comment\n").is_err());
    }
}
