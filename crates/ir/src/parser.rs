//! A hand-written lexer/parser for the kernel DSL.
//!
//! The input language mirrors the paper's examples (Listings 1–2):
//!
//! ```text
//! kernel conv1d {
//!     loop c : Nc;
//!     loop f : Nf;
//!     loop x : Nx;
//!     loop w : Nw small;
//!     Out[f][x] += Image[x+w][c] * Filter[f][w][c];
//! }
//! ```
//!
//! Each `loop` declares a fully permutable dimension with a symbolic trip
//! count; `small` is the oracle annotation for small dimensions (§4.3,
//! §5.2); an optional `= N` default gives the dimension a concrete trip
//! count (`loop i : Ni = 2000;`) usable when no sizes are supplied.
//! Subscripts are affine: sums of indices with optional integer
//! coefficients (`[2*x + w]`).

use std::fmt;

use ioopt_polyhedra::{AccessFunction, LinearForm};
use ioopt_symbolic::Symbol;

use crate::program::{AccessKind, ArrayRef, Dim, Kernel};

/// A parse error with source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Num(i64),
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Colon,
    Plus,
    Star,
    Assign,
    PlusAssign,
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier `{s}`"),
            Tok::Num(n) => write!(f, "number `{n}`"),
            Tok::LBrace => write!(f, "`{{`"),
            Tok::RBrace => write!(f, "`}}`"),
            Tok::LBracket => write!(f, "`[`"),
            Tok::RBracket => write!(f, "`]`"),
            Tok::Semi => write!(f, "`;`"),
            Tok::Colon => write!(f, "`:`"),
            Tok::Plus => write!(f, "`+`"),
            Tok::Star => write!(f, "`*`"),
            Tok::Assign => write!(f, "`=`"),
            Tok::PlusAssign => write!(f, "`+=`"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Lexer<'a> {
        Lexer { src: src.as_bytes(), pos: 0, line: 1, col: 1 }
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError { line: self.line, col: self.col, message: message.into() }
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.src.get(self.pos).copied()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'#') => {
                    while let Some(c) = self.bump() {
                        if c == b'\n' {
                            break;
                        }
                    }
                }
                _ => return,
            }
        }
    }

    fn next_token(&mut self) -> Result<(Tok, usize, usize), ParseError> {
        self.skip_trivia();
        let (line, col) = (self.line, self.col);
        let Some(c) = self.peek() else {
            return Ok((Tok::Eof, line, col));
        };
        let tok = match c {
            b'{' => {
                self.bump();
                Tok::LBrace
            }
            b'}' => {
                self.bump();
                Tok::RBrace
            }
            b'[' => {
                self.bump();
                Tok::LBracket
            }
            b']' => {
                self.bump();
                Tok::RBracket
            }
            b';' => {
                self.bump();
                Tok::Semi
            }
            b':' => {
                self.bump();
                Tok::Colon
            }
            b'*' => {
                self.bump();
                Tok::Star
            }
            b'+' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    Tok::PlusAssign
                } else {
                    Tok::Plus
                }
            }
            b'=' => {
                self.bump();
                Tok::Assign
            }
            c if c.is_ascii_digit() => {
                let mut n: i64 = 0;
                while let Some(d) = self.peek() {
                    if !d.is_ascii_digit() {
                        break;
                    }
                    n = n * 10 + i64::from(d - b'0');
                    self.bump();
                }
                Tok::Num(n)
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = self.pos;
                while let Some(d) = self.peek() {
                    if !(d.is_ascii_alphanumeric() || d == b'_') {
                        break;
                    }
                    self.bump();
                }
                let s = std::str::from_utf8(&self.src[start..self.pos])
                    .expect("ascii slice")
                    .to_owned();
                Tok::Ident(s)
            }
            other => {
                return Err(self.error(format!("unexpected character `{}`", other as char)))
            }
        };
        Ok((tok, line, col))
    }
}

struct Parser {
    tokens: Vec<(Tok, usize, usize)>,
    pos: usize,
}

impl Parser {
    fn new(src: &str) -> Result<Parser, ParseError> {
        let mut lexer = Lexer::new(src);
        let mut tokens = Vec::new();
        loop {
            let t = lexer.next_token()?;
            let eof = t.0 == Tok::Eof;
            tokens.push(t);
            if eof {
                break;
            }
        }
        Ok(Parser { tokens, pos: 0 })
    }

    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].0
    }

    fn here(&self) -> (usize, usize) {
        (self.tokens[self.pos].1, self.tokens[self.pos].2)
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        let (line, col) = self.here();
        ParseError { line, col, message: message.into() }
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.pos].0.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: &Tok) -> Result<(), ParseError> {
        if self.peek() == want {
            self.bump();
            Ok(())
        } else {
            Err(self.error(format!("expected {want}, found {}", self.peek())))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(self.error(format!("expected identifier, found {other}"))),
        }
    }

    fn kernels(&mut self) -> Result<Vec<Kernel>, ParseError> {
        let mut out = Vec::new();
        while *self.peek() != Tok::Eof {
            out.push(self.kernel()?);
        }
        if out.is_empty() {
            return Err(self.error("expected at least one `kernel` block"));
        }
        Ok(out)
    }

    fn kernel(&mut self) -> Result<Kernel, ParseError> {
        // Note: default sizes are attached after construction.
        let kw = self.ident()?;
        if kw != "kernel" {
            return Err(self.error(format!("expected `kernel`, found `{kw}`")));
        }
        let name = self.ident()?;
        self.expect(&Tok::LBrace)?;
        let mut dims: Vec<Dim> = Vec::new();
        let mut defaults: Vec<(String, i64)> = Vec::new();
        while matches!(self.peek(), Tok::Ident(s) if s == "loop") {
            self.bump();
            let dim_name = self.ident()?;
            self.expect(&Tok::Colon)?;
            let size = self.ident()?;
            if *self.peek() == Tok::Assign {
                self.bump();
                match self.bump() {
                    Tok::Num(v) => defaults.push((dim_name.clone(), v)),
                    other => {
                        return Err(self.error(format!(
                            "expected a default size after `=`, found {other}"
                        )))
                    }
                }
            }
            let small = if matches!(self.peek(), Tok::Ident(s) if s == "small") {
                self.bump();
                true
            } else {
                false
            };
            self.expect(&Tok::Semi)?;
            dims.push(Dim { name: dim_name, size: Symbol::new(&size), small });
        }
        // Statement: Out[..] (+= | =) A[..] * B[..] ... ;
        let (out_name, out_access) = self.access(&dims)?;
        let kind = match self.bump() {
            Tok::PlusAssign => AccessKind::Accumulate,
            Tok::Assign => AccessKind::Write,
            other => return Err(self.error(format!("expected `+=` or `=`, found {other}"))),
        };
        let mut inputs = Vec::new();
        loop {
            let (in_name, in_access) = self.access(&dims)?;
            inputs.push(ArrayRef { name: in_name, access: in_access, kind: AccessKind::Read });
            match self.peek() {
                Tok::Star | Tok::Plus => {
                    self.bump();
                }
                _ => break,
            }
        }
        self.expect(&Tok::Semi)?;
        self.expect(&Tok::RBrace)?;
        let output = ArrayRef { name: out_name, access: out_access, kind };
        let kernel =
            Kernel::new(name, dims, output, inputs).map_err(|e| self.error(e.to_string()))?;
        Ok(kernel.with_default_sizes(defaults))
    }

    /// `Name[sub]...[sub]`
    fn access(&mut self, dims: &[Dim]) -> Result<(String, AccessFunction), ParseError> {
        let name = self.ident()?;
        let mut forms = Vec::new();
        while *self.peek() == Tok::LBracket {
            self.bump();
            forms.push(self.subscript(dims)?);
            self.expect(&Tok::RBracket)?;
        }
        if forms.is_empty() {
            return Err(self.error(format!("array `{name}` needs at least one subscript")));
        }
        Ok((name, AccessFunction::new(forms)))
    }

    /// `term (+ term)*` where `term := (num '*')? index`
    fn subscript(&mut self, dims: &[Dim]) -> Result<LinearForm, ParseError> {
        let mut terms: Vec<(usize, i64)> = Vec::new();
        let mut constant = 0i64;
        loop {
            match self.peek().clone() {
                Tok::Num(n) => {
                    self.bump();
                    if *self.peek() == Tok::Star {
                        self.bump();
                        let idx = self.ident()?;
                        let d = self.lookup_dim(dims, &idx)?;
                        terms.push((d, n));
                    } else {
                        constant += n;
                    }
                }
                Tok::Ident(idx) => {
                    self.bump();
                    let d = self.lookup_dim(dims, &idx)?;
                    terms.push((d, 1));
                }
                other => {
                    return Err(self.error(format!(
                        "expected subscript term, found {other}"
                    )))
                }
            }
            if *self.peek() == Tok::Plus {
                self.bump();
            } else {
                break;
            }
        }
        Ok(LinearForm::new(&terms, constant))
    }

    fn lookup_dim(&self, dims: &[Dim], name: &str) -> Result<usize, ParseError> {
        dims.iter()
            .position(|d| d.name == name)
            .ok_or_else(|| self.error(format!("unknown loop index `{name}`")))
    }
}

/// Parses one or more kernels from DSL source.
///
/// # Errors
///
/// Returns a [`ParseError`] with line/column information on malformed
/// input.
///
/// # Examples
///
/// ```
/// use ioopt_ir::parse;
/// let ks = parse(
///     "kernel mm {
///          loop i : Ni; loop j : Nj; loop k : Nk;
///          C[i][j] += A[i][k] * B[k][j];
///      }",
/// )?;
/// assert_eq!(ks[0].name(), "mm");
/// # Ok::<(), ioopt_ir::ParseError>(())
/// ```
pub fn parse(src: &str) -> Result<Vec<Kernel>, ParseError> {
    Parser::new(src)?.kernels()
}

/// Parses exactly one kernel.
///
/// # Errors
///
/// As [`parse`]; additionally errors if the source does not contain
/// exactly one kernel.
pub fn parse_kernel(src: &str) -> Result<Kernel, ParseError> {
    let mut ks = parse(src)?;
    if ks.len() != 1 {
        return Err(ParseError {
            line: 1,
            col: 1,
            message: format!("expected exactly one kernel, found {}", ks.len()),
        });
    }
    Ok(ks.pop().expect("len checked"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_matmul() {
        let k = parse_kernel(
            "kernel matmul {
                loop i : Ni;
                loop j : Nj;
                loop k : Nk;
                C[i][j] += A[i][k] * B[k][j];
            }",
        )
        .unwrap();
        assert_eq!(k.name(), "matmul");
        assert_eq!(k.dims().len(), 3);
        assert_eq!(k.inputs().len(), 2);
        assert_eq!(k.output().kind, AccessKind::Accumulate);
        assert_eq!(k.reduced_dims(), vec![2]);
    }

    #[test]
    fn parses_conv1d_with_small_and_sums() {
        let k = parse_kernel(
            "# 1D convolution (paper Listing 2)
             kernel conv1d {
                loop c : Nc;
                loop f : Nf;
                loop x : Nx;
                loop w : Nw small;
                Out[f][x] += Image[x+w][c] * Filter[f][w][c];
            }",
        )
        .unwrap();
        assert!(k.dims()[3].small);
        let image = &k.inputs()[0];
        assert_eq!(image.name, "Image");
        assert_eq!(image.access.dims()[0].terms(), &[(2, 1), (3, 1)]);
    }

    #[test]
    fn parses_strided_subscripts() {
        let k = parse_kernel(
            "kernel strided {
                loop x : Nx;
                loop w : Nw;
                Out[x] += In[2*x + w];
            }",
        )
        .unwrap();
        assert_eq!(k.inputs()[0].access.dims()[0].coeff(0), 2);
    }

    #[test]
    fn error_on_unknown_index() {
        let err = parse_kernel(
            "kernel bad {
                loop i : Ni;
                C[i] += A[q];
            }",
        )
        .unwrap_err();
        assert!(err.message.contains("unknown loop index"));
        assert_eq!(err.line, 3);
    }

    #[test]
    fn error_reports_position() {
        let err = parse("kernel m { loop i Ni; }").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("expected `:`"));
    }

    #[test]
    fn default_sizes_annotation() {
        let k = parse_kernel(
            "kernel sized {
                loop i : Ni = 128;
                loop j : Nj = 64 small;
                C[i][j] += A[i][j] * B[j][i];
            }",
        )
        .unwrap();
        let defaults = k.default_sizes().expect("all dims annotated");
        assert_eq!(defaults["i"], 128);
        assert_eq!(defaults["j"], 64);
        assert!(k.dims()[1].small);

        // Partial annotation -> None.
        let k = parse_kernel(
            "kernel partial { loop i : Ni = 4; loop j : Nj; C[i] += A[j]; }",
        )
        .unwrap();
        assert!(k.default_sizes().is_none());
    }

    #[test]
    fn multiple_kernels() {
        let ks = parse(
            "kernel a { loop i : N; X[i] = Y[i]; }
             kernel b { loop j : M; P[j] = Q[j]; }",
        )
        .unwrap();
        assert_eq!(ks.len(), 2);
        assert_eq!(ks[1].name(), "b");
    }

    #[test]
    fn rejects_empty_input() {
        assert!(parse("").is_err());
        assert!(parse("   # only a comment\n").is_err());
    }
}
