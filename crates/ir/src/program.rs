//! Kernel representation: fully tilable single-statement affine programs.
//!
//! The paper's algorithms assume a fully permutable (rectangularly tilable)
//! loop band around a single statement of the form
//! `Out[f_O(i)] ⊕= g(In_1[f_1(i)], …, In_k[f_k(i)])` — which covers every
//! kernel in its evaluation: matrix multiplication, tensor contractions,
//! and convolutions (§3.1).

use std::collections::HashMap;
use std::fmt;

use ioopt_polyhedra::AccessFunction;
use ioopt_symbolic::{Expr, Symbol};

use crate::span::Span;

/// A loop dimension of a kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dim {
    /// Loop index name (e.g. `i`, `x`).
    pub name: String,
    /// The symbolic trip count (a program parameter, e.g. `Ni`).
    pub size: Symbol,
    /// Small-dimension annotation: the paper's "oracle" marking dimensions
    /// whose extent is much smaller than the cache (§4.3, §5.2).
    pub small: bool,
    /// Source span of the `loop` declaration ([`Span::NONE`] for
    /// programmatically built IR).
    pub span: Span,
}

impl Dim {
    /// A dimension with no small-annotation and no source span.
    pub fn new(name: impl Into<String>, size: Symbol) -> Dim {
        Dim {
            name: name.into(),
            size,
            small: false,
            span: Span::NONE,
        }
    }

    /// Sets the small-dimension annotation (builder style).
    pub fn small(mut self, small: bool) -> Dim {
        self.small = small;
        self
    }

    /// Attaches a source span (builder style).
    pub fn with_span(mut self, span: Span) -> Dim {
        self.span = span;
        self
    }
}

/// How a statement touches an array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Read-only input.
    Read,
    /// Accumulated output (`+=`), the target of a reduction.
    Accumulate,
    /// Plain write output (`=`).
    Write,
}

/// A reference to an array with its affine access function.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayRef {
    /// Array name.
    pub name: String,
    /// Affine access function over the kernel's dimension indices.
    pub access: AccessFunction,
    /// Read/write role in the statement.
    pub kind: AccessKind,
    /// Source span of the whole reference, `Name[..]…[..]`
    /// ([`Span::NONE`] for programmatically built IR).
    pub span: Span,
}

impl ArrayRef {
    /// An array reference with no source span.
    pub fn new(name: impl Into<String>, access: AccessFunction, kind: AccessKind) -> ArrayRef {
        ArrayRef {
            name: name.into(),
            access,
            kind,
            span: Span::NONE,
        }
    }

    /// Attaches a source span (builder style).
    pub fn with_span(mut self, span: Span) -> ArrayRef {
        self.span = span;
        self
    }
}

/// A fully tilable affine kernel (single perfectly nested statement).
///
/// # Examples
///
/// ```
/// use ioopt_ir::kernels;
/// let mm = kernels::matmul();
/// assert_eq!(mm.dims().len(), 3);
/// assert_eq!(mm.arrays().count(), 3);
/// assert_eq!(mm.arith_complexity().to_string(), "Ni*Nj*Nk");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel {
    name: String,
    dims: Vec<Dim>,
    output: ArrayRef,
    inputs: Vec<ArrayRef>,
    /// Default trip counts from `loop i : Ni = 2000;` DSL annotations.
    default_sizes: Vec<(String, i64)>,
}

/// Errors from [`Kernel::new`] validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelError {
    /// An access function refers to a dimension index out of range.
    DimOutOfRange {
        /// The offending array name.
        array: String,
        /// The referenced dimension index.
        dim: usize,
    },
    /// Two dimensions share the same name.
    DuplicateDim(String),
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::DimOutOfRange { array, dim } => {
                write!(f, "array `{array}` references dimension {dim} out of range")
            }
            KernelError::DuplicateDim(name) => {
                write!(f, "duplicate dimension name `{name}`")
            }
        }
    }
}

impl std::error::Error for KernelError {}

impl Kernel {
    /// Creates a kernel after validating dimension references.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError`] if an access references an out-of-range
    /// dimension or two dimensions share a name.
    pub fn new(
        name: impl Into<String>,
        dims: Vec<Dim>,
        output: ArrayRef,
        inputs: Vec<ArrayRef>,
    ) -> Result<Kernel, KernelError> {
        let n = dims.len();
        for (i, d) in dims.iter().enumerate() {
            if dims[..i].iter().any(|o| o.name == d.name) {
                return Err(KernelError::DuplicateDim(d.name.clone()));
            }
        }
        for a in std::iter::once(&output).chain(inputs.iter()) {
            for form in a.access.dims() {
                for d in form.dims() {
                    if d >= n {
                        return Err(KernelError::DimOutOfRange {
                            array: a.name.clone(),
                            dim: d,
                        });
                    }
                }
            }
        }
        Ok(Kernel {
            name: name.into(),
            dims,
            output,
            inputs,
            default_sizes: Vec::new(),
        })
    }

    /// Attaches default trip counts (from DSL `= N` annotations).
    pub fn with_default_sizes(mut self, defaults: Vec<(String, i64)>) -> Kernel {
        self.default_sizes = defaults;
        self
    }

    /// Default sizes as a map, if *every* dimension has one.
    pub fn default_sizes(&self) -> Option<HashMap<String, i64>> {
        let map: HashMap<String, i64> = self.default_sizes.iter().cloned().collect();
        if self.dims.iter().all(|d| map.contains_key(&d.name)) {
            Some(map)
        } else {
            None
        }
    }

    /// The kernel's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The loop dimensions, in source order (outermost first).
    pub fn dims(&self) -> &[Dim] {
        &self.dims
    }

    /// The accumulated/written output array.
    pub fn output(&self) -> &ArrayRef {
        &self.output
    }

    /// The input arrays.
    pub fn inputs(&self) -> &[ArrayRef] {
        &self.inputs
    }

    /// All arrays: output first, then inputs.
    pub fn arrays(&self) -> impl Iterator<Item = &ArrayRef> {
        std::iter::once(&self.output).chain(self.inputs.iter())
    }

    /// Index of the dimension named `name`.
    pub fn dim_index(&self, name: &str) -> Option<usize> {
        self.dims.iter().position(|d| d.name == name)
    }

    /// The symbolic size (trip count) of dimension `d`.
    pub fn size_expr(&self, d: usize) -> Expr {
        Expr::symbol(self.dims[d].size)
    }

    /// The full iteration-domain cardinality `∏ N_d`.
    pub fn domain_size(&self) -> Expr {
        Expr::mul_all((0..self.dims.len()).map(|d| self.size_expr(d)))
    }

    /// The arithmetic complexity: one fused multiply-add per iteration
    /// point, `∏ N_d` (paper §2).
    pub fn arith_complexity(&self) -> Expr {
        self.domain_size()
    }

    /// Dimensions the output access does **not** use — the candidate
    /// reduced dimensions when the statement accumulates (§5.3).
    pub fn reduced_dims(&self) -> Vec<usize> {
        if self.output.kind != AccessKind::Accumulate {
            return Vec::new();
        }
        (0..self.dims.len())
            .filter(|&d| !self.output.access.uses(d))
            .collect()
    }

    /// Whether the statement is a multi-dimensional reduction.
    pub fn is_reduction(&self) -> bool {
        !self.reduced_dims().is_empty()
    }

    /// The symbolic size of array `a` (its memory-domain cardinality):
    /// the image of the full iteration domain under its access function.
    /// May over-approximate for non-separable accesses (sound for
    /// footprints and upper bounds).
    pub fn array_size(&self, a: &ArrayRef) -> Expr {
        let extents: Vec<Expr> = (0..self.dims.len()).map(|d| self.size_expr(d)).collect();
        a.access.image_cardinality(&extents).card
    }

    /// A sound **lower** bound on the number of distinct cells of `a`
    /// touched by the kernel (exact for the separable unit class; see
    /// [`ioopt_polyhedra::AccessFunction::image_cardinality_lower`]).
    pub fn array_size_lower(&self, a: &ArrayRef) -> Expr {
        let extents: Vec<Expr> = (0..self.dims.len()).map(|d| self.size_expr(d)).collect();
        a.access.image_cardinality_lower(&extents)
    }

    /// Numeric parameter bindings `{size symbol -> value}` from a
    /// `{dim name -> value}` map.
    ///
    /// # Panics
    ///
    /// Panics if a dimension name is missing from `sizes`.
    pub fn bind_sizes(&self, sizes: &HashMap<String, i64>) -> HashMap<Symbol, f64> {
        self.dims
            .iter()
            .map(|d| {
                let v = *sizes
                    .get(&d.name)
                    .unwrap_or_else(|| panic!("missing size for dimension `{}`", d.name));
                (d.size, v as f64)
            })
            .collect()
    }

    /// Marks the named dimensions as small (replacing previous marks).
    pub fn with_small_dims(mut self, names: &[&str]) -> Kernel {
        for d in &mut self.dims {
            d.small = names.contains(&d.name.as_str());
        }
        self
    }

    /// A canonical byte serialization of the kernel's *structure*: the
    /// dimensions (name, size symbol, small mark) and every array
    /// reference (name, role, access forms), excluding spans, the kernel
    /// name, and default sizes — exactly the inputs of the symbolic
    /// analyses (Algorithm 1, the §4.2 cost model, the §5 bounds).
    ///
    /// Two kernels with equal keys get identical symbolic results, which
    /// is what the memoization layer relies on: all eleven Yolo9000
    /// layers share one conv2d structure and therefore one cache line
    /// per subproblem, differing only in their numeric size bindings.
    pub fn structural_key(&self) -> Vec<u8> {
        fn push_str(out: &mut Vec<u8>, s: &str) {
            out.extend_from_slice(&(s.len() as u64).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        fn push_array(out: &mut Vec<u8>, a: &ArrayRef) {
            push_str(out, &a.name);
            out.push(match a.kind {
                AccessKind::Read => b'r',
                AccessKind::Accumulate => b'+',
                AccessKind::Write => b'w',
            });
            out.extend_from_slice(&(a.access.arity() as u64).to_le_bytes());
            for f in a.access.dims() {
                out.extend_from_slice(&(f.terms().len() as u64).to_le_bytes());
                for &(d, c) in f.terms() {
                    out.extend_from_slice(&(d as u64).to_le_bytes());
                    out.extend_from_slice(&c.to_le_bytes());
                }
                out.extend_from_slice(&f.constant().to_le_bytes());
            }
        }
        let mut out = Vec::new();
        out.extend_from_slice(&(self.dims.len() as u64).to_le_bytes());
        for d in &self.dims {
            push_str(&mut out, &d.name);
            push_str(&mut out, d.size.name());
            out.push(u8::from(d.small));
        }
        push_array(&mut out, &self.output);
        out.extend_from_slice(&(self.inputs.len() as u64).to_le_bytes());
        for a in &self.inputs {
            push_array(&mut out, a);
        }
        out
    }
}

impl fmt::Display for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "kernel {} [", self.name)?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}:{}", d.name, d.size)?;
            if d.small {
                write!(f, " (small)")?;
            }
        }
        write!(f, "] {}", self.output.name)?;
        match self.output.kind {
            AccessKind::Accumulate => write!(f, " += ")?,
            _ => write!(f, " = ")?,
        }
        for (i, a) in self.inputs.iter().enumerate() {
            if i > 0 {
                write!(f, " * ")?;
            }
            write!(f, "{}", a.name)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ioopt_polyhedra::LinearForm;

    fn dim(name: &str, size: &str) -> Dim {
        Dim::new(name, Symbol::new(size))
    }

    fn aref(name: &str, forms: Vec<LinearForm>, kind: AccessKind) -> ArrayRef {
        ArrayRef::new(name, AccessFunction::new(forms), kind)
    }

    fn mini_matmul() -> Kernel {
        Kernel::new(
            "mm",
            vec![dim("i", "Ni"), dim("j", "Nj"), dim("k", "Nk")],
            aref(
                "C",
                vec![LinearForm::var(0), LinearForm::var(1)],
                AccessKind::Accumulate,
            ),
            vec![
                aref(
                    "A",
                    vec![LinearForm::var(0), LinearForm::var(2)],
                    AccessKind::Read,
                ),
                aref(
                    "B",
                    vec![LinearForm::var(2), LinearForm::var(1)],
                    AccessKind::Read,
                ),
            ],
        )
        .unwrap()
    }

    #[test]
    fn reduction_detection() {
        let k = mini_matmul();
        assert_eq!(k.reduced_dims(), vec![2]);
        assert!(k.is_reduction());
    }

    #[test]
    fn array_sizes() {
        let k = mini_matmul();
        let c = k.array_size(k.output());
        assert_eq!(c.to_string(), "Ni*Nj");
    }

    #[test]
    fn rejects_out_of_range_dims() {
        let err = Kernel::new(
            "bad",
            vec![dim("i", "Ni")],
            aref("C", vec![LinearForm::var(3)], AccessKind::Write),
            vec![],
        )
        .unwrap_err();
        assert!(matches!(err, KernelError::DimOutOfRange { .. }));
    }

    #[test]
    fn rejects_duplicate_dims() {
        let err = Kernel::new(
            "bad",
            vec![dim("i", "Ni"), dim("i", "Nj")],
            aref("C", vec![LinearForm::var(0)], AccessKind::Write),
            vec![],
        )
        .unwrap_err();
        assert_eq!(err, KernelError::DuplicateDim("i".into()));
    }

    #[test]
    fn small_dim_marking() {
        let k = mini_matmul().with_small_dims(&["k"]);
        assert!(k.dims()[2].small);
        assert!(!k.dims()[0].small);
    }
}
