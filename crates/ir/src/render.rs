//! Rendering a [`Kernel`] back to parseable DSL source.
//!
//! Proof-carrying certificates (DESIGN.md §11) embed the kernel as DSL
//! text so an independent auditor can re-parse it and re-derive ranks
//! and footprints without trusting the producer's IR. The renderer is a
//! partial inverse of [`crate::parse_kernel`]: it returns `None` for
//! kernels the grammar cannot express (negative subscript coefficients
//! or constants — the DSL has no minus token — and non-identifier dim,
//! size, or array names).

use crate::program::{AccessKind, ArrayRef, Kernel};

/// Whether `s` lexes as a single DSL identifier.
fn is_ident(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// A copy of `name` that lexes as an identifier: every illegal byte
/// becomes `_`, and a leading digit gets a `k` prefix. Used only for
/// the kernel *label* (TCCG names like `abcde-efbad-cf` carry dashes);
/// dimension and array names are semantic and are never rewritten.
fn sanitize_label(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() || out.as_bytes()[0].is_ascii_digit() {
        out.insert(0, 'k');
    }
    out
}

fn render_access(k: &Kernel, a: &ArrayRef, out: &mut String) -> Option<()> {
    if !is_ident(&a.name) {
        return None;
    }
    out.push_str(&a.name);
    for form in a.access.dims() {
        out.push('[');
        let mut first = true;
        for &(d, c) in form.terms() {
            if c <= 0 {
                return None;
            }
            if !first {
                out.push_str(" + ");
            }
            first = false;
            if c != 1 {
                out.push_str(&format!("{c}*"));
            }
            out.push_str(&k.dims().get(d)?.name);
        }
        let constant = form.constant();
        if constant < 0 {
            return None;
        }
        if constant > 0 || first {
            if !first {
                out.push_str(" + ");
            }
            out.push_str(&constant.to_string());
        }
        out.push(']');
    }
    Some(())
}

/// Renders `kernel` as DSL source that [`crate::parse_kernel`] accepts
/// and that parses back to a structurally identical kernel (same dims,
/// sizes, small marks, defaults, and access functions; spans differ,
/// and a non-identifier kernel name is sanitized to a legal label).
///
/// Returns `None` when the kernel is outside the grammar: a negative
/// subscript coefficient or constant, or a dim/size/array name that is
/// not a DSL identifier.
///
/// # Examples
///
/// ```
/// use ioopt_ir::{kernels, parse_kernel, render_dsl};
/// let mm = kernels::matmul();
/// let src = render_dsl(&mm).expect("matmul is expressible");
/// let back = parse_kernel(&src).expect("round-trips");
/// assert_eq!(back.structural_key(), mm.structural_key());
/// ```
pub fn render_dsl(kernel: &Kernel) -> Option<String> {
    let defaults: std::collections::HashMap<&str, i64> = kernel
        .default_sizes()
        .map(|m| {
            kernel
                .dims()
                .iter()
                .filter_map(|d| m.get(&d.name).map(|&v| (d.name.as_str(), v)))
                .collect::<Vec<_>>()
        })
        .unwrap_or_default()
        .into_iter()
        .collect();
    let mut out = format!("kernel {} {{\n", sanitize_label(kernel.name()));
    for d in kernel.dims() {
        if !is_ident(&d.name) || !is_ident(d.size.name()) {
            return None;
        }
        out.push_str(&format!("  loop {} : {}", d.name, d.size.name()));
        if let Some(v) = defaults.get(d.name.as_str()) {
            out.push_str(&format!(" = {v}"));
        }
        if d.small {
            out.push_str(" small");
        }
        out.push_str(";\n");
    }
    out.push_str("  ");
    render_access(kernel, kernel.output(), &mut out)?;
    out.push_str(match kernel.output().kind {
        AccessKind::Accumulate => " += ",
        _ => " = ",
    });
    if kernel.inputs().is_empty() {
        return None;
    }
    for (i, a) in kernel.inputs().iter().enumerate() {
        if i > 0 {
            out.push_str(" * ");
        }
        render_access(kernel, a, &mut out)?;
    }
    out.push_str(";\n}\n");
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_kernel;

    #[test]
    fn matmul_round_trips() {
        let k = crate::kernels::matmul();
        let src = render_dsl(&k).unwrap();
        let back = parse_kernel(&src).unwrap();
        assert_eq!(back.structural_key(), k.structural_key());
        assert_eq!(back.name(), k.name());
    }

    #[test]
    fn conv_with_defaults_and_small_round_trips() {
        let src = "kernel conv1d {
            loop c : Nc = 16;
            loop f : Nf = 32;
            loop x : Nx = 1024;
            loop w : Nw = 3 small;
            Out[f][x] += Image[x + w][c] * Filter[f][w][c];
        }";
        let k = parse_kernel(src).unwrap();
        let rendered = render_dsl(&k).unwrap();
        let back = parse_kernel(&rendered).unwrap();
        assert_eq!(back.structural_key(), k.structural_key());
        assert_eq!(back.default_sizes(), k.default_sizes());
    }

    #[test]
    fn strided_and_constant_subscripts_round_trip() {
        let src = "kernel s { loop x : Nx; loop w : Nw; Out[x][0] += In[2*x + w + 1]; }";
        let k = parse_kernel(src).unwrap();
        let rendered = render_dsl(&k).unwrap();
        assert!(rendered.contains("2*x + w + 1"), "got: {rendered}");
        assert!(rendered.contains("Out[x][0]"), "got: {rendered}");
        let back = parse_kernel(&rendered).unwrap();
        assert_eq!(back.structural_key(), k.structural_key());
    }

    #[test]
    fn dashed_tccg_name_is_sanitized() {
        let k = parse_kernel("kernel tmp { loop i : Ni; C[i] = A[i]; }").unwrap();
        // Rebuild under a TCCG-style dashed label.
        let k = crate::Kernel::new(
            "abcde-efbad-cf",
            k.dims().to_vec(),
            k.output().clone(),
            k.inputs().to_vec(),
        )
        .unwrap();
        let rendered = render_dsl(&k).unwrap();
        let back = parse_kernel(&rendered).unwrap();
        assert_eq!(back.name(), "abcde_efbad_cf");
        assert_eq!(back.structural_key(), k.structural_key());
    }

    #[test]
    fn every_builtin_kernel_renders_and_round_trips() {
        let mut all = vec![
            crate::kernels::matmul(),
            crate::kernels::conv1d(),
            crate::kernels::conv2d(),
            crate::kernels::mttkrp(),
            crate::kernels::stencil2d(),
            crate::kernels::doitgen(),
            crate::kernels::tensor_contraction("abc-bda-dc", "abc-bda-dc"),
        ];
        all.extend(crate::kernels::polybench::atax());
        all.extend(crate::kernels::polybench::two_mm());
        for k in all {
            let rendered =
                render_dsl(&k).unwrap_or_else(|| panic!("kernel `{}` should render", k.name()));
            let back = parse_kernel(&rendered)
                .unwrap_or_else(|e| panic!("kernel `{}` re-parse: {e}", k.name()));
            assert_eq!(back.structural_key(), k.structural_key(), "{}", k.name());
        }
    }
}
