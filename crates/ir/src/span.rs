//! Byte-offset source spans and caret-underline rendering.
//!
//! Spans are half-open byte ranges `[start, end)` into the DSL source a
//! kernel was parsed from. Programmatically constructed IR carries
//! [`Span::NONE`]; diagnostics degrade gracefully (no source excerpt).

use std::fmt;

/// A half-open byte range into DSL source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

impl Span {
    /// The empty span used by IR built without source text.
    pub const NONE: Span = Span { start: 0, end: 0 };

    /// A span covering `[start, end)`.
    pub fn new(start: usize, end: usize) -> Span {
        Span { start, end }
    }

    /// Whether this span carries no position (programmatic IR).
    pub fn is_none(&self) -> bool {
        self.start == 0 && self.end == 0
    }

    /// The smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        if self.is_none() {
            return other;
        }
        if other.is_none() {
            return self;
        }
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// 1-based (line, column) of the span start within `src`.
    ///
    /// Columns count bytes, matching the lexer (the DSL is ASCII).
    pub fn line_col(&self, src: &str) -> (usize, usize) {
        let upto = &src.as_bytes()[..self.start.min(src.len())];
        let line = 1 + upto.iter().filter(|&&c| c == b'\n').count();
        let col = 1 + upto.iter().rev().take_while(|&&c| c != b'\n').count();
        (line, col)
    }

    /// Renders a caret-underline excerpt for this span, e.g.:
    ///
    /// ```text
    ///   |
    /// 3 |     C[i] += A[q];
    ///   |               ^
    /// ```
    ///
    /// Returns an empty string for [`Span::NONE`] or out-of-range spans.
    pub fn render(&self, src: &str) -> String {
        if self.is_none() || self.start >= src.len() {
            return String::new();
        }
        let (line, col) = self.line_col(src);
        let line_text = src.lines().nth(line - 1).unwrap_or("");
        // Clip the underline to the end of the source line.
        let line_end = self.start - (col - 1) + line_text.len();
        let width = self.end.min(line_end).saturating_sub(self.start).max(1);
        let gutter = line.to_string();
        let pad = " ".repeat(gutter.len());
        let mut out = String::new();
        out.push_str(&format!("{pad} |\n"));
        out.push_str(&format!("{gutter} | {line_text}\n"));
        out.push_str(&format!(
            "{pad} | {}{}\n",
            " ".repeat(col - 1),
            "^".repeat(width)
        ));
        out
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_col_of_offsets() {
        let src = "ab\ncde\nf";
        assert_eq!(Span::new(0, 1).line_col(src), (1, 1));
        assert_eq!(Span::new(4, 5).line_col(src), (2, 2));
        assert_eq!(Span::new(7, 8).line_col(src), (3, 1));
    }

    #[test]
    fn caret_rendering() {
        let src = "kernel m {\n  loop i : Ni;\n}";
        let span = Span::new(13, 17); // "loop" on line 2
        let r = span.render(src);
        assert!(r.contains("2 |   loop i : Ni;"), "got:\n{r}");
        let underline = r.lines().last().unwrap();
        assert!(underline.ends_with("^^^^"), "got:\n{r}");
        assert!(!underline.contains("^^^^^"), "got:\n{r}");
    }

    #[test]
    fn none_span_renders_empty() {
        assert_eq!(Span::NONE.render("abc"), "");
    }

    #[test]
    fn join_spans() {
        assert_eq!(Span::new(3, 5).to(Span::new(8, 9)), Span::new(3, 9));
        assert_eq!(Span::NONE.to(Span::new(8, 9)), Span::new(8, 9));
        assert_eq!(Span::new(3, 5).to(Span::NONE), Span::new(3, 5));
    }
}
