//! Parser robustness: arbitrary input must produce a positioned error or
//! a valid kernel — never a panic — and valid kernels round-trip through
//! their derived properties without inconsistency.
//!
//! Driven by the deterministic in-repo [`SplitMix64`] generator (no
//! third-party fuzzing dependency; the workspace builds offline).

use ioopt_ir::{parse, parse_kernel};
use ioopt_symbolic::SplitMix64;

/// No input panics the parser: random printable-ASCII strings.
#[test]
fn arbitrary_bytes_never_panic() {
    let mut rng = SplitMix64::new(0xf02201);
    for _ in 0..512 {
        let len = rng.range_usize(201);
        let src: String = (0..len)
            .map(|_| {
                if rng.chance(0.05) {
                    '\n'
                } else {
                    // Printable ASCII: ' ' (0x20) ..= '~' (0x7e).
                    (0x20 + rng.range_usize(0x5f)) as u8 as char
                }
            })
            .collect();
        let _ = parse(&src);
    }
}

/// Structured-ish fuzz: random DSL-flavoured token soup.
#[test]
fn token_soup_never_panics() {
    const FIXED: [&str; 13] = [
        "kernel", "loop", "{", "}", "[", "]", ";", ":", "+=", "=", "*", "+", "small",
    ];
    let mut rng = SplitMix64::new(0xf02202);
    for _ in 0..512 {
        let ntok = rng.range_usize(41);
        let tokens: Vec<String> = (0..ntok)
            .map(|_| match rng.range_usize(15) {
                k if k < 13 => FIXED[k].to_string(),
                13 => {
                    let n = 1 + rng.range_usize(3);
                    (0..n)
                        .map(|_| (b'a' + rng.range_usize(26) as u8) as char)
                        .collect()
                }
                _ => rng.range_usize(999).to_string(),
            })
            .collect();
        let src = tokens.join(" ");
        let _ = parse(&src);
    }
}

/// Generated well-formed kernels always parse and validate.
#[test]
fn well_formed_kernels_parse() {
    for ndims in 1usize..5 {
        for use_acc in [false, true] {
            let mut src = String::from("kernel gen {\n");
            for d in 0..ndims {
                src.push_str(&format!("loop d{d} : N{d};\n"));
            }
            let out_subs: String = (0..ndims).map(|d| format!("[d{d}]")).collect();
            let op = if use_acc { "+=" } else { "=" };
            src.push_str(&format!("O{out_subs} {op} I{out_subs};\n}}\n"));
            let kernel = parse_kernel(&src).expect("well-formed kernel parses");
            assert_eq!(kernel.dims().len(), ndims);
            assert_eq!(kernel.inputs().len(), 1);
            // A full-rank output access leaves no reduced dims.
            assert!(kernel.reduced_dims().is_empty());
        }
    }
}
