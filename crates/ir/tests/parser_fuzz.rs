//! Parser robustness: arbitrary input must produce a positioned error or
//! a valid kernel — never a panic — and valid kernels round-trip through
//! their derived properties without inconsistency.

use ioopt_ir::{parse, parse_kernel};
use proptest::prelude::*;

proptest! {
    /// No input panics the parser.
    #[test]
    fn arbitrary_bytes_never_panic(src in "[ -~\\n]{0,200}") {
        let _ = parse(&src);
    }

    /// Structured-ish fuzz: random DSL-flavoured token soup.
    #[test]
    fn token_soup_never_panics(
        tokens in proptest::collection::vec(
            prop_oneof![
                Just("kernel".to_string()),
                Just("loop".to_string()),
                Just("{".to_string()),
                Just("}".to_string()),
                Just("[".to_string()),
                Just("]".to_string()),
                Just(";".to_string()),
                Just(":".to_string()),
                Just("+=".to_string()),
                Just("=".to_string()),
                Just("*".to_string()),
                Just("+".to_string()),
                Just("small".to_string()),
                "[a-z]{1,3}".prop_map(|s| s),
                (0u32..999).prop_map(|n| n.to_string()),
            ],
            0..40,
        )
    ) {
        let src = tokens.join(" ");
        let _ = parse(&src);
    }

    /// Generated well-formed kernels always parse and validate.
    #[test]
    fn well_formed_kernels_parse(
        ndims in 1usize..5,
        use_acc in proptest::bool::ANY,
    ) {
        let mut src = String::from("kernel gen {\n");
        for d in 0..ndims {
            src.push_str(&format!("loop d{d} : N{d};\n"));
        }
        let out_subs: String =
            (0..ndims).map(|d| format!("[d{d}]")).collect();
        let op = if use_acc { "+=" } else { "=" };
        src.push_str(&format!("O{out_subs} {op} I{out_subs};\n}}\n"));
        let kernel = parse_kernel(&src).expect("well-formed kernel parses");
        prop_assert_eq!(kernel.dims().len(), ndims);
        prop_assert_eq!(kernel.inputs().len(), 1);
        // A full-rank output access leaves no reduced dims.
        prop_assert!(kernel.reduced_dims().is_empty());
    }
}
