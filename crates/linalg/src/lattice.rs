//! Integer-lattice algorithms: Hermite normal form and primitive integer
//! kernel bases.
//!
//! The Brascamp-Lieb subgroups of §5 are subgroups of `Z^d` (lattices),
//! not rational subspaces. Ranks coincide, so the rational machinery in
//! [`crate::Matrix`] is sound for the LP constraints; the lattice view
//! here adds integer-exact generators (primitive vectors) and the HNF
//! canonical form used to compare lattices and compute indices.

use ioopt_symbolic::{gcd, Rational};

use crate::matrix::Matrix;

/// An integer matrix stored row-major.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct IntMatrix {
    rows: usize,
    cols: usize,
    data: Vec<i128>,
}

impl IntMatrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> IntMatrix {
        IntMatrix {
            rows,
            cols,
            data: vec![0; rows * cols],
        }
    }

    /// Creates from rows of `i64`.
    ///
    /// # Panics
    ///
    /// Panics on ragged rows.
    pub fn from_i64(rows: &[&[i64]]) -> IntMatrix {
        let r = rows.len();
        let c = rows.first().map(|x| x.len()).unwrap_or(0);
        let mut m = IntMatrix::zeros(r, c);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), c, "ragged rows");
            for (j, &v) in row.iter().enumerate() {
                m[(i, j)] = v as i128;
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The `i`-th row.
    pub fn row(&self, i: usize) -> Vec<i128> {
        (0..self.cols).map(|j| self[(i, j)]).collect()
    }

    /// Converts to a rational [`Matrix`].
    pub fn to_rational(&self) -> Matrix {
        let data: Vec<Rational> = self.data.iter().map(|&v| Rational::from(v)).collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Row-style Hermite normal form (non-negative pivots, entries below
    /// a pivot zero, entries above reduced modulo the pivot), computed by
    /// integer row operations. Returns the HNF with zero rows removed.
    pub fn hermite_normal_form(&self) -> IntMatrix {
        let mut m = self.clone();
        let (rows, cols) = (m.rows, m.cols);
        let mut pivot_row = 0usize;
        for col in 0..cols {
            if pivot_row == rows {
                break;
            }
            // Euclidean elimination in this column below pivot_row.
            loop {
                // Find the row with the smallest non-zero |entry|.
                let mut best: Option<(usize, i128)> = None;
                for r in pivot_row..rows {
                    let v = m[(r, col)];
                    if v != 0
                        && best
                            .map(|(_, bv): (usize, i128)| v.abs() < bv.abs())
                            .unwrap_or(true)
                    {
                        best = Some((r, v));
                    }
                }
                let Some((r, v)) = best else { break };
                m.swap_rows(pivot_row, r);
                if v < 0 {
                    m.negate_row(pivot_row);
                }
                let pivot = m[(pivot_row, col)];
                let mut done = true;
                for r in pivot_row + 1..rows {
                    let q = m[(r, col)].div_euclid(pivot);
                    if q != 0 {
                        m.row_sub_mul(r, pivot_row, q);
                    }
                    if m[(r, col)] != 0 {
                        done = false;
                    }
                }
                if done {
                    break;
                }
            }
            if m[(pivot_row, col)] != 0 {
                // Reduce entries above the pivot.
                let pivot = m[(pivot_row, col)];
                for r in 0..pivot_row {
                    let q = m[(r, col)].div_euclid(pivot);
                    if q != 0 {
                        m.row_sub_mul(r, pivot_row, q);
                    }
                }
                pivot_row += 1;
            }
        }
        // Drop all-zero rows.
        let kept: Vec<Vec<i128>> = (0..rows)
            .map(|i| m.row(i))
            .filter(|r| r.iter().any(|&v| v != 0))
            .collect();
        let mut out = IntMatrix::zeros(kept.len(), cols);
        for (i, r) in kept.iter().enumerate() {
            for (j, &v) in r.iter().enumerate() {
                out[(i, j)] = v;
            }
        }
        out
    }

    /// Lattice rank (= rational rank).
    pub fn rank(&self) -> usize {
        self.hermite_normal_form().rows()
    }

    fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for j in 0..self.cols {
            self.data.swap(a * self.cols + j, b * self.cols + j);
        }
    }

    fn negate_row(&mut self, r: usize) {
        for j in 0..self.cols {
            self[(r, j)] = -self[(r, j)];
        }
    }

    /// `row[r] -= q * row[p]`
    fn row_sub_mul(&mut self, r: usize, p: usize, q: i128) {
        for j in 0..self.cols {
            let sub = q * self[(p, j)];
            self[(r, j)] -= sub;
        }
    }
}

impl std::ops::Index<(usize, usize)> for IntMatrix {
    type Output = i128;
    fn index(&self, (i, j): (usize, usize)) -> &i128 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for IntMatrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut i128 {
        &mut self.data[i * self.cols + j]
    }
}

/// Scales a rational vector to its *primitive* integer form: the shortest
/// integer vector on the same ray.
pub fn primitive_integer_vector(v: &[Rational]) -> Vec<i128> {
    // Multiply by the lcm of denominators, then divide by the gcd.
    let mut lcm: i128 = 1;
    for r in v {
        let d = r.denom();
        lcm = lcm / gcd(lcm, d) * d;
    }
    let ints: Vec<i128> = v.iter().map(|r| r.numer() * (lcm / r.denom())).collect();
    let g = ints.iter().fold(0i128, |acc, &x| gcd(acc, x));
    if g == 0 {
        return ints;
    }
    ints.iter().map(|&x| x / g).collect()
}

/// An integer basis of the kernel lattice of a rational matrix: the
/// rational null-space basis scaled to primitive integer vectors.
///
/// # Examples
///
/// ```
/// use ioopt_linalg::{integer_kernel_basis, Matrix};
/// // phi(i, j, k) = (i, k): the kernel lattice is spanned by e_j.
/// let phi = Matrix::from_i64(&[&[1, 0, 0], &[0, 0, 1]]);
/// assert_eq!(integer_kernel_basis(&phi), vec![vec![0, 1, 0]]);
/// ```
pub fn integer_kernel_basis(m: &Matrix) -> Vec<Vec<i128>> {
    m.kernel_basis()
        .iter()
        .map(|v| primitive_integer_vector(v))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hnf_of_identity() {
        let m = IntMatrix::from_i64(&[&[1, 0], &[0, 1]]);
        assert_eq!(m.hermite_normal_form(), m);
    }

    #[test]
    fn hnf_canonicalizes_generators() {
        // span{(2, 4), (1, 1)} over Z: HNF should be [[1, 1], [0, 2]].
        let m = IntMatrix::from_i64(&[&[2, 4], &[1, 1]]);
        let h = m.hermite_normal_form();
        assert_eq!(h, IntMatrix::from_i64(&[&[1, 1], &[0, 2]]));
        // A different generating set of the same lattice agrees.
        let m2 = IntMatrix::from_i64(&[&[1, 3], &[1, 1]]);
        assert_eq!(m2.hermite_normal_form(), h);
    }

    #[test]
    fn hnf_drops_dependent_rows() {
        let m = IntMatrix::from_i64(&[&[1, 2, 3], &[2, 4, 6], &[0, 0, 0]]);
        let h = m.hermite_normal_form();
        assert_eq!(h.rows(), 1);
        assert_eq!(h.row(0), vec![1, 2, 3]);
        assert_eq!(m.rank(), 1);
    }

    #[test]
    fn lattice_vs_subspace_distinction() {
        // (2,0),(0,2) and the identity span the same Q-subspace but
        // different lattices; HNF tells them apart, rank does not.
        let a = IntMatrix::from_i64(&[&[2, 0], &[0, 2]]);
        let b = IntMatrix::from_i64(&[&[1, 0], &[0, 1]]);
        assert_eq!(a.rank(), b.rank());
        assert_ne!(a.hermite_normal_form(), b.hermite_normal_form());
    }

    #[test]
    fn primitive_scaling() {
        let v = vec![Rational::new(1, 2), Rational::new(-3, 4), Rational::ZERO];
        assert_eq!(primitive_integer_vector(&v), vec![2, -3, 0]);
        let v = vec![Rational::from(4i128), Rational::from(6i128)];
        assert_eq!(primitive_integer_vector(&v), vec![2, 3]);
    }

    #[test]
    fn integer_kernels_of_access_matrices() {
        // phi_Image for conv1d: (x + w, c) over dims (c, f, x, w).
        let m = Matrix::from_i64(&[&[0, 0, 1, 1], &[1, 0, 0, 0]]);
        let basis = integer_kernel_basis(&m);
        assert_eq!(basis.len(), 2);
        for v in &basis {
            // Check integrality by construction and membership in kernel.
            let vr: Vec<Rational> = v.iter().map(|&x| Rational::from(x)).collect();
            assert!(m.apply(&vr).iter().all(|x| x.is_zero()));
            let g = v.iter().fold(0i128, |acc, &x| gcd(acc, x));
            assert_eq!(g, 1, "vector not primitive: {v:?}");
        }
    }
}
