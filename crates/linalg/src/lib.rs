//! # ioopt-linalg
//!
//! Exact rational linear algebra over [`Rational`], sized for the
//! Brascamp-Lieb machinery of IOOpt's lower-bound algorithm (§5 of the
//! paper): iteration spaces have at most ~8 dimensions, so dense matrices
//! with exact arithmetic are both simple and fast.
//!
//! Provides [`Matrix`] with reduced row echelon form, [`Matrix::rank`],
//! null-space bases ([`Matrix::kernel_basis`]), and canonical row-space
//! forms used to deduplicate subgroups.

#![warn(missing_docs)]

pub use ioopt_symbolic::Rational;

mod lattice;
mod matrix;

pub use lattice::{integer_kernel_basis, primitive_integer_vector, IntMatrix};
pub use matrix::Matrix;
