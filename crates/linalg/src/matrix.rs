//! Dense rational matrices with exact elimination.

use std::fmt;

use ioopt_symbolic::Rational;

/// A dense matrix of [`Rational`] entries, stored row-major.
///
/// # Examples
///
/// ```
/// use ioopt_linalg::Matrix;
/// let m = Matrix::from_i64(&[&[1, 2], &[2, 4]]);
/// assert_eq!(m.rank(), 1);
/// let kernel = m.kernel_basis();
/// assert_eq!(kernel.len(), 1);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<Rational>,
}

impl Matrix {
    /// Creates a `rows × cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![Rational::ZERO; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Matrix {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Rational::ONE;
        }
        m
    }

    /// Creates a matrix from rows of `i64` values.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_i64(rows: &[&[i64]]) -> Matrix {
        let r = rows.len();
        let c = rows.first().map(|r| r.len()).unwrap_or(0);
        let mut m = Matrix::zeros(r, c);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), c, "ragged rows in matrix literal");
            for (j, &v) in row.iter().enumerate() {
                m[(i, j)] = Rational::from(v);
            }
        }
        m
    }

    /// Creates a matrix from a flat vector of entries (row-major).
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<Rational>) -> Matrix {
        assert_eq!(data.len(), rows * cols, "matrix data length mismatch");
        Matrix { rows, cols, data }
    }

    /// Builds a matrix whose rows are the given vectors.
    ///
    /// Returns a `0 × dim` matrix when `vectors` is empty.
    pub fn from_rows(vectors: &[Vec<Rational>], dim: usize) -> Matrix {
        let mut m = Matrix::zeros(vectors.len(), dim);
        for (i, v) in vectors.iter().enumerate() {
            assert_eq!(v.len(), dim, "row vector dimension mismatch");
            for (j, &x) in v.iter().enumerate() {
                m[(i, j)] = x;
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The `i`-th row as a vector.
    pub fn row(&self, i: usize) -> Vec<Rational> {
        (0..self.cols).map(|j| self[(i, j)]).collect()
    }

    /// Matrix-vector product.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn apply(&self, v: &[Rational]) -> Vec<Rational> {
        assert_eq!(v.len(), self.cols, "vector dimension mismatch");
        (0..self.rows)
            .map(|i| {
                let mut acc = Rational::ZERO;
                for j in 0..self.cols {
                    acc += self[(i, j)] * v[j];
                }
                acc
            })
            .collect()
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "inner dimension mismatch");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a.is_zero() {
                    continue;
                }
                for j in 0..rhs.cols {
                    let add = a * rhs[(k, j)];
                    out[(i, j)] += add;
                }
            }
        }
        out
    }

    /// The transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// In-place reduced row echelon form; returns the pivot columns.
    pub fn rref_in_place(&mut self) -> Vec<usize> {
        let mut pivots = Vec::new();
        let mut r = 0;
        for c in 0..self.cols {
            if r == self.rows {
                break;
            }
            // Find a pivot in column c at or below row r.
            let Some(p) = (r..self.rows).find(|&i| !self[(i, c)].is_zero()) else {
                continue;
            };
            self.swap_rows(r, p);
            let inv = self[(r, c)].recip();
            for j in c..self.cols {
                self[(r, j)] *= inv;
            }
            for i in 0..self.rows {
                if i != r && !self[(i, c)].is_zero() {
                    let factor = self[(i, c)];
                    for j in c..self.cols {
                        let sub = factor * self[(r, j)];
                        self[(i, j)] -= sub;
                    }
                }
            }
            pivots.push(c);
            r += 1;
        }
        pivots
    }

    /// The reduced row echelon form (non-destructive).
    pub fn rref(&self) -> Matrix {
        let mut m = self.clone();
        m.rref_in_place();
        m
    }

    /// The rank of the matrix.
    pub fn rank(&self) -> usize {
        let mut m = self.clone();
        m.rref_in_place().len()
    }

    /// A basis of the null space `{x : A x = 0}`, one vector per free column.
    pub fn kernel_basis(&self) -> Vec<Vec<Rational>> {
        let mut m = self.clone();
        let pivots = m.rref_in_place();
        let pivot_set: Vec<Option<usize>> = {
            let mut v = vec![None; self.cols];
            for (row, &col) in pivots.iter().enumerate() {
                v[col] = Some(row);
            }
            v
        };
        let mut basis = Vec::new();
        for free in 0..self.cols {
            if pivot_set[free].is_some() {
                continue;
            }
            let mut vec = vec![Rational::ZERO; self.cols];
            vec[free] = Rational::ONE;
            for (col, &maybe_row) in pivot_set.iter().enumerate() {
                if let Some(row) = maybe_row {
                    vec[col] = -m[(row, free)];
                }
            }
            basis.push(vec);
        }
        basis
    }

    /// A canonical form of the row space: the RREF with zero rows removed.
    ///
    /// Two matrices have equal `row_space_canon` iff their rows span the
    /// same subspace — used to deduplicate candidate subgroups in the
    /// Brascamp-Lieb constraint generation.
    pub fn row_space_canon(&self) -> Matrix {
        let m = self.rref();
        let mut rows: Vec<Vec<Rational>> = Vec::new();
        for i in 0..m.rows {
            let row = m.row(i);
            if row.iter().any(|v| !v.is_zero()) {
                rows.push(row);
            }
        }
        Matrix::from_rows(&rows, self.cols)
    }

    /// Swaps two rows in place.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for j in 0..self.cols {
            self.data.swap(a * self.cols + j, b * self.cols + j);
        }
    }

    /// Stacks `self` on top of `other`.
    ///
    /// # Panics
    ///
    /// Panics if the column counts differ.
    pub fn vstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "column count mismatch in vstack");
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        Matrix {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        }
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = Rational;
    fn index(&self, (i, j): (usize, usize)) -> &Rational {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut Rational {
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  ")?;
            for j in 0..self.cols {
                write!(f, "{:>6} ", self[(i, j)].to_string())?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_rank() {
        assert_eq!(Matrix::identity(4).rank(), 4);
    }

    #[test]
    fn rank_of_dependent_rows() {
        let m = Matrix::from_i64(&[&[1, 2, 3], &[2, 4, 6], &[1, 0, 1]]);
        assert_eq!(m.rank(), 2);
    }

    #[test]
    fn rref_normalizes() {
        let m = Matrix::from_i64(&[&[2, 4], &[1, 3]]).rref();
        assert_eq!(m, Matrix::from_i64(&[&[1, 0], &[0, 1]]));
    }

    #[test]
    fn kernel_of_projection() {
        // phi(i, j, k) = (i, k): kernel should be span{e_j}.
        let m = Matrix::from_i64(&[&[1, 0, 0], &[0, 0, 1]]);
        let kernel = m.kernel_basis();
        assert_eq!(kernel.len(), 1);
        assert_eq!(
            kernel[0],
            vec![Rational::ZERO, Rational::ONE, Rational::ZERO]
        );
    }

    #[test]
    fn kernel_vectors_are_in_nullspace() {
        let m = Matrix::from_i64(&[&[1, 1, 0, 2], &[0, 1, 1, 1]]);
        for v in m.kernel_basis() {
            assert!(m.apply(&v).iter().all(|x| x.is_zero()));
        }
        assert_eq!(m.kernel_basis().len(), 2);
    }

    #[test]
    fn row_space_canon_identifies_equal_spans() {
        let a = Matrix::from_i64(&[&[1, 0, 1], &[0, 1, 1]]);
        let b = Matrix::from_i64(&[&[1, 1, 2], &[1, -1, 0]]);
        assert_eq!(a.row_space_canon(), b.row_space_canon());
        let c = Matrix::from_i64(&[&[1, 0, 0], &[0, 1, 1]]);
        assert_ne!(a.row_space_canon(), c.row_space_canon());
    }

    #[test]
    fn matmul_and_apply_agree() {
        let a = Matrix::from_i64(&[&[1, 2], &[3, 4]]);
        let v = vec![Rational::from(5i128), Rational::from(6i128)];
        let as_matrix = Matrix::from_rows(std::slice::from_ref(&v), 2).transpose();
        let prod = a.matmul(&as_matrix);
        let direct = a.apply(&v);
        assert_eq!(prod[(0, 0)], direct[0]);
        assert_eq!(prod[(1, 0)], direct[1]);
    }

    #[test]
    fn rank_of_image_of_subgroup() {
        // rank(phi(H)) where H = span{e_i, e_j}, phi = (i, k) projection:
        // phi(e_i) = (1,0), phi(e_j) = (0,0) -> rank 1.
        let phi = Matrix::from_i64(&[&[1, 0, 0], &[0, 0, 1]]);
        let h = Matrix::from_i64(&[&[1, 0, 0], &[0, 1, 0]]); // rows = generators
        let image = phi.matmul(&h.transpose());
        assert_eq!(image.rank(), 1);
    }

    #[test]
    fn vstack_shapes() {
        let a = Matrix::from_i64(&[&[1, 2]]);
        let b = Matrix::from_i64(&[&[3, 4], &[5, 6]]);
        let s = a.vstack(&b);
        assert_eq!(s.rows(), 3);
        assert_eq!(s[(2, 1)], Rational::from(6i128));
    }
}
