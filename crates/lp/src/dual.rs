//! Dual solutions: the certificate side of linear programming.
//!
//! For a minimization LP `min c·x  s.t.  A x {≤,≥,=} b, x ≥ 0`, LP
//! duality provides a vector `y` (one multiplier per constraint) such
//! that dual feasibility plus `b·y = c·x*` *proves* optimality of `x*`
//! without re-running the solver. [`solve_dual`] computes such a vector
//! with the same exact-rational simplex used for the primal, so the
//! multipliers can be exported verbatim into proof-carrying
//! certificates (DESIGN.md §11) and re-checked by arithmetic alone.
//!
//! Sign conventions (minimization primal):
//!
//! * `a·x ≥ b` rows get `y ≥ 0`,
//! * `a·x ≤ b` rows get `y ≤ 0`,
//! * `a·x = b` rows get a free `y`,
//!
//! and the dual constraints are `Σ_i y_i a_ij ≤ c_j` for every primal
//! column `j` (all primal variables are non-negative). Weak duality then
//! gives `b·y ≤ c·x` for every primal-feasible `x`, so matching
//! objectives certify optimality.

use ioopt_symbolic::Rational;

use crate::simplex::{Cmp, Lp, LpError, LpSolution};

/// An optimal dual solution of an [`Lp`] (see [`solve_dual`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DualSolution {
    /// One multiplier per constraint, in insertion order. Non-negative
    /// for `Ge` rows, non-positive for `Le` rows, unrestricted for `Eq`.
    pub y: Vec<Rational>,
    /// The dual objective `b·y`; equals the primal optimum by strong
    /// duality.
    pub objective: Rational,
}

impl DualSolution {
    /// Checks dual feasibility against the primal data: correct signs
    /// per row and `Σ_i y_i a_ij ≤ c_j` for every column. This is the
    /// same arithmetic an external auditor performs; exposed here so
    /// tests and producers can assert it before exporting.
    pub fn is_feasible_for(&self, lp: &Lp) -> bool {
        if self.y.len() != lp.constraints().len() {
            return false;
        }
        for (yi, (_, cmp, _)) in self.y.iter().zip(lp.constraints()) {
            let ok = match cmp {
                Cmp::Ge => !yi.is_negative(),
                Cmp::Le => !yi.is_positive(),
                Cmp::Eq => true,
            };
            if !ok {
                return false;
            }
        }
        for j in 0..lp.num_vars() {
            let mut acc = Rational::ZERO;
            for (yi, (a, _, _)) in self.y.iter().zip(lp.constraints()) {
                acc += *yi * a[j];
            }
            if acc > lp.objective_coeffs()[j] {
                return false;
            }
        }
        true
    }
}

/// Solves the dual of `lp` and returns the multiplier vector.
///
/// The dual is constructed explicitly (signed rows become sign-split
/// non-negative variables) and solved with the same two-phase simplex,
/// so the result is exact. Use together with [`Lp::solve`]: the primal
/// gives the optimum and `x*`, the dual gives the certificate.
///
/// # Errors
///
/// [`LpError::Infeasible`] when the dual has no feasible point (the
/// primal is unbounded), [`LpError::Unbounded`] when the dual is
/// unbounded (the primal is infeasible).
///
/// # Examples
///
/// ```
/// use ioopt_lp::{solve_dual, Cmp, Lp};
/// use ioopt_symbolic::Rational;
/// let ri = |n| Rational::from(n as i128);
/// // min x + y s.t. x + 2y >= 4, 3x + y >= 6  (optimum 14/5)
/// let mut lp = Lp::new(2);
/// lp.set_objective(vec![ri(1), ri(1)]);
/// lp.add_constraint(vec![ri(1), ri(2)], Cmp::Ge, ri(4));
/// lp.add_constraint(vec![ri(3), ri(1)], Cmp::Ge, ri(6));
/// let dual = solve_dual(&lp)?;
/// assert_eq!(dual.objective, lp.solve()?.objective); // strong duality
/// assert!(dual.is_feasible_for(&lp));
/// # Ok::<(), ioopt_lp::LpError>(())
/// ```
pub fn solve_dual(lp: &Lp) -> Result<DualSolution, LpError> {
    let m = lp.constraints().len();
    let n = lp.num_vars();
    // Map each signed dual variable to one or two non-negative columns:
    // Ge  -> y_i = u_k        (u_k >= 0)
    // Le  -> y_i = -u_k       (u_k >= 0)
    // Eq  -> y_i = u_k - u_k' (both >= 0)
    let mut col_of = Vec::with_capacity(m);
    let mut ncols = 0usize;
    for (_, cmp, _) in lp.constraints() {
        col_of.push(ncols);
        ncols += match cmp {
            Cmp::Eq => 2,
            _ => 1,
        };
    }
    let sign = |cmp: &Cmp| -> Rational {
        match cmp {
            Cmp::Le => -Rational::ONE,
            _ => Rational::ONE,
        }
    };

    let mut dual = Lp::new(ncols);
    // Maximize b·y  ==  minimize -b·y.
    let mut obj = vec![Rational::ZERO; ncols];
    for (i, (_, cmp, b)) in lp.constraints().iter().enumerate() {
        let c = col_of[i];
        obj[c] = -(sign(cmp) * *b);
        if *cmp == Cmp::Eq {
            obj[c + 1] = *b;
        }
    }
    dual.set_objective(obj);
    // One dual constraint per primal column: sum_i y_i a_ij <= c_j.
    for j in 0..n {
        let mut row = vec![Rational::ZERO; ncols];
        for (i, (a, cmp, _)) in lp.constraints().iter().enumerate() {
            let c = col_of[i];
            row[c] = sign(cmp) * a[j];
            if *cmp == Cmp::Eq {
                row[c + 1] = -a[j];
            }
        }
        dual.add_constraint(row, Cmp::Le, lp.objective_coeffs()[j]);
    }

    let sol: LpSolution = dual.solve()?;
    let mut y = Vec::with_capacity(m);
    for (i, (_, cmp, _)) in lp.constraints().iter().enumerate() {
        let c = col_of[i];
        let v = match cmp {
            Cmp::Ge => sol.x[c],
            Cmp::Le => -sol.x[c],
            Cmp::Eq => sol.x[c] - sol.x[c + 1],
        };
        y.push(v);
    }
    Ok(DualSolution {
        y,
        objective: -sol.objective,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i128, d: i128) -> Rational {
        Rational::new(n, d)
    }

    fn ri(n: i128) -> Rational {
        Rational::from(n)
    }

    #[test]
    fn strong_duality_on_simple_minimization() {
        let mut lp = Lp::new(2);
        lp.set_objective(vec![ri(1), ri(1)]);
        lp.add_constraint(vec![ri(1), ri(2)], Cmp::Ge, ri(4));
        lp.add_constraint(vec![ri(3), ri(1)], Cmp::Ge, ri(6));
        let primal = lp.solve().unwrap();
        let dual = solve_dual(&lp).unwrap();
        assert_eq!(dual.objective, primal.objective);
        assert_eq!(dual.objective, r(14, 5));
        assert!(dual.is_feasible_for(&lp));
        assert!(dual.y.iter().all(|v| !v.is_negative()));
    }

    #[test]
    fn matmul_brascamp_lieb_duals() {
        // sigma = 3/2; the symmetric dual y = (1/2, 1/2, 1/2) certifies it.
        let mut lp = Lp::new(3);
        lp.set_objective(vec![ri(1), ri(1), ri(1)]);
        lp.add_constraint(vec![ri(1), ri(0), ri(1)], Cmp::Ge, ri(1));
        lp.add_constraint(vec![ri(1), ri(1), ri(0)], Cmp::Ge, ri(1));
        lp.add_constraint(vec![ri(0), ri(1), ri(1)], Cmp::Ge, ri(1));
        let dual = solve_dual(&lp).unwrap();
        assert_eq!(dual.objective, r(3, 2));
        assert!(dual.is_feasible_for(&lp));
        // b·y recomputes the objective.
        let recompute: Rational = dual.y.iter().fold(Rational::ZERO, |a, &v| a + v);
        assert_eq!(recompute, r(3, 2));
    }

    #[test]
    fn le_rows_get_nonpositive_multipliers() {
        // min -x - y s.t. x <= 3, y <= 2: optimum -5, duals (-1, -1).
        let mut lp = Lp::new(2);
        lp.set_objective(vec![ri(-1), ri(-1)]);
        lp.add_constraint(vec![ri(1), ri(0)], Cmp::Le, ri(3));
        lp.add_constraint(vec![ri(0), ri(1)], Cmp::Le, ri(2));
        let dual = solve_dual(&lp).unwrap();
        assert_eq!(dual.objective, ri(-5));
        assert_eq!(dual.y, vec![ri(-1), ri(-1)]);
        assert!(dual.is_feasible_for(&lp));
    }

    #[test]
    fn equality_rows_get_free_multipliers() {
        // min x + 2y s.t. x + y = 1: optimum 1, dual y = 1 (free sign).
        let mut lp = Lp::new(2);
        lp.set_objective(vec![ri(1), ri(2)]);
        lp.add_constraint(vec![ri(1), ri(1)], Cmp::Eq, ri(1));
        let dual = solve_dual(&lp).unwrap();
        assert_eq!(dual.objective, ri(1));
        assert_eq!(dual.y, vec![ri(1)]);
        assert!(dual.is_feasible_for(&lp));
    }

    #[test]
    fn infeasible_primal_makes_dual_unbounded() {
        let mut lp = Lp::new(1);
        lp.add_constraint(vec![ri(1)], Cmp::Ge, ri(2));
        lp.add_constraint(vec![ri(1)], Cmp::Le, ri(1));
        assert_eq!(solve_dual(&lp).unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn bounded_box_with_capacity_rows() {
        // The certificate-LP shape used by iolb: min s1+s2 with rank
        // rows (Ge) and per-variable caps (Le).
        let mut lp = Lp::new(2);
        lp.set_objective(vec![ri(1), ri(1)]);
        lp.add_constraint(vec![ri(1), ri(1)], Cmp::Ge, ri(1));
        lp.add_constraint(vec![ri(1), ri(0)], Cmp::Le, ri(1));
        lp.add_constraint(vec![ri(0), ri(1)], Cmp::Le, ri(1));
        let primal = lp.solve().unwrap();
        let dual = solve_dual(&lp).unwrap();
        assert_eq!(dual.objective, primal.objective);
        assert!(dual.is_feasible_for(&lp));
        // Complementary slackness: the inactive cap rows have zero duals.
        assert_eq!(dual.y[1] * (primal.x[0] - ri(1)), ri(0));
        assert_eq!(dual.y[2] * (primal.x[1] - ri(1)), ri(0));
    }
}
