//! Lexicographic minimization of several objectives.

use ioopt_symbolic::Rational;

use crate::simplex::{Cmp, Lp, LpError, LpSolution};

/// Minimizes `objectives[0]`, then `objectives[1]` among the optima of the
/// first, and so on. Returns the final solution together with the optimal
/// value of each stage.
///
/// Each stage pins the previous stage's objective to its optimum with an
/// equality constraint — the standard lexicographic LP reduction. IOOpt
/// uses this for "minimize σ first, then minimize `s_sd`" (paper §5.2) and
/// for the symmetric tie-break on the `s_j`.
///
/// # Errors
///
/// Propagates [`LpError`] from any stage (infeasibility can only occur at
/// the first stage); [`LpError::NoObjective`] when `objectives` is empty.
///
/// # Panics
///
/// Panics if an objective has the wrong length.
pub fn lexicographic_min(
    base: &Lp,
    objectives: &[Vec<Rational>],
) -> Result<(LpSolution, Vec<Rational>), LpError> {
    let mut lp = base.clone();
    let mut stage_values = Vec::with_capacity(objectives.len());
    let mut last = None;
    for obj in objectives {
        lp.set_objective(obj.clone());
        let sol = lp.solve()?;
        stage_values.push(sol.objective);
        lp.add_constraint(obj.clone(), Cmp::Eq, sol.objective);
        last = Some(sol);
    }
    match last {
        Some(sol) => Ok((sol, stage_values)),
        None => Err(LpError::NoObjective),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ri(n: i128) -> Rational {
        Rational::from(n)
    }

    #[test]
    fn two_stage_lexicographic() {
        // min x+y, then min y, over x+y >= 2, y >= 0, x <= 3.
        let mut lp = Lp::new(2);
        lp.add_constraint(vec![ri(1), ri(1)], Cmp::Ge, ri(2));
        lp.add_constraint(vec![ri(1), ri(0)], Cmp::Le, ri(3));
        let (sol, stages) =
            lexicographic_min(&lp, &[vec![ri(1), ri(1)], vec![ri(0), ri(1)]]).unwrap();
        assert_eq!(stages, vec![ri(2), ri(0)]);
        assert_eq!(sol.x, vec![ri(2), ri(0)]);
    }

    #[test]
    fn minmax_tiebreak_selects_symmetric_point() {
        // Matmul BL system has many optima with sigma = 3/2; adding a
        // min-max stage (t >= s_j, minimize t) selects s = (1/2,1/2,1/2).
        let mut lp = Lp::new(3);
        lp.add_constraint(vec![ri(1), ri(0), ri(1)], Cmp::Ge, ri(1));
        lp.add_constraint(vec![ri(1), ri(1), ri(0)], Cmp::Ge, ri(1));
        lp.add_constraint(vec![ri(0), ri(1), ri(1)], Cmp::Ge, ri(1));
        let t = lp.add_var();
        for j in 0..3 {
            let mut row = vec![ri(0); 4];
            row[j] = ri(1);
            row[t] = ri(-1);
            lp.add_constraint(row, Cmp::Le, ri(0));
        }
        let mut sigma = vec![ri(1); 4];
        sigma[t] = ri(0);
        let mut tmin = vec![ri(0); 4];
        tmin[t] = ri(1);
        let (sol, stages) = lexicographic_min(&lp, &[sigma, tmin]).unwrap();
        assert_eq!(stages[0], Rational::new(3, 2));
        assert_eq!(stages[1], Rational::new(1, 2));
        assert_eq!(&sol.x[0..3], &[Rational::new(1, 2); 3]);
    }
}
