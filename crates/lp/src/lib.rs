//! # ioopt-lp
//!
//! An exact rational linear-programming solver (two-phase primal simplex
//! with Bland's rule). IOOpt's lower-bound algorithm solves small LPs to
//! find the Brascamp-Lieb coefficients `s_j` (paper §5.1); doing this in
//! exact arithmetic keeps the derived *lower* bounds sound.
//!
//! Also provides [`lexicographic_min`], which re-solves under equality pins
//! to realize the paper's ordering "minimize σ first, then `s_sd`", and
//! [`solve_dual`], which produces the multiplier vector that *certifies*
//! an optimum (exported into proof-carrying certificates, DESIGN.md §11).

#![warn(missing_docs)]

mod dual;
mod lexi;
mod simplex;

pub use dual::{solve_dual, DualSolution};
pub use lexi::lexicographic_min;
pub use simplex::{Cmp, Lp, LpError, LpSolution};
