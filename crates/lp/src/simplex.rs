//! Two-phase primal simplex with exact rational arithmetic.
//!
//! Bland's rule guarantees termination; exact [`Rational`] pivoting keeps
//! the Brascamp-Lieb coefficients (`s_j`) sound — a floating-point LP
//! could silently produce an invalid *lower* bound.

use std::fmt;

use ioopt_symbolic::Rational;

/// Comparison direction of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// `a·x ≤ b`
    Le,
    /// `a·x ≥ b`
    Ge,
    /// `a·x = b`
    Eq,
}

/// A linear program `minimize c·x  s.t.  A x {≤,≥,=} b,  x ≥ 0`.
///
/// # Examples
///
/// ```
/// use ioopt_lp::{Cmp, Lp};
/// use ioopt_symbolic::Rational;
/// let r = |n, d| Rational::new(n, d);
/// // minimize s1+s2 s.t. s1+s2 >= 1, s1 >= 1/4
/// let mut lp = Lp::new(2);
/// lp.set_objective(vec![r(1, 1), r(1, 1)]);
/// lp.add_constraint(vec![r(1, 1), r(1, 1)], Cmp::Ge, r(1, 1));
/// lp.add_constraint(vec![r(1, 1), r(0, 1)], Cmp::Ge, r(1, 4));
/// let sol = lp.solve()?;
/// assert_eq!(sol.objective, r(1, 1));
/// # Ok::<(), ioopt_lp::LpError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Lp {
    num_vars: usize,
    objective: Vec<Rational>,
    constraints: Vec<(Vec<Rational>, Cmp, Rational)>,
}

/// An optimal solution of an [`Lp`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LpSolution {
    /// The optimal objective value.
    pub objective: Rational,
    /// Optimal values of the structural variables.
    pub x: Vec<Rational>,
}

/// Errors from [`Lp::solve`] and [`crate::lexicographic_min`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpError {
    /// The feasible region is empty.
    Infeasible,
    /// The objective is unbounded below.
    Unbounded,
    /// A lexicographic solve was requested with no objectives at all.
    NoObjective,
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::Infeasible => write!(f, "linear program is infeasible"),
            LpError::Unbounded => write!(f, "linear program is unbounded"),
            LpError::NoObjective => write!(f, "lexicographic solve has no objectives"),
        }
    }
}

impl std::error::Error for LpError {}

impl Lp {
    /// Creates a program with `num_vars` non-negative variables and a zero
    /// objective.
    pub fn new(num_vars: usize) -> Lp {
        Lp {
            num_vars,
            objective: vec![Rational::ZERO; num_vars],
            constraints: Vec::new(),
        }
    }

    /// Number of structural variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The constraint rows `(a, cmp, b)` in insertion order (the order
    /// dual multipliers from [`crate::solve_dual`] are reported in).
    pub(crate) fn constraints(&self) -> &[(Vec<Rational>, Cmp, Rational)] {
        &self.constraints
    }

    /// The objective coefficients `c`.
    pub(crate) fn objective_coeffs(&self) -> &[Rational] {
        &self.objective
    }

    /// Sets the minimization objective `c·x`.
    ///
    /// # Panics
    ///
    /// Panics if `c.len() != num_vars`.
    pub fn set_objective(&mut self, c: Vec<Rational>) {
        assert_eq!(c.len(), self.num_vars, "objective length mismatch");
        self.objective = c;
    }

    /// Adds a constraint `a·x cmp b`.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != num_vars`.
    pub fn add_constraint(&mut self, a: Vec<Rational>, cmp: Cmp, b: Rational) {
        assert_eq!(a.len(), self.num_vars, "constraint length mismatch");
        self.constraints.push((a, cmp, b));
    }

    /// Adds a fresh non-negative variable and returns its index.
    ///
    /// Existing constraints get a zero coefficient for it.
    pub fn add_var(&mut self) -> usize {
        let idx = self.num_vars;
        self.num_vars += 1;
        self.objective.push(Rational::ZERO);
        for (a, _, _) in &mut self.constraints {
            a.push(Rational::ZERO);
        }
        idx
    }

    /// Solves the program.
    ///
    /// # Errors
    ///
    /// [`LpError::Infeasible`] if no point satisfies the constraints,
    /// [`LpError::Unbounded`] if the objective decreases without bound.
    pub fn solve(&self) -> Result<LpSolution, LpError> {
        Tableau::build(self)?.optimize()
    }
}

/// Dense simplex tableau.
///
/// Column layout: `[structural | slack/surplus | artificial | rhs]`.
struct Tableau {
    /// Constraint rows (each of length `ncols`), rhs non-negative at start.
    rows: Vec<Vec<Rational>>,
    /// Objective (reduced-cost) row of length `ncols`.
    cost: Vec<Rational>,
    /// Basic variable of each row.
    basis: Vec<usize>,
    /// Total column count including the rhs column.
    ncols: usize,
    /// Index of the first artificial column.
    art_start: usize,
    /// Original objective, padded to `ncols - 1`.
    orig_cost: Vec<Rational>,
    num_structural: usize,
}

impl Tableau {
    fn build(lp: &Lp) -> Result<Tableau, LpError> {
        let m = lp.constraints.len();
        let n = lp.num_vars;
        // One slack/surplus per inequality.
        let num_slack = lp
            .constraints
            .iter()
            .filter(|(_, c, _)| *c != Cmp::Eq)
            .count();
        // Worst case one artificial per row; trim later via usage flags.
        let art_start = n + num_slack;
        let ncols = art_start + m + 1;
        let rhs_col = ncols - 1;

        let mut rows = vec![vec![Rational::ZERO; ncols]; m];
        let mut basis = vec![usize::MAX; m];
        let mut slack_idx = n;
        let mut art_used = 0usize;

        for (i, (a, cmp, b)) in lp.constraints.iter().enumerate() {
            let flip = b.is_negative();
            let sign = if flip { -Rational::ONE } else { Rational::ONE };
            for j in 0..n {
                rows[i][j] = sign * a[j];
            }
            rows[i][rhs_col] = sign * *b;
            let effective = match (cmp, flip) {
                (Cmp::Eq, _) => Cmp::Eq,
                (Cmp::Le, false) | (Cmp::Ge, true) => Cmp::Le,
                (Cmp::Ge, false) | (Cmp::Le, true) => Cmp::Ge,
            };
            match effective {
                Cmp::Le => {
                    rows[i][slack_idx] = Rational::ONE;
                    basis[i] = slack_idx;
                    slack_idx += 1;
                }
                Cmp::Ge => {
                    rows[i][slack_idx] = -Rational::ONE;
                    slack_idx += 1;
                    let art = art_start + art_used;
                    art_used += 1;
                    rows[i][art] = Rational::ONE;
                    basis[i] = art;
                }
                Cmp::Eq => {
                    let art = art_start + art_used;
                    art_used += 1;
                    rows[i][art] = Rational::ONE;
                    basis[i] = art;
                }
            }
        }

        let mut orig_cost = lp.objective.clone();
        orig_cost.resize(ncols - 1, Rational::ZERO);

        let mut t = Tableau {
            rows,
            cost: vec![Rational::ZERO; ncols],
            basis,
            ncols,
            art_start,
            orig_cost,
            num_structural: n,
        };

        // Phase 1: minimize the sum of artificials.
        if art_used > 0 {
            for j in art_start..art_start + art_used {
                t.cost[j] = Rational::ONE;
            }
            t.reduce_cost_row();
            t.pivot_until_optimal(art_start + art_used)?;
            if !t.cost[t.ncols - 1].is_zero() {
                return Err(LpError::Infeasible);
            }
            // Drive remaining artificial variables out of the basis.
            for i in 0..t.rows.len() {
                if t.basis[i] >= t.art_start {
                    let pivot_col = (0..t.art_start).find(|&j| !t.rows[i][j].is_zero());
                    match pivot_col {
                        Some(j) => t.pivot(i, j),
                        None => {
                            // Redundant row: harmless, keep (rhs must be 0).
                        }
                    }
                }
            }
        }
        Ok(t)
    }

    /// Recomputes the cost row as reduced costs w.r.t. the current basis.
    fn reduce_cost_row(&mut self) {
        let rhs_col = self.ncols - 1;
        for i in 0..self.rows.len() {
            let b = self.basis[i];
            if b == usize::MAX {
                continue;
            }
            let c = self.cost[b];
            if !c.is_zero() {
                for j in 0..self.ncols {
                    let sub = c * self.rows[i][j];
                    self.cost[j] -= sub;
                }
            }
        }
        // Keep the objective value positive-denominator: nothing to do, but
        // ensure the rhs cell reflects -objective by convention.
        let _ = rhs_col;
    }

    /// Runs simplex pivots (Bland's rule) on columns `< limit`.
    fn pivot_until_optimal(&mut self, limit: usize) -> Result<(), LpError> {
        let rhs_col = self.ncols - 1;
        loop {
            // Entering: smallest index with negative reduced cost.
            let Some(enter) = (0..limit).find(|&j| self.cost[j].is_negative()) else {
                return Ok(());
            };
            // Leaving: min ratio, ties by smallest basis index (Bland).
            let mut best: Option<(Rational, usize)> = None;
            for i in 0..self.rows.len() {
                let a = self.rows[i][enter];
                if a.is_positive() {
                    let ratio = self.rows[i][rhs_col] / a;
                    let better = match &best {
                        None => true,
                        Some((r, bi)) => {
                            ratio < *r || (ratio == *r && self.basis[i] < self.basis[*bi])
                        }
                    };
                    if better {
                        best = Some((ratio, i));
                    }
                }
            }
            let Some((_, leave)) = best else {
                return Err(LpError::Unbounded);
            };
            self.pivot(leave, enter);
        }
    }

    /// Pivots on `(row, col)`.
    fn pivot(&mut self, row: usize, col: usize) {
        let inv = self.rows[row][col].recip();
        for j in 0..self.ncols {
            self.rows[row][j] *= inv;
        }
        for i in 0..self.rows.len() {
            if i != row && !self.rows[i][col].is_zero() {
                let factor = self.rows[i][col];
                for j in 0..self.ncols {
                    let sub = factor * self.rows[row][j];
                    self.rows[i][j] -= sub;
                }
            }
        }
        if !self.cost[col].is_zero() {
            let factor = self.cost[col];
            for j in 0..self.ncols {
                let sub = factor * self.rows[row][j];
                self.cost[j] -= sub;
            }
        }
        self.basis[row] = col;
    }

    /// Phase 2: optimize the original objective.
    fn optimize(mut self) -> Result<LpSolution, LpError> {
        self.cost = self.orig_cost.clone();
        self.cost.push(Rational::ZERO);
        self.reduce_cost_row();
        // Artificials are excluded from entering.
        self.pivot_until_optimal(self.art_start)?;
        let rhs_col = self.ncols - 1;
        let mut x = vec![Rational::ZERO; self.num_structural];
        for (i, &b) in self.basis.iter().enumerate() {
            if b < self.num_structural {
                x[b] = self.rows[i][rhs_col];
            }
        }
        let mut objective = Rational::ZERO;
        for (j, &xj) in x.iter().enumerate().take(self.num_structural) {
            objective += self.orig_cost[j] * xj;
        }
        Ok(LpSolution { objective, x })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i128, d: i128) -> Rational {
        Rational::new(n, d)
    }

    fn ri(n: i128) -> Rational {
        Rational::from(n)
    }

    #[test]
    fn simple_minimization() {
        // min x + y s.t. x + 2y >= 4, 3x + y >= 6
        let mut lp = Lp::new(2);
        lp.set_objective(vec![ri(1), ri(1)]);
        lp.add_constraint(vec![ri(1), ri(2)], Cmp::Ge, ri(4));
        lp.add_constraint(vec![ri(3), ri(1)], Cmp::Ge, ri(6));
        let sol = lp.solve().unwrap();
        // Optimum at intersection: x = 8/5, y = 6/5, value 14/5.
        assert_eq!(sol.objective, r(14, 5));
        assert_eq!(sol.x, vec![r(8, 5), r(6, 5)]);
    }

    #[test]
    fn le_constraints_maximization_style() {
        // min -x - y s.t. x <= 3, y <= 2  => x=3, y=2, value -5.
        let mut lp = Lp::new(2);
        lp.set_objective(vec![ri(-1), ri(-1)]);
        lp.add_constraint(vec![ri(1), ri(0)], Cmp::Le, ri(3));
        lp.add_constraint(vec![ri(0), ri(1)], Cmp::Le, ri(2));
        let sol = lp.solve().unwrap();
        assert_eq!(sol.objective, ri(-5));
    }

    #[test]
    fn equality_constraints() {
        // min x + 2y s.t. x + y = 1 => x = 1, y = 0.
        let mut lp = Lp::new(2);
        lp.set_objective(vec![ri(1), ri(2)]);
        lp.add_constraint(vec![ri(1), ri(1)], Cmp::Eq, ri(1));
        let sol = lp.solve().unwrap();
        assert_eq!(sol.objective, ri(1));
        assert_eq!(sol.x, vec![ri(1), ri(0)]);
    }

    #[test]
    fn infeasible_detected() {
        let mut lp = Lp::new(1);
        lp.add_constraint(vec![ri(1)], Cmp::Ge, ri(2));
        lp.add_constraint(vec![ri(1)], Cmp::Le, ri(1));
        assert_eq!(lp.solve().unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut lp = Lp::new(1);
        lp.set_objective(vec![ri(-1)]);
        lp.add_constraint(vec![ri(1)], Cmp::Ge, ri(0));
        assert_eq!(lp.solve().unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn negative_rhs_normalized() {
        // min x s.t. -x <= -3  (i.e. x >= 3)
        let mut lp = Lp::new(1);
        lp.set_objective(vec![ri(1)]);
        lp.add_constraint(vec![ri(-1)], Cmp::Le, ri(-3));
        let sol = lp.solve().unwrap();
        assert_eq!(sol.objective, ri(3));
    }

    #[test]
    fn matmul_brascamp_lieb_system() {
        // Matmul (paper §5.1): minimize s_A + s_B + s_C subject to
        //   s_A + s_C >= 1, s_A + s_B >= 1, s_B + s_C >= 1
        // Optimal sigma = 3/2 at s = (1/2, 1/2, 1/2).
        let mut lp = Lp::new(3);
        lp.set_objective(vec![ri(1), ri(1), ri(1)]);
        lp.add_constraint(vec![ri(1), ri(0), ri(1)], Cmp::Ge, ri(1));
        lp.add_constraint(vec![ri(1), ri(1), ri(0)], Cmp::Ge, ri(1));
        lp.add_constraint(vec![ri(0), ri(1), ri(1)], Cmp::Ge, ri(1));
        let sol = lp.solve().unwrap();
        assert_eq!(sol.objective, r(3, 2));
    }

    #[test]
    fn add_var_extends_constraints() {
        let mut lp = Lp::new(1);
        lp.set_objective(vec![ri(1)]);
        lp.add_constraint(vec![ri(1)], Cmp::Ge, ri(1));
        let t = lp.add_var();
        assert_eq!(t, 1);
        let sol = lp.solve().unwrap();
        assert_eq!(sol.x.len(), 2);
        assert_eq!(sol.objective, ri(1));
    }

    #[test]
    fn degenerate_lp_terminates() {
        // A classic cycling-prone instance; Bland's rule must terminate.
        let mut lp = Lp::new(4);
        lp.set_objective(vec![r(-3, 4), ri(150), r(-1, 50), ri(6)]);
        lp.add_constraint(vec![r(1, 4), ri(-60), r(-1, 25), ri(9)], Cmp::Le, ri(0));
        lp.add_constraint(vec![r(1, 2), ri(-90), r(-1, 50), ri(3)], Cmp::Le, ri(0));
        lp.add_constraint(vec![ri(0), ri(0), ri(1), ri(0)], Cmp::Le, ri(1));
        let sol = lp.solve().unwrap();
        assert_eq!(sol.objective, r(-1, 20));
    }
}
