//! Randomized test: the simplex optimum equals the best vertex of the
//! feasible polytope (brute-force oracle via exact linear algebra).
//! Deterministic SplitMix64-driven cases.

use ioopt_lp::{Cmp, Lp, LpError};
use ioopt_symbolic::{Rational, SplitMix64};

/// A random bounded LP on 2 variables:
/// `min c·x  s.t.  A x ≤ b, 0 ≤ x ≤ 10`.
#[derive(Debug, Clone)]
struct SmallLp {
    c: [i64; 2],
    rows: Vec<([i64; 2], i64)>,
}

fn random_lp(rng: &mut SplitMix64) -> SmallLp {
    let c = [rng.range_i64(-5, 5), rng.range_i64(-5, 5)];
    let nrows = 1 + rng.range_usize(4);
    let rows = (0..nrows)
        .map(|_| {
            (
                [rng.range_i64(-4, 4), rng.range_i64(-4, 4)],
                rng.range_i64(0, 20),
            )
        })
        .collect();
    SmallLp { c, rows }
}

fn build(lp: &SmallLp) -> Lp {
    let ri = |v: i64| Rational::from(v as i128);
    let mut out = Lp::new(2);
    out.set_objective(vec![ri(lp.c[0]), ri(lp.c[1])]);
    for (a, b) in &lp.rows {
        out.add_constraint(vec![ri(a[0]), ri(a[1])], Cmp::Le, ri(*b));
    }
    // Box bounds keep everything bounded: x_i <= 10 (x_i >= 0 is implicit).
    out.add_constraint(vec![ri(1), ri(0)], Cmp::Le, ri(10));
    out.add_constraint(vec![ri(0), ri(1)], Cmp::Le, ri(10));
    out
}

/// All candidate vertices: intersections of every pair of constraint
/// boundaries (including the axes and the box), filtered for feasibility.
fn best_vertex(lp: &SmallLp) -> Option<Rational> {
    let ri = |v: i64| Rational::from(v as i128);
    // Constraint set as (a1, a2, b) meaning a1 x + a2 y <= b.
    let mut cs: Vec<(Rational, Rational, Rational)> = lp
        .rows
        .iter()
        .map(|(a, b)| (ri(a[0]), ri(a[1]), ri(*b)))
        .collect();
    cs.push((ri(1), ri(0), ri(10)));
    cs.push((ri(0), ri(1), ri(10)));
    cs.push((ri(-1), ri(0), ri(0))); // -x <= 0
    cs.push((ri(0), ri(-1), ri(0)));
    let feasible = |x: Rational, y: Rational| -> bool {
        !x.is_negative() && !y.is_negative() && cs.iter().all(|&(a1, a2, b)| a1 * x + a2 * y <= b)
    };
    let mut best: Option<Rational> = None;
    for i in 0..cs.len() {
        for j in (i + 1)..cs.len() {
            let (a1, a2, b1) = cs[i];
            let (a3, a4, b2) = cs[j];
            // Solve the 2x2 system via Cramer's rule with exact rationals.
            let det = a1 * a4 - a2 * a3;
            if det.is_zero() {
                continue;
            }
            let x = (b1 * a4 - a2 * b2) / det;
            let y = (a1 * b2 - b1 * a3) / det;
            if feasible(x, y) {
                let val = ri(lp.c[0]) * x + ri(lp.c[1]) * y;
                best = Some(match best {
                    None => val,
                    Some(cur) => cur.min(val),
                });
            }
        }
    }
    best
}

#[test]
fn simplex_matches_vertex_enumeration() {
    let mut rng = SplitMix64::new(0x197601);
    for _ in 0..256 {
        let lp = random_lp(&mut rng);
        let solver = build(&lp);
        match (solver.solve(), best_vertex(&lp)) {
            (Ok(sol), Some(vertex_best)) => {
                assert_eq!(
                    sol.objective, vertex_best,
                    "simplex {:?} vs vertex {:?} for {lp:?}",
                    sol.objective, vertex_best
                );
                // And the reported point is feasible.
                let ri = |v: i64| Rational::from(v as i128);
                for (a, b) in &lp.rows {
                    assert!(ri(a[0]) * sol.x[0] + ri(a[1]) * sol.x[1] <= ri(*b));
                }
            }
            (Err(LpError::Infeasible), None) => {} // agree: empty
            (got, oracle) => {
                panic!("disagree on {lp:?}: simplex {got:?}, oracle {oracle:?}");
            }
        }
    }
}
