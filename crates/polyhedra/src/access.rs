//! Access functions and symbolic footprint cardinalities.
//!
//! This module is the Barvinok substitute: for the kernel class of the
//! paper (rectangular iteration sub-domains, subscripts that are sums of
//! distinct loop indices), the cardinality of an access function's image is
//! a *product of interval lengths*, which we compute symbolically.

use ioopt_symbolic::Expr;

use crate::linear::LinearForm;

/// A multi-dimensional affine access function `f_A : iteration space →
/// memory space of array A` — one [`LinearForm`] per array dimension.
///
/// # Examples
///
/// ```
/// use ioopt_polyhedra::{AccessFunction, LinearForm};
/// use ioopt_symbolic::Expr;
/// // Image[x+w][c] over dims (0=x, 1=w, 2=c)
/// let acc = AccessFunction::new(vec![
///     LinearForm::sum_of(&[0, 1]),
///     LinearForm::var(2),
/// ]);
/// // Box extents Tx, Nw, Tc -> footprint (Tx + Nw - 1) * Tc
/// let extents = vec![Expr::sym("Tx"), Expr::sym("Nw"), Expr::sym("Tc")];
/// let fp = acc.image_cardinality(&extents);
/// assert!(fp.exact);
/// assert_eq!(fp.card.to_string(), "Tc*(Nw + Tx - 1)");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AccessFunction {
    dims: Vec<LinearForm>,
}

/// A symbolic cardinality together with an exactness flag.
///
/// `exact == false` marks a sound *over*-approximation (still valid for
/// upper bounds and footprint constraints).
#[derive(Debug, Clone, PartialEq)]
pub struct Cardinality {
    /// The cardinality expression.
    pub card: Expr,
    /// Whether the expression is exact (vs. an over-approximation).
    pub exact: bool,
}

impl AccessFunction {
    /// Creates an access function from one linear form per array dimension.
    pub fn new(dims: Vec<LinearForm>) -> AccessFunction {
        AccessFunction { dims }
    }

    /// The per-array-dimension subscript forms.
    pub fn dims(&self) -> &[LinearForm] {
        &self.dims
    }

    /// The number of array dimensions.
    pub fn arity(&self) -> usize {
        self.dims.len()
    }

    /// Whether any subscript uses iteration dimension `dim`.
    pub fn uses(&self, dim: usize) -> bool {
        self.dims.iter().any(|f| f.uses(dim))
    }

    /// Evaluates the access at an iteration point.
    pub fn eval(&self, point: &[i64]) -> Vec<i64> {
        self.dims.iter().map(|f| f.eval(point)).collect()
    }

    /// Whether distinct subscripts use disjoint iteration dimensions and
    /// all coefficients are 1 — the condition under which footprints are
    /// exact products of interval lengths.
    pub fn is_separable_unit(&self) -> bool {
        let mut seen: Vec<usize> = Vec::new();
        for f in &self.dims {
            if !f.is_unit() {
                return false;
            }
            for d in f.dims() {
                if seen.contains(&d) {
                    return false;
                }
                seen.push(d);
            }
        }
        true
    }

    /// Cardinality of the image of a box with the given per-dimension
    /// `extents` (symbolic, all positive).
    ///
    /// For a subscript `d_1 + … + d_k` over extents `E_1..E_k` the image is
    /// the interval of length `E_1 + … + E_k − (k−1)`; for
    /// non-unit-coefficient forms the interval *range* is used instead and
    /// the result is flagged inexact (a sound over-approximation).
    pub fn image_cardinality(&self, extents: &[Expr]) -> Cardinality {
        let mut exact = self.is_separable_unit();
        let mut factors: Vec<Expr> = Vec::new();
        for f in &self.dims {
            factors.push(Self::interval_length(f, extents, &mut exact));
        }
        Cardinality {
            card: Expr::mul_all(factors),
            exact,
        }
    }

    /// Length of the value interval of one subscript over the box.
    fn interval_length(f: &LinearForm, extents: &[Expr], exact: &mut bool) -> Expr {
        if f.terms().is_empty() {
            return Expr::one();
        }
        if f.terms().len() == 1 {
            // A single dimension (any stride) takes exactly `extent`
            // distinct values.
            let (d, _) = f.terms()[0];
            return extents[d];
        }
        if f.is_unit() {
            // Σ E_i − (k − 1)
            let k = f.terms().len() as i64;
            let sum = Expr::add_all(f.dims().map(|d| extents[d]));
            sum + Expr::int(1 - k)
        } else {
            // Range over-approximation: Σ |c_i|·(E_i − 1) + 1.
            *exact = false;
            let mut acc = Expr::one();
            for &(d, c) in f.terms() {
                acc = acc + Expr::int(c.abs()) * (extents[d] - Expr::one());
            }
            acc
        }
    }

    /// A sound **lower** bound on the image cardinality (used by lower
    /// bounds, where over-approximation would be unsound).
    ///
    /// * If the subscripts use pairwise-disjoint dimensions and each is a
    ///   single variable or a unit sum, the product form is exact.
    /// * Otherwise (shared dimensions, e.g. a diagonal `A[i][i]`, or
    ///   non-unit coefficients) the bound falls back to the largest
    ///   single-subscript value count — tuples differing in one
    ///   coordinate are distinct, so any per-coordinate count is a valid
    ///   lower bound.
    pub fn image_cardinality_lower(&self, extents: &[Expr]) -> Expr {
        let disjoint = {
            let mut seen: Vec<usize> = Vec::new();
            self.dims.iter().all(|f| {
                f.dims().all(|d| {
                    if seen.contains(&d) {
                        false
                    } else {
                        seen.push(d);
                        true
                    }
                })
            })
        };
        let coord_count = |f: &LinearForm| -> Expr {
            if f.terms().is_empty() {
                Expr::one()
            } else if f.terms().len() == 1 || f.is_unit() {
                let mut exact = true;
                Self::interval_length(f, extents, &mut exact)
            } else {
                // Fix all but the widest participating dimension: its
                // extent many distinct values are guaranteed.
                Expr::max_all(f.dims().map(|d| extents[d]))
            }
        };
        let coord_exact = |f: &LinearForm| f.terms().len() == 1 || f.is_unit();
        if disjoint && self.dims.iter().all(coord_exact) {
            Expr::mul_all(self.dims.iter().map(coord_count))
        } else {
            Expr::max_all(self.dims.iter().map(coord_count))
        }
    }

    /// Cardinality of the *overlap* between the image of a box and the
    /// image of the same box shifted by `shift` along iteration dimension
    /// `shift_dim` (the inter-sub-domain reuse `SDR` of the paper, §4.1).
    ///
    /// For unit forms the overlap of the interval with itself shifted by
    /// `shift` has length `max(0, len − shift)`; subscripts not using
    /// `shift_dim` overlap fully. For non-unit forms the overlap is
    /// *under*-approximated as zero (sound for upper bounds: less reuse is
    /// claimed than exists).
    pub fn overlap_cardinality(
        &self,
        extents: &[Expr],
        shift_dim: usize,
        shift: &Expr,
    ) -> Cardinality {
        let mut exact = self.is_separable_unit();
        let mut factors: Vec<Expr> = Vec::new();
        for f in &self.dims {
            let len = Self::interval_length(f, extents, &mut exact);
            let c = f.coeff(shift_dim);
            if c == 0 {
                factors.push(len);
            } else if f.is_unit() || f.terms().len() == 1 {
                let shifted = len - Expr::int(c.abs()) * shift;
                factors.push(Expr::max_all([Expr::zero(), shifted]));
            } else {
                // Non-contiguous image: claim no reuse (sound).
                exact = false;
                factors.push(Expr::zero());
            }
        }
        Cardinality {
            card: Expr::mul_all(factors),
            exact,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(name: &str) -> Expr {
        Expr::sym(name)
    }

    #[test]
    fn matmul_footprints() {
        // A[i][k] over dims (0=i, 1=j, 2=k), extents (Ti, Tj, Tk)
        let acc = AccessFunction::new(vec![LinearForm::var(0), LinearForm::var(2)]);
        let fp = acc.image_cardinality(&[e("Ti"), e("Tj"), e("Tk")]);
        assert!(fp.exact);
        assert_eq!(fp.card, e("Ti") * e("Tk"));
    }

    #[test]
    fn conv_footprint_with_sum_subscript() {
        // Paper §4.1: SDF_Image,2 = (Nx + Nw - 1) * Tc
        // Image[x+w][c] over dims (0=x, 1=w, 2=c)
        let acc = AccessFunction::new(vec![LinearForm::sum_of(&[0, 1]), LinearForm::var(2)]);
        let fp = acc.image_cardinality(&[e("Nx"), e("Nw"), e("Tc")]);
        assert!(fp.exact);
        let expected = (e("Nx") + e("Nw") - Expr::one()) * e("Tc");
        assert_eq!(fp.card.expand(), expected.expand());
    }

    #[test]
    fn overlap_full_reuse_when_dim_unused() {
        // Out[f][x] over dims (0=f, 1=x, 2=c); shifting along c overlaps fully.
        let acc = AccessFunction::new(vec![LinearForm::var(0), LinearForm::var(1)]);
        let extents = [e("Tf"), e("Tx"), e("Tc")];
        let ov = acc.overlap_cardinality(&extents, 2, &e("Tc"));
        assert_eq!(ov.card, e("Tf") * e("Tx"));
    }

    #[test]
    fn overlap_shift_along_used_dim() {
        // Image[x+w] over dims (0=x, 1=w), extents (Tx, Nw), shift x by Tx:
        // overlap = max(0, Tx + Nw - 1 - Tx) = Nw - 1.
        let acc = AccessFunction::new(vec![LinearForm::sum_of(&[0, 1])]);
        let ov = acc.overlap_cardinality(&[e("Tx"), e("Nw")], 0, &e("Tx"));
        let expected = Expr::max_all([Expr::zero(), e("Nw") - Expr::one()]);
        assert_eq!(ov.card, expected);
    }

    #[test]
    fn strided_access_is_flagged_inexact() {
        let acc = AccessFunction::new(vec![LinearForm::new(&[(0, 2), (1, 1)], 0)]);
        let fp = acc.image_cardinality(&[e("Tx"), e("Tw")]);
        assert!(!fp.exact);
        // Range approximation: 2(Tx-1) + (Tw-1) + 1
        let expected =
            (Expr::int(2) * (e("Tx") - Expr::one()) + (e("Tw") - Expr::one()) + Expr::one())
                .expand();
        assert_eq!(fp.card, expected);
    }

    #[test]
    fn separable_unit_detection() {
        let shared = AccessFunction::new(vec![LinearForm::var(0), LinearForm::sum_of(&[0, 1])]);
        assert!(!shared.is_separable_unit());
        let ok = AccessFunction::new(vec![LinearForm::var(0), LinearForm::sum_of(&[1, 2])]);
        assert!(ok.is_separable_unit());
    }
}
