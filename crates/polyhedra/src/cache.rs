//! Memoization of polyhedral counting and projection subproblems.
//!
//! The analysis pipeline poses the same polyhedral queries over and over:
//! candidate permutations of one kernel share tile-band polyhedra, batch
//! runs over the Yolo9000 layers share the conv2d access structure, and
//! the exact-enumeration cross-checks revisit identical sets. Each query
//! is a pure function of the constraint system, so the results are
//! memoized in process-wide content-addressed caches (keys are the full
//! canonical constraint serialization — a hash collision can never
//! produce a wrong answer) with hit/miss counters that the batch report
//! surfaces.
//!
//! Determinism: a cache hit replays the exact value the cold computation
//! produced, so enabling or disabling the cache never changes any bound.
//! Tests assert this (`tests/random_kernel_soundness.rs`).

use std::sync::OnceLock;

use ioopt_engine::{CacheStats, MemoCache};

use crate::fourier_motzkin::RationalConstraint;
use crate::zpoly::ZPolyhedron;

/// Exact point counts per constraint system.
fn count_cache() -> &'static MemoCache<u64> {
    static CACHE: OnceLock<MemoCache<u64>> = OnceLock::new();
    CACHE.get_or_init(MemoCache::new)
}

/// Fourier–Motzkin projections per (constraint system, variable).
fn project_cache() -> &'static MemoCache<Vec<RationalConstraint>> {
    static CACHE: OnceLock<MemoCache<Vec<RationalConstraint>>> = OnceLock::new();
    CACHE.get_or_init(MemoCache::new)
}

/// Rational-emptiness verdicts per constraint system.
fn empty_cache() -> &'static MemoCache<bool> {
    static CACHE: OnceLock<MemoCache<bool>> = OnceLock::new();
    CACHE.get_or_init(MemoCache::new)
}

/// Canonical byte serialization of a polyhedron: dimension count, then
/// each constraint's sorted `(dim, coeff)` terms and constant. Two
/// structurally equal polyhedra serialize identically ([`crate::LinearForm`]
/// keeps terms sorted and merged).
pub(crate) fn poly_key(poly: &ZPolyhedron, tag: u8) -> Vec<u8> {
    let mut key = Vec::with_capacity(16 + poly.constraints().len() * 24);
    key.push(tag);
    key.extend_from_slice(&(poly.dim() as u64).to_le_bytes());
    for f in poly.constraints() {
        key.push(b'C');
        key.extend_from_slice(&(f.terms().len() as u64).to_le_bytes());
        for &(d, c) in f.terms() {
            key.extend_from_slice(&(d as u64).to_le_bytes());
            key.extend_from_slice(&c.to_le_bytes());
        }
        key.extend_from_slice(&f.constant().to_le_bytes());
    }
    key
}

pub(crate) fn cached_count(poly: &ZPolyhedron, compute: impl FnOnce() -> u64) -> u64 {
    count_cache().get_or_insert_with(&poly_key(poly, b'#'), compute)
}

pub(crate) fn cached_projection(
    poly: &ZPolyhedron,
    var: usize,
    compute: impl FnOnce() -> Vec<RationalConstraint>,
) -> Vec<RationalConstraint> {
    let mut key = poly_key(poly, b'P');
    key.extend_from_slice(&(var as u64).to_le_bytes());
    project_cache().get_or_insert_with(&key, compute)
}

/// Budget-aware emptiness memoization: cache hits are returned as-is
/// (they were computed exactly), a fresh verdict is stored **only** when
/// the computation finished without exhausting `budget` — a degraded
/// verdict must never masquerade as an exact one for later runs.
pub(crate) fn cached_emptiness_governed<E>(
    poly: &ZPolyhedron,
    budget: &ioopt_engine::Budget,
    compute: impl FnOnce(&ioopt_engine::Budget) -> Result<bool, E>,
) -> Result<bool, E> {
    let key = poly_key(poly, b'E');
    if let Some(hit) = empty_cache().get(&key) {
        return Ok(hit);
    }
    let verdict = compute(budget)?;
    empty_cache().insert(&key, verdict);
    Ok(verdict)
}

/// Aggregated hit/miss/entry counters over the polyhedral caches.
pub fn cache_stats() -> CacheStats {
    count_cache()
        .stats()
        .merged(&project_cache().stats())
        .merged(&empty_cache().stats())
}

/// Enables or disables the polyhedral memo layer (process-wide). While
/// disabled every query recomputes and the counters do not move.
pub fn set_cache_enabled(enabled: bool) {
    count_cache().set_enabled(enabled);
    project_cache().set_enabled(enabled);
    empty_cache().set_enabled(enabled);
}

/// Drops all cached polyhedral results and zeroes the counters.
pub fn reset_cache() {
    count_cache().clear();
    project_cache().clear();
    empty_cache().clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LinearForm;

    fn triangle(n: i64) -> ZPolyhedron {
        let mut p = ZPolyhedron::new(2);
        p.add_lower_bound(0, 0);
        p.add_lower_bound(1, 0);
        p.add_constraint(LinearForm::new(&[(0, -1), (1, -1)], n));
        p
    }

    #[test]
    fn keys_distinguish_query_kinds_and_shapes() {
        let a = poly_key(&triangle(3), b'#');
        let b = poly_key(&triangle(3), b'E');
        let c = poly_key(&triangle(4), b'#');
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, poly_key(&triangle(3), b'#'));
    }

    #[test]
    fn cached_count_replays_exact_value() {
        let p = triangle(5);
        let cold = p.count();
        let warm = p.count();
        assert_eq!(cold, warm);
        assert_eq!(cold, 21);
    }

    #[test]
    fn disabling_recomputes_identically() {
        let p = triangle(6);
        let warm = p.count();
        set_cache_enabled(false);
        let cold = p.count();
        set_cache_enabled(true);
        assert_eq!(warm, cold);
    }
}
