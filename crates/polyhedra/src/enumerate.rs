//! Brute-force integer-point enumeration, used to validate the symbolic
//! cardinalities on concrete instances (our "Barvinok cross-check").

use std::collections::HashSet;

use crate::access::AccessFunction;

/// A concrete box `∏ [lo_i, lo_i + size_i)` in iteration space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConcreteBox {
    /// Inclusive lower corner.
    pub lo: Vec<i64>,
    /// Per-dimension extents (sizes).
    pub size: Vec<i64>,
}

impl ConcreteBox {
    /// Creates a box from lower corner and sizes.
    ///
    /// # Panics
    ///
    /// Panics if the vectors disagree in length or a size is negative.
    pub fn new(lo: Vec<i64>, size: Vec<i64>) -> ConcreteBox {
        assert_eq!(lo.len(), size.len(), "corner/size dimension mismatch");
        assert!(size.iter().all(|&s| s >= 0), "negative box size");
        ConcreteBox { lo, size }
    }

    /// A box anchored at the origin.
    pub fn at_origin(size: Vec<i64>) -> ConcreteBox {
        let lo = vec![0; size.len()];
        ConcreteBox::new(lo, size)
    }

    /// The number of integer points.
    pub fn cardinality(&self) -> u64 {
        self.size.iter().map(|&s| s as u64).product()
    }

    /// Iterates all integer points (row-major).
    pub fn points(&self) -> PointIter {
        PointIter {
            lo: self.lo.clone(),
            size: self.size.clone(),
            cur: None,
        }
    }

    /// The box translated by `delta` along dimension `dim`.
    pub fn shifted(&self, dim: usize, delta: i64) -> ConcreteBox {
        let mut lo = self.lo.clone();
        lo[dim] += delta;
        ConcreteBox::new(lo, self.size.clone())
    }
}

/// Iterator over the integer points of a [`ConcreteBox`].
#[derive(Debug)]
pub struct PointIter {
    lo: Vec<i64>,
    size: Vec<i64>,
    cur: Option<Vec<i64>>,
}

impl Iterator for PointIter {
    type Item = Vec<i64>;
    fn next(&mut self) -> Option<Vec<i64>> {
        if self.size.contains(&0) {
            return None;
        }
        match &mut self.cur {
            None => {
                self.cur = Some(self.lo.clone());
                self.cur.clone()
            }
            Some(p) => {
                // Increment like an odometer, last dimension fastest.
                for d in (0..p.len()).rev() {
                    p[d] += 1;
                    if p[d] < self.lo[d] + self.size[d] {
                        return Some(p.clone());
                    }
                    p[d] = self.lo[d];
                }
                None
            }
        }
    }
}

/// Counts the distinct array cells touched by `access` over `boxdom`.
pub fn count_image(boxdom: &ConcreteBox, access: &AccessFunction) -> u64 {
    let mut seen: HashSet<Vec<i64>> = HashSet::new();
    for p in boxdom.points() {
        seen.insert(access.eval(&p));
    }
    seen.len() as u64
}

/// Counts the distinct cells touched by `access` over *both* boxes
/// (i.e. `|f(B1) ∩ f(B2)|`).
pub fn count_image_overlap(b1: &ConcreteBox, b2: &ConcreteBox, access: &AccessFunction) -> u64 {
    let img1: HashSet<Vec<i64>> = b1.points().map(|p| access.eval(&p)).collect();
    let img2: HashSet<Vec<i64>> = b2.points().map(|p| access.eval(&p)).collect();
    img1.intersection(&img2).count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinearForm;

    #[test]
    fn box_points_count() {
        let b = ConcreteBox::at_origin(vec![2, 3]);
        assert_eq!(b.points().count() as u64, b.cardinality());
        assert_eq!(b.cardinality(), 6);
    }

    #[test]
    fn empty_box() {
        let b = ConcreteBox::at_origin(vec![2, 0]);
        assert_eq!(b.points().count(), 0);
        assert_eq!(b.cardinality(), 0);
    }

    #[test]
    fn image_count_with_aliasing() {
        // f(x, w) = x + w over [0,3) x [0,2): values 0..=3 -> 4 cells.
        let acc = AccessFunction::new(vec![LinearForm::sum_of(&[0, 1])]);
        let b = ConcreteBox::at_origin(vec![3, 2]);
        assert_eq!(count_image(&b, &acc), 4);
    }

    #[test]
    fn overlap_count() {
        // f(x) = x over [0,4) and [2,6): overlap {2,3} -> 2.
        let acc = AccessFunction::new(vec![LinearForm::var(0)]);
        let b1 = ConcreteBox::at_origin(vec![4]);
        let b2 = b1.shifted(0, 2);
        assert_eq!(count_image_overlap(&b1, &b2, &acc), 2);
    }
}
