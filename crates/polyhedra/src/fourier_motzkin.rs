//! Fourier–Motzkin elimination over rational constraints.
//!
//! Gives the general Z-polyhedron type projections and an emptiness test
//! that does not rely on enumeration — the core isl operations our box
//! fast paths specialize. The projection is the *rational shadow*: exact
//! for the rational relaxation, an over-approximation of the integer
//! shadow (sound for the emptiness and bounding uses in this workspace).

use ioopt_symbolic::Rational;

use crate::linear::LinearForm;
use crate::zpoly::ZPolyhedron;

/// A rational half-space `Σ coeff_i·x_i + c ≥ 0`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RationalConstraint {
    /// One coefficient per dimension.
    pub coeffs: Vec<Rational>,
    /// The constant term.
    pub constant: Rational,
}

impl RationalConstraint {
    fn from_form(f: &LinearForm, dim: usize) -> RationalConstraint {
        let mut coeffs = vec![Rational::ZERO; dim];
        for &(d, c) in f.terms() {
            coeffs[d] = Rational::from(c);
        }
        RationalConstraint {
            coeffs,
            constant: Rational::from(f.constant()),
        }
    }

    /// Drops the coefficient of `var` (after elimination).
    fn without_var(&self, var: usize) -> RationalConstraint {
        let mut coeffs = self.coeffs.clone();
        coeffs.remove(var);
        RationalConstraint {
            coeffs,
            constant: self.constant,
        }
    }

    /// Whether this is a constant constraint (all coefficients zero).
    fn is_constant(&self) -> bool {
        self.coeffs.iter().all(|c| c.is_zero())
    }
}

/// The rational shadow of `poly` with dimension `var` eliminated.
///
/// Combines every pair of constraints with opposite signs on `var`; the
/// result has one fewer dimension (indices above `var` shift down).
///
/// # Panics
///
/// Panics if `var` is out of range.
pub fn project_out(poly: &ZPolyhedron, var: usize) -> Vec<RationalConstraint> {
    assert!(var < poly.dim(), "projected dimension out of range");
    crate::cache::cached_projection(poly, var, || {
        let cs: Vec<RationalConstraint> = poly
            .constraints()
            .iter()
            .map(|f| RationalConstraint::from_form(f, poly.dim()))
            .collect();
        project_out_rc(&cs, var)
    })
}

/// Fourier–Motzkin step on rational constraints.
pub fn project_out_rc(constraints: &[RationalConstraint], var: usize) -> Vec<RationalConstraint> {
    let mut lower: Vec<&RationalConstraint> = Vec::new(); // coeff > 0
    let mut upper: Vec<&RationalConstraint> = Vec::new(); // coeff < 0
    let mut free: Vec<RationalConstraint> = Vec::new();
    for c in constraints {
        let a = c.coeffs[var];
        if a.is_positive() {
            lower.push(c);
        } else if a.is_negative() {
            upper.push(c);
        } else {
            free.push(c.without_var(var));
        }
    }
    for lo in &lower {
        for hi in &upper {
            // lo: a·x + r_lo >= 0 (a > 0)  ->  x >= -r_lo / a
            // hi: b·x + r_hi >= 0 (b < 0)  ->  x <= -r_hi / b
            // Combine: (-r_lo/a) <= (-r_hi/b)  <=>  |b|·r_lo + a·r_hi >= 0.
            let a = lo.coeffs[var];
            let b = -hi.coeffs[var];
            let mut coeffs = Vec::with_capacity(lo.coeffs.len() - 1);
            for (d, (&cl, &ch)) in lo.coeffs.iter().zip(&hi.coeffs).enumerate() {
                if d == var {
                    continue;
                }
                coeffs.push(b * cl + a * ch);
            }
            let constant = b * lo.constant + a * hi.constant;
            let c = RationalConstraint { coeffs, constant };
            if !free.contains(&c) {
                free.push(c);
            }
        }
    }
    free
}

/// Whether the rational relaxation of `poly` is empty, by full
/// Fourier–Motzkin elimination.
///
/// `true` implies the integer set is empty too (soundness direction used
/// by the analyses); `false` only certifies a rational point.
pub fn is_rational_empty(poly: &ZPolyhedron) -> bool {
    crate::cache::cached_emptiness(poly, || is_rational_empty_uncached(poly))
}

fn is_rational_empty_uncached(poly: &ZPolyhedron) -> bool {
    let mut cs: Vec<RationalConstraint> = poly
        .constraints()
        .iter()
        .map(|f| RationalConstraint::from_form(f, poly.dim()))
        .collect();
    for _ in 0..poly.dim() {
        cs = project_out_rc(&cs, 0);
        // Constant constraints must stay satisfiable.
        for c in &cs {
            if c.is_constant() && c.constant.is_negative() {
                return true;
            }
        }
        cs.retain(|c| !c.is_constant());
    }
    false
}

/// Rational bounds `[lo, hi]` of dimension `var` over `poly`, from the
/// fully projected one-dimensional shadow; `None` on that side when
/// unbounded.
pub fn rational_bounds(poly: &ZPolyhedron, var: usize) -> (Option<Rational>, Option<Rational>) {
    let mut cs: Vec<RationalConstraint> = poly
        .constraints()
        .iter()
        .map(|f| RationalConstraint::from_form(f, poly.dim()))
        .collect();
    // Eliminate every other variable (always index 0 after shifting,
    // tracking where `var` currently lives).
    let mut pos = var;
    for _ in 0..poly.dim() - 1 {
        let victim = if pos == 0 { 1 } else { 0 };
        cs = project_out_rc(&cs, victim);
        if victim < pos {
            pos -= 1;
        }
    }
    let mut lo: Option<Rational> = None;
    let mut hi: Option<Rational> = None;
    for c in cs {
        let a = c.coeffs[0];
        if a.is_positive() {
            let bound = -c.constant / a;
            lo = Some(lo.map_or(bound, |b| b.max(bound)));
        } else if a.is_negative() {
            let bound = -c.constant / a;
            hi = Some(hi.map_or(bound, |b| b.min(bound)));
        }
    }
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle(n: i64) -> ZPolyhedron {
        let mut p = ZPolyhedron::new(2);
        p.add_lower_bound(0, 0);
        p.add_lower_bound(1, 0);
        p.add_constraint(LinearForm::new(&[(0, -1), (1, -1)], n));
        p
    }

    #[test]
    fn triangle_projection_bounds() {
        let p = triangle(5);
        let (lo, hi) = rational_bounds(&p, 0);
        assert_eq!(lo, Some(Rational::ZERO));
        assert_eq!(hi, Some(Rational::from(5i128)));
    }

    #[test]
    fn emptiness_detection() {
        let mut p = ZPolyhedron::new(2);
        p.add_lower_bound(0, 3);
        p.add_upper_bound(0, 3); // x >= 3 and x <= 2
        assert!(is_rational_empty(&p));
        assert!(!is_rational_empty(&triangle(0)));
    }

    #[test]
    fn emptiness_needs_combination() {
        // x + y >= 5, x <= 1, y <= 2: empty only after combining.
        let mut p = ZPolyhedron::new(2);
        p.add_constraint(LinearForm::new(&[(0, 1), (1, 1)], -5));
        p.add_constraint(LinearForm::new(&[(0, -1)], 1));
        p.add_constraint(LinearForm::new(&[(1, -1)], 2));
        assert!(is_rational_empty(&p));
    }

    #[test]
    fn projection_agrees_with_enumeration() {
        // The x-shadow of the triangle is {0..n}: every integer in the
        // rational bounds must actually occur among enumerated points.
        let p = triangle(4);
        let points = p.enumerate();
        let xs: std::collections::BTreeSet<i64> = points.iter().map(|pt| pt[0]).collect();
        let (lo, hi) = rational_bounds(&p, 0);
        let lo = lo.unwrap().ceil();
        let hi = hi.unwrap().floor();
        assert_eq!(xs, ((lo as i64)..=(hi as i64)).collect());
    }

    #[test]
    fn unbounded_side_reported() {
        let mut p = ZPolyhedron::new(1);
        p.add_lower_bound(0, 2);
        let (lo, hi) = rational_bounds(&p, 0);
        assert_eq!(lo, Some(Rational::from(2i128)));
        assert_eq!(hi, None);
    }

    #[test]
    fn rational_tightness() {
        // 2x >= 3, x <= 7: rational lower bound 3/2.
        let mut p = ZPolyhedron::new(1);
        p.add_constraint(LinearForm::new(&[(0, 2)], -3));
        p.add_constraint(LinearForm::new(&[(0, -1)], 7));
        let (lo, hi) = rational_bounds(&p, 0);
        assert_eq!(lo, Some(Rational::new(3, 2)));
        assert_eq!(hi, Some(Rational::from(7i128)));
    }
}
