//! Fourier–Motzkin elimination over rational constraints.
//!
//! Gives the general Z-polyhedron type projections and an emptiness test
//! that does not rely on enumeration — the core isl operations our box
//! fast paths specialize. The projection is the *rational shadow*: exact
//! for the rational relaxation, an over-approximation of the integer
//! shadow (sound for the emptiness and bounding uses in this workspace).

use ioopt_engine::{Budget, Exhaustion};
use ioopt_symbolic::Rational;

use crate::linear::LinearForm;
use crate::zpoly::ZPolyhedron;

/// Why a governed projection could not produce an exact answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProjectionError {
    /// The requested dimension has no finite bound on at least one side
    /// (only produced by [`rational_bounds_exact`]).
    Unbounded {
        /// The dimension whose bound was requested.
        var: usize,
    },
    /// Exact rational arithmetic overflowed `i128` while combining
    /// constraints.
    Overflow,
    /// The resource budget was exhausted mid-elimination.
    Exhausted(Exhaustion),
}

impl std::fmt::Display for ProjectionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProjectionError::Unbounded { var } => {
                write!(f, "dimension {var} is unbounded in the projection")
            }
            ProjectionError::Overflow => {
                write!(f, "rational overflow during Fourier–Motzkin elimination")
            }
            ProjectionError::Exhausted(e) => write!(f, "projection stopped: {e}"),
        }
    }
}

impl std::error::Error for ProjectionError {}

/// A rational half-space `Σ coeff_i·x_i + c ≥ 0`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RationalConstraint {
    /// One coefficient per dimension.
    pub coeffs: Vec<Rational>,
    /// The constant term.
    pub constant: Rational,
}

impl RationalConstraint {
    fn from_form(f: &LinearForm, dim: usize) -> RationalConstraint {
        let mut coeffs = vec![Rational::ZERO; dim];
        for &(d, c) in f.terms() {
            coeffs[d] = Rational::from(c);
        }
        RationalConstraint {
            coeffs,
            constant: Rational::from(f.constant()),
        }
    }

    /// Drops the coefficient of `var` (after elimination).
    fn without_var(&self, var: usize) -> RationalConstraint {
        let mut coeffs = self.coeffs.clone();
        coeffs.remove(var);
        RationalConstraint {
            coeffs,
            constant: self.constant,
        }
    }

    /// Whether this is a constant constraint (all coefficients zero).
    fn is_constant(&self) -> bool {
        self.coeffs.iter().all(|c| c.is_zero())
    }
}

/// The rational shadow of `poly` with dimension `var` eliminated.
///
/// Combines every pair of constraints with opposite signs on `var`; the
/// result has one fewer dimension (indices above `var` shift down).
///
/// # Panics
///
/// Panics if `var` is out of range.
pub fn project_out(poly: &ZPolyhedron, var: usize) -> Vec<RationalConstraint> {
    assert!(var < poly.dim(), "projected dimension out of range");
    crate::cache::cached_projection(poly, var, || {
        let cs: Vec<RationalConstraint> = poly
            .constraints()
            .iter()
            .map(|f| RationalConstraint::from_form(f, poly.dim()))
            .collect();
        project_out_rc(&cs, var)
    })
}

/// Fourier–Motzkin step on rational constraints.
///
/// # Panics
///
/// Panics on rational overflow (the historical behaviour); use
/// [`project_out_rc_governed`] to get a recoverable error instead.
pub fn project_out_rc(constraints: &[RationalConstraint], var: usize) -> Vec<RationalConstraint> {
    match project_out_rc_governed(constraints, var, &Budget::unlimited()) {
        Ok(free) => free,
        Err(ProjectionError::Overflow) => {
            panic!("rational overflow during Fourier–Motzkin elimination")
        }
        Err(e) => unreachable!("unlimited budget cannot fail with {e}"),
    }
}

/// Rough per-constraint heap footprint, for the budget's memory
/// estimate (`Rational` is two `i128`s).
fn constraint_bytes(dim: usize) -> u64 {
    (dim * std::mem::size_of::<Rational>() + std::mem::size_of::<RationalConstraint>()) as u64
}

/// Governed Fourier–Motzkin step: checks `budget` once per combined
/// constraint pair, uses checked rational arithmetic, and charges the
/// output's memory estimate.
pub fn project_out_rc_governed(
    constraints: &[RationalConstraint],
    var: usize,
    budget: &Budget,
) -> Result<Vec<RationalConstraint>, ProjectionError> {
    ioopt_engine::obs::add(ioopt_engine::obs::Metric::FmProjections, 1);
    let mut lower: Vec<&RationalConstraint> = Vec::new(); // coeff > 0
    let mut upper: Vec<&RationalConstraint> = Vec::new(); // coeff < 0
    let mut free: Vec<RationalConstraint> = Vec::new();
    for c in constraints {
        let a = c.coeffs[var];
        if a.is_positive() {
            lower.push(c);
        } else if a.is_negative() {
            upper.push(c);
        } else {
            free.push(c.without_var(var));
        }
    }
    let combine =
        |x: Rational, b: Rational, y: Rational, a: Rational| b.try_mul(x)?.try_add(a.try_mul(y)?);
    for lo in &lower {
        for hi in &upper {
            budget.step().map_err(ProjectionError::Exhausted)?;
            // lo: a·x + r_lo >= 0 (a > 0)  ->  x >= -r_lo / a
            // hi: b·x + r_hi >= 0 (b < 0)  ->  x <= -r_hi / b
            // Combine: (-r_lo/a) <= (-r_hi/b)  <=>  |b|·r_lo + a·r_hi >= 0.
            let a = lo.coeffs[var];
            let b = -hi.coeffs[var];
            let mut coeffs = Vec::with_capacity(lo.coeffs.len() - 1);
            for (d, (&cl, &ch)) in lo.coeffs.iter().zip(&hi.coeffs).enumerate() {
                if d == var {
                    continue;
                }
                coeffs.push(combine(cl, b, ch, a).ok_or(ProjectionError::Overflow)?);
            }
            let constant =
                combine(lo.constant, b, hi.constant, a).ok_or(ProjectionError::Overflow)?;
            let c = RationalConstraint { coeffs, constant };
            if !free.contains(&c) {
                free.push(c);
            }
        }
    }
    let dim = constraints.first().map(|c| c.coeffs.len()).unwrap_or(1);
    budget
        .charge_mem(free.len() as u64 * constraint_bytes(dim.saturating_sub(1)))
        .map_err(ProjectionError::Exhausted)?;
    Ok(free)
}

/// Whether the rational relaxation of `poly` is empty, by full
/// Fourier–Motzkin elimination.
///
/// `true` implies the integer set is empty too (soundness direction used
/// by the analyses); `false` only certifies a rational point.
pub fn is_rational_empty(poly: &ZPolyhedron) -> bool {
    let budget = Budget::ambient();
    match is_rational_empty_governed(poly, &budget) {
        Ok(empty) => empty,
        // "Don't know" is sound as "not provably empty": callers only use
        // `true` to prune, so a degraded `false` costs time, never
        // correctness. Only degrade under an actual budget; an overflow
        // with no budget in force keeps the historical panic.
        Err(ProjectionError::Overflow) if !budget.is_limited() => {
            panic!("rational overflow during Fourier–Motzkin elimination")
        }
        Err(_) => false,
    }
}

/// Governed rational-emptiness test. `Ok` results are cached; a result
/// cut short by the budget is **not** cached, so a later exact run is
/// not poisoned by a degraded verdict.
pub fn is_rational_empty_governed(
    poly: &ZPolyhedron,
    budget: &Budget,
) -> Result<bool, ProjectionError> {
    crate::cache::cached_emptiness_governed(poly, budget, |b| is_rational_empty_uncached(poly, b))
}

fn is_rational_empty_uncached(
    poly: &ZPolyhedron,
    budget: &Budget,
) -> Result<bool, ProjectionError> {
    let mut cs: Vec<RationalConstraint> = poly
        .constraints()
        .iter()
        .map(|f| RationalConstraint::from_form(f, poly.dim()))
        .collect();
    for round in 0..poly.dim() {
        let released = cs.len() as u64 * constraint_bytes(poly.dim() - round);
        cs = project_out_rc_governed(&cs, 0, budget)?;
        budget.release_mem(released);
        // Constant constraints must stay satisfiable.
        for c in &cs {
            if c.is_constant() && c.constant.is_negative() {
                return Ok(true);
            }
        }
        cs.retain(|c| !c.is_constant());
    }
    Ok(false)
}

/// Rational bounds `[lo, hi]` of dimension `var` over `poly`, from the
/// fully projected one-dimensional shadow; `None` on that side when
/// unbounded.
pub fn rational_bounds(poly: &ZPolyhedron, var: usize) -> (Option<Rational>, Option<Rational>) {
    match rational_bounds_governed(poly, var, &Budget::unlimited()) {
        Ok(bounds) => bounds,
        Err(ProjectionError::Overflow) => {
            panic!("rational overflow during Fourier–Motzkin elimination")
        }
        Err(e) => unreachable!("unlimited budget cannot fail with {e}"),
    }
}

/// Governed variant of [`rational_bounds`]: overflow and budget
/// exhaustion surface as [`ProjectionError`] instead of panicking or
/// running unboundedly.
pub fn rational_bounds_governed(
    poly: &ZPolyhedron,
    var: usize,
    budget: &Budget,
) -> Result<(Option<Rational>, Option<Rational>), ProjectionError> {
    let mut cs: Vec<RationalConstraint> = poly
        .constraints()
        .iter()
        .map(|f| RationalConstraint::from_form(f, poly.dim()))
        .collect();
    // Eliminate every other variable (always index 0 after shifting,
    // tracking where `var` currently lives).
    let mut pos = var;
    for _ in 0..poly.dim() - 1 {
        let victim = if pos == 0 { 1 } else { 0 };
        cs = project_out_rc_governed(&cs, victim, budget)?;
        if victim < pos {
            pos -= 1;
        }
    }
    let mut lo: Option<Rational> = None;
    let mut hi: Option<Rational> = None;
    for c in cs {
        let a = c.coeffs[0];
        if a.is_positive() {
            let bound = (-c.constant).try_div(a).ok_or(ProjectionError::Overflow)?;
            lo = Some(lo.map_or(bound, |b| b.max(bound)));
        } else if a.is_negative() {
            let bound = (-c.constant).try_div(a).ok_or(ProjectionError::Overflow)?;
            hi = Some(hi.map_or(bound, |b| b.min(bound)));
        }
    }
    Ok((lo, hi))
}

/// Both rational bounds of `var`, or [`ProjectionError::Unbounded`] when
/// either side is missing — the checked replacement for unwrapping the
/// optional sides of [`rational_bounds`].
pub fn rational_bounds_exact(
    poly: &ZPolyhedron,
    var: usize,
) -> Result<(Rational, Rational), ProjectionError> {
    let (lo, hi) = rational_bounds(poly, var);
    match (lo, hi) {
        (Some(lo), Some(hi)) => Ok((lo, hi)),
        _ => Err(ProjectionError::Unbounded { var }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle(n: i64) -> ZPolyhedron {
        let mut p = ZPolyhedron::new(2);
        p.add_lower_bound(0, 0);
        p.add_lower_bound(1, 0);
        p.add_constraint(LinearForm::new(&[(0, -1), (1, -1)], n));
        p
    }

    #[test]
    fn triangle_projection_bounds() {
        let p = triangle(5);
        let (lo, hi) = rational_bounds(&p, 0);
        assert_eq!(lo, Some(Rational::ZERO));
        assert_eq!(hi, Some(Rational::from(5i128)));
    }

    #[test]
    fn emptiness_detection() {
        let mut p = ZPolyhedron::new(2);
        p.add_lower_bound(0, 3);
        p.add_upper_bound(0, 3); // x >= 3 and x <= 2
        assert!(is_rational_empty(&p));
        assert!(!is_rational_empty(&triangle(0)));
    }

    #[test]
    fn emptiness_needs_combination() {
        // x + y >= 5, x <= 1, y <= 2: empty only after combining.
        let mut p = ZPolyhedron::new(2);
        p.add_constraint(LinearForm::new(&[(0, 1), (1, 1)], -5));
        p.add_constraint(LinearForm::new(&[(0, -1)], 1));
        p.add_constraint(LinearForm::new(&[(1, -1)], 2));
        assert!(is_rational_empty(&p));
    }

    #[test]
    fn projection_agrees_with_enumeration() {
        // The x-shadow of the triangle is {0..n}: every integer in the
        // rational bounds must actually occur among enumerated points.
        let p = triangle(4);
        let points = p.enumerate();
        let xs: std::collections::BTreeSet<i64> = points.iter().map(|pt| pt[0]).collect();
        let (lo, hi) = rational_bounds_exact(&p, 0).expect("triangle is bounded");
        let lo = lo.ceil();
        let hi = hi.floor();
        assert_eq!(xs, ((lo as i64)..=(hi as i64)).collect());
    }

    #[test]
    fn exact_bounds_report_unbounded_instead_of_panicking() {
        let mut p = ZPolyhedron::new(1);
        p.add_lower_bound(0, 2);
        assert_eq!(
            rational_bounds_exact(&p, 0),
            Err(ProjectionError::Unbounded { var: 0 })
        );
        let msg = format!("{}", ProjectionError::Unbounded { var: 0 });
        assert!(msg.contains("unbounded"), "got: {msg}");
    }

    #[test]
    fn exhausted_budget_degrades_projection_not_result() {
        let spent = Budget::with_limits(None, Some(0), None);
        assert!(spent.step().is_err());
        // Governed emptiness reports exhaustion... (unique constants so
        // no other test can have warmed this cache entry)
        let p = triangle(137);
        match is_rational_empty_governed(&p, &spent) {
            Err(ProjectionError::Exhausted(_)) => {}
            other => panic!("expected exhaustion, got {other:?}"),
        }
        // ...and the ungoverned wrapper degrades to "not provably empty"
        // under an ambient budget, without caching the degraded verdict.
        {
            let _scope = spent.enter();
            assert!(!is_rational_empty(&p));
        }
        assert!(!is_rational_empty(&p), "exact verdict after degradation");
        // A genuinely empty set is still detected once the budget is gone.
        let mut q = ZPolyhedron::new(2);
        q.add_lower_bound(0, 71);
        q.add_upper_bound(0, 12);
        {
            let _scope = spent.enter();
            assert!(!is_rational_empty(&q), "degraded don't-know");
        }
        assert!(is_rational_empty(&q), "no degraded verdict was cached");
    }

    #[test]
    fn governed_projection_matches_ungoverned() {
        let p = triangle(6);
        let cs: Vec<RationalConstraint> = p
            .constraints()
            .iter()
            .map(|f| RationalConstraint::from_form(f, p.dim()))
            .collect();
        let exact = project_out_rc(&cs, 0);
        let governed =
            project_out_rc_governed(&cs, 0, &Budget::with_limits(None, Some(1_000), None))
                .expect("ample budget");
        assert_eq!(exact, governed);
    }

    #[test]
    fn unbounded_side_reported() {
        let mut p = ZPolyhedron::new(1);
        p.add_lower_bound(0, 2);
        let (lo, hi) = rational_bounds(&p, 0);
        assert_eq!(lo, Some(Rational::from(2i128)));
        assert_eq!(hi, None);
    }

    #[test]
    fn rational_tightness() {
        // 2x >= 3, x <= 7: rational lower bound 3/2.
        let mut p = ZPolyhedron::new(1);
        p.add_constraint(LinearForm::new(&[(0, 2)], -3));
        p.add_constraint(LinearForm::new(&[(0, -1)], 7));
        let (lo, hi) = rational_bounds(&p, 0);
        assert_eq!(lo, Some(Rational::new(3, 2)));
        assert_eq!(hi, Some(Rational::from(7i128)));
    }
}
