//! # ioopt-polyhedra
//!
//! The isl/Barvinok substitute of the IOOpt reproduction: iteration-space
//! boxes, affine access functions, and *symbolic* footprint cardinalities
//! for the kernel class the paper evaluates (rectangular tile bands with
//! sum-of-indices subscripts), plus brute-force enumeration to cross-check
//! every symbolic count on concrete instances.
//!
//! See `DESIGN.md` §2 for why this substitution is faithful.

#![warn(missing_docs)]

mod access;
mod cache;
mod enumerate;
mod fourier_motzkin;
mod linear;
mod zpoly;

pub use access::{AccessFunction, Cardinality};
pub use cache::{cache_stats, reset_cache, set_cache_enabled};
pub use enumerate::{count_image, count_image_overlap, ConcreteBox, PointIter};
pub use fourier_motzkin::{
    is_rational_empty, is_rational_empty_governed, project_out, project_out_rc,
    project_out_rc_governed, rational_bounds, rational_bounds_exact, rational_bounds_governed,
    ProjectionError, RationalConstraint,
};
pub use linear::LinearForm;
pub use zpoly::{ZPolyError, ZPolyhedron};
