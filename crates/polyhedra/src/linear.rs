//! Integer linear forms over iteration dimensions.

use std::fmt;

/// An affine form `Σ coeff_i · dim_i + constant` over iteration-space
/// dimensions identified by index.
///
/// Array subscripts in affine programs are linear forms: `Image[x+w][c]`
/// uses the forms `x + w` and `c`.
///
/// # Examples
///
/// ```
/// use ioopt_polyhedra::LinearForm;
/// let f = LinearForm::sum_of(&[0, 3]); // dims 0 and 3, unit coefficients
/// assert_eq!(f.eval(&[2, 0, 0, 5]), 7);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LinearForm {
    terms: Vec<(usize, i64)>,
    constant: i64,
}

impl LinearForm {
    /// Creates a form from `(dimension, coefficient)` terms and a constant.
    ///
    /// Zero-coefficient terms are dropped; duplicate dimensions are merged.
    pub fn new(terms: &[(usize, i64)], constant: i64) -> LinearForm {
        let mut merged: Vec<(usize, i64)> = Vec::new();
        for &(d, c) in terms {
            if let Some(e) = merged.iter_mut().find(|(md, _)| *md == d) {
                e.1 += c;
            } else {
                merged.push((d, c));
            }
        }
        merged.retain(|&(_, c)| c != 0);
        merged.sort_by_key(|&(d, _)| d);
        LinearForm {
            terms: merged,
            constant,
        }
    }

    /// A single dimension with unit coefficient.
    pub fn var(dim: usize) -> LinearForm {
        LinearForm::new(&[(dim, 1)], 0)
    }

    /// A sum of dimensions with unit coefficients (e.g. `x + w`).
    pub fn sum_of(dims: &[usize]) -> LinearForm {
        let terms: Vec<(usize, i64)> = dims.iter().map(|&d| (d, 1)).collect();
        LinearForm::new(&terms, 0)
    }

    /// The `(dimension, coefficient)` terms, sorted by dimension.
    pub fn terms(&self) -> &[(usize, i64)] {
        &self.terms
    }

    /// The constant offset.
    pub fn constant(&self) -> i64 {
        self.constant
    }

    /// The coefficient of `dim` (zero if absent).
    pub fn coeff(&self, dim: usize) -> i64 {
        self.terms
            .iter()
            .find(|&&(d, _)| d == dim)
            .map(|&(_, c)| c)
            .unwrap_or(0)
    }

    /// Whether `dim` occurs with a non-zero coefficient.
    pub fn uses(&self, dim: usize) -> bool {
        self.coeff(dim) != 0
    }

    /// Whether every coefficient is `1` (the paper's kernel class).
    pub fn is_unit(&self) -> bool {
        self.terms.iter().all(|&(_, c)| c == 1)
    }

    /// Evaluates the form at an iteration point.
    ///
    /// # Panics
    ///
    /// Panics if a referenced dimension is out of bounds for `point`.
    pub fn eval(&self, point: &[i64]) -> i64 {
        self.constant + self.terms.iter().map(|&(d, c)| c * point[d]).sum::<i64>()
    }

    /// The dimensions referenced by this form.
    pub fn dims(&self) -> impl Iterator<Item = usize> + '_ {
        self.terms.iter().map(|&(d, _)| d)
    }
}

impl fmt::Display for LinearForm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return write!(f, "{}", self.constant);
        }
        for (i, &(d, c)) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            if c == 1 {
                write!(f, "d{d}")?;
            } else {
                write!(f, "{c}*d{d}")?;
            }
        }
        if self.constant != 0 {
            write!(f, " + {}", self.constant)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merges_and_drops_terms() {
        let f = LinearForm::new(&[(2, 1), (0, 3), (2, -1)], 5);
        assert_eq!(f.terms(), &[(0, 3)]);
        assert_eq!(f.constant(), 5);
    }

    #[test]
    fn coeff_lookup() {
        let f = LinearForm::new(&[(1, 2), (4, 1)], 0);
        assert_eq!(f.coeff(1), 2);
        assert_eq!(f.coeff(4), 1);
        assert_eq!(f.coeff(0), 0);
        assert!(f.uses(4));
        assert!(!f.uses(3));
        assert!(!f.is_unit());
        assert!(LinearForm::sum_of(&[0, 1]).is_unit());
    }

    #[test]
    fn eval_point() {
        let f = LinearForm::new(&[(0, 2), (1, -1)], 3);
        assert_eq!(f.eval(&[4, 5]), 6);
    }

    #[test]
    fn display() {
        assert_eq!(LinearForm::sum_of(&[0, 2]).to_string(), "d0 + d2");
        assert_eq!(LinearForm::new(&[(1, 3)], 1).to_string(), "3*d1 + 1");
    }
}
