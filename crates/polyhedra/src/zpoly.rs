//! General Z-polyhedra with affine inequality constraints.
//!
//! The paper's algorithms only need boxes, but a general integer-set type
//! with exact (enumeration-based) counting lets the test suite check the
//! box fast paths against a reference, and supports non-rectangular
//! domains in the IR.

use std::fmt;

use crate::linear::LinearForm;

/// Errors from the fallible [`ZPolyhedron`] set operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ZPolyError {
    /// The set has no finite bounding box, so enumeration (and integer
    /// emptiness beyond the rational test) is undecidable here.
    Unbounded,
    /// Two operands have different ambient dimensions.
    DimMismatch {
        /// Dimension of the left operand.
        left: usize,
        /// Dimension of the right operand.
        right: usize,
    },
}

impl fmt::Display for ZPolyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ZPolyError::Unbounded => {
                write!(f, "Z-polyhedron has no finite bounding box")
            }
            ZPolyError::DimMismatch { left, right } => {
                write!(f, "Z-polyhedron dimension mismatch: {left} vs {right}")
            }
        }
    }
}

impl std::error::Error for ZPolyError {}

/// An integer polyhedron `{ x ∈ Z^d | a_j·x + c_j ≥ 0 for all j }`.
///
/// # Examples
///
/// ```
/// use ioopt_polyhedra::{LinearForm, ZPolyhedron};
/// // Triangle: 0 <= i, 0 <= j, i + j <= 3
/// let mut p = ZPolyhedron::new(2);
/// p.add_lower_bound(0, 0);
/// p.add_lower_bound(1, 0);
/// p.add_constraint(LinearForm::new(&[(0, -1), (1, -1)], 3)); // 3 - i - j >= 0
/// assert_eq!(p.count(), 10);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ZPolyhedron {
    dim: usize,
    /// Constraints `f(x) >= 0`.
    constraints: Vec<LinearForm>,
}

impl ZPolyhedron {
    /// An unconstrained polyhedron of dimension `dim`.
    pub fn new(dim: usize) -> ZPolyhedron {
        ZPolyhedron {
            dim,
            constraints: Vec::new(),
        }
    }

    /// The ambient dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Adds `f(x) ≥ 0`.
    pub fn add_constraint(&mut self, f: LinearForm) {
        self.constraints.push(f);
    }

    /// Adds `x_dim ≥ lo`.
    pub fn add_lower_bound(&mut self, dim: usize, lo: i64) {
        self.add_constraint(LinearForm::new(&[(dim, 1)], -lo));
    }

    /// Adds `x_dim < hi` (i.e. `x_dim ≤ hi − 1`).
    pub fn add_upper_bound(&mut self, dim: usize, hi: i64) {
        self.add_constraint(LinearForm::new(&[(dim, -1)], hi - 1));
    }

    /// The constraints `f(x) ≥ 0`.
    pub fn constraints(&self) -> &[LinearForm] {
        &self.constraints
    }

    /// Whether `point` satisfies every constraint.
    pub fn contains(&self, point: &[i64]) -> bool {
        self.constraints.iter().all(|f| f.eval(point) >= 0)
    }

    /// A conservative bounding box `[lo, hi)` per dimension, derived by
    /// interval propagation over the constraints. Returns `None` when a
    /// dimension cannot be bounded.
    pub fn bounding_box(&self) -> Option<(Vec<i64>, Vec<i64>)> {
        // lo[d] inclusive, hi[d] exclusive; None = unknown yet.
        let mut lo: Vec<Option<i64>> = vec![None; self.dim];
        let mut hi: Vec<Option<i64>> = vec![None; self.dim];
        // Fixpoint interval propagation: from c_d*x_d + Σ c_i*x_i + k >= 0
        // derive a bound on x_d using the extreme values of the other dims.
        for _ in 0..2 * self.dim + 2 {
            let mut changed = false;
            for f in &self.constraints {
                for &(d, cd) in f.terms() {
                    // Compute max over the box of Σ_{i≠d} c_i*x_i + k.
                    let mut rest_max = Some(f.constant());
                    for &(i, ci) in f.terms() {
                        if i == d {
                            continue;
                        }
                        let extreme = if ci > 0 { hi[i].map(|h| h - 1) } else { lo[i] };
                        rest_max = match (rest_max, extreme) {
                            (Some(acc), Some(x)) => Some(acc + ci * x),
                            _ => None,
                        };
                    }
                    let Some(rest_max) = rest_max else { continue };
                    if cd > 0 {
                        // x_d >= ceil(-rest_max / cd)
                        let b =
                            (-rest_max).div_euclid(cd) + i64::from((-rest_max).rem_euclid(cd) != 0);
                        let new = Some(lo[d].map_or(b, |cur: i64| cur.max(b)));
                        if new != lo[d] {
                            lo[d] = new;
                            changed = true;
                        }
                    } else {
                        // x_d <= floor(rest_max / -cd)
                        let b = rest_max.div_euclid(-cd) + 1;
                        let new = Some(hi[d].map_or(b, |cur: i64| cur.min(b)));
                        if new != hi[d] {
                            hi[d] = new;
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
        let lo: Option<Vec<i64>> = lo.into_iter().collect();
        let hi: Option<Vec<i64>> = hi.into_iter().collect();
        Some((lo?, hi?))
    }

    /// Enumerates all integer points.
    ///
    /// # Panics
    ///
    /// Panics if the set has no finite bounding box; use
    /// [`ZPolyhedron::try_enumerate`] for the fallible form.
    pub fn enumerate(&self) -> Vec<Vec<i64>> {
        match self.try_enumerate() {
            Ok(points) => points,
            Err(e) => panic!("cannot enumerate: {e}"),
        }
    }

    /// Enumerates all integer points, or reports why it cannot.
    ///
    /// # Errors
    ///
    /// [`ZPolyError::Unbounded`] when the set has no finite bounding box.
    pub fn try_enumerate(&self) -> Result<Vec<Vec<i64>>, ZPolyError> {
        let (lo, hi) = self.bounding_box().ok_or(ZPolyError::Unbounded)?;
        let mut out = Vec::new();
        let mut point = lo.clone();
        if self.dim == 0 {
            return Ok(vec![vec![]]);
        }
        if lo.iter().zip(&hi).any(|(l, h)| l >= h) {
            return Ok(out);
        }
        loop {
            if self.contains(&point) {
                out.push(point.clone());
            }
            // Odometer increment.
            let mut d = self.dim;
            loop {
                if d == 0 {
                    return Ok(out);
                }
                d -= 1;
                point[d] += 1;
                if point[d] < hi[d] {
                    break;
                }
                point[d] = lo[d];
            }
        }
    }

    /// Exact point count by enumeration, memoized per constraint system
    /// (see [`crate::cache_stats`]).
    pub fn count(&self) -> u64 {
        crate::cache::cached_count(self, || self.enumerate().len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle(n: i64) -> ZPolyhedron {
        let mut p = ZPolyhedron::new(2);
        p.add_lower_bound(0, 0);
        p.add_lower_bound(1, 0);
        p.add_constraint(LinearForm::new(&[(0, -1), (1, -1)], n));
        p
    }

    #[test]
    fn triangle_count() {
        // i, j >= 0, i + j <= n: (n+1)(n+2)/2 points
        for n in 0..6 {
            assert_eq!(triangle(n).count(), ((n + 1) * (n + 2) / 2) as u64);
        }
    }

    #[test]
    fn box_count() {
        let mut p = ZPolyhedron::new(3);
        for d in 0..3 {
            p.add_lower_bound(d, 0);
            p.add_upper_bound(d, 4);
        }
        assert_eq!(p.count(), 64);
    }

    #[test]
    fn empty_set() {
        let mut p = ZPolyhedron::new(1);
        p.add_lower_bound(0, 5);
        p.add_upper_bound(0, 5);
        assert_eq!(p.count(), 0);
    }

    #[test]
    fn membership() {
        let p = triangle(3);
        assert!(p.contains(&[1, 2]));
        assert!(!p.contains(&[2, 2]));
    }

    #[test]
    fn bounding_box_from_mixed_constraints() {
        let mut p = ZPolyhedron::new(1);
        p.add_constraint(LinearForm::new(&[(0, 2)], -3)); // 2x >= 3 -> x >= 2
        p.add_constraint(LinearForm::new(&[(0, -1)], 7)); // x <= 7
        let (lo, hi) = p.bounding_box().unwrap();
        assert_eq!((lo[0], hi[0]), (2, 8));
        assert_eq!(p.count(), 6);
    }
}

impl ZPolyhedron {
    /// The polyhedron of a concrete box `∏ [lo_i, lo_i + size_i)`.
    pub fn from_box(boxdom: &crate::enumerate::ConcreteBox) -> ZPolyhedron {
        let mut p = ZPolyhedron::new(boxdom.lo.len());
        for (d, (&lo, &size)) in boxdom.lo.iter().zip(&boxdom.size).enumerate() {
            p.add_lower_bound(d, lo);
            p.add_upper_bound(d, lo + size);
        }
        p
    }

    /// The intersection (conjunction of both constraint systems).
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ; use
    /// [`ZPolyhedron::try_intersect`] for the fallible form.
    pub fn intersect(&self, other: &ZPolyhedron) -> ZPolyhedron {
        match self.try_intersect(other) {
            Ok(p) => p,
            Err(e) => panic!("cannot intersect: {e}"),
        }
    }

    /// The intersection, or a structured error on dimension mismatch.
    ///
    /// # Errors
    ///
    /// [`ZPolyError::DimMismatch`] when the ambient dimensions differ.
    pub fn try_intersect(&self, other: &ZPolyhedron) -> Result<ZPolyhedron, ZPolyError> {
        if self.dim() != other.dim() {
            return Err(ZPolyError::DimMismatch {
                left: self.dim(),
                right: other.dim(),
            });
        }
        let mut out = self.clone();
        for c in other.constraints() {
            out.add_constraint(c.clone());
        }
        Ok(out)
    }

    /// Whether the integer set is empty.
    ///
    /// Uses the Fourier–Motzkin rational test first (rational-empty ⇒
    /// integer-empty); bounded non-rational-empty sets are decided by
    /// enumeration.
    ///
    /// # Panics
    ///
    /// Panics when the set is rationally non-empty but unbounded (no
    /// decision procedure without lattice reasoning); use
    /// [`ZPolyhedron::try_is_empty`] for the fallible form.
    pub fn is_empty(&self) -> bool {
        match self.try_is_empty() {
            Ok(empty) => empty,
            Err(e) => panic!("cannot decide emptiness: {e}"),
        }
    }

    /// Whether the integer set is empty, or a structured error when the
    /// set is rationally non-empty but unbounded.
    ///
    /// # Errors
    ///
    /// [`ZPolyError::Unbounded`] when enumeration would be required but
    /// the set has no finite bounding box.
    pub fn try_is_empty(&self) -> Result<bool, ZPolyError> {
        if crate::fourier_motzkin::is_rational_empty(self) {
            return Ok(true);
        }
        Ok(self.try_enumerate()?.is_empty())
    }
}

#[cfg(test)]
mod set_op_tests {
    use super::*;
    use crate::enumerate::ConcreteBox;

    #[test]
    fn box_roundtrip() {
        let b = ConcreteBox::new(vec![1, 2], vec![3, 4]);
        let p = ZPolyhedron::from_box(&b);
        assert_eq!(p.count(), b.cardinality());
        assert!(p.contains(&[1, 2]));
        assert!(p.contains(&[3, 5]));
        assert!(!p.contains(&[4, 2]));
    }

    #[test]
    fn intersection_counts() {
        let a = ZPolyhedron::from_box(&ConcreteBox::at_origin(vec![4, 4]));
        let b = ZPolyhedron::from_box(&ConcreteBox::new(vec![2, 2], vec![4, 4]));
        let i = a.intersect(&b);
        assert_eq!(i.count(), 4); // the 2x2 overlap
        assert!(!i.is_empty());
    }

    #[test]
    fn empty_intersection() {
        let a = ZPolyhedron::from_box(&ConcreteBox::at_origin(vec![2]));
        let b = ZPolyhedron::from_box(&ConcreteBox::new(vec![5], vec![2]));
        assert!(a.intersect(&b).is_empty());
    }

    #[test]
    fn integer_emptiness_beyond_rational() {
        // 2x >= 1 and 2x <= 1: rationally x = 1/2, integrally empty.
        let mut p = ZPolyhedron::new(1);
        p.add_constraint(crate::linear::LinearForm::new(&[(0, 2)], -1));
        p.add_constraint(crate::linear::LinearForm::new(&[(0, -2)], 1));
        assert!(p.is_empty());
    }
}
