//! Cross-validation of symbolic cardinalities against brute-force
//! enumeration — the "Barvinok correctness" property of DESIGN.md.

use std::collections::HashMap;

use ioopt_polyhedra::{
    count_image, count_image_overlap, AccessFunction, ConcreteBox, LinearForm,
};
use ioopt_symbolic::{Expr, Rational, Symbol};
use proptest::prelude::*;

/// Generates a separable unit access function over `ndims` iteration dims:
/// a partition of a subset of the dims into subscript groups.
fn access_strategy(ndims: usize) -> impl Strategy<Value = AccessFunction> {
    proptest::collection::vec(0usize..4, ndims).prop_map(move |groups| {
        // groups[d] == g assigns dim d to subscript g (3 = unused).
        let mut subs: Vec<Vec<usize>> = vec![Vec::new(); 3];
        for (d, &g) in groups.iter().enumerate() {
            if g < 3 {
                subs[g].push(d);
            }
        }
        let forms: Vec<LinearForm> = subs
            .into_iter()
            .filter(|s| !s.is_empty())
            .map(|s| LinearForm::sum_of(&s))
            .collect();
        let forms = if forms.is_empty() { vec![LinearForm::var(0)] } else { forms };
        AccessFunction::new(forms)
    })
}

fn extents_strategy(ndims: usize) -> impl Strategy<Value = Vec<i64>> {
    proptest::collection::vec(1i64..5, ndims)
}

fn symbolic_extents(sizes: &[i64]) -> (Vec<Expr>, HashMap<Symbol, Rational>) {
    let mut exprs = Vec::new();
    let mut env = HashMap::new();
    for (d, &s) in sizes.iter().enumerate() {
        let name = format!("E{d}");
        exprs.push(Expr::sym(&name));
        env.insert(Symbol::new(&name), Rational::from(s as i128));
    }
    (exprs, env)
}

proptest! {
    /// Symbolic image cardinality equals enumerated distinct-cell count.
    #[test]
    fn image_cardinality_matches_enumeration(
        access in access_strategy(4),
        sizes in extents_strategy(4),
    ) {
        let (exprs, env) = symbolic_extents(&sizes);
        let fp = access.image_cardinality(&exprs);
        prop_assert!(fp.exact);
        let symbolic = fp.card.eval_rational(&env).expect("rational");
        let enumerated = count_image(&ConcreteBox::at_origin(sizes), &access);
        prop_assert_eq!(symbolic, Rational::from(enumerated as i128));
    }

    /// Symbolic overlap cardinality equals enumerated image intersection
    /// for a box shifted by its own extent along one dimension.
    #[test]
    fn overlap_cardinality_matches_enumeration(
        access in access_strategy(4),
        sizes in extents_strategy(4),
        shift_dim in 0usize..4,
    ) {
        let (exprs, env) = symbolic_extents(&sizes);
        let shift = Expr::sym(&format!("E{shift_dim}"));
        let ov = access.overlap_cardinality(&exprs, shift_dim, &shift);
        let symbolic = ov.card.eval_rational(&env).expect("rational");
        let b1 = ConcreteBox::at_origin(sizes.clone());
        let b2 = b1.shifted(shift_dim, sizes[shift_dim]);
        let enumerated = count_image_overlap(&b1, &b2, &access);
        prop_assert_eq!(symbolic, Rational::from(enumerated as i128));
    }

    /// Non-unit (strided) accesses over-approximate, never under-approximate.
    #[test]
    fn strided_footprint_is_sound_overapprox(
        sizes in extents_strategy(2),
        stride in 2i64..4,
    ) {
        let access = AccessFunction::new(vec![LinearForm::new(
            &[(0, stride), (1, 1)],
            0,
        )]);
        let (exprs, env) = symbolic_extents(&sizes);
        let fp = access.image_cardinality(&exprs);
        prop_assert!(!fp.exact);
        let symbolic = fp.card.eval_rational(&env).expect("rational");
        let enumerated = count_image(&ConcreteBox::at_origin(sizes), &access);
        prop_assert!(symbolic >= Rational::from(enumerated as i128));
    }
}
