//! Cross-validation of symbolic cardinalities against brute-force
//! enumeration — the "Barvinok correctness" property of DESIGN.md.
//! Deterministic SplitMix64-driven random cases.

use std::collections::HashMap;

use ioopt_polyhedra::{count_image, count_image_overlap, AccessFunction, ConcreteBox, LinearForm};
use ioopt_symbolic::{Expr, Rational, SplitMix64, Symbol};

/// Generates a separable unit access function over `ndims` iteration dims:
/// a partition of a subset of the dims into subscript groups.
fn random_access(rng: &mut SplitMix64, ndims: usize) -> AccessFunction {
    // groups[d] == g assigns dim d to subscript g (3 = unused).
    let mut subs: Vec<Vec<usize>> = vec![Vec::new(); 3];
    for d in 0..ndims {
        let g = rng.range_usize(4);
        if g < 3 {
            subs[g].push(d);
        }
    }
    let forms: Vec<LinearForm> = subs
        .into_iter()
        .filter(|s| !s.is_empty())
        .map(|s| LinearForm::sum_of(&s))
        .collect();
    let forms = if forms.is_empty() {
        vec![LinearForm::var(0)]
    } else {
        forms
    };
    AccessFunction::new(forms)
}

fn random_extents(rng: &mut SplitMix64, ndims: usize) -> Vec<i64> {
    (0..ndims).map(|_| rng.range_i64(1, 4)).collect()
}

fn symbolic_extents(sizes: &[i64]) -> (Vec<Expr>, HashMap<Symbol, Rational>) {
    let mut exprs = Vec::new();
    let mut env = HashMap::new();
    for (d, &s) in sizes.iter().enumerate() {
        let name = format!("E{d}");
        exprs.push(Expr::sym(&name));
        env.insert(Symbol::new(&name), Rational::from(s as i128));
    }
    (exprs, env)
}

/// Symbolic image cardinality equals enumerated distinct-cell count.
#[test]
fn image_cardinality_matches_enumeration() {
    let mut rng = SplitMix64::new(0xc00701);
    for _ in 0..256 {
        let access = random_access(&mut rng, 4);
        let sizes = random_extents(&mut rng, 4);
        let (exprs, env) = symbolic_extents(&sizes);
        let fp = access.image_cardinality(&exprs);
        assert!(fp.exact);
        let symbolic = fp.card.eval_rational(&env).expect("rational");
        let enumerated = count_image(&ConcreteBox::at_origin(sizes), &access);
        assert_eq!(symbolic, Rational::from(enumerated as i128));
    }
}

/// Symbolic overlap cardinality equals enumerated image intersection
/// for a box shifted by its own extent along one dimension.
#[test]
fn overlap_cardinality_matches_enumeration() {
    let mut rng = SplitMix64::new(0xc00702);
    for _ in 0..256 {
        let access = random_access(&mut rng, 4);
        let sizes = random_extents(&mut rng, 4);
        let shift_dim = rng.range_usize(4);
        let (exprs, env) = symbolic_extents(&sizes);
        let shift = Expr::sym(&format!("E{shift_dim}"));
        let ov = access.overlap_cardinality(&exprs, shift_dim, &shift);
        let symbolic = ov.card.eval_rational(&env).expect("rational");
        let b1 = ConcreteBox::at_origin(sizes.clone());
        let b2 = b1.shifted(shift_dim, sizes[shift_dim]);
        let enumerated = count_image_overlap(&b1, &b2, &access);
        assert_eq!(symbolic, Rational::from(enumerated as i128));
    }
}

/// Non-unit (strided) accesses over-approximate, never under-approximate.
#[test]
fn strided_footprint_is_sound_overapprox() {
    let mut rng = SplitMix64::new(0xc00703);
    for _ in 0..128 {
        let sizes = random_extents(&mut rng, 2);
        let stride = rng.range_i64(2, 3);
        let access = AccessFunction::new(vec![LinearForm::new(&[(0, stride), (1, 1)], 0)]);
        let (exprs, env) = symbolic_extents(&sizes);
        let fp = access.image_cardinality(&exprs);
        assert!(!fp.exact);
        let symbolic = fp.card.eval_rational(&env).expect("rational");
        let enumerated = count_image(&ConcreteBox::at_origin(sizes), &access);
        assert!(symbolic >= Rational::from(enumerated as i128));
    }
}
