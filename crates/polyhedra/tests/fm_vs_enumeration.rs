//! Property tests: Fourier–Motzkin results agree with brute-force
//! enumeration on random bounded constraint systems.

use ioopt_polyhedra::{is_rational_empty, rational_bounds, LinearForm, ZPolyhedron};
use proptest::prelude::*;

/// Random 2-D systems inside a [0, 8)² box plus up to 4 extra cuts.
fn system_strategy() -> impl Strategy<Value = ZPolyhedron> {
    let cut = (proptest::array::uniform2(-3i64..=3), -6i64..=12);
    proptest::collection::vec(cut, 0..4).prop_map(|cuts| {
        let mut p = ZPolyhedron::new(2);
        for d in 0..2 {
            p.add_lower_bound(d, 0);
            p.add_upper_bound(d, 8);
        }
        for (a, b) in cuts {
            p.add_constraint(LinearForm::new(&[(0, a[0]), (1, a[1])], b));
        }
        p
    })
}

proptest! {
    /// Rational emptiness implies integer emptiness; integer non-emptiness
    /// implies rational non-emptiness.
    #[test]
    fn emptiness_is_consistent(p in system_strategy()) {
        let integer_empty = p.enumerate().is_empty();
        if is_rational_empty(&p) {
            prop_assert!(integer_empty, "rational-empty but has integer points");
        }
        if !integer_empty {
            prop_assert!(!is_rational_empty(&p));
        }
        // The combined decision procedure always agrees with enumeration.
        prop_assert_eq!(p.is_empty(), integer_empty);
    }

    /// The rational shadow bounds cover every enumerated coordinate.
    #[test]
    fn shadow_bounds_cover_points(p in system_strategy(), var in 0usize..2) {
        let points = p.enumerate();
        if points.is_empty() {
            return Ok(());
        }
        let (lo, hi) = rational_bounds(&p, var);
        for pt in &points {
            let v = ioopt_symbolic::Rational::from(pt[var] as i128);
            if let Some(lo) = lo {
                prop_assert!(v >= lo, "point {pt:?} below shadow lower bound {lo}");
            }
            if let Some(hi) = hi {
                prop_assert!(v <= hi, "point {pt:?} above shadow upper bound {hi}");
            }
        }
    }
}
