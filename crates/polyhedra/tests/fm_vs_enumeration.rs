//! Randomized tests: Fourier–Motzkin results agree with brute-force
//! enumeration on random bounded constraint systems (deterministic
//! SplitMix64-driven cases; no network-fetched test dependencies).

use ioopt_polyhedra::{is_rational_empty, rational_bounds, LinearForm, ZPolyhedron};
use ioopt_symbolic::SplitMix64;

/// Random 2-D system inside a [0, 8)² box plus up to 4 extra cuts.
fn random_system(rng: &mut SplitMix64) -> ZPolyhedron {
    let mut p = ZPolyhedron::new(2);
    for d in 0..2 {
        p.add_lower_bound(d, 0);
        p.add_upper_bound(d, 8);
    }
    let ncuts = rng.range_usize(4);
    for _ in 0..ncuts {
        let a0 = rng.range_i64(-3, 3);
        let a1 = rng.range_i64(-3, 3);
        let b = rng.range_i64(-6, 12);
        p.add_constraint(LinearForm::new(&[(0, a0), (1, a1)], b));
    }
    p
}

/// Rational emptiness implies integer emptiness; integer non-emptiness
/// implies rational non-emptiness.
#[test]
fn emptiness_is_consistent() {
    let mut rng = SplitMix64::new(0x901101);
    for _ in 0..256 {
        let p = random_system(&mut rng);
        let integer_empty = p.enumerate().is_empty();
        if is_rational_empty(&p) {
            assert!(integer_empty, "rational-empty but has integer points");
        }
        if !integer_empty {
            assert!(!is_rational_empty(&p));
        }
        // The combined decision procedure always agrees with enumeration.
        assert_eq!(p.is_empty(), integer_empty);
    }
}

/// The rational shadow bounds cover every enumerated coordinate.
#[test]
fn shadow_bounds_cover_points() {
    let mut rng = SplitMix64::new(0x901102);
    for _ in 0..256 {
        let p = random_system(&mut rng);
        let var = rng.range_usize(2);
        let points = p.enumerate();
        if points.is_empty() {
            continue;
        }
        let (lo, hi) = rational_bounds(&p, var);
        for pt in &points {
            let v = ioopt_symbolic::Rational::from(pt[var] as i128);
            if let Some(lo) = lo {
                assert!(v >= lo, "point {pt:?} below shadow lower bound {lo}");
            }
            if let Some(hi) = hi {
                assert!(v <= hi, "point {pt:?} above shadow upper bound {hi}");
            }
        }
    }
}
